#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace dynp::fault {

namespace {

/// Stream labels for `derive_seed`; distinct per purpose so the streams are
/// independent whatever the (id, attempt) arguments.
constexpr std::uint64_t kNodeStream = 0xD01;
constexpr std::uint64_t kJobStream = 0xD02;
constexpr std::uint64_t kBackoffStream = 0xD03;
constexpr std::uint64_t kEstimateStream = 0xD04;

/// Whole seconds, at least one — fractional fault times would otherwise
/// litter the resource profile with sliver segments.
[[nodiscard]] Time round_delay(double seconds) noexcept {
  return std::max(1.0, std::round(seconds));
}

}  // namespace

std::string FaultConfig::validate() const {
  if (node_mtbf < 0) return "node MTBF must be >= 0 (0 disables node faults)";
  if (node_mtbf > 0 && node_mttr <= 0) {
    return "node repair time must be > 0 when node faults are enabled";
  }
  if (job_fail_p < 0 || job_fail_p > 1) {
    return "job failure probability must be in [0, 1]";
  }
  if (backoff_base <= 0) return "backoff base must be > 0";
  if (backoff_cap < backoff_base) {
    return "backoff cap must be >= the backoff base";
  }
  if (est_error_cv < 0) return "estimate error cv must be >= 0";
  return {};
}

std::string FaultConfig::describe() const {
  if (!active() && est_error_cv <= 0) return "off";
  std::string out = "seed=" + std::to_string(seed);
  const auto num = [](double v) {
    std::string s = std::to_string(v);
    // Trim trailing zeros (and a bare trailing '.') from the fixed-notation
    // default so "0.010000" reads as "0.01" and "60.000000" as "60".
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
  };
  if (node_mtbf > 0) {
    out += " node_mtbf=" + num(node_mtbf) + "s mttr=" + num(node_mttr) + "s";
  }
  if (job_fail_p > 0) out += " job_fail_p=" + num(job_fail_p);
  if (active()) {
    out += " retries=" + std::to_string(max_retries);
    out += " backoff=" + num(backoff_base) + ".." + num(backoff_cap) + "s";
  }
  if (est_error_cv > 0) out += " est_cv=" + num(est_error_cv);
  return out;
}

FaultInjector::FaultInjector(const FaultConfig& config, std::uint32_t nodes)
    : config_(config),
      nodes_(nodes),
      node_rng_(util::derive_seed(config.seed, kNodeStream)) {
  DYNP_EXPECTS(nodes >= 1);
  DYNP_EXPECTS(config.validate().empty());
}

Time FaultInjector::next_failure_gap() {
  DYNP_EXPECTS(node_faults());
  return round_delay(util::Exponential(config_.node_mtbf).sample(node_rng_));
}

Time FaultInjector::repair_duration() {
  DYNP_EXPECTS(node_faults());
  return round_delay(util::Exponential(config_.node_mttr).sample(node_rng_));
}

JobFate FaultInjector::job_fate(JobId id, std::uint32_t attempt) const {
  JobFate fate;
  if (config_.job_fail_p <= 0) return fate;
  util::Xoshiro256 rng(util::derive_seed(config_.seed, kJobStream, id,
                                         attempt));
  fate.fails = rng.next_double() < config_.job_fail_p;
  // Die somewhere in the bulk of the run, away from the start/finish edges.
  fate.fraction = 0.05 + 0.9 * rng.next_double();
  return fate;
}

Time FaultInjector::failure_offset(JobId id, std::uint32_t attempt,
                                   Time actual_runtime) const {
  if (actual_runtime < 2) return -1;
  const JobFate fate = job_fate(id, attempt);
  if (!fate.fails) return -1;
  return std::clamp(std::round(fate.fraction * actual_runtime), 1.0,
                    actual_runtime - 1);
}

Time FaultInjector::backoff_delay(JobId id, std::uint32_t retry) const {
  DYNP_EXPECTS(retry >= 1);
  const double doublings =
      std::min(static_cast<double>(retry - 1), 60.0);  // 2^60 caps anyway
  const double delay = std::min(
      config_.backoff_base * std::exp2(doublings), config_.backoff_cap);
  util::Xoshiro256 rng(util::derive_seed(config_.seed, kBackoffStream, id,
                                         retry));
  const double jitter = 0.5 + rng.next_double();
  return round_delay(delay * jitter);
}

workload::JobSet perturb_estimates(const workload::JobSet& set, double cv,
                                   std::uint64_t seed) {
  DYNP_EXPECTS(cv >= 0);
  if (cv == 0) return set;
  const util::Lognormal factor = util::Lognormal::from_mean_cv(1.0, cv);
  std::vector<workload::Job> jobs = set.jobs();
  for (workload::Job& job : jobs) {
    util::Xoshiro256 rng(
        util::derive_seed(seed, kEstimateStream, job.id));
    const double perturbed =
        std::round(job.estimated_runtime * factor.sample(rng));
    job.estimated_runtime = std::max(perturbed, job.actual_runtime);
  }
  workload::Machine machine = set.machine();
  return workload::JobSet{std::move(machine), std::move(jobs)};
}

}  // namespace dynp::fault
