#pragma once

/// \file fault.hpp
/// Deterministic, seed-driven fault injection for the scheduler simulation:
/// node-down/node-up events, mid-run job failures, and PSBS-style
/// multiplicative run-time-estimate error. All fault decisions flow through
/// the single event calendar, so a faulty run stays single-clock and
/// replayable — the same seed and configuration reproduce the exact same
/// failure history, byte for byte, whatever the tuning thread count.
///
/// Randomness is split into independent derived streams (`util::derive_seed`)
/// so the draws cannot interleave differently between runs:
///
///  * the **node chain** (inter-failure gaps, repair durations) uses one
///    sequential generator consumed only from the single-threaded event loop,
///    in event order;
///  * **job fates** (does attempt k of job j die, and where in its run) and
///    **backoff jitter** use a fresh generator per (job, attempt), making
///    them order-independent — requeues and parallel tuning cannot shift
///    them;
///  * **estimate perturbation** draws one factor per job from a per-job
///    stream, applied to the workload before the simulation starts.
///
/// All delays and durations are rounded to whole seconds (minimum 1 s),
/// matching the integral-time convention of the shrinking-factor transform.

#include <array>
#include <cstdint>
#include <string>

#include "util/rng.hpp"
#include "workload/job.hpp"

namespace dynp::fault {

/// Configuration of the fault model. Default-constructed = everything off.
struct FaultConfig {
  /// Master seed; every fault stream derives from it.
  std::uint64_t seed = 1;

  /// Mean time between node failures in seconds (exponential); 0 disables
  /// node faults. Failures are machine-wide single-node outages: one node
  /// goes down, stays down for an exponential repair time, then returns.
  double node_mtbf = 0;
  /// Mean node repair time in seconds (exponential).
  double node_mttr = 3600;

  /// Probability that one execution attempt of a job dies mid-run (at a
  /// uniformly sampled fraction of its actual run time); 0 disables job
  /// failures. Independent per (job, attempt).
  double job_fail_p = 0;

  /// Failed jobs are requeued up to this many times before being dropped.
  std::uint32_t max_retries = 3;
  /// Base requeue backoff in seconds; doubles per retry.
  double backoff_base = 60;
  /// Backoff growth cap in seconds (applied before the deterministic
  /// +/-50% per-attempt jitter).
  double backoff_cap = 3600;

  /// Coefficient of variation of the multiplicative lognormal estimate
  /// error (PSBS-style); 0 leaves estimates untouched. Not consumed by the
  /// simulation itself — apply `perturb_estimates` to the workload first.
  double est_error_cv = 0;

  /// True when the config injects any runtime fault (node or job failures).
  [[nodiscard]] bool active() const noexcept {
    return node_mtbf > 0 || job_fail_p > 0;
  }

  /// Returns an empty string when the configuration is sane, else a
  /// one-line description of the first problem found.
  [[nodiscard]] std::string validate() const;

  /// One-line human-readable summary of the active fault model, for trace
  /// metadata and bench-report run stamps — e.g.
  /// `"seed=7 node_mtbf=86400s mttr=3600s job_fail_p=0.01 retries=3
  /// backoff=60..3600s est_cv=0.5"`, or `"off"` when nothing is enabled.
  /// Pure formatting; a deterministic function of the fields.
  [[nodiscard]] std::string describe() const;
};

/// What the fault model decided for one execution attempt of one job.
struct JobFate {
  bool fails = false;    ///< the attempt dies mid-run
  double fraction = 0;   ///< at which fraction of the actual run time
};

/// Samples fault events for one simulation run. Construction is cheap; one
/// injector per run (the node chain carries sequential generator state).
class FaultInjector {
 public:
  /// \param config validated fault configuration
  /// \param nodes  machine size (node faults need at least 2 nodes)
  FaultInjector(const FaultConfig& config, std::uint32_t nodes);

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// Node faults are armed: an MTBF is configured and the machine can lose
  /// a node without losing all capacity.
  [[nodiscard]] bool node_faults() const noexcept {
    return config_.node_mtbf > 0 && nodes_ >= 2;
  }

  /// At most half the machine may be down at once; further failures are
  /// skipped (the chain keeps ticking) so jobs can always make progress.
  [[nodiscard]] std::uint32_t max_concurrent_down() const noexcept {
    return nodes_ / 2;
  }

  /// Next inter-failure gap in whole seconds (>= 1). Sequential: call only
  /// from the event loop, in event order.
  [[nodiscard]] Time next_failure_gap();

  /// Repair duration of one outage in whole seconds (>= 1). Sequential,
  /// like `next_failure_gap`.
  [[nodiscard]] Time repair_duration();

  /// Fate of execution attempt \p attempt (0-based) of job \p id. Pure in
  /// (id, attempt): independent of call order.
  [[nodiscard]] JobFate job_fate(JobId id, std::uint32_t attempt) const;

  /// Offset after the attempt's start at which it dies, in whole seconds
  /// within [1, actual_runtime - 1] — or a negative value when the attempt
  /// runs to completion (also for sub-2-second jobs, which are too short to
  /// die mid-run). Pure in (id, attempt).
  [[nodiscard]] Time failure_offset(JobId id, std::uint32_t attempt,
                                    Time actual_runtime) const;

  /// Requeue delay before retry \p retry (1-based) of job \p id: capped
  /// exponential backoff with deterministic per-(job, retry) jitter in
  /// [0.5, 1.5), whole seconds (>= 1). Pure in (id, retry).
  [[nodiscard]] Time backoff_delay(JobId id, std::uint32_t retry) const;

  /// Raw state of the sequential node-chain stream — the injector's only
  /// mutable state (job fates, failure offsets and backoff are pure in
  /// their arguments). Snapshotting this plus the pending calendar fully
  /// checkpoints the fault model.
  [[nodiscard]] std::array<std::uint64_t, 4> node_rng_state() const noexcept {
    return node_rng_.state();
  }

  /// Reinstates a node-chain state captured by `node_rng_state()`.
  void set_node_rng_state(const std::array<std::uint64_t, 4>& s) noexcept {
    node_rng_.set_state(s);
  }

 private:
  FaultConfig config_;
  std::uint32_t nodes_;
  util::Xoshiro256 node_rng_;  ///< sequential node-chain stream
};

/// Applies the PSBS-style estimate error: every job's estimate is multiplied
/// by an independent mean-1 lognormal factor with coefficient of variation
/// \p cv (drawn from a per-job stream of \p seed), rounded to whole seconds
/// and floored at the actual run time so the planning contract
/// `actual <= estimate` survives. cv = 0 returns the set unchanged.
[[nodiscard]] workload::JobSet perturb_estimates(const workload::JobSet& set,
                                                 double cv,
                                                 std::uint64_t seed);

}  // namespace dynp::fault
