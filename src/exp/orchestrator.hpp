#pragma once

/// \file orchestrator.hpp
/// Sweep-scale orchestration of the paper's experiment grid.
///
/// `SweepRunner::run` parallelises *within* one `(trace, factor, config)`
/// point: N ensemble sets fan out, then a hard barrier joins them before
/// the next point starts — so every point pays for its slowest set while
/// the other workers idle (the barrier-idle analogue of the backfilling
/// idle-width problem, replayed at the experiment layer). The
/// `SweepOrchestrator` instead flattens the whole grid into one task list
/// of `(trace, factor, config, set)` cells executed by a single
/// work-stealing pool: a long-tail cell no longer strands workers, they
/// steal cells of other points.
///
/// Determinism: cell results are slotted by `(point index, set index)` and
/// combined on the calling thread in point order, so the returned
/// `CombinedPoint`s are byte-identical to the serial `SweepRunner` path
/// regardless of completion order, thread count, or cache state.
///
/// Each worker owns a `SweepWorkspace`, so the per-cell scaled-job-set copy
/// and the scheduler's internal buffers are recycled instead of
/// re-allocated thousands of times, and the per-point `SimulationConfig`
/// clones are hoisted to one per grid config. Points already present in the
/// persistent `PointCache` are skipped entirely (see point_cache.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/point_cache.hpp"
#include "obs/obs.hpp"

namespace dynp::exp {

/// Execution knobs of a `SweepOrchestrator`.
struct OrchestratorOptions {
  /// Worker threads of the cell pool (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Persistent point-cache directory; empty disables caching.
  std::string cache_dir;
  /// Snapshot every N simulation events inside each cacheable cell
  /// (0 disables). Cells checkpoint into `<cache_dir>/ckpt/<cell hash>/`,
  /// resume from the newest valid snapshot when a previous sweep died
  /// mid-cell, and delete their checkpoint directory once the finished
  /// point reaches the cache — so a completed sweep leaves no snapshots
  /// behind. Requires a cache_dir; ignored without one (there is nowhere
  /// durable to put the snapshots, and nothing to resume into).
  std::uint64_t checkpoint_every = 0;
  /// Optional metrics registry: every simulation aggregates into it (as
  /// with `SweepRunner::run`), and the orchestrator adds the `cache.hit` /
  /// `cache.miss` / `pool.steals` counters plus the `sweep.cell_us`
  /// windowed series (per-cell wall time keyed by global cell ordinal,
  /// accumulated per worker and merged in worker-index order).
  obs::Registry* registry = nullptr;
};

/// Outcome counters of one `run_grid` call.
struct SweepStats {
  std::size_t points_total = 0;     ///< grid points requested
  std::size_t cache_hits = 0;       ///< points served from the cache
  std::size_t cache_misses = 0;     ///< points simulated (includes uncacheable)
  std::size_t cache_corrupt = 0;    ///< corrupt entries quarantined as misses
  std::size_t cells_simulated = 0;  ///< individual set simulations run
  std::size_t cells_resumed = 0;    ///< cells restored from a mid-run snapshot
  std::uint64_t steal_batches = 0;  ///< successful steal operations
  std::uint64_t stolen_tasks = 0;   ///< cells moved between workers
  double seconds = 0;               ///< wall time of the whole call
};

/// The combined grid: `points` holds trace-major, then factor, then config
/// order — index `(trace * factors + factor) * configs + config`.
struct SweepGrid {
  std::size_t traces = 0;
  std::size_t factors = 0;
  std::size_t configs = 0;
  std::vector<CombinedPoint> points;

  [[nodiscard]] std::size_t index(std::size_t trace, std::size_t factor,
                                  std::size_t config) const noexcept {
    return (trace * factors + factor) * configs + config;
  }
  [[nodiscard]] const CombinedPoint& at(std::size_t trace, std::size_t factor,
                                        std::size_t config) const {
    return points[index(trace, factor, config)];
  }
};

/// Pre-generates every trace's ensemble once, then executes experiment
/// grids over them (see the file comment). Construction is the expensive
/// part (ensemble generation); `run_grid` may be called repeatedly — e.g.
/// by an ablation sweeping different config lists over the same ensembles.
class SweepOrchestrator {
 public:
  SweepOrchestrator(std::vector<workload::TraceModel> models,
                    ExperimentScale scale, OrchestratorOptions options = {});

  [[nodiscard]] const std::vector<workload::TraceModel>& models()
      const noexcept {
    return models_;
  }
  [[nodiscard]] const ExperimentScale& scale() const noexcept {
    return scale_;
  }
  [[nodiscard]] const OrchestratorOptions& options() const noexcept {
    return options_;
  }

  /// Runs the full `models x factors x configs` grid and returns the
  /// combined points (byte-identical to per-point `SweepRunner::run` calls
  /// over the same ensembles, whatever the thread count or cache state).
  /// Counters of the call are available via `stats()` afterwards.
  [[nodiscard]] SweepGrid run_grid(
      const std::vector<double>& factors,
      const std::vector<core::SimulationConfig>& configs);

  /// Counters of the most recent `run_grid` call.
  [[nodiscard]] const SweepStats& stats() const noexcept { return stats_; }

  /// Checkpoint directory of one sweep cell: `<cache_dir>/ckpt/<hash>`,
  /// where the hash covers the point's cache key and the set index — the
  /// same addressing discipline as the point cache itself, so a changed
  /// config or trace can never resume from a stale snapshot (the cell
  /// fingerprint embedded in each snapshot header is a second, independent
  /// guard). Exposed for the resume tests.
  [[nodiscard]] static std::string cell_checkpoint_dir(
      const std::string& cache_dir, const std::string& key, std::size_t set);

 private:
  std::vector<workload::TraceModel> models_;
  ExperimentScale scale_;
  OrchestratorOptions options_;
  PointCache cache_;
  std::vector<std::vector<workload::JobSet>> ensembles_;  ///< per trace
  SweepStats stats_;
};

}  // namespace dynp::exp
