#include "exp/orchestrator.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include "ckpt/checkpoint.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"
#include "util/thread_pool.hpp"
#include "util/wallclock.hpp"

namespace dynp::exp {

namespace {

/// One not-yet-cached grid point: its slot in the output grid, its grid
/// coordinates, its cache key (empty when uncacheable), and one result slot
/// per ensemble set. Workers write disjoint `results[set]` slots; the
/// combining thread reads them only after `wait_idle`.
struct PendingPoint {
  std::size_t index = 0;
  std::size_t trace = 0;
  std::size_t factor = 0;
  std::size_t config = 0;
  std::string key;
  std::vector<core::SimulationResult> results;
};

}  // namespace

std::string SweepOrchestrator::cell_checkpoint_dir(const std::string& cache_dir,
                                                   const std::string& key,
                                                   std::size_t set) {
  std::string tagged = key;
  tagged += "|set=";
  tagged += std::to_string(set);
  char name[24];
  std::snprintf(name, sizeof name, "%016" PRIx64, util::fnv1a64(tagged));
  std::string dir = cache_dir;
  dir += "/ckpt/";
  dir += name;
  return dir;
}

SweepOrchestrator::SweepOrchestrator(std::vector<workload::TraceModel> models,
                                     ExperimentScale scale,
                                     OrchestratorOptions options)
    : models_(std::move(models)),
      scale_(scale),
      options_(std::move(options)),
      cache_(options_.cache_dir) {
  ensembles_.resize(models_.size());
  // Per-trace generation is independent and seed-derived, so building the
  // ensembles in parallel yields exactly what serial construction would.
  util::parallel_for(
      models_.size(),
      [&](std::size_t t) {
        ensembles_[t] = workload::generate_ensemble(models_[t], scale_.sets,
                                                    scale_.jobs, scale_.seed);
      },
      options_.threads);
}

SweepGrid SweepOrchestrator::run_grid(
    const std::vector<double>& factors,
    const std::vector<core::SimulationConfig>& configs) {
  DYNP_EXPECTS(!factors.empty());
  DYNP_EXPECTS(!configs.empty());
  const auto started = util::wall_now();
  SweepGrid grid;
  grid.traces = models_.size();
  grid.factors = factors.size();
  grid.configs = configs.size();
  grid.points.resize(grid.traces * grid.factors * grid.configs);
  stats_ = SweepStats{};
  stats_.points_total = grid.points.size();

  std::size_t threads = options_.threads != 0
                            ? options_.threads
                            : std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency());

  // Hoist the per-cell config clone: one wired copy per grid config carries
  // the registry and the nested-parallelism budget; the fault path inside
  // `simulate_sweep_cell` is the only remaining per-cell copy (it must
  // derive a per-set seed). With the cell pool already saturating every
  // core, per-event parallel tuning inside a simulation could only stack
  // pools on oversubscribed cores, so the budget pins it to the (bit-
  // identical) sequential path.
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<core::SimulationConfig> wired(configs);
  for (core::SimulationConfig& config : wired) {
    if (options_.registry != nullptr) {
      config.instruments.registry = options_.registry;
    }
    if (threads >= cores) config.thread_budget = 1;
  }

  // Cache probe (combining thread): hits fill their grid slot immediately,
  // misses become cell tasks.
  std::vector<PendingPoint> pending;
  for (std::size_t t = 0; t < grid.traces; ++t) {
    for (std::size_t f = 0; f < grid.factors; ++f) {
      for (std::size_t c = 0; c < grid.configs; ++c) {
        PendingPoint point;
        point.index = grid.index(t, f, c);
        point.trace = t;
        point.factor = f;
        point.config = c;
        if (cache_.enabled() && PointCache::cacheable(wired[c])) {
          point.key =
              PointCache::key_string(models_[t], scale_, factors[f], wired[c]);
          bool corrupt = false;
          if (std::optional<CombinedPoint> hit =
                  cache_.load(point.key, &corrupt)) {
            grid.points[point.index] = std::move(*hit);
            ++stats_.cache_hits;
            continue;
          }
          // A corrupt entry (torn write, truncation, stale schema) is a
          // miss that re-simulates and overwrites — never a sweep abort.
          if (corrupt) ++stats_.cache_corrupt;
        }
        ++stats_.cache_misses;
        point.results.resize(scale_.sets);
        pending.push_back(std::move(point));
      }
    }
  }

  if (!pending.empty()) {
    // One flat cell list over one work-stealing pool: no barrier between
    // points, so a long-tail set no longer strands the other workers — they
    // steal cells of later points. Each worker recycles its own workspace;
    // an external caller thread (not a pool worker) would get none.
    util::ThreadPool pool(threads);
    std::vector<SweepWorkspace> workspaces(pool.thread_count());
    // Per-worker cell-latency series: each worker observes into its own
    // slot (keyed by the deterministic global cell ordinal, valued by the
    // cell's wall time), and the combining thread merges the slots into the
    // shared registry in worker-index order after `wait_idle` — one fixed
    // merge order whatever the stealing assignment was. The trailing slot
    // catches the (workspace-less) external-caller case.
    const bool time_cells = options_.registry != nullptr;
    const obs::SeriesOptions cell_options{
        64.0, 64, obs::default_series_edges_us()};
    std::vector<std::unique_ptr<obs::WindowedSeries>> cell_series;
    if (time_cells) {
      cell_series.reserve(pool.thread_count() + 1);
      for (std::size_t w = 0; w <= pool.thread_count(); ++w) {
        cell_series.push_back(
            std::make_unique<obs::WindowedSeries>(cell_options));
      }
    }
    std::mutex error_mutex;
    std::exception_ptr first_error;
    for (PendingPoint& point : pending) {
      for (std::size_t s = 0; s < scale_.sets; ++s) {
        pool.submit([this, &pool, &workspaces, &wired, &factors, &point, s,
                     time_cells, &cell_series, &error_mutex, &first_error] {
          try {
            const std::size_t worker = pool.worker_index();
            SweepWorkspace* workspace = worker != util::ThreadPool::npos
                                            ? &workspaces[worker]
                                            : nullptr;
            const util::WallInstant cell_t0 =
                time_cells ? util::wall_now() : util::WallInstant{};
            // Mid-trace resume: cacheable cells snapshot as they go and
            // restore from whatever a killed previous sweep left behind.
            // Restore-then-run is byte-identical to straight-through, so
            // the combined point (and hence the cache entry) is unchanged.
            ckpt::CheckpointOptions cell_ckpt;
            if (options_.checkpoint_every != 0 && !point.key.empty()) {
              cell_ckpt.every = options_.checkpoint_every;
              cell_ckpt.dir = cell_checkpoint_dir(options_.cache_dir,
                                                  point.key, s);
              cell_ckpt.restore_from = cell_ckpt.dir;
            }
            point.results[s] = simulate_sweep_cell(
                ensembles_[point.trace][s], factors[point.factor],
                wired[point.config], s, workspace,
                cell_ckpt.armed() ? &cell_ckpt : nullptr);
            if (cell_ckpt.armed()) {
              // The cell finished; its snapshots have nothing left to
              // resume. Best-effort removal — a leftover directory only
              // costs disk until the next completed run of the same cell.
              std::error_code ec;
              std::filesystem::remove_all(cell_ckpt.dir, ec);
            }
            if (time_cells) {
              const std::size_t slot = worker != util::ThreadPool::npos
                                           ? worker
                                           : cell_series.size() - 1;
              cell_series[slot]->observe(
                  static_cast<double>(point.index * scale_.sets + s),
                  util::wall_micros_between(cell_t0, util::wall_now()));
            }
          } catch (...) {
            const std::lock_guard lock(error_mutex);
            if (first_error == nullptr) first_error = std::current_exception();
          }
        });
      }
    }
    pool.wait_idle();
    if (first_error != nullptr) std::rethrow_exception(first_error);
    stats_.cells_simulated = pending.size() * scale_.sets;
    const util::ThreadPool::StealStats steals = pool.steal_stats();
    stats_.steal_batches = steals.steal_batches;
    stats_.stolen_tasks = steals.stolen_tasks;

    // Deterministic combine: point order on this thread, each point over
    // its sets in ensemble order — byte-identical to the serial path.
    for (PendingPoint& point : pending) {
      for (const core::SimulationResult& result : point.results) {
        if (!result.recovery.restored_from.empty()) ++stats_.cells_resumed;
      }
      grid.points[point.index] = combine_results(point.results);
      if (!point.key.empty()) {
        cache_.store(point.key, grid.points[point.index]);
      }
    }

    if (time_cells) {
      obs::WindowedSeries& merged =
          options_.registry->series("sweep.cell_us", cell_options);
      for (const std::unique_ptr<obs::WindowedSeries>& s : cell_series) {
        merged.merge(*s);
      }
    }
  }

  if (options_.registry != nullptr) {
    obs::Registry& registry = *options_.registry;
    if (stats_.cache_hits != 0) {
      registry.counter("cache.hit").add(stats_.cache_hits);
    }
    if (stats_.cache_misses != 0) {
      registry.counter("cache.miss").add(stats_.cache_misses);
    }
    if (stats_.cache_corrupt != 0) {
      registry.counter("cache.corrupt").add(stats_.cache_corrupt);
    }
    if (stats_.stolen_tasks != 0) {
      registry.counter("pool.steals").add(stats_.stolen_tasks);
    }
  }
  stats_.seconds = util::wall_seconds_between(started, util::wall_now());
  return grid;
}

}  // namespace dynp::exp
