#pragma once

/// \file point_cache.hpp
/// Persistent content-addressed cache of combined sweep points. A full
/// paper reproduction is thousands of independent simulations; caching the
/// combined `(trace, scale, factor, config)` points makes re-runs of
/// finished points free, which turns interrupted full-paper sweeps into
/// resumable ones and incremental ablations into near-no-ops.
///
/// Addressing: each point's *key string* canonically serialises everything
/// its result depends on — the full trace model, the experiment scale, the
/// shrinking factor, the scheduler-config fingerprint (only fields that can
/// change results: execution knobs like `parallel_tuning`, `thread_budget`
/// or instrumentation sinks are excluded), the fault configuration (whose
/// master seed derives every per-set seed) and a schema version. Doubles
/// are printed with `%.17g`, which round-trips exactly, so a warm load is
/// byte-identical to the cold computation. The file name is the FNV-1a hash
/// of the key; the key itself is stored inside the entry and verified on
/// load, so a hash collision degrades to a miss, never to a wrong point.
///
/// Versioning: bump `kSchemaVersion` whenever simulation semantics, the
/// combining rule, the serialised fields, or the key layout change — stale
/// entries then miss (different hash) instead of corrupting results.

#include <optional>
#include <string>

#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "workload/models.hpp"

namespace dynp::exp {

/// See the file comment. Thread-safe for concurrent `load`s; `store` must
/// not race a `load`/`store` of the same key (the orchestrator only calls
/// it from its combining thread).
class PointCache {
 public:
  /// Schema tag mixed into every key; see the versioning rules above.
  /// v2: key gained the resource-profile implementation field (flat/tree),
  /// so points simulated with different profile backends never alias.
  static constexpr const char* kSchemaVersion = "dynp-point-v2";

  /// \p dir is the cache directory (created lazily on first store). An
  /// empty \p dir disables the cache: every load misses, stores are no-ops.
  explicit PointCache(std::string dir);

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// False when \p config's results are not a pure function of the key —
  /// today exactly the budgeted-tuning runs (`plan_budget_us > 0`), whose
  /// degradation windows depend on wall-clock time. Uncacheable points are
  /// always simulated.
  [[nodiscard]] static bool cacheable(const core::SimulationConfig& config);

  /// Canonical key string of one sweep point (see the file comment).
  /// Precondition: `cacheable(config)`.
  [[nodiscard]] static std::string key_string(
      const workload::TraceModel& model, const ExperimentScale& scale,
      double factor, const core::SimulationConfig& config);

  /// Entry file name for \p key: `fnv1a-<16 hex digits>.json`.
  [[nodiscard]] static std::string file_name(const std::string& key);

  /// Loads the point stored under \p key, or nullopt on miss. A present
  /// but unusable entry — torn write, truncation, schema mismatch, stored
  /// key mismatch — is quarantined (renamed to `<name>.corrupt`, replacing
  /// any earlier quarantine of the same entry) and reported through
  /// \p corrupt when non-null, so the caller can count it; the sweep then
  /// re-simulates and overwrites the slot. A missing file leaves \p corrupt
  /// untouched. Corruption is never fatal: the worst possible outcome of a
  /// damaged cache directory is a cold re-computation.
  [[nodiscard]] std::optional<CombinedPoint> load(
      const std::string& key, bool* corrupt = nullptr) const;

  /// Stores \p point under \p key (atomically: temp file + rename).
  /// Best-effort — an unwritable directory loses the entry, not the sweep.
  void store(const std::string& key, const CombinedPoint& point) const;

 private:
  std::string dir_;
};

}  // namespace dynp::exp
