#pragma once

/// \file export.hpp
/// CSV export of simulation results: per-job outcomes (a Gantt-ready table)
/// and the dynP policy-switch timeline. Useful for plotting schedules and
/// for diffing runs across schedulers.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "metrics/metrics.hpp"

namespace dynp::exp {

/// Writes one row per job: id, submit, start, end, width, actual runtime,
/// wait, response, slowdown, bounded slowdown. Sorted by job id.
void write_outcomes_csv(std::ostream& out,
                        const std::vector<metrics::JobOutcome>& outcomes);

/// Convenience file overload; returns false on I/O failure.
[[nodiscard]] bool write_outcomes_csv_file(
    const std::string& path, const std::vector<metrics::JobOutcome>& outcomes);

/// Writes the dynP policy timeline: one row per switch (time, from-index,
/// to-index, policy names resolved against \p pool_names).
void write_policy_timeline_csv(std::ostream& out,
                               const core::SimulationResult& result,
                               const std::vector<std::string>& pool_names);

/// Convenience file overload; returns false on I/O failure.
[[nodiscard]] bool write_policy_timeline_csv_file(
    const std::string& path, const core::SimulationResult& result,
    const std::vector<std::string>& pool_names);

}  // namespace dynp::exp
