#include "exp/point_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "rms/profile.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace dynp::exp {

namespace {

/// `%.17g` round-trips every finite double exactly, which is what makes a
/// warm cache load byte-identical to the cold computation.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_field(std::string& out, const char* name, double v) {
  out += name;
  out += '=';
  append_double(out, v);
  out += ';';
}

[[nodiscard]] const char* semantics_name(core::PlannerSemantics s) noexcept {
  switch (s) {
    case core::PlannerSemantics::kReplan: return "replan";
    case core::PlannerSemantics::kGuarantee: return "guarantee";
    case core::PlannerSemantics::kQueueingEasy: return "queueing-easy";
  }
  return "?";
}

/// Locates `"name":` and parses the number after it. The stored key string
/// contains no quotes, so a field tag can never match inside it.
[[nodiscard]] bool find_number(const std::string& text, const char* name,
                               double& out) {
  const std::string tag = std::string("\"") + name + "\":";
  const std::size_t pos = text.find(tag);
  if (pos == std::string::npos) return false;
  const char* begin = text.c_str() + pos + tag.size();
  char* end = nullptr;
  out = std::strtod(begin, &end);
  return end != begin;
}

[[nodiscard]] bool find_array(const std::string& text, const char* name,
                              std::vector<double>& out) {
  const std::string tag = std::string("\"") + name + "\":[";
  const std::size_t pos = text.find(tag);
  if (pos == std::string::npos) return false;
  const char* p = text.c_str() + pos + tag.size();
  out.clear();
  if (*p == ']') return true;
  for (;;) {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) return false;
    out.push_back(v);
    p = end;
    if (*p == ',') {
      ++p;
    } else {
      return *p == ']';
    }
  }
}

void append_json_double(std::string& out, double v) { append_double(out, v); }

void append_json_array(std::string& out, const char* name,
                       const std::vector<double>& values) {
  out += '"';
  out += name;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    append_json_double(out, values[i]);
  }
  out += ']';
}

void append_json_field(std::string& out, const char* name, double v) {
  out += '"';
  out += name;
  out += "\":";
  append_json_double(out, v);
}

}  // namespace

PointCache::PointCache(std::string dir) : dir_(std::move(dir)) {}

bool PointCache::cacheable(const core::SimulationConfig& config) {
  // Budgeted tuning degrades on wall-clock overruns, so the combined point
  // is not a pure function of the key — never cache it.
  return config.plan_budget_us <= 0;
}

std::string PointCache::key_string(const workload::TraceModel& model,
                                   const ExperimentScale& scale, double factor,
                                   const core::SimulationConfig& config) {
  DYNP_EXPECTS(cacheable(config));
  std::string key = kSchemaVersion;
  key += "|model=";
  key += model.name;
  key += ";nodes=";
  key += std::to_string(model.nodes);
  key += ";widths=";
  for (const auto& [value, weight] : model.width_values) {
    append_double(key, value);
    key += ':';
    append_double(key, weight);
    key += ',';
  }
  key += ';';
  append_field(key, "width_mean", model.width_mean);
  append_field(key, "est_min", model.est_min);
  append_field(key, "est_max", model.est_max);
  append_field(key, "est_mean", model.est_mean);
  append_field(key, "est_cv", model.est_cv);
  append_field(key, "p_est_max", model.p_est_max);
  append_field(key, "est_round", model.est_round);
  append_field(key, "p_full", model.p_full);
  append_field(key, "runtime_fraction", model.runtime_fraction);
  append_field(key, "act_max", model.act_max);
  append_field(key, "area_correlation", model.area_correlation);
  append_field(key, "ia_mean", model.ia_mean);
  append_field(key, "ia_burst_prob", model.ia_burst_prob);
  append_field(key, "ia_burst_mean", model.ia_burst_mean);
  append_field(key, "load_calibration", model.load_calibration);
  append_field(key, "diurnal_amplitude", model.diurnal_amplitude);
  append_field(key, "weekend_factor", model.weekend_factor);

  key += "|scale=";
  key += std::to_string(scale.sets);
  key += ',';
  key += std::to_string(scale.jobs);
  key += ',';
  key += std::to_string(scale.seed);

  key += "|factor=";
  append_double(key, factor);

  // The profile backend is a process-wide switch, not part of the config
  // struct; both implementations must agree bit-for-bit, but cached points
  // still record which one produced them so a backend regression can never
  // hide behind (or poison) entries written by the other.
  key += "|profile=";
  key += rms::ResourceProfile::default_impl() == rms::ProfileImpl::kTree
             ? "tree"
             : "flat";

  // Config fingerprint: only fields that can change the combined point.
  // Execution knobs (parallel_tuning, tuning_threads, thread_budget, audit)
  // and observation sinks (observer, instruments) are bit-identity-neutral
  // by contract and deliberately excluded, so instrumented, audited and
  // parallel runs share cache entries with bare ones. In static mode the
  // dynP fields are inert and likewise excluded.
  key += "|config=";
  key += semantics_name(config.semantics);
  key += ';';
  if (config.mode == core::SchedulerMode::kStatic) {
    key += "static=";
    key += policies::name(config.static_policy);
  } else {
    key += "dynp;pool=";
    for (const policies::PolicyKind kind : config.pool) {
      key += policies::name(kind);
      key += ',';
    }
    key += ";decider=";
    key += config.decider != nullptr ? config.decider->name() : "?";
    key += ";init=";
    key += std::to_string(config.initial_index);
    key += ";preview=";
    key += metrics::name(config.preview);
    key += ";tune=";
    key += config.tune_on_submit ? '1' : '0';
    key += ',';
    key += config.tune_on_finish ? '1' : '0';
  }

  // A present-but-inactive fault config takes exactly the fault-free code
  // paths (including skipping est_error_cv perturbation), so it keys as off.
  if (config.faults.has_value() && config.faults->active()) {
    const fault::FaultConfig& f = *config.faults;
    key += "|faults=seed:";
    key += std::to_string(f.seed);
    key += ';';
    append_field(key, "node_mtbf", f.node_mtbf);
    append_field(key, "node_mttr", f.node_mttr);
    append_field(key, "job_fail_p", f.job_fail_p);
    key += "max_retries=";
    key += std::to_string(f.max_retries);
    key += ';';
    append_field(key, "backoff_base", f.backoff_base);
    append_field(key, "backoff_cap", f.backoff_cap);
    append_field(key, "est_error_cv", f.est_error_cv);
  } else {
    key += "|faults=off";
  }

  // The entry format embeds the key as a JSON string verbatim; decider and
  // trace names contain no characters that would need escaping.
  DYNP_ENSURES(key.find('"') == std::string::npos &&
               key.find('\\') == std::string::npos &&
               key.find('\n') == std::string::npos);
  return key;
}

std::string PointCache::file_name(const std::string& key) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "fnv1a-%016" PRIx64 ".json",
                util::fnv1a64(key));
  return buf;
}

namespace {

/// Quarantines an unusable entry out of the lookup path: renamed to
/// `<name>.corrupt` (clobbering any earlier quarantine) so the next store
/// of the key publishes cleanly and repeated sweeps do not re-parse the
/// same damage. Removal is the fallback when rename fails (e.g. the
/// quarantine name is somehow a directory); both are best-effort.
void quarantine_entry(const std::filesystem::path& path, bool* corrupt) {
  std::error_code ec;
  std::filesystem::rename(path, path.string() + ".corrupt", ec);
  if (ec) std::filesystem::remove(path, ec);
  if (corrupt != nullptr) *corrupt = true;
}

}  // namespace

std::optional<CombinedPoint> PointCache::load(const std::string& key,
                                              bool* corrupt) const {
  if (!enabled()) return std::nullopt;
  const std::filesystem::path path =
      std::filesystem::path(dir_) / file_name(key);
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Verify the stored key verbatim: a hash collision, truncated entry or
  // foreign-schema file must read as a miss, never as a wrong point. (The
  // schema version is a key prefix, so this also rejects stale schemas.)
  const std::string key_tag = "\"key\":\"";
  const std::size_t key_pos = text.find(key_tag);
  if (key_pos == std::string::npos) {
    quarantine_entry(path, corrupt);
    return std::nullopt;
  }
  const std::size_t key_begin = key_pos + key_tag.size();
  const std::size_t key_end = text.find('"', key_begin);
  if (key_end == std::string::npos ||
      text.compare(key_begin, key_end - key_begin, key) != 0 ||
      key_end - key_begin != key.size()) {
    quarantine_entry(path, corrupt);
    return std::nullopt;
  }

  CombinedPoint point;
  const bool ok =
      find_number(text, "sldwa", point.sldwa) &&
      find_number(text, "utilization", point.utilization) &&
      find_number(text, "avg_bounded_slowdown", point.avg_bounded_slowdown) &&
      find_number(text, "avg_response", point.avg_response) &&
      find_number(text, "switches", point.switches) &&
      find_number(text, "decisions", point.decisions) &&
      find_number(text, "sldwa_stddev", point.sldwa_stddev) &&
      find_number(text, "util_stddev", point.util_stddev) &&
      find_number(text, "node_failures", point.node_failures) &&
      find_number(text, "job_failures", point.job_failures) &&
      find_number(text, "requeues", point.requeues) &&
      find_number(text, "jobs_dropped", point.jobs_dropped) &&
      find_array(text, "sldwa_per_set", point.sldwa_per_set) &&
      find_array(text, "util_per_set", point.util_per_set);
  if (!ok) {
    quarantine_entry(path, corrupt);
    return std::nullopt;
  }
  return point;
}

void PointCache::store(const std::string& key, const CombinedPoint& point) const {
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;

  std::string out = "{\"schema\":\"";
  out += kSchemaVersion;
  out += "\",\"key\":\"";
  out += key;
  out += "\",\"point\":{";
  append_json_field(out, "sldwa", point.sldwa);
  out += ',';
  append_json_field(out, "utilization", point.utilization);
  out += ',';
  append_json_field(out, "avg_bounded_slowdown", point.avg_bounded_slowdown);
  out += ',';
  append_json_field(out, "avg_response", point.avg_response);
  out += ',';
  append_json_field(out, "switches", point.switches);
  out += ',';
  append_json_field(out, "decisions", point.decisions);
  out += ',';
  append_json_field(out, "sldwa_stddev", point.sldwa_stddev);
  out += ',';
  append_json_field(out, "util_stddev", point.util_stddev);
  out += ',';
  append_json_field(out, "node_failures", point.node_failures);
  out += ',';
  append_json_field(out, "job_failures", point.job_failures);
  out += ',';
  append_json_field(out, "requeues", point.requeues);
  out += ',';
  append_json_field(out, "jobs_dropped", point.jobs_dropped);
  out += ',';
  append_json_array(out, "sldwa_per_set", point.sldwa_per_set);
  out += ',';
  append_json_array(out, "util_per_set", point.util_per_set);
  out += "}}\n";

  const std::filesystem::path path =
      std::filesystem::path(dir_) / file_name(key);
  const std::filesystem::path tmp =
      std::filesystem::path(dir_) / (file_name(key) + ".tmp");
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) return;
    file << out;
    if (!file) return;
  }
  // Atomic publish: concurrent readers see the old entry or the new one,
  // never a torn write.
  std::filesystem::rename(tmp, path, ec);
}

}  // namespace dynp::exp
