#pragma once

/// \file paper_reference.hpp
/// The published numbers of the paper (Tables 2-5), embedded so every bench
/// binary can print paper-vs-measured side by side. Values transcribed from
/// the IPPS 2004 text.

#include <array>
#include <cstddef>

namespace dynp::exp {

/// Index order of the four traces everywhere in this module.
inline constexpr std::array<const char*, 4> kTraceNames = {"CTC", "KTH",
                                                           "LANL", "SDSC"};

/// Table 2 — basic trace properties.
struct PaperTraceProperties {
  const char* name;
  long long jobs_in_trace;
  double width_min, width_avg, width_max;
  double machine_nodes;
  double est_min, est_avg, est_max;
  double act_min, act_avg, act_max;
  double overestimation;
  double ia_min, ia_avg, ia_max;
};

[[nodiscard]] const std::array<PaperTraceProperties, 4>& paper_table2();

/// Table 4 — static policies: SLDwA and utilisation per shrinking factor.
struct PaperStaticRow {
  double factor;
  double sldwa_fcfs, sldwa_sjf, sldwa_ljf;
  double util_fcfs, util_sjf, util_ljf;  // percent
};

struct PaperStaticTrace {
  const char* name;
  std::array<PaperStaticRow, 5> rows;  // factors 1.0 .. 0.6
};

[[nodiscard]] const std::array<PaperStaticTrace, 4>& paper_table4();

/// Table 5 — dynP deciders vs SJF per shrinking factor.
struct PaperDynpRow {
  double factor;
  double sldwa_sjf, sldwa_adv, sldwa_pref;
  double rel_adv, rel_pref;    // % improvement over SJF (positive = better)
  double util_sjf, util_adv, util_pref;  // percent
  double dutil_adv, dutil_pref;          // percentage-points vs SJF
};

struct PaperDynpTrace {
  const char* name;
  std::array<PaperDynpRow, 5> rows;
};

[[nodiscard]] const std::array<PaperDynpTrace, 4>& paper_table5();

/// Table 3 — per-trace averages of the Table 5 differences.
struct PaperCondensedRow {
  const char* name;
  double rel_adv, rel_pref;    // SLDwA improvement over SJF, %
  double dutil_adv, dutil_pref;  // utilisation gain over SJF, pp
};

[[nodiscard]] const std::array<PaperCondensedRow, 4>& paper_table3();

}  // namespace dynp::exp
