#pragma once

/// \file ascii_plot.hpp
/// Terminal visualisation of simulation results: a machine-utilisation
/// timeline and a dynP policy strip, rendered as fixed-width ASCII. Used by
/// the `dynp_sim` tool's `--plot` flag and the examples; handy for eyeballing
/// schedules without leaving the terminal.

#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "metrics/metrics.hpp"

namespace dynp::exp {

/// Options for the ASCII plots.
struct AsciiPlotOptions {
  std::size_t columns = 100;  ///< time buckets (one character each)
  std::size_t rows = 12;      ///< vertical resolution of the utilisation plot
};

/// Renders machine utilisation over time: each column is one time bucket,
/// bar height = mean busy-node fraction in that bucket. Returns a multi-line
/// string ending in a time axis.
[[nodiscard]] std::string render_utilization_ascii(
    const std::vector<metrics::JobOutcome>& outcomes, std::uint32_t nodes,
    const AsciiPlotOptions& options = {});

/// Renders the dynP policy strip: one character per time bucket showing the
/// dominant active policy ('F', 'S', 'L', or the first letter of extension
/// policies), derived from the switch timeline. Empty string when the run
/// had no dynP decisions.
[[nodiscard]] std::string render_policy_strip_ascii(
    const core::SimulationResult& result,
    const std::vector<policies::PolicyKind>& pool,
    const AsciiPlotOptions& options = {});

}  // namespace dynp::exp
