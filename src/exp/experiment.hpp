#pragma once

/// \file experiment.hpp
/// The evaluation harness: generates the paper's input ensembles (N job sets
/// per trace), sweeps shrinking factors and scheduler configurations, and
/// combines per-set results with the paper's trimming rule (drop min and
/// max, average the remaining sets).

#include <cstdint>
#include <vector>

#include "core/simulation.hpp"
#include "workload/models.hpp"

namespace dynp::exp {

/// The paper's workload sweep: shrinking factors 1.0 down to 0.6 in steps
/// of 0.1.
[[nodiscard]] std::vector<double> paper_shrinking_factors();

/// Scale of an experiment. The paper uses 10 sets x 10,000 jobs; the default
/// here is reduced so the whole suite runs in minutes on one core (pass
/// --full to the bench binaries for paper scale).
struct ExperimentScale {
  std::size_t sets = 5;
  std::size_t jobs = 1500;
  std::uint64_t seed = 42;

  [[nodiscard]] static ExperimentScale paper() { return {10, 10000, 42}; }
};

/// Results for one (trace, factor, scheduler) point, combined over the
/// ensemble with `trimmed_mean_drop_extremes`.
struct CombinedPoint {
  double sldwa = 0;
  double utilization = 0;      ///< in percent, as the paper reports it
  double avg_bounded_slowdown = 0;
  double avg_response = 0;
  double switches = 0;         ///< mean policy switches per run (dynP)
  double decisions = 0;        ///< mean decisions per run (dynP)
  double sldwa_stddev = 0;     ///< dispersion across the (untrimmed) sets
  double util_stddev = 0;      ///< dispersion across the (untrimmed) sets, pp
  /// Per-set raw values (before trimming), for dispersion analysis.
  std::vector<double> sldwa_per_set;
  std::vector<double> util_per_set;
  /// Mean fault/resilience counters per run (all zero in fault-free sweeps).
  double node_failures = 0;
  double job_failures = 0;
  double requeues = 0;
  double jobs_dropped = 0;
};

/// Pre-generates one trace's ensemble and runs sweep points against it.
/// Thread-safe for concurrent `run` calls (the ensemble is immutable after
/// construction).
class SweepRunner {
 public:
  SweepRunner(workload::TraceModel model, ExperimentScale scale);

  [[nodiscard]] const workload::TraceModel& model() const noexcept {
    return model_;
  }
  [[nodiscard]] const std::vector<workload::JobSet>& ensemble() const noexcept {
    return ensemble_;
  }

  /// Simulates every set at the given shrinking factor under \p config and
  /// combines the results. Sets are simulated in parallel over \p threads
  /// workers (0 = hardware concurrency). When \p registry is non-null every
  /// per-set simulation aggregates its metrics into it (the obs instruments
  /// are thread-safe, so concurrent sets simply sum); tracers/profilers are
  /// per-run sinks and not wired here.
  ///
  /// Fault-aware sweeps: when `config.faults` is active, each ensemble set
  /// runs with its own fault seed derived from the configured master seed
  /// and the set index, so the sets see independent (but reproducible)
  /// failure histories. A non-zero `est_error_cv` is applied to each set's
  /// scaled workload (same per-set derived seed) before simulation.
  [[nodiscard]] CombinedPoint run(double factor,
                                  const core::SimulationConfig& config,
                                  std::size_t threads = 0,
                                  obs::Registry* registry = nullptr) const;

 private:
  workload::TraceModel model_;
  ExperimentScale scale_;
  std::vector<workload::JobSet> ensemble_;
};

/// Reusable per-worker buffers for sweep cells: the scaled job-set storage
/// plus the simulation core's workspace. One instance per worker thread;
/// never shared between concurrent cells (see `core::SimWorkspace`).
struct SweepWorkspace {
  workload::JobSet scaled;
  core::SimWorkspace sim;
};

/// Combines per-set simulation results into one sweep point with the
/// paper's trimming rule (drop min and max, average the rest; §4.2).
/// `results[i]` must be ensemble set i's result. Shared by
/// `SweepRunner::run` and the sweep orchestrator, which keeps the two
/// paths byte-identical by construction.
[[nodiscard]] CombinedPoint combine_results(
    const std::vector<core::SimulationResult>& results);

/// Simulates ensemble set \p set_index (= \p base) scaled by \p factor
/// under the already-hoisted \p config — the one simulation of a sweep
/// cell. Fault-aware: when `config.faults` is active the run uses the
/// per-set seed `derive_seed(config.faults->seed, 0x5e7, set_index)` (and
/// applies `est_error_cv` estimate perturbation with it), exactly like
/// `SweepRunner::run` always has. A non-null \p workspace recycles the
/// scaled-set and scheduler buffers across calls; results are
/// bit-identical with and without one. A non-null \p checkpoint overlays
/// crash-consistent checkpointing onto the run (restore-then-snapshot; see
/// src/ckpt); checkpointed, resumed and plain cells all produce identical
/// bytes, which is what lets the orchestrator cache resumed points.
[[nodiscard]] core::SimulationResult simulate_sweep_cell(
    const workload::JobSet& base, double factor,
    const core::SimulationConfig& config, std::size_t set_index,
    SweepWorkspace* workspace = nullptr,
    const ckpt::CheckpointOptions* checkpoint = nullptr);

/// Builds the paper's SJF-preferred decider over the paper pool
/// (index 1 = SJF), with optional threshold percentage.
[[nodiscard]] std::shared_ptr<const core::Decider> sjf_preferred_decider(
    double threshold_pct = 0.0);

/// Builds a preferred decider for an arbitrary pool policy by name.
[[nodiscard]] std::shared_ptr<const core::Decider> preferred_decider_for(
    policies::PolicyKind policy, const std::vector<policies::PolicyKind>& pool,
    double threshold_pct = 0.0);

}  // namespace dynp::exp
