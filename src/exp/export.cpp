#include "exp/export.hpp"

#include <fstream>
#include <ostream>

#include "util/assert.hpp"

namespace dynp::exp {

void write_outcomes_csv(std::ostream& out,
                        const std::vector<metrics::JobOutcome>& outcomes) {
  out << "job,submit,start,end,width,actual_runtime,wait,response,"
         "slowdown,bounded_slowdown\n";
  for (const metrics::JobOutcome& o : outcomes) {
    out << o.id << ',' << o.submit << ',' << o.start << ',' << o.end << ','
        << o.width << ',' << o.actual_runtime << ',' << o.wait() << ','
        << o.response() << ',' << metrics::slowdown(o) << ',' << metrics::bounded_slowdown(o)
        << '\n';
  }
}

bool write_outcomes_csv_file(const std::string& path,
                             const std::vector<metrics::JobOutcome>& outcomes) {
  std::ofstream out(path);
  if (!out) return false;
  write_outcomes_csv(out, outcomes);
  return static_cast<bool>(out);
}

void write_policy_timeline_csv(std::ostream& out,
                               const core::SimulationResult& result,
                               const std::vector<std::string>& pool_names) {
  out << "time,from_index,to_index,from_policy,to_policy\n";
  for (const auto& sw : result.policy_timeline) {
    DYNP_EXPECTS(sw.from < pool_names.size() && sw.to < pool_names.size());
    out << sw.when << ',' << sw.from << ',' << sw.to << ','
        << pool_names[sw.from] << ',' << pool_names[sw.to] << '\n';
  }
}

bool write_policy_timeline_csv_file(const std::string& path,
                                    const core::SimulationResult& result,
                                    const std::vector<std::string>& pool_names) {
  std::ofstream out(path);
  if (!out) return false;
  write_policy_timeline_csv(out, result, pool_names);
  return static_cast<bool>(out);
}

}  // namespace dynp::exp
