#include "exp/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/fault.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace dynp::exp {

std::vector<double> paper_shrinking_factors() {
  return {1.0, 0.9, 0.8, 0.7, 0.6};
}

SweepRunner::SweepRunner(workload::TraceModel model, ExperimentScale scale)
    : model_(std::move(model)),
      scale_(scale),
      ensemble_(workload::generate_ensemble(model_, scale.sets, scale.jobs,
                                            scale.seed)) {}

core::SimulationResult simulate_sweep_cell(const workload::JobSet& base,
                                           double factor,
                                           const core::SimulationConfig& config,
                                           std::size_t set_index,
                                           SweepWorkspace* workspace,
                                           const ckpt::CheckpointOptions* checkpoint) {
  workload::JobSet local;
  workload::JobSet& scaled = workspace != nullptr ? workspace->scaled : local;
  scaled.assign_scaled_from(base, factor);

  const core::SimulationConfig* run_config = &config;
  core::SimulationConfig patched;
  if (config.faults.has_value() && config.faults->active()) {
    // Independent, reproducible failure history per ensemble set; the
    // per-cell config copy survives only on this path (the seed differs
    // per set), everything else shares the caller's hoisted config.
    const std::uint64_t set_seed =
        util::derive_seed(config.faults->seed, 0x5e7u, set_index);
    patched = config;
    patched.faults->seed = set_seed;
    if (config.faults->est_error_cv > 0) {
      scaled =
          fault::perturb_estimates(scaled, config.faults->est_error_cv,
                                   set_seed);
    }
    run_config = &patched;
  }
  if (checkpoint != nullptr) {
    if (run_config != &patched) {
      patched = *run_config;
      run_config = &patched;
    }
    patched.checkpoint = *checkpoint;
  }
  return workspace != nullptr
             ? core::simulate(scaled, *run_config, workspace->sim)
             : core::simulate(scaled, *run_config);
}

CombinedPoint SweepRunner::run(double factor,
                               const core::SimulationConfig& config,
                               std::size_t threads,
                               obs::Registry* registry) const {
  const std::size_t n = ensemble_.size();
  std::vector<core::SimulationResult> results(n);
  // One hoisted copy wires the registry; fault-free sweeps without one run
  // straight off the caller's config with no per-set cloning at all.
  const core::SimulationConfig* shared = &config;
  core::SimulationConfig wired;
  if (registry != nullptr) {
    wired = config;
    wired.instruments.registry = registry;
    shared = &wired;
  }
  util::parallel_for(
      n,
      [&](std::size_t i) {
        results[i] = simulate_sweep_cell(ensemble_[i], factor, *shared, i);
      },
      threads);
  return combine_results(results);
}

CombinedPoint combine_results(const std::vector<core::SimulationResult>& results) {
  CombinedPoint point;
  std::vector<double> bsld, resp, sw, dec;
  std::vector<double> nf, jf, rq, jd;
  for (const core::SimulationResult& r : results) {
    point.sldwa_per_set.push_back(r.summary.sldwa);
    point.util_per_set.push_back(r.summary.utilization * 100.0);
    bsld.push_back(r.summary.avg_bounded_slowdown);
    resp.push_back(r.summary.avg_response);
    sw.push_back(static_cast<double>(r.switches));
    dec.push_back(static_cast<double>(r.decisions));
    nf.push_back(static_cast<double>(r.faults.node_failures));
    jf.push_back(static_cast<double>(r.faults.job_failures));
    rq.push_back(static_cast<double>(r.faults.requeues));
    jd.push_back(static_cast<double>(r.faults.jobs_dropped));
  }
  point.sldwa = util::trimmed_mean_drop_extremes(point.sldwa_per_set);
  point.utilization = util::trimmed_mean_drop_extremes(point.util_per_set);
  util::OnlineStats sldwa_stats, util_stats;
  for (const double v : point.sldwa_per_set) sldwa_stats.add(v);
  for (const double v : point.util_per_set) util_stats.add(v);
  point.sldwa_stddev = sldwa_stats.stddev();
  point.util_stddev = util_stats.stddev();
  point.avg_bounded_slowdown = util::trimmed_mean_drop_extremes(bsld);
  point.avg_response = util::trimmed_mean_drop_extremes(resp);
  point.switches = util::mean(sw);
  point.decisions = util::mean(dec);
  point.node_failures = util::mean(nf);
  point.job_failures = util::mean(jf);
  point.requeues = util::mean(rq);
  point.jobs_dropped = util::mean(jd);
  return point;
}

std::shared_ptr<const core::Decider> sjf_preferred_decider(
    double threshold_pct) {
  return preferred_decider_for(policies::PolicyKind::kSjf,
                               policies::paper_pool(), threshold_pct);
}

std::shared_ptr<const core::Decider> preferred_decider_for(
    policies::PolicyKind policy, const std::vector<policies::PolicyKind>& pool,
    double threshold_pct) {
  const auto it = std::find(pool.begin(), pool.end(), policy);
  if (it == pool.end()) {
    throw std::invalid_argument("preferred policy is not in the pool");
  }
  const auto index = static_cast<std::size_t>(it - pool.begin());
  std::string label = std::string(policies::name(policy)) + "-preferred";
  if (threshold_pct > 0) {
    label += "(" + util::fmt_fixed(threshold_pct, 1) + "%)";
  }
  return core::make_preferred_decider(index, std::move(label), threshold_pct);
}

}  // namespace dynp::exp
