#include "exp/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace dynp::exp {
namespace {

/// Time range [t0, t1] covered by the outcomes (submission to last end).
[[nodiscard]] std::pair<Time, Time> time_range(
    const std::vector<metrics::JobOutcome>& outcomes) {
  Time t0 = outcomes.front().submit, t1 = outcomes.front().end;
  for (const auto& o : outcomes) {
    t0 = std::min(t0, o.submit);
    t1 = std::max(t1, o.end);
  }
  return {t0, t1};
}

}  // namespace

std::string render_utilization_ascii(
    const std::vector<metrics::JobOutcome>& outcomes, std::uint32_t nodes,
    const AsciiPlotOptions& options) {
  DYNP_EXPECTS(nodes >= 1);
  DYNP_EXPECTS(options.columns >= 2 && options.rows >= 2);
  if (outcomes.empty()) return "(no jobs)\n";

  const auto [t0, t1] = time_range(outcomes);
  const double span = std::max(1.0, t1 - t0);
  const double bucket = span / static_cast<double>(options.columns);

  // Mean busy node-seconds per bucket.
  std::vector<double> busy(options.columns, 0.0);
  for (const auto& o : outcomes) {
    const double lo = o.start, hi = o.end;
    auto first = static_cast<std::size_t>((lo - t0) / bucket);
    auto last = static_cast<std::size_t>((hi - t0) / bucket);
    first = std::min(first, options.columns - 1);
    last = std::min(last, options.columns - 1);
    for (std::size_t b = first; b <= last; ++b) {
      const double b_lo = t0 + static_cast<double>(b) * bucket;
      const double b_hi = b_lo + bucket;
      const double overlap = std::min(hi, b_hi) - std::max(lo, b_lo);
      if (overlap > 0) busy[b] += overlap * o.width;
    }
  }

  std::ostringstream out;
  for (std::size_t row = 0; row < options.rows; ++row) {
    const double level =
        static_cast<double>(options.rows - row) /
        static_cast<double>(options.rows);
    // Y-axis label on the top, middle and bottom rows.
    if (row == 0 || row == options.rows / 2 || row + 1 == options.rows) {
      char label[8];
      std::snprintf(label, sizeof label, "%3.0f%%|", level * 100);
      out << label;
    } else {
      out << "    |";
    }
    for (std::size_t b = 0; b < options.columns; ++b) {
      const double util = busy[b] / (bucket * nodes);
      out << (util + 1e-12 >= level ? '#' : ' ');
    }
    out << '\n';
  }
  out << "    +" << std::string(options.columns, '-') << '\n';
  std::ostringstream axis;
  axis << "     t=" << static_cast<long long>(t0);
  const std::string end_label =
      "t=" + std::to_string(static_cast<long long>(t1));
  std::string line = axis.str();
  const std::size_t total = options.columns + 5;
  if (line.size() + end_label.size() + 1 < total) {
    line += std::string(total - line.size() - end_label.size(), ' ');
    line += end_label;
  }
  out << line << '\n';
  return out.str();
}

std::string render_policy_strip_ascii(
    const core::SimulationResult& result,
    const std::vector<policies::PolicyKind>& pool,
    const AsciiPlotOptions& options) {
  if (result.decisions == 0 || result.outcomes.empty() || pool.empty()) {
    return {};
  }
  const auto [t0, t1] = time_range(result.outcomes);
  const double span = std::max(1.0, t1 - t0);
  const double bucket = span / static_cast<double>(options.columns);

  std::ostringstream out;
  out << "pol |";
  std::size_t switch_index = 0;
  std::size_t active = 0;  // dynP starts at pool index initial (0 by default)
  for (std::size_t b = 0; b < options.columns; ++b) {
    const double b_end = t0 + static_cast<double>(b + 1) * bucket;
    while (switch_index < result.policy_timeline.size() &&
           result.policy_timeline[switch_index].when <= b_end) {
      active = result.policy_timeline[switch_index].to;
      ++switch_index;
    }
    out << policies::name(pool[std::min(active, pool.size() - 1)])[0];
  }
  out << "\n";
  return out.str();
}

}  // namespace dynp::exp
