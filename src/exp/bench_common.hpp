#pragma once

/// \file bench_common.hpp
/// Shared command-line handling for the table/figure bench binaries: every
/// binary accepts the same scale options (--sets, --jobs, --seed, --full,
/// --quick, --threads, --trace, --csv-dir, --cache-dir) so runs are
/// comparable, plus the shared `run_bench_grid` entry point that executes a
/// whole `traces x factors x configs` grid through the `SweepOrchestrator`
/// (work-stealing cell pool, persistent point cache).

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/orchestrator.hpp"
#include "util/cli.hpp"
#include "workload/models.hpp"

namespace dynp::exp {

/// Parsed common bench options.
struct BenchOptions {
  ExperimentScale scale;
  std::size_t threads = 0;            ///< 0 = hardware concurrency
  std::vector<workload::TraceModel> traces;  ///< selected trace models
  std::string csv_dir;                ///< empty = no CSV output
  std::string cache_dir;              ///< empty = point cache disabled
};

/// Registers the common options on \p cli.
inline void add_bench_options(util::CliParser& cli) {
  cli.add_option("sets", "5", "job sets per trace (paper: 10)");
  cli.add_option("jobs", "1500", "jobs per set (paper: 10000)");
  cli.add_option("seed", "42", "master random seed");
  cli.add_option("threads", "0", "worker threads (0 = hardware concurrency)");
  cli.add_option("trace", "all", "trace to run: CTC, KTH, LANL, SDSC or all");
  cli.add_option("csv-dir", "", "directory for figure CSV series (optional)");
  cli.add_option("cache-dir", "",
                 "persistent point-cache directory: finished sweep points "
                 "are reused across runs (optional)");
  cli.add_flag("full", "paper scale: 10 sets x 10000 jobs (slow)");
  cli.add_flag("quick", "smoke-test scale: 3 sets x 400 jobs");
}

/// Extracts `BenchOptions` after `cli.parse` succeeded. Returns nullopt on
/// an invalid trace name (message already printed).
inline std::optional<BenchOptions> read_bench_options(
    const util::CliParser& cli) {
  BenchOptions opt;
  opt.scale.sets = static_cast<std::size_t>(cli.get_int("sets"));
  opt.scale.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
  opt.scale.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  if (cli.get_flag("full")) opt.scale = ExperimentScale::paper();
  if (cli.get_flag("quick")) opt.scale = ExperimentScale{3, 400, opt.scale.seed};
  opt.threads = static_cast<std::size_t>(cli.get_int("threads"));
  opt.csv_dir = cli.get("csv-dir");
  opt.cache_dir = cli.get("cache-dir");

  const std::string trace = cli.get("trace");
  if (trace == "all" || trace == "ALL") {
    opt.traces = workload::paper_models();
  } else {
    try {
      opt.traces = {workload::model_by_name(trace)};
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return std::nullopt;
    }
  }
  return opt;
}

/// Runs the whole `opt.traces x factors x configs` grid through the
/// `SweepOrchestrator` and returns it. The points are byte-identical to
/// per-point `SweepRunner::run` calls, but the grid's cells share one
/// work-stealing pool (no per-point barrier) and, with `--cache-dir`,
/// finished points are served from the persistent cache. A one-line sweep
/// summary goes to stderr so table output on stdout stays clean.
inline SweepGrid run_bench_grid(
    const BenchOptions& opt, const std::vector<double>& factors,
    const std::vector<core::SimulationConfig>& configs) {
  OrchestratorOptions options;
  options.threads = opt.threads;
  options.cache_dir = opt.cache_dir;
  SweepOrchestrator orchestrator(opt.traces, opt.scale, std::move(options));
  SweepGrid grid = orchestrator.run_grid(factors, configs);
  const SweepStats& s = orchestrator.stats();
  std::fprintf(stderr,
               "[sweep] %zu points (%zu cached, %zu simulated as %zu cells) "
               "in %.2fs, %.1f cells/s, %llu stolen cells\n",
               s.points_total, s.cache_hits, s.cache_misses,
               s.cells_simulated, s.seconds,
               s.seconds > 0 ? static_cast<double>(s.cells_simulated) /
                                   s.seconds
                             : 0.0,
               static_cast<unsigned long long>(s.stolen_tasks));
  return grid;
}

}  // namespace dynp::exp
