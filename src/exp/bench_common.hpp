#pragma once

/// \file bench_common.hpp
/// Shared command-line handling for the table/figure bench binaries: every
/// binary accepts the same scale options (--sets, --jobs, --seed, --full,
/// --quick, --threads, --trace, --csv-dir) so runs are comparable.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "util/cli.hpp"
#include "workload/models.hpp"

namespace dynp::exp {

/// Parsed common bench options.
struct BenchOptions {
  ExperimentScale scale;
  std::size_t threads = 0;            ///< 0 = hardware concurrency
  std::vector<workload::TraceModel> traces;  ///< selected trace models
  std::string csv_dir;                ///< empty = no CSV output
};

/// Registers the common options on \p cli.
inline void add_bench_options(util::CliParser& cli) {
  cli.add_option("sets", "5", "job sets per trace (paper: 10)");
  cli.add_option("jobs", "1500", "jobs per set (paper: 10000)");
  cli.add_option("seed", "42", "master random seed");
  cli.add_option("threads", "0", "worker threads (0 = hardware concurrency)");
  cli.add_option("trace", "all", "trace to run: CTC, KTH, LANL, SDSC or all");
  cli.add_option("csv-dir", "", "directory for figure CSV series (optional)");
  cli.add_flag("full", "paper scale: 10 sets x 10000 jobs (slow)");
  cli.add_flag("quick", "smoke-test scale: 3 sets x 400 jobs");
}

/// Extracts `BenchOptions` after `cli.parse` succeeded. Returns nullopt on
/// an invalid trace name (message already printed).
inline std::optional<BenchOptions> read_bench_options(
    const util::CliParser& cli) {
  BenchOptions opt;
  opt.scale.sets = static_cast<std::size_t>(cli.get_int("sets"));
  opt.scale.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
  opt.scale.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  if (cli.get_flag("full")) opt.scale = ExperimentScale::paper();
  if (cli.get_flag("quick")) opt.scale = ExperimentScale{3, 400, opt.scale.seed};
  opt.threads = static_cast<std::size_t>(cli.get_int("threads"));
  opt.csv_dir = cli.get("csv-dir");

  const std::string trace = cli.get("trace");
  if (trace == "all" || trace == "ALL") {
    opt.traces = workload::paper_models();
  } else {
    try {
      opt.traces = {workload::model_by_name(trace)};
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return std::nullopt;
    }
  }
  return opt;
}

}  // namespace dynp::exp
