#pragma once

/// \file profiler.hpp
/// The phase profiler: RAII scoped timers over the named phases of the dynP
/// pipeline, feeding per-phase latency histograms in a `Registry` and
/// (optionally) spans into a `Tracer`. Scopes are cheap — two
/// `steady_clock` reads plus one lock-free histogram update — and free when
/// the profiler pointer is null, so the hot paths carry a single branch per
/// phase when profiling is off at runtime. Building with `-DDYNP_OBS=OFF`
/// removes even that branch: the `DYNP_OBS_SCOPED` macro (and every other
/// instrumentation hook) compiles to nothing.

#include <array>
#include <chrono>
#include <cstdint>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace dynp::obs {

/// The instrumented phases of the scheduling pipeline.
enum class Phase : std::uint8_t {
  kEvent = 0,         ///< one whole scheduling event (core/simulation)
  kQueueInsert,       ///< per-policy sorted-queue insertion (policies)
  kBaseProfile,       ///< running-jobs base profile build (rms/planner)
  kPlanFull,          ///< from-scratch candidate plan (rms/planner)
  kPlanIncremental,   ///< incremental replan after a submit (rms/planner)
  kPreviewScore,      ///< preview-metric evaluation of one candidate
  kDecide,            ///< decider scoring (core/decider)
  kCompress,          ///< guarantee-semantics compression sweep
  kCommit,            ///< starting due jobs + queue removal
  kPoolTaskWait,      ///< thread-pool task queue wait (util/thread_pool)
  kPoolTaskRun,       ///< thread-pool task execution (util/thread_pool)
};
inline constexpr std::size_t kPhaseCount = 11;

/// Stable phase name ("plan_full", ...; used as `phase.<name>_us` histogram
/// names and as trace span names).
[[nodiscard]] const char* phase_name(Phase phase) noexcept;

/// Binds the phase histograms in \p registry (named `phase.<name>_us`,
/// microsecond latency buckets) and optionally mirrors every scope as a
/// trace span. `record`/`record_span` are thread-safe (worker tasks report
/// through the same profiler).
class PhaseProfiler {
 public:
  explicit PhaseProfiler(Registry& registry, Tracer* tracer = nullptr);

  /// Feeds \p us into the phase's histogram (no trace span — for externally
  /// timed observations such as the thread-pool task timer).
  void record(Phase phase, double us) noexcept;

  /// Feeds the duration into the histogram and, when a tracer is attached,
  /// emits the span.
  void record_span(Phase phase, std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end);

  /// RAII scope: times from construction to destruction. A null profiler
  /// makes the scope a no-op (no clock reads).
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, Phase phase) noexcept
        : profiler_(profiler),
          phase_(phase),
          start_(profiler != nullptr ? std::chrono::steady_clock::now()
                                     : std::chrono::steady_clock::time_point{}) {}

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    ~Scope() {
      if (profiler_ != nullptr) {
        profiler_->record_span(phase_, start_,
                               std::chrono::steady_clock::now());
      }
    }

   private:
    PhaseProfiler* profiler_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  std::array<Histogram*, kPhaseCount> histograms_{};
  Tracer* tracer_;
};

// Scoped-phase macro used at the instrumentation sites. With the library
// built normally it declares a `PhaseProfiler::Scope`; under -DDYNP_OBS=OFF
// (which defines DYNP_OBS_DISABLED globally) it expands to nothing, so the
// hot paths are bit-for-bit the uninstrumented code.
#define DYNP_OBS_CONCAT_IMPL(a, b) a##b
#define DYNP_OBS_CONCAT(a, b) DYNP_OBS_CONCAT_IMPL(a, b)
#if !defined(DYNP_OBS_DISABLED)
#define DYNP_OBS_SCOPED(profiler, phase)                          \
  const ::dynp::obs::PhaseProfiler::Scope DYNP_OBS_CONCAT(        \
      dynp_obs_scope_, __LINE__)((profiler), (phase))
#else
#define DYNP_OBS_SCOPED(profiler, phase) static_cast<void>(0)
#endif

}  // namespace dynp::obs
