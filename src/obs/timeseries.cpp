#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "obs/registry.hpp"
#include "util/assert.hpp"

namespace dynp::obs {

namespace {

[[nodiscard]] std::string fmt_double(double v) {
  if (v != v || v > 1e300 || v < -1e300) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

double bucket_quantile(const std::vector<double>& edges,
                       const std::vector<std::uint64_t>& buckets,
                       std::uint64_t count, double min, double max,
                       double q) noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double below = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (below + in_bucket >= target && in_bucket > 0) {
      if (i == buckets.size() - 1) return max;  // overflow bucket
      const double hi = edges[i];
      const double lo = i == 0 ? std::min(min, hi) : edges[i - 1];
      const double frac = (target - below) / in_bucket;
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    below += in_bucket;
  }
  return max;
}

WindowedSeries::WindowedSeries(SeriesOptions options)
    : options_(std::move(options)) {
  DYNP_EXPECTS(options_.window > 0);
  DYNP_EXPECTS(options_.capacity > 0);
  DYNP_EXPECTS(!options_.edges.empty());
  DYNP_EXPECTS(std::is_sorted(options_.edges.begin(), options_.edges.end()));
  DYNP_EXPECTS(std::adjacent_find(options_.edges.begin(),
                                  options_.edges.end()) ==
               options_.edges.end());
  total_.buckets.assign(options_.edges.size() + 1, 0);
}

WindowedSeries::Window* WindowedSeries::window_for_locked(std::int64_t index) {
  // Windows stay sorted by index; the common case appends at the back.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), index,
      [](const Window& w, std::int64_t i) { return w.index < i; });
  if (it != ring_.end() && it->index == index) return &*it;
  if (!ring_.empty() && index < ring_.front().index &&
      ring_.size() >= options_.capacity) {
    return nullptr;  // older than the retained ring
  }
  Window w;
  w.index = index;
  w.buckets.assign(options_.edges.size() + 1, 0);
  it = ring_.insert(it, std::move(w));
  if (ring_.size() > options_.capacity) {
    // Evict the oldest window; its observations live on in the totals.
    const std::size_t evicted = static_cast<std::size_t>(it - ring_.begin());
    ring_.erase(ring_.begin());
    if (evicted == 0) return nullptr;  // the new window itself was oldest
    it = ring_.begin() + static_cast<std::ptrdiff_t>(evicted - 1);
  }
  return &*it;
}

void WindowedSeries::fold_locked(std::int64_t index, double value,
                                 std::uint64_t count, double sum, double min,
                                 double max,
                                 const std::vector<std::uint64_t>* buckets) {
  auto fold = [&](Window& w) {
    if (w.count == 0) {
      w.min = min;
      w.max = max;
    } else {
      w.min = std::min(w.min, min);
      w.max = std::max(w.max, max);
    }
    w.count += count;
    w.sum += sum;
    if (buckets != nullptr) {
      for (std::size_t i = 0; i < w.buckets.size(); ++i) {
        w.buckets[i] += (*buckets)[i];
      }
    } else {
      const auto it = std::lower_bound(options_.edges.begin(),
                                       options_.edges.end(), value);
      w.buckets[static_cast<std::size_t>(it - options_.edges.begin())] +=
          count;
    }
  };
  fold(total_);
  if (Window* w = window_for_locked(index)) {
    fold(*w);
  } else {
    late_ += count;
  }
}

void WindowedSeries::observe(double key, double value) {
  const std::int64_t index =
      static_cast<std::int64_t>(std::floor(key / options_.window));
  const std::lock_guard lock(mutex_);
  fold_locked(index, value, 1, value, value, value, nullptr);
}

std::uint64_t WindowedSeries::late_count() const {
  const std::lock_guard lock(mutex_);
  return late_;
}

WindowAggregate WindowedSeries::aggregate_locked(const Window& w) const {
  WindowAggregate a;
  a.index = w.index;
  a.count = w.count;
  a.sum = w.sum;
  a.min = w.count == 0 ? 0.0 : w.min;
  a.max = w.count == 0 ? 0.0 : w.max;
  a.p50 = bucket_quantile(options_.edges, w.buckets, w.count, a.min, a.max,
                          0.50);
  a.p95 = bucket_quantile(options_.edges, w.buckets, w.count, a.min, a.max,
                          0.95);
  a.p99 = bucket_quantile(options_.edges, w.buckets, w.count, a.min, a.max,
                          0.99);
  a.p999 = bucket_quantile(options_.edges, w.buckets, w.count, a.min, a.max,
                           0.999);
  return a;
}

WindowAggregate WindowedSeries::total() const {
  const std::lock_guard lock(mutex_);
  WindowAggregate a = aggregate_locked(total_);
  a.index = 0;
  return a;
}

std::vector<WindowAggregate> WindowedSeries::windows() const {
  const std::lock_guard lock(mutex_);
  std::vector<WindowAggregate> out;
  out.reserve(ring_.size());
  for (const Window& w : ring_) out.push_back(aggregate_locked(w));
  return out;
}

void WindowedSeries::merge(const WindowedSeries& other) {
  DYNP_EXPECTS(&other != this);
  DYNP_EXPECTS(other.options() == options_);
  // Snapshot the source first so the two locks never nest (merge is called
  // with both series live; a fixed single-lock order avoids any deadlock
  // question).
  std::vector<Window> source;
  Window source_total;
  std::uint64_t source_late = 0;
  {
    const std::lock_guard lock(other.mutex_);
    source = other.ring_;
    source_total = other.total_;
    source_late = other.late_;
  }
  const std::lock_guard lock(mutex_);
  late_ += source_late;
  // Fold the foreign totals directly (they already include that series'
  // evicted windows), then the retained windows index by index. Window
  // folds must not re-touch the totals, so splice them in by hand.
  auto fold_into = [](Window& dst, const Window& src) {
    if (src.count == 0) return;
    if (dst.count == 0) {
      dst.min = src.min;
      dst.max = src.max;
    } else {
      dst.min = std::min(dst.min, src.min);
      dst.max = std::max(dst.max, src.max);
    }
    dst.count += src.count;
    dst.sum += src.sum;
    for (std::size_t i = 0; i < dst.buckets.size(); ++i) {
      dst.buckets[i] += src.buckets[i];
    }
  };
  fold_into(total_, source_total);
  for (const Window& src : source) {
    if (Window* dst = window_for_locked(src.index)) {
      fold_into(*dst, src);
    } else {
      late_ += src.count;
    }
  }
}

void WindowedSeries::write_json(std::ostream& out, int indent) const {
  const std::lock_guard lock(mutex_);
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  auto write_aggregate = [&](const WindowAggregate& a, bool with_index) {
    out << "{";
    if (with_index) out << "\"k\": " << a.index << ", ";
    out << "\"count\": " << a.count << ", \"sum\": " << fmt_double(a.sum)
        << ", \"min\": " << fmt_double(a.min)
        << ", \"max\": " << fmt_double(a.max)
        << ", \"p50\": " << fmt_double(a.p50)
        << ", \"p95\": " << fmt_double(a.p95)
        << ", \"p99\": " << fmt_double(a.p99)
        << ", \"p999\": " << fmt_double(a.p999) << "}";
  };
  out << pad << "{\n";
  out << pad << "  \"window\": " << fmt_double(options_.window)
      << ", \"capacity\": " << options_.capacity << ", \"late\": " << late_
      << ",\n";
  out << pad << "  \"total\": ";
  WindowAggregate t = aggregate_locked(total_);
  t.index = 0;
  write_aggregate(t, false);
  out << ",\n" << pad << "  \"windows\": [";
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << pad << "    ";
    write_aggregate(aggregate_locked(ring_[i]), true);
  }
  out << (ring_.empty() ? "" : "\n" + pad + "  ") << "]\n";
  out << pad << "}";
}

const std::vector<double>& default_series_edges_us() {
  return default_latency_edges_us();
}

}  // namespace dynp::obs
