#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <vector>

#include "util/assert.hpp"

namespace dynp::obs {

/// Live-tracer directory for the crash-safe flush: every tracer registers
/// here for its lifetime, and a `util/assert.hpp` failure observer flushes
/// them all before a contract violation is reported. Both the directory and
/// each tracer are taken with try-lock on the failure path — a tracer whose
/// lock is held by the failing thread is skipped rather than deadlocked on.
namespace {
std::mutex g_live_mutex;
std::vector<Tracer*> g_live_tracers;
}  // namespace

void flush_live_tracers_for_failure() noexcept {
  const std::unique_lock lock(g_live_mutex, std::try_to_lock);
  if (!lock.owns_lock()) return;
  for (Tracer* tracer : g_live_tracers) tracer->flush_for_failure();
}

namespace {

void register_live(Tracer* tracer) {
  const std::lock_guard lock(g_live_mutex);
  if (g_live_tracers.empty()) {
    // Process-lifetime observer; installing once is idempotent enough (the
    // previous observer, if any, is foreign and restored on last removal).
    set_failure_observer(&flush_live_tracers_for_failure);
  }
  g_live_tracers.push_back(tracer);
}

void unregister_live(Tracer* tracer) {
  const std::lock_guard lock(g_live_mutex);
  g_live_tracers.erase(
      std::remove(g_live_tracers.begin(), g_live_tracers.end(), tracer),
      g_live_tracers.end());
  if (g_live_tracers.empty()) set_failure_observer(nullptr);
}

}  // namespace

namespace {

void append_double(std::string& line, double v) {
  if (v != v || v > 1e300 || v < -1e300) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  line += buf;
}

void append_u64(std::string& line, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  line += buf;
}

void append_values(std::string& line, const std::vector<double>& values) {
  line += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) line += ", ";
    append_double(line, values[i]);
  }
  line += ']';
}

void append_decision_fields(std::string& line, const DecisionRecord& d) {
  line += "\"values\": ";
  append_values(line, d.values);
  line += ", \"old_index\": ";
  append_u64(line, d.old_index);
  line += ", \"chosen\": ";
  append_u64(line, d.chosen);
}

}  // namespace

const char* name(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kFinish: return "finish";
    case TraceEventKind::kJobFail: return "job_fail";
    case TraceEventKind::kNodeDown: return "node_down";
    case TraceEventKind::kNodeUp: return "node_up";
    case TraceEventKind::kSubmit: return "submit";
    case TraceEventKind::kRequeue: return "requeue";
  }
  return "unknown";
}

bool trace_format_by_name(const std::string& name, TraceFormat& out) noexcept {
  if (name == "jsonl") {
    out = TraceFormat::kJsonl;
    return true;
  }
  if (name == "chrome") {
    out = TraceFormat::kChrome;
    return true;
  }
  return false;
}

Tracer::Tracer(std::ostream& out, TraceFormat format)
    : out_(&out), format_(format), origin_(std::chrono::steady_clock::now()) {
  if (format_ == TraceFormat::kChrome) {
    // Header + process-name metadata. displayTimeUnit only affects the UI.
    (*out_) << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
            << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
               "\"args\": {\"name\": \"simulation (sim time as us)\"}},\n"
            << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
               "\"args\": {\"name\": \"scheduler phases (wall time)\"}},\n"
            << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 3, "
               "\"args\": {\"name\": \"decider log (ordinal time)\"}},\n"
            << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 4, "
               "\"args\": {\"name\": \"job lifecycles (sim time as us)\"}}";
    any_written_ = true;  // metadata already needs comma separation
  }
  buffer_.reserve(kFlushBytes + 512);
  register_live(this);
}

Tracer::~Tracer() {
  close();
  unregister_live(this);
}

std::unique_ptr<Tracer> Tracer::open_file(const std::string& path,
                                          TraceFormat format) {
  auto stream = std::make_unique<std::ofstream>(path);
  if (!*stream) return nullptr;
  // Construct against the stream, then hand over ownership.
  auto tracer = std::unique_ptr<Tracer>(new Tracer(*stream, format));
  tracer->owned_ = std::move(stream);
  return tracer;
}

void Tracer::write_line(const std::string& line) {
  DYNP_ASSERT(!closed_);
  if (format_ == TraceFormat::kChrome && any_written_) buffer_ += ",\n";
  buffer_ += line;
  if (format_ == TraceFormat::kJsonl) buffer_ += '\n';
  any_written_ = true;
  ++records_;
  if (buffer_.size() >= kFlushBytes) flush_locked();
}

void Tracer::flush_locked() {
  if (!buffer_.empty()) {
    (*out_) << buffer_;
    buffer_.clear();
  }
  out_->flush();
}

void Tracer::flush() {
  const std::lock_guard lock(mutex_);
  if (closed_) return;
  flush_locked();
}

void Tracer::flush_for_failure() noexcept {
  const std::unique_lock lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock() || closed_) return;
  flush_locked();
}

std::uint32_t Tracer::thread_tid() {
  // Caller holds mutex_.
  const auto [it, inserted] = tids_.try_emplace(
      std::this_thread::get_id(), static_cast<std::uint32_t>(tids_.size() + 1));
  static_cast<void>(inserted);
  return it->second;
}

void Tracer::event(const SchedEventRecord& r) {
  std::string line;
  line.reserve(256);
  if (format_ == TraceFormat::kJsonl) {
    line += "{\"type\": \"event\", \"seq\": ";
    append_u64(line, r.seq);
    line += ", \"t\": ";
    append_double(line, r.sim_time);
    line += ", \"kind\": \"";
    line += name(r.kind);
    line += '"';
    line += ", \"queue_depth\": ";
    append_u64(line, r.queue_depth);
    line += ", \"started\": ";
    append_u64(line, r.started);
    if (r.tuned) {
      line += ", ";
      append_decision_fields(line, r.decision);
      line += ", \"switched\": ";
      line += r.switched ? "true" : "false";
    }
    line += ", \"full_plans\": ";
    append_u64(line, r.full_plans);
    line += ", \"incremental_plans\": ";
    append_u64(line, r.incremental_plans);
    line += ", \"jobs_placed\": ";
    append_u64(line, r.jobs_placed);
    line += ", \"jobs_replayed\": ";
    append_u64(line, r.jobs_replayed);
    line += ", \"profile_segments\": ";
    append_u64(line, r.profile_segments);
    line += "}";
  } else {
    // Sim time in seconds -> trace microseconds, so one trace-ms = one
    // simulated millisecond.
    const double sim_us = r.sim_time * 1e6;
    line += "{\"name\": \"";
    line += name(r.kind);
    line += "\", \"ph\": \"i\", \"s\": \"p\", \"ts\": ";
    append_double(line, sim_us);
    line += ", \"pid\": 1, \"tid\": 1, \"args\": {\"seq\": ";
    append_u64(line, r.seq);
    line += ", \"queue_depth\": ";
    append_u64(line, r.queue_depth);
    line += ", \"started\": ";
    append_u64(line, r.started);
    if (r.tuned) {
      line += ", ";
      append_decision_fields(line, r.decision);
      line += ", \"switched\": ";
      line += r.switched ? "true" : "false";
    }
    line += ", \"full_plans\": ";
    append_u64(line, r.full_plans);
    line += ", \"incremental_plans\": ";
    append_u64(line, r.incremental_plans);
    line += ", \"jobs_placed\": ";
    append_u64(line, r.jobs_placed);
    line += ", \"jobs_replayed\": ";
    append_u64(line, r.jobs_replayed);
    line += ", \"profile_segments\": ";
    append_u64(line, r.profile_segments);
    line += "}},\n";
    // Companion counter sample: queue depth over sim time as a track.
    line += "{\"name\": \"queue_depth\", \"ph\": \"C\", \"ts\": ";
    append_double(line, sim_us);
    line += ", \"pid\": 1, \"args\": {\"jobs\": ";
    append_u64(line, r.queue_depth);
    line += "}}";
  }
  const std::lock_guard lock(mutex_);
  if (closed_) return;
  write_line(line);
}

void Tracer::fault(const FaultRecord& r) {
  std::string line;
  line.reserve(160);
  if (format_ == TraceFormat::kJsonl) {
    line += "{\"type\": \"fault\", \"seq\": ";
    append_u64(line, r.seq);
    line += ", \"t\": ";
    append_double(line, r.sim_time);
    line += ", \"what\": \"";
    line += r.what;
    line += '"';
    if (r.job != FaultRecord::kNoJob) {
      line += ", \"job\": ";
      append_u64(line, r.job);
      line += ", \"attempt\": ";
      append_u64(line, r.attempt);
    }
    line += ", \"down_nodes\": ";
    append_u64(line, r.down_nodes);
    if (r.delay > 0) {
      line += ", \"delay\": ";
      append_double(line, r.delay);
    }
    line += "}";
  } else {
    // Instant event on the simulation-time track, like scheduling events.
    line += "{\"name\": \"fault:";
    line += r.what;
    line += "\", \"ph\": \"i\", \"s\": \"p\", \"ts\": ";
    append_double(line, r.sim_time * 1e6);
    line += ", \"pid\": 1, \"tid\": 1, \"args\": {\"seq\": ";
    append_u64(line, r.seq);
    if (r.job != FaultRecord::kNoJob) {
      line += ", \"job\": ";
      append_u64(line, r.job);
      line += ", \"attempt\": ";
      append_u64(line, r.attempt);
    }
    line += ", \"down_nodes\": ";
    append_u64(line, r.down_nodes);
    line += "}}";
  }
  const std::lock_guard lock(mutex_);
  if (closed_) return;
  write_line(line);
}

void Tracer::decision(const DecisionRecord& r) {
  std::string line;
  line.reserve(128);
  const std::lock_guard lock(mutex_);
  if (closed_) return;
  const std::uint64_t seq = ++decision_seq_;
  if (format_ == TraceFormat::kJsonl) {
    line += "{\"type\": \"decision\", \"seq\": ";
    append_u64(line, seq);
    line += ", ";
    append_decision_fields(line, r);
    line += "}";
  } else {
    line += "{\"name\": \"decision\", \"ph\": \"i\", \"s\": \"p\", \"ts\": ";
    append_u64(line, seq);
    line += ", \"pid\": 3, \"tid\": 1, \"args\": {";
    append_decision_fields(line, r);
    line += "}}";
  }
  write_line(line);
}

void Tracer::span(const char* name,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
  const double ts_us =
      std::chrono::duration<double, std::micro>(start - origin_).count();
  const double dur_us = std::chrono::duration<double, std::micro>(end - start)
                            .count();
  std::string line;
  line.reserve(128);
  const std::lock_guard lock(mutex_);
  if (closed_) return;
  const std::uint32_t tid = thread_tid();
  if (format_ == TraceFormat::kJsonl) {
    line += "{\"type\": \"span\", \"name\": \"";
    line += name;
    line += "\", \"ts_us\": ";
    append_double(line, ts_us);
    line += ", \"dur_us\": ";
    append_double(line, dur_us);
    line += ", \"tid\": ";
    append_u64(line, tid);
    line += "}";
  } else {
    line += "{\"name\": \"";
    line += name;
    line += "\", \"ph\": \"X\", \"ts\": ";
    append_double(line, ts_us);
    line += ", \"dur\": ";
    append_double(line, dur_us);
    line += ", \"pid\": 2, \"tid\": ";
    append_u64(line, tid);
    line += "}";
  }
  write_line(line);
}

void Tracer::raw_record(const std::string& json_object) {
  const std::lock_guard lock(mutex_);
  if (closed_) return;
  write_line(json_object);
}

void Tracer::close() {
  const std::lock_guard lock(mutex_);
  if (closed_) return;
  if (format_ == TraceFormat::kChrome) buffer_ += "\n]}\n";
  flush_locked();
  closed_ = true;
}

std::uint64_t Tracer::records() const {
  const std::lock_guard lock(mutex_);
  return records_;
}

}  // namespace dynp::obs
