#include "obs/provenance.hpp"

#include <cstdio>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace dynp::obs {

namespace {

void append_double(std::string& line, double v) {
  if (v != v || v > 1e300 || v < -1e300) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  line += buf;
}

void append_u64(std::string& line, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  line += buf;
}

}  // namespace

ProvenanceTracer::ProvenanceTracer(Tracer& sink) : sink_(&sink) {}

std::uint64_t ProvenanceTracer::job_trace_id(std::uint32_t job) noexcept {
  // FNV-1a over the four JobId bytes, seeded with a domain tag so job trace
  // ids never collide with the small span-id counter values.
  std::uint64_t h = 14695981039346656037ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (const char c : {'j', 'o', 'b', ':'}) {
    h = (h ^ static_cast<std::uint8_t>(c)) * kPrime;
  }
  for (int shift = 0; shift < 32; shift += 8) {
    h = (h ^ ((job >> shift) & 0xffu)) * kPrime;
  }
  return h;
}

void ProvenanceTracer::set_pool(std::vector<std::string> names) {
  pool_ = std::move(names);
}

ProvenanceTracer::JobState& ProvenanceTracer::state(std::uint32_t job) {
  if (job >= jobs_.size()) jobs_.resize(job + 1);
  return jobs_[job];
}

void ProvenanceTracer::emit(const Span& s) {
  std::string line;
  line.reserve(224);
  if (sink_->format() == TraceFormat::kJsonl) {
    line += "{\"type\": \"jspan\", \"name\": \"";
    line += s.name;
    line += "\", \"id\": ";
    append_u64(line, s.id);
    line += ", \"parent\": ";
    append_u64(line, s.parent);
    if (s.trace != 0) {
      line += ", \"trace\": ";
      append_u64(line, s.trace);
    }
    line += ", \"seq\": ";
    append_u64(line, s.seq);
    line += ", \"t0\": ";
    append_double(line, s.t0);
    line += ", \"t1\": ";
    append_double(line, s.t1);
    if (s.job != kNoJob) {
      line += ", \"job\": ";
      append_u64(line, s.job);
    }
    if (s.attempt >= 0) {
      line += ", \"attempt\": ";
      append_u64(line, static_cast<std::uint64_t>(s.attempt));
    }
    if (s.outcome != nullptr) {
      line += ", \"outcome\": \"";
      line += s.outcome;
      line += '"';
    }
    if (s.delay >= 0) {
      line += ", \"delay\": ";
      append_double(line, s.delay);
    }
    if (s.step >= 0) {
      line += ", \"step\": ";
      append_u64(line, static_cast<std::uint64_t>(s.step));
    }
    if (s.value != kNoValue) {
      line += ", \"value\": ";
      append_double(line, s.value);
    }
    line += "}";
  } else {
    // Chrome: complete events; job spans on pid 4 (one tid per job), pass
    // chains on the sim-time track pid 1, tid 2. Instants get dur 0.
    line += "{\"name\": \"";
    line += s.name;
    line += "\", \"ph\": \"X\", \"ts\": ";
    append_double(line, s.t0 * 1e6);
    line += ", \"dur\": ";
    append_double(line, (s.t1 - s.t0) * 1e6);
    if (s.job != kNoJob) {
      line += ", \"pid\": 4, \"tid\": ";
      append_u64(line, s.job);
    } else {
      line += ", \"pid\": 1, \"tid\": 2";
    }
    line += ", \"args\": {\"id\": ";
    append_u64(line, s.id);
    line += ", \"parent\": ";
    append_u64(line, s.parent);
    if (s.trace != 0) {
      line += ", \"trace\": ";
      append_u64(line, s.trace);
    }
    line += ", \"seq\": ";
    append_u64(line, s.seq);
    if (s.attempt >= 0) {
      line += ", \"attempt\": ";
      append_u64(line, static_cast<std::uint64_t>(s.attempt));
    }
    if (s.outcome != nullptr) {
      line += ", \"outcome\": \"";
      line += s.outcome;
      line += '"';
    }
    if (s.delay >= 0) {
      line += ", \"delay\": ";
      append_double(line, s.delay);
    }
    if (s.step >= 0) {
      line += ", \"step\": ";
      append_u64(line, static_cast<std::uint64_t>(s.step));
    }
    if (s.value != kNoValue) {
      line += ", \"value\": ";
      append_double(line, s.value);
    }
    line += "}}";
  }
  sink_->raw_record(line);
  ++spans_;
}

void ProvenanceTracer::emit_flow(std::uint64_t from, std::uint64_t to,
                                 std::uint32_t job, double t,
                                 std::uint64_t seq) {
  std::string line;
  line.reserve(160);
  if (sink_->format() == TraceFormat::kJsonl) {
    line += "{\"type\": \"jflow\", \"from\": ";
    append_u64(line, from);
    line += ", \"to\": ";
    append_u64(line, to);
    line += ", \"job\": ";
    append_u64(line, job);
    line += ", \"seq\": ";
    append_u64(line, seq);
    line += ", \"t\": ";
    append_double(line, t);
    line += "}";
    sink_->raw_record(line);
  } else {
    // One flow per started job, id'ed by the run span: s at the commit on
    // the sim-time track, f on the job's lifecycle row.
    line += "{\"name\": \"commit\", \"ph\": \"s\", \"id\": ";
    append_u64(line, to);
    line += ", \"ts\": ";
    append_double(line, t * 1e6);
    line += ", \"pid\": 1, \"tid\": 2, \"args\": {\"job\": ";
    append_u64(line, job);
    line += "}}";
    sink_->raw_record(line);
    line.clear();
    line += "{\"name\": \"commit\", \"ph\": \"f\", \"bp\": \"e\", \"id\": ";
    append_u64(line, to);
    line += ", \"ts\": ";
    append_double(line, t * 1e6);
    line += ", \"pid\": 4, \"tid\": ";
    append_u64(line, job);
    line += ", \"args\": {\"seq\": ";
    append_u64(line, seq);
    line += "}}";
    sink_->raw_record(line);
  }
}

void ProvenanceTracer::on_admit(std::uint32_t job, double now,
                                std::uint64_t seq, bool fresh) {
  JobState& s = state(job);
  if (fresh) {
    DYNP_ASSERT(s.root == 0);
    s.root = next_id();
    s.submit_time = now;
    Span submit;
    submit.trace = job_trace_id(job);
    submit.id = next_id();
    submit.parent = s.root;
    submit.name = "submit";
    submit.seq = seq;
    submit.t0 = submit.t1 = now;
    submit.job = job;
    emit(submit);
  } else if (s.backoff != 0) {
    Span backoff;
    backoff.trace = job_trace_id(job);
    backoff.id = s.backoff;
    backoff.parent = s.root;
    backoff.name = "backoff";
    backoff.seq = seq;
    backoff.t0 = s.backoff_t0;
    backoff.t1 = now;
    backoff.job = job;
    backoff.attempt = s.attempt;
    backoff.delay = s.backoff_delay;
    emit(backoff);
    s.backoff = 0;
    s.backoff_delay = -1;
  }
  Span insert;
  insert.trace = job_trace_id(job);
  insert.id = next_id();
  insert.parent = s.root;
  insert.name = "queue_insert";
  insert.seq = seq;
  insert.t0 = insert.t1 = now;
  insert.job = job;
  insert.attempt = s.attempt;
  emit(insert);
  s.wait = next_id();
  s.wait_t0 = now;
}

void ProvenanceTracer::on_start(std::uint32_t job, double now,
                                std::uint64_t seq) {
  JobState& s = state(job);
  DYNP_ASSERT(s.wait != 0);
  Span wait;
  wait.trace = job_trace_id(job);
  wait.id = s.wait;
  wait.parent = s.root;
  wait.name = "wait";
  wait.seq = seq;
  wait.t0 = s.wait_t0;
  wait.t1 = now;
  wait.job = job;
  wait.attempt = s.attempt;
  emit(wait);
  s.wait = 0;
  s.run = next_id();
  s.run_t0 = now;
  ++s.attempt;
}

void ProvenanceTracer::on_finish(std::uint32_t job, double now,
                                 std::uint64_t seq) {
  JobState& s = state(job);
  DYNP_ASSERT(s.run != 0);
  Span run;
  run.trace = job_trace_id(job);
  run.id = s.run;
  run.parent = s.root;
  run.name = "run";
  run.seq = seq;
  run.t0 = s.run_t0;
  run.t1 = now;
  run.job = job;
  run.attempt = s.attempt - 1;
  run.outcome = "finished";
  emit(run);
  s.run = 0;
  Span root;
  root.trace = job_trace_id(job);
  root.id = s.root;
  root.parent = 0;
  root.name = "job";
  root.seq = seq;
  root.t0 = s.submit_time;
  root.t1 = now;
  root.job = job;
  root.attempt = s.attempt;
  root.outcome = "finished";
  emit(root);
}

void ProvenanceTracer::on_attempt_failed(std::uint32_t job, double now,
                                         std::uint64_t seq,
                                         const char* what) {
  JobState& s = state(job);
  DYNP_ASSERT(s.run != 0);
  Span run;
  run.trace = job_trace_id(job);
  run.id = s.run;
  run.parent = s.root;
  run.name = "run";
  run.seq = seq;
  run.t0 = s.run_t0;
  run.t1 = now;
  run.job = job;
  run.attempt = s.attempt - 1;
  run.outcome = what;
  emit(run);
  s.run = 0;
}

void ProvenanceTracer::on_backoff(std::uint32_t job, double now,
                                  std::uint64_t seq, double delay) {
  static_cast<void>(seq);  // the span is emitted (with seq) when it closes
  JobState& s = state(job);
  s.backoff = next_id();
  s.backoff_t0 = now;
  s.backoff_delay = delay;
}

void ProvenanceTracer::on_drop(std::uint32_t job, double now,
                               std::uint64_t seq) {
  JobState& s = state(job);
  Span drop;
  drop.trace = job_trace_id(job);
  drop.id = next_id();
  drop.parent = s.root;
  drop.name = "drop";
  drop.seq = seq;
  drop.t0 = drop.t1 = now;
  drop.job = job;
  drop.attempt = s.attempt;
  emit(drop);
  Span root;
  root.trace = job_trace_id(job);
  root.id = s.root;
  root.parent = 0;
  root.name = "job";
  root.seq = seq;
  root.t0 = s.submit_time;
  root.t1 = now;
  root.job = job;
  root.attempt = s.attempt;
  root.outcome = "dropped";
  emit(root);
}

void ProvenanceTracer::on_pass(const PassRecord& r) {
  if (!r.tuned && r.started.empty()) return;
  Span pass;
  pass.id = next_id();
  pass.name = "pass";
  pass.seq = r.seq;
  pass.t0 = pass.t1 = r.sim_time;
  emit(pass);
  int step = 0;
  if (r.tuned) {
    Span base;
    base.id = next_id();
    base.parent = pass.id;
    base.name = "base_profile";
    base.seq = r.seq;
    base.t0 = base.t1 = r.sim_time;
    base.step = step++;
    emit(base);
    std::string plan_name;
    for (std::size_t i = 0; i < r.values.size(); ++i) {
      plan_name = "plan:";
      plan_name += i < pool_.size() ? pool_[i] : "policy" + std::to_string(i);
      Span plan;
      plan.id = next_id();
      plan.parent = pass.id;
      plan.name = plan_name.c_str();
      plan.seq = r.seq;
      plan.t0 = plan.t1 = r.sim_time;
      plan.step = step++;
      plan.value = r.values[i];
      emit(plan);
    }
    Span preview;
    preview.id = next_id();
    preview.parent = pass.id;
    preview.name = "preview_score";
    preview.seq = r.seq;
    preview.t0 = preview.t1 = r.sim_time;
    preview.step = step++;
    emit(preview);
    std::string decide_name = "decide:";
    decide_name +=
        r.chosen < pool_.size() ? pool_[r.chosen] : std::to_string(r.chosen);
    Span decide;
    decide.id = next_id();
    decide.parent = pass.id;
    decide.name = decide_name.c_str();
    decide.seq = r.seq;
    decide.t0 = decide.t1 = r.sim_time;
    decide.step = step++;
    decide.outcome = r.switched ? "switched" : "kept";
    emit(decide);
  }
  if (!r.started.empty()) {
    Span commit;
    commit.id = next_id();
    commit.parent = pass.id;
    commit.name = "commit";
    commit.seq = r.seq;
    commit.t0 = commit.t1 = r.sim_time;
    commit.step = step;
    emit(commit);
    for (const std::uint32_t job : r.started) {
      const JobState& s = state(job);
      // The run span opened at this event (`on_start` precedes `on_pass`).
      if (s.run != 0) {
        emit_flow(commit.id, s.run, job, r.sim_time, r.seq);
      }
    }
  }
}

}  // namespace dynp::obs
