#include "obs/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>

#include "util/assert.hpp"

namespace dynp::obs {

namespace {

/// Relaxed CAS accumulate: applies \p combine until the exchange sticks.
template <typename Combine>
void atomic_combine(std::atomic<double>& target, double v, Combine combine) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, combine(cur, v),
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

/// JSON-safe double formatting (shortest round-trippable-ish form; the
/// instruments never produce NaN/inf, but clamp defensively so a snapshot is
/// always parseable).
[[nodiscard]] std::string fmt_double(double v) {
  if (v != v || v > 1e300 || v < -1e300) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)), counts_(edges_.size() + 1) {
  DYNP_EXPECTS(!edges_.empty());
  DYNP_EXPECTS(std::is_sorted(edges_.begin(), edges_.end()));
  DYNP_EXPECTS(std::adjacent_find(edges_.begin(), edges_.end()) ==
               edges_.end());
}

void Histogram::observe(double v) noexcept {
  // First edge >= v is the owning bucket; past-the-end = overflow bucket.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - edges_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_combine(sum_, v, [](double a, double b) { return a + b; });
  atomic_combine(min_, v, [](double a, double b) { return std::min(a, b); });
  atomic_combine(max_, v, [](double a, double b) { return std::max(a, b); });
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double below = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(counts_[i].load(std::memory_order_relaxed));
    if (below + in_bucket >= target && in_bucket > 0) {
      if (i == counts_.size() - 1) return max();  // overflow bucket
      const double hi = edges_[i];
      const double lo = i == 0 ? std::min(min(), hi) : edges_[i - 1];
      const double frac = in_bucket > 0 ? (target - below) / in_bucket : 1.0;
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    below += in_bucket;
  }
  return max();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& upper_edges) {
  const std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(upper_edges);
  } else {
    DYNP_EXPECTS(slot->edges() == upper_edges);
  }
  return *slot;
}

WindowedSeries& Registry::series(const std::string& name,
                                 const SeriesOptions& options) {
  const std::lock_guard lock(mutex_);
  auto& slot = series_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedSeries>(options);
  } else {
    DYNP_EXPECTS(slot->options() == options);
  }
  return *slot;
}

const WindowedSeries* Registry::find_series(const std::string& name) const {
  const std::lock_guard lock(mutex_);
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

bool Registry::empty() const {
  const std::lock_guard lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty() &&
         series_.empty();
}

void Registry::write_json(std::ostream& out, int indent) const {
  const std::lock_guard lock(mutex_);
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');

  out << pad << "{\n";
  out << pad << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << pad << "    \"" << json_escape(name)
        << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n" + pad + "  ") << "},\n";

  out << pad << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << pad << "    \"" << json_escape(name)
        << "\": " << fmt_double(g->value());
    first = false;
  }
  out << (first ? "" : "\n" + pad + "  ") << "},\n";

  out << pad << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << pad << "    \"" << json_escape(name)
        << "\": {\n";
    out << pad << "      \"count\": " << h->count()
        << ", \"sum\": " << fmt_double(h->sum())
        << ", \"min\": " << fmt_double(h->min())
        << ", \"max\": " << fmt_double(h->max())
        << ", \"mean\": " << fmt_double(h->mean()) << ",\n";
    out << pad << "      \"p50\": " << fmt_double(h->quantile(0.50))
        << ", \"p90\": " << fmt_double(h->quantile(0.90))
        << ", \"p99\": " << fmt_double(h->quantile(0.99)) << ",\n";
    // Buckets as two parallel arrays (compact, and the overflow bucket needs
    // no "+inf" edge literal, which plain JSON lacks).
    out << pad << "      \"le\": [";
    for (std::size_t i = 0; i < h->edges().size(); ++i) {
      out << (i == 0 ? "" : ", ") << fmt_double(h->edges()[i]);
    }
    out << "],\n" << pad << "      \"bucket_counts\": [";
    for (std::size_t i = 0; i <= h->edges().size(); ++i) {
      out << (i == 0 ? "" : ", ") << h->bucket_count(i);
    }
    out << "]\n" << pad << "    }";
    first = false;
  }
  out << (first ? "" : "\n" + pad + "  ") << "}";

  // Emitted only when present, so series-free snapshots keep their exact
  // pre-series byte layout (the obs-off CSV/JSON diffs depend on it).
  if (!series_.empty()) {
    out << ",\n" << pad << "  \"series\": {";
    first = true;
    for (const auto& [name, s] : series_) {
      out << (first ? "\n" : ",\n") << pad << "    \"" << json_escape(name)
          << "\":\n";
      s->write_json(out, indent + 4);
      first = false;
    }
    out << "\n" << pad << "  }";
  }
  out << "\n" << pad << "}";
}

bool Registry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  out << "\n";
  return static_cast<bool>(out);
}

util::TextTable Registry::summary_table() const {
  const std::lock_guard lock(mutex_);
  util::TextTable t;
  t.set_header({"instrument", "count", "mean", "p50", "p90", "max"},
               {util::Align::kLeft});
  for (const auto& [name, h] : histograms_) {
    t.add_row({name, util::fmt_count(static_cast<long long>(h->count())),
               util::fmt_fixed(h->mean(), 2), util::fmt_fixed(h->quantile(0.5), 2),
               util::fmt_fixed(h->quantile(0.9), 2),
               util::fmt_fixed(h->max(), 2)});
  }
  if (!histograms_.empty() && !counters_.empty()) t.add_rule();
  for (const auto& [name, c] : counters_) {
    t.add_row({name, util::fmt_count(static_cast<long long>(c->value())), "",
               "", "", ""});
  }
  for (const auto& [name, g] : gauges_) {
    t.add_row({name, util::fmt_fixed(g->value(), 2), "", "", "", ""});
  }
  return t;
}

std::vector<double> exponential_edges(double first, double factor,
                                      std::size_t count) {
  DYNP_EXPECTS(first > 0 && factor > 1 && count > 0);
  std::vector<double> edges;
  edges.reserve(count);
  double edge = first;
  for (std::size_t i = 0; i < count; ++i) {
    edges.push_back(edge);
    edge *= factor;
  }
  return edges;
}

const std::vector<double>& default_latency_edges_us() {
  static const std::vector<double> edges = exponential_edges(1.0, 2.0, 23);
  return edges;
}

}  // namespace dynp::obs
