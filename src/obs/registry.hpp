#pragma once

/// \file registry.hpp
/// The metrics registry of the instrumentation layer: counters, gauges and
/// fixed-bucket histograms registered by name. Designed for hot paths shared
/// by the simulation loop and its thread-pool workers:
///
///  * registration (name lookup) is cold and mutex-guarded; callers resolve
///    a handle once and keep the reference — handles are stable for the
///    registry's lifetime;
///  * observation is lock-free: counters and bucket counts are relaxed
///    atomics, so workers aggregate into one registry without contention
///    beyond cache-line traffic, and totals are exact whatever the thread
///    interleaving.
///
/// Snapshots are emitted as JSON (for persistence next to run results; see
/// `tools/validate_trace.py` for the schema checker) and as a `util/table`
/// summary with bucket-interpolated quantiles (for terminal reporting).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "util/table.hpp"

namespace dynp::obs {

/// Monotone event count. `add` is wait-free; cross-thread totals are exact
/// (relaxed ordering only weakens visibility timing, not the sum).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. the current queue depth at dump time).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket \c i counts observations \c v with
/// `edges[i-1] < v <= edges[i]` (the first bucket has no lower bound); one
/// final overflow bucket counts `v > edges.back()`. Observation is lock-free
/// — a binary search over the (immutable) edges plus relaxed atomic updates
/// — and safe from any number of threads; `sum`/`min`/`max` use CAS loops so
/// no compare-exchange progress is ever lost.
class Histogram {
 public:
  /// \param upper_edges bucket upper bounds, strictly ascending, non-empty.
  explicit Histogram(std::vector<double> upper_edges);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& edges() const noexcept {
    return edges_;
  }
  /// Count in bucket \p i; `i == edges().size()` addresses the overflow
  /// bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty (so snapshots never contain infinities).
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// covering bucket; the overflow bucket reports `max()`. 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< edges + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// Infinity sentinels make concurrent first observations race-free; the
  /// accessors report 0 instead while the histogram is empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Name -> instrument directory. One registry aggregates a whole run (or a
/// whole experiment batch — instruments are thread-safe, so concurrent
/// simulations may share it; their observations sum).
class Registry {
 public:
  /// Returns the counter registered under \p name, creating it on first
  /// use. The reference stays valid for the registry's lifetime.
  [[nodiscard]] Counter& counter(const std::string& name);

  /// As `counter`, for gauges.
  [[nodiscard]] Gauge& gauge(const std::string& name);

  /// As `counter`, for histograms. Repeat registrations under one name must
  /// pass identical edges (the first registration wins; a mismatch is a
  /// contract violation).
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     const std::vector<double>& upper_edges);

  /// As `histogram`, for windowed time series: repeat registrations under
  /// one name must pass identical options. Concurrent simulations sharing
  /// the registry fold into one series (observation keys stay deterministic
  /// per run; the fold is commutative).
  [[nodiscard]] WindowedSeries& series(const std::string& name,
                                       const SeriesOptions& options);

  /// The series registered under \p name, or null when absent (read-side
  /// lookup for reporting tools).
  [[nodiscard]] const WindowedSeries* find_series(
      const std::string& name) const;

  [[nodiscard]] bool empty() const;

  /// Writes the full snapshot as a JSON object:
  /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max, mean, p50, p90, p99, le: [...], bucket_counts: [...]}},
  /// "series": {name: {window, capacity, late, total, windows}}}` (the
  /// `series` key appears only when at least one series is registered, so
  /// series-free snapshots keep their exact pre-series byte layout).
  /// Every line is prefixed with \p indent spaces so the object can be
  /// embedded in a larger handwritten JSON document (see tools/bench_report).
  void write_json(std::ostream& out, int indent = 0) const;

  /// Convenience file overload; returns false on I/O failure.
  [[nodiscard]] bool write_json_file(const std::string& path) const;

  /// Terminal summary: counters (name, value) and histograms (name, count,
  /// mean, p50, p90, max).
  [[nodiscard]] util::TextTable summary_table() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedSeries>> series_;
};

/// Geometric bucket edges: first, first*factor, first*factor^2, ...
/// (\p count edges; factor > 1).
[[nodiscard]] std::vector<double> exponential_edges(double first,
                                                    double factor,
                                                    std::size_t count);

/// The default latency bucketing used by the phase profiler: 1 us doubling
/// up to ~4.2 s (23 edges), which spans a single profile query up to a full
/// 10k-job planning pass.
[[nodiscard]] const std::vector<double>& default_latency_edges_us();

}  // namespace dynp::obs
