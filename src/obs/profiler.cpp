#include "obs/profiler.hpp"

namespace dynp::obs {

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kEvent:
      return "event";
    case Phase::kQueueInsert:
      return "queue_insert";
    case Phase::kBaseProfile:
      return "base_profile";
    case Phase::kPlanFull:
      return "plan_full";
    case Phase::kPlanIncremental:
      return "plan_incremental";
    case Phase::kPreviewScore:
      return "preview_score";
    case Phase::kDecide:
      return "decide";
    case Phase::kCompress:
      return "compress";
    case Phase::kCommit:
      return "commit";
    case Phase::kPoolTaskWait:
      return "pool_task_wait";
    case Phase::kPoolTaskRun:
      return "pool_task_run";
  }
  return "unknown";
}

PhaseProfiler::PhaseProfiler(Registry& registry, Tracer* tracer)
    : tracer_(tracer) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const std::string name =
        std::string("phase.") + phase_name(static_cast<Phase>(i)) + "_us";
    histograms_[i] = &registry.histogram(name, default_latency_edges_us());
  }
}

void PhaseProfiler::record(Phase phase, double us) noexcept {
  histograms_[static_cast<std::size_t>(phase)]->observe(us);
}

void PhaseProfiler::record_span(Phase phase,
                                std::chrono::steady_clock::time_point start,
                                std::chrono::steady_clock::time_point end) {
  record(phase,
         std::chrono::duration<double, std::micro>(end - start).count());
  if (tracer_ != nullptr) tracer_->span(phase_name(phase), start, end);
}

}  // namespace dynp::obs
