#pragma once

/// \file timeseries.hpp
/// Windowed time-series aggregation for the instrumentation layer: a
/// `WindowedSeries` partitions a deterministic key domain (event ordinals or
/// simulated seconds — never wall time) into fixed-width windows and keeps a
/// fixed-capacity ring of per-window aggregates (count/sum/min/max plus a
/// log-bucketed histogram), so a run can answer "what was p99 decision
/// latency over the last N events" without retaining per-observation data.
///
/// Determinism contract: the *key* of every observation must be a pure
/// function of (trace, config, seed) — the window structure of a snapshot is
/// then replayable byte for byte. The *values* may be wall-clock
/// self-measurements (decision latency, plan latency); those are
/// observational only and must be read through the `util/wallclock.hpp`
/// facade at the call site — this file itself never touches a clock, which
/// keeps it inside `dynp_analyze`'s pure set (tools/analyze/purity.toml).
///
/// Thread safety: `observe` and the snapshot accessors are mutex-guarded
/// (the series sit on cold paths — one observation per scheduling event, not
/// per profile query). `merge` folds another series in commutatively, so
/// per-worker series merged in a fixed index order yield the same aggregate
/// whatever the work-stealing assignment was.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace dynp::obs {

/// Shape of a `WindowedSeries`: key-domain window width, ring capacity, and
/// the histogram bucket edges shared by every window.
struct SeriesOptions {
  /// Window width in key units (e.g. 256 -> window k covers keys
  /// [256k, 256(k+1))). Must be > 0.
  double window = 256;
  /// Retained windows; older windows are evicted (their observations stay
  /// in the cumulative totals). Must be > 0.
  std::size_t capacity = 64;
  /// Histogram upper edges, strictly ascending, non-empty (one implicit
  /// overflow bucket is appended).
  std::vector<double> edges;

  friend bool operator==(const SeriesOptions& a,
                         const SeriesOptions& b) noexcept {
    return a.window == b.window && a.capacity == b.capacity &&
           a.edges == b.edges;
  }
};

/// Aggregate of one window (or of the whole series, for `total`).
struct WindowAggregate {
  std::int64_t index = 0;  ///< window ordinal: floor(key / window)
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;  ///< 0 when empty
  double max = 0;  ///< 0 when empty
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
};

/// Fixed-capacity ring of windowed aggregates over a deterministic key
/// domain. See the file comment for the determinism and threading contract.
class WindowedSeries {
 public:
  explicit WindowedSeries(SeriesOptions options);

  WindowedSeries(const WindowedSeries&) = delete;
  WindowedSeries& operator=(const WindowedSeries&) = delete;

  [[nodiscard]] const SeriesOptions& options() const noexcept {
    return options_;
  }

  /// Folds \p value into the window covering \p key and into the cumulative
  /// totals. Keys may arrive out of order; a key older than the oldest
  /// retained window is counted only into the totals (and `late_count`).
  void observe(double key, double value);

  /// Observations whose key predated the retained ring at arrival.
  [[nodiscard]] std::uint64_t late_count() const;

  /// Cumulative aggregate over every observation ever made (evicted windows
  /// included). `index` is 0 and meaningless here.
  [[nodiscard]] WindowAggregate total() const;

  /// Retained windows in ascending window-index order. Quantiles are
  /// interpolated inside the covering bucket; the overflow bucket reports
  /// the window max.
  [[nodiscard]] std::vector<WindowAggregate> windows() const;

  /// Folds \p other into this series: totals add, windows merge by index
  /// (evicting from the low end if the union overflows the capacity).
  /// Commutative up to ring eviction, so merging per-worker series in a
  /// fixed order is deterministic. Both series must share identical options.
  void merge(const WindowedSeries& other);

  /// Writes the series as a JSON object
  /// `{"window": ..., "capacity": ..., "late": ..., "total": {...},
  ///   "windows": [{"k": ..., ...}, ...]}` with every line prefixed by
  /// \p indent spaces (embeddable, like `Registry::write_json`).
  void write_json(std::ostream& out, int indent = 0) const;

 private:
  /// One live window: aggregate moments plus per-bucket counts
  /// (`edges.size() + 1` slots, the last one overflow).
  struct Window {
    std::int64_t index = 0;
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<std::uint64_t> buckets;
  };

  void fold_locked(std::int64_t index, double value, std::uint64_t count,
                   double sum, double min, double max,
                   const std::vector<std::uint64_t>* buckets);
  [[nodiscard]] Window* window_for_locked(std::int64_t index);
  [[nodiscard]] WindowAggregate aggregate_locked(const Window& w) const;

  SeriesOptions options_;
  mutable std::mutex mutex_;
  /// Retained windows, ascending by `index` (sparse: only observed windows
  /// exist). Kept sorted; eviction drops from the front.
  std::vector<Window> ring_;
  Window total_;  ///< cumulative aggregate (index unused)
  std::uint64_t late_ = 0;
};

/// The default windowed-latency bucketing: 1 us doubling up to ~4.2 s, the
/// same span as `default_latency_edges_us` (a tuning pass up to a full
/// 10k-job planning sweep).
[[nodiscard]] const std::vector<double>& default_series_edges_us();

/// Quantile estimate over explicit bucket counts: linear interpolation
/// inside the covering bucket, overflow bucket reports \p max, 0 when empty.
/// Shared by `WindowedSeries` and tests; mirrors `Histogram::quantile`.
[[nodiscard]] double bucket_quantile(const std::vector<double>& edges,
                                     const std::vector<std::uint64_t>& buckets,
                                     std::uint64_t count, double min,
                                     double max, double q) noexcept;

}  // namespace dynp::obs
