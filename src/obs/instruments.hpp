#pragma once

/// \file instruments.hpp
/// The lightweight seam between the scheduler and the instrumentation layer:
/// a bundle of non-owning sink pointers that `SimulationConfig` carries.
/// Forward declarations only, so including this from core headers costs
/// nothing; the full subsystem lives behind `obs/obs.hpp`.

namespace dynp::obs {

class Registry;
class Tracer;
class PhaseProfiler;
class ProvenanceTracer;

/// Whether the instrumentation hooks are compiled into this build. With
/// `-DDYNP_OBS=OFF` every hook (metric updates, trace records, phase
/// scopes) is preprocessed away and a wired `RunInstruments` is ignored;
/// simulations are guaranteed bit-identical either way (the hooks only ever
/// read scheduler state).
#if defined(DYNP_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Instrumentation sinks for one run (all optional, all non-owning; the
/// caller keeps ownership and outlives the simulation). A shared `Registry`
/// across concurrent runs aggregates; a `Tracer` interleaves records, so
/// give each traced run its own.
struct RunInstruments {
  Registry* registry = nullptr;
  Tracer* tracer = nullptr;
  PhaseProfiler* profiler = nullptr;
  /// Decision-provenance span emitter (lifecycle + pass-chain spans; see
  /// obs/provenance.hpp). Needs a tracer-backed sink; give each traced run
  /// its own, like the tracer.
  ProvenanceTracer* provenance = nullptr;

  [[nodiscard]] bool any() const noexcept {
    return registry != nullptr || tracer != nullptr || profiler != nullptr ||
           provenance != nullptr;
  }
};

}  // namespace dynp::obs
