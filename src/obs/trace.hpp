#pragma once

/// \file trace.hpp
/// Structured event tracer: one record per scheduling event (event kind, sim
/// time, queue depth, per-policy candidate scores, decider verdict, planner
/// re-plan statistics) plus phase-profiler spans, written in either of two
/// formats:
///
///  * `kJsonl` — one JSON object per line (`{"type": "event" | "decision" |
///    "span", ...}`), trivially greppable/parseable, streamed as the run
///    progresses;
///  * `kChrome` — the Chrome `trace_event` JSON format, so a run opens
///    directly in `chrome://tracing` / Perfetto. Two synthetic processes
///    keep the two timelines apart: pid 1 carries the *simulation-time*
///    track (instant decision events + a queue-depth counter track), pid 2
///    the *wall-time* phase spans (one tid per worker thread).
///
/// The tracer is thread-safe (one mutex around record emission; spans arrive
/// from thread-pool workers) and purely observational: it only ever reads
/// scheduler state handed to it by value.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace dynp::obs {

/// Output encoding of a `Tracer`.
enum class TraceFormat : std::uint8_t { kJsonl, kChrome };

/// Parses "jsonl" / "chrome"; returns false on unknown names.
[[nodiscard]] bool trace_format_by_name(const std::string& name,
                                        TraceFormat& out) noexcept;

/// One self-tuning decision: the candidate values (pool order), the
/// previously active policy and the decider's pick. This is the shared
/// record type of the tracer and `core::RecordingDecider` (which forwards
/// its decision log here instead of keeping a private buffer).
struct DecisionRecord {
  std::vector<double> values;
  std::size_t old_index = 0;
  std::size_t chosen = 0;
};

/// What kind of scheduling event a record describes. Mirrors
/// `sim::EventKind` value for value (statically asserted at the emission
/// site) without making the obs layer depend on the sim headers.
enum class TraceEventKind : std::uint8_t {
  kFinish = 0,
  kJobFail = 1,
  kNodeDown = 2,
  kNodeUp = 3,
  kSubmit = 4,
  kRequeue = 5,
};

/// JSONL/Chrome name of a trace event kind ("submit", "finish", ...).
[[nodiscard]] const char* name(TraceEventKind kind) noexcept;

/// One scheduling event, as the simulation saw it.
struct SchedEventRecord {
  std::uint64_t seq = 0;        ///< engine event ordinal (1-based)
  double sim_time = 0;          ///< simulated seconds
  TraceEventKind kind = TraceEventKind::kFinish;  ///< what happened
  std::size_t queue_depth = 0;  ///< waiting jobs after the pass
  std::size_t started = 0;      ///< jobs that began executing at this event

  bool tuned = false;           ///< a self-tuning step ran
  DecisionRecord decision;      ///< valid iff `tuned`
  bool switched = false;        ///< the decision changed the active policy

  // Planner statistics for this event (replan semantics; all 0 otherwise).
  std::uint64_t full_plans = 0;         ///< candidate plans built from scratch
  std::uint64_t incremental_plans = 0;  ///< incremental replans
  std::uint64_t jobs_placed = 0;        ///< feasibility query + allocation
  std::uint64_t jobs_replayed = 0;      ///< prefix placements reused verbatim
  std::size_t profile_segments = 0;     ///< base/live profile complexity
};

/// One fault-injection or resilience action (`{"type": "fault", ...}` in
/// JSONL). Emitted only when fault injection is active, so fault-free traces
/// are byte-identical to pre-fault-layer output.
struct FaultRecord {
  std::uint64_t seq = 0;   ///< engine event ordinal of the triggering event
  double sim_time = 0;     ///< simulated seconds
  const char* what = "";   ///< "node_down" | "node_up" | "job_fail" |
                           ///< "node_kill" | "requeue" | "drop"
  /// Affected job, or `kNoJob` for node events.
  std::uint32_t job = kNoJob;
  std::uint32_t down_nodes = 0;  ///< nodes down after the action
  std::uint32_t attempt = 0;     ///< execution attempt (job actions)
  double delay = 0;              ///< requeue backoff delay in seconds

  static constexpr std::uint32_t kNoJob = 0xffffffffu;
};

/// Streaming trace writer. All emission methods are thread-safe; `close`
/// finalises the file (mandatory for `kChrome`, where the JSON array needs
/// its footer — the destructor closes as a fallback).
class Tracer {
 public:
  /// Writes to \p out (non-owning; must outlive the tracer or `close`).
  Tracer(std::ostream& out, TraceFormat format);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  ~Tracer();

  /// Opens \p path and returns a file-owning tracer, or nullptr on I/O
  /// failure.
  [[nodiscard]] static std::unique_ptr<Tracer> open_file(
      const std::string& path, TraceFormat format);

  [[nodiscard]] TraceFormat format() const noexcept { return format_; }

  /// Emits one scheduling-event record.
  void event(const SchedEventRecord& record);

  /// Emits one fault/resilience record.
  void fault(const FaultRecord& record);

  /// Emits a standalone decision record (no simulation context — used by
  /// `core::RecordingDecider`, which only sees `DecisionInput`s). Records
  /// are numbered by arrival; in Chrome format they land on their own
  /// ordinal-timed track (pid 3).
  void decision(const DecisionRecord& record);

  /// Emits one phase span. \p start / \p end are wall-clock instants; the
  /// trace timestamp is relative to tracer construction.
  void span(const char* name, std::chrono::steady_clock::time_point start,
            std::chrono::steady_clock::time_point end);

  /// Emits one preformatted record: \p json_object must be a complete
  /// single-line JSON object in the tracer's format (no trailing newline or
  /// separator). Escape hatch for layered emitters — the provenance tracer
  /// formats its span/flow records itself and funnels them through here so
  /// they interleave correctly with event/fault records.
  void raw_record(const std::string& json_object);

  /// Writes everything buffered so far through to the underlying stream and
  /// flushes it. Records are normally held in a bounded buffer (flushed
  /// whenever it exceeds a fixed threshold) so emission is one string
  /// append, not one stream write, per record; `flush` makes the trace
  /// durable mid-run. Every live tracer is additionally flushed before a
  /// contract violation is reported (see `util/assert.hpp`'s failure
  /// observer), so a trace survives an abort up to the failing event.
  void flush();

  /// Finalises the output (idempotent).
  void close();

  /// Records emitted so far (events + decisions + spans).
  [[nodiscard]] std::uint64_t records() const;

 private:
  void write_line(const std::string& line);  ///< locked append + separator
  void flush_locked();                       ///< caller holds mutex_
  void flush_for_failure() noexcept;  ///< try-lock flush (failure path)
  [[nodiscard]] std::uint32_t thread_tid();  ///< caller's stable span tid

  /// Buffered bytes that trigger an automatic flush. Bounds memory to a
  /// fixed ceiling however long the run: the buffer never accumulates the
  /// whole trace.
  static constexpr std::size_t kFlushBytes = 64 * 1024;

  friend void flush_live_tracers_for_failure() noexcept;

  std::unique_ptr<std::ostream> owned_;  ///< set by `open_file` only
  std::ostream* out_;
  TraceFormat format_;
  std::chrono::steady_clock::time_point origin_;

  mutable std::mutex mutex_;
  bool closed_ = false;
  bool any_written_ = false;  ///< comma bookkeeping (kChrome)
  std::string buffer_;        ///< pending bytes, <= kFlushBytes + one record
  std::uint64_t records_ = 0;
  std::uint64_t decision_seq_ = 0;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
};

}  // namespace dynp::obs
