#pragma once

/// \file obs.hpp
/// Umbrella header of the instrumentation layer: metrics registry
/// (`obs/registry.hpp`), structured event tracer (`obs/trace.hpp`), phase
/// profiler (`obs/profiler.hpp`) and the `RunInstruments` seam
/// (`obs/instruments.hpp`). See DESIGN.md §9 for the architecture and the
/// zero-overhead-when-disabled guarantees.

#include "obs/instruments.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
