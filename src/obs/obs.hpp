#pragma once

/// \file obs.hpp
/// Umbrella header of the instrumentation layer: metrics registry
/// (`obs/registry.hpp`), windowed time series (`obs/timeseries.hpp`),
/// structured event tracer (`obs/trace.hpp`), decision provenance spans
/// (`obs/provenance.hpp`), phase profiler (`obs/profiler.hpp`) and the
/// `RunInstruments` seam (`obs/instruments.hpp`). See DESIGN.md §9 and §13
/// for the architecture and the zero-overhead-when-disabled guarantees.

#include "obs/instruments.hpp"
#include "obs/profiler.hpp"
#include "obs/provenance.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
