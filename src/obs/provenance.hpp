#pragma once

/// \file provenance.hpp
/// Decision provenance: parent-linked causal spans over the life of every
/// job and every tuned scheduling pass, layered on top of the `Tracer`.
///
/// Each job gets a deterministic trace id (an FNV-1a hash of its JobId, so
/// the same job carries the same id across runs and configurations) and a
/// root span from submission to resolution. Lifecycle stages become child
/// spans of that root: `submit` and `queue_insert` instants, a `wait` span
/// per admission, a `run` span per execution attempt (outcome `finished`,
/// `job_fail` or `node_kill`), a `backoff` span per fault-layer requeue
/// delay, and terminal `finish`/`drop` instants. Tuned passes emit their own
/// chain — `pass` → `base_profile` → `plan:<policy>` → `preview_score` →
/// `decide` → `commit` — and `commit` is flow-linked to the `run` spans it
/// starts, so "why did job J start here" is one edge walk.
///
/// All span timestamps are *simulated* time and all ids derive from event
/// order, so a provenance trace is a pure function of (trace, config, seed)
/// — byte-identical across replays, which is what the golden-output
/// `dynp_tracectl` test pins. Records are emitted through
/// `Tracer::raw_record` in both formats: JSONL as `{"type": "jspan" |
/// "jflow", ...}` lines, Chrome as `X` complete events (job spans on pid 4,
/// one tid per job; pass chains on the sim-time track pid 1, tid 2) plus
/// `s`/`f` flow events.
///
/// Not thread-safe: hooks fire from the single-threaded simulation event
/// loop only (the sink tracer serialises against concurrent phase spans).

#include <cstdint>
#include <string>
#include <vector>

namespace dynp::obs {

class Tracer;

/// One tuned (or job-starting) scheduling pass, as handed to `on_pass`.
struct PassRecord {
  std::uint64_t seq = 0;  ///< engine event ordinal (1-based)
  double sim_time = 0;
  bool tuned = false;             ///< decision chain present
  std::vector<double> values;     ///< candidate scores (pool order)
  std::size_t old_index = 0;      ///< active policy before the decision
  std::size_t chosen = 0;         ///< decider's pick
  bool switched = false;          ///< the pick changed the active policy
  std::vector<std::uint32_t> started;  ///< jobs that began executing
};

/// Span/flow emitter for one simulation run. Construction binds the sink;
/// `set_pool` names the candidate policies (for `plan:<policy>` spans).
class ProvenanceTracer {
 public:
  explicit ProvenanceTracer(Tracer& sink);

  ProvenanceTracer(const ProvenanceTracer&) = delete;
  ProvenanceTracer& operator=(const ProvenanceTracer&) = delete;

  /// Deterministic per-job trace id: FNV-1a over the JobId bytes. Stable
  /// across runs, configurations and machines.
  [[nodiscard]] static std::uint64_t job_trace_id(std::uint32_t job) noexcept;

  /// Candidate policy names in pool order (empty for static runs).
  void set_pool(std::vector<std::string> names);

  /// Spans emitted so far (jspan records; flows not counted).
  [[nodiscard]] std::uint64_t spans() const noexcept { return spans_; }

  // ---- job lifecycle hooks (single-threaded event loop only) ----

  /// A job entered the waiting set: fresh submission (`fresh`) or requeued
  /// retry. Opens the root span on first sight, closes a pending backoff
  /// span on a retry, emits the submit/queue_insert instants and opens the
  /// wait span.
  void on_admit(std::uint32_t job, double now, std::uint64_t seq, bool fresh);

  /// The job's next attempt started: closes the wait span, opens a run span.
  void on_start(std::uint32_t job, double now, std::uint64_t seq);

  /// The attempt completed: closes the run span (`finished`), emits the
  /// finish instant and closes the root span.
  void on_finish(std::uint32_t job, double now, std::uint64_t seq);

  /// The attempt died (\p what is "job_fail" or "node_kill"): closes the
  /// run span with that outcome.
  void on_attempt_failed(std::uint32_t job, double now, std::uint64_t seq,
                         const char* what);

  /// The fault layer scheduled a retry after \p delay seconds: opens the
  /// backoff span (closed by the retry's `on_admit`).
  void on_backoff(std::uint32_t job, double now, std::uint64_t seq,
                  double delay);

  /// The retry budget is spent: emits the drop instant and closes the root
  /// span with outcome `dropped`.
  void on_drop(std::uint32_t job, double now, std::uint64_t seq);

  // ---- per-event decision chain ----

  /// Emits the pass chain for one event: nothing unless the pass tuned or
  /// started jobs; `commit` flow-links to the started jobs' run spans, so
  /// call after the `on_start` hooks of the same event.
  void on_pass(const PassRecord& record);

 private:
  /// Per-job open-span bookkeeping. Ids are 0 when no such span is open.
  struct JobState {
    std::uint64_t root = 0;
    double submit_time = 0;
    std::uint64_t wait = 0;
    double wait_t0 = 0;
    std::uint64_t run = 0;
    double run_t0 = 0;
    std::uint64_t backoff = 0;
    double backoff_t0 = 0;
    double backoff_delay = -1;
    std::uint32_t attempt = 0;  ///< attempts started so far
  };

  [[nodiscard]] JobState& state(std::uint32_t job);
  [[nodiscard]] std::uint64_t next_id() noexcept { return ++last_id_; }

  /// Emits one span record (both formats; see the file comment). Instants
  /// pass `t0 == t1`. Optional fields are skipped when empty/negative.
  struct Span {
    std::uint64_t trace = 0;   ///< 0 = pass chain (no job trace)
    std::uint64_t id = 0;
    std::uint64_t parent = 0;  ///< 0 = root
    const char* name = "";
    std::uint64_t seq = 0;
    double t0 = 0;
    double t1 = 0;
    std::uint32_t job = kNoJob;
    std::int64_t attempt = -1;
    const char* outcome = nullptr;
    double delay = -1;
    int step = -1;             ///< ordinal inside a pass chain
    double value = kNoValue;   ///< preview score (plan spans)
  };
  static constexpr std::uint32_t kNoJob = 0xffffffffu;
  static constexpr double kNoValue = -1e308;

  void emit(const Span& span);
  void emit_flow(std::uint64_t from, std::uint64_t to, std::uint32_t job,
                 double t, std::uint64_t seq);

  Tracer* sink_;
  std::vector<std::string> pool_;
  std::vector<JobState> jobs_;
  std::uint64_t last_id_ = 0;
  std::uint64_t spans_ = 0;
};

}  // namespace dynp::obs
