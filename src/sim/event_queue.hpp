#pragma once

/// \file event_queue.hpp
/// The event calendar of the discrete-event simulation: a binary min-heap
/// ordered by (time, kind, insertion sequence). The sequence number makes the
/// ordering total and therefore the simulation fully deterministic.
///
/// At equal times, job-finish events are processed before job-submit events
/// so that a replan triggered by a submission already sees the freed
/// resources — the same convention a real RMS's event loop realises by
/// handling completion interrupts before queue insertions. Fault events sort
/// between the two: capacity-changing interrupts (job failures, node
/// down/up) resolve before arrivals so a same-instant submission plans
/// against the post-fault machine.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "workload/job.hpp"

namespace dynp::sim {

/// What happened. The numeric values define the processing order at equal
/// times (lower first): completions free resources first, then the fault
/// interrupts mutate capacity and the running set, and only then do
/// arrivals (fresh submits and requeued retries) plan against the result.
enum class EventKind : std::uint8_t {
  kFinish = 0,    ///< a running job completed
  kJobFail = 1,   ///< a running job died mid-run (fault injection)
  kNodeDown = 2,  ///< a node failed (fault injection)
  kNodeUp = 3,    ///< a failed node was repaired (fault injection)
  kSubmit = 4,    ///< a new job arrived
  kRequeue = 5,   ///< a failed job re-enters the queue after backoff
};

/// One calendar entry.
struct Event {
  Time time = 0;
  EventKind kind = EventKind::kSubmit;
  JobId job = 0;
  std::uint64_t seq = 0;  ///< assigned by the queue; breaks remaining ties
};

/// Strict-weak ordering: earlier time first; finish before submit; then FIFO.
struct EventAfter {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.seq > b.seq;
  }
};

/// Deterministic event calendar. Implemented as an explicit vector +
/// `std::push_heap`/`pop_heap` (the exact operations `std::priority_queue`
/// is specified as) so the pending set can be snapshotted and restored —
/// the comparator is a strict *total* order, so any heap over the same
/// element set pops in the same sequence regardless of array layout.
class EventQueue {
 public:
  /// Inserts an event; the queue assigns the tie-breaking sequence number.
  void push(Time time, EventKind kind, JobId job) {
    DYNP_EXPECTS(time >= last_popped_time_);
    heap_.push_back(Event{time, kind, job, next_seq_++});
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] const Event& top() const {
    DYNP_EXPECTS(!heap_.empty());
    return heap_.front();
  }

  /// Removes and returns the earliest event. Time never goes backwards.
  Event pop() {
    DYNP_EXPECTS(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event e = heap_.back();
    heap_.pop_back();
    DYNP_ENSURES(e.time >= last_popped_time_);
    last_popped_time_ = e.time;
    return e;
  }

  /// The pending events sorted in pop order (time, kind, seq) — the
  /// canonical serialization of the calendar: equal queues yield equal
  /// vectors whatever their heap layouts.
  [[nodiscard]] std::vector<Event> sorted_events() const {
    std::vector<Event> events = heap_;
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) {
                return EventAfter{}(b, a);  // "b after a" = ascending
              });
    return events;
  }

  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] Time last_popped_time() const noexcept {
    return last_popped_time_;
  }

  /// Reinstates a snapshotted calendar: pending events (any order),
  /// the sequence counter and the pop-time floor. Every event must be
  /// poppable (at or after the floor) and carry a seq below the counter.
  void restore(const std::vector<Event>& events, std::uint64_t next_seq,
               Time last_popped_time) {
    for (const Event& e : events) {
      DYNP_EXPECTS(e.time >= last_popped_time && e.seq < next_seq);
    }
    heap_ = events;
    std::make_heap(heap_.begin(), heap_.end(), EventAfter{});
    next_seq_ = next_seq;
    last_popped_time_ = last_popped_time;
  }

 private:
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  Time last_popped_time_ = 0;
};

}  // namespace dynp::sim
