#pragma once

/// \file event_queue.hpp
/// The event calendar of the discrete-event simulation: a binary min-heap
/// ordered by (time, kind, insertion sequence). The sequence number makes the
/// ordering total and therefore the simulation fully deterministic.
///
/// At equal times, job-finish events are processed before job-submit events
/// so that a replan triggered by a submission already sees the freed
/// resources — the same convention a real RMS's event loop realises by
/// handling completion interrupts before queue insertions.

#include <cstdint>
#include <queue>
#include <vector>

#include "util/assert.hpp"
#include "workload/job.hpp"

namespace dynp::sim {

/// What happened.
enum class EventKind : std::uint8_t {
  kFinish = 0,  ///< a running job completed (processed first at equal times)
  kSubmit = 1,  ///< a new job arrived
};

/// One calendar entry.
struct Event {
  Time time = 0;
  EventKind kind = EventKind::kSubmit;
  JobId job = 0;
  std::uint64_t seq = 0;  ///< assigned by the queue; breaks remaining ties
};

/// Strict-weak ordering: earlier time first; finish before submit; then FIFO.
struct EventAfter {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.seq > b.seq;
  }
};

/// Deterministic event calendar.
class EventQueue {
 public:
  /// Inserts an event; the queue assigns the tie-breaking sequence number.
  void push(Time time, EventKind kind, JobId job) {
    DYNP_EXPECTS(time >= last_popped_time_);
    heap_.push(Event{time, kind, job, next_seq_++});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] const Event& top() const {
    DYNP_EXPECTS(!heap_.empty());
    return heap_.top();
  }

  /// Removes and returns the earliest event. Time never goes backwards.
  Event pop() {
    DYNP_EXPECTS(!heap_.empty());
    Event e = heap_.top();
    heap_.pop();
    DYNP_ENSURES(e.time >= last_popped_time_);
    last_popped_time_ = e.time;
    return e;
  }

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::uint64_t next_seq_ = 0;
  Time last_popped_time_ = 0;
};

}  // namespace dynp::sim
