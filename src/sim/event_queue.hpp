#pragma once

/// \file event_queue.hpp
/// The event calendar of the discrete-event simulation: a binary min-heap
/// ordered by (time, kind, insertion sequence). The sequence number makes the
/// ordering total and therefore the simulation fully deterministic.
///
/// At equal times, job-finish events are processed before job-submit events
/// so that a replan triggered by a submission already sees the freed
/// resources — the same convention a real RMS's event loop realises by
/// handling completion interrupts before queue insertions. Fault events sort
/// between the two: capacity-changing interrupts (job failures, node
/// down/up) resolve before arrivals so a same-instant submission plans
/// against the post-fault machine.

#include <cstdint>
#include <queue>
#include <vector>

#include "util/assert.hpp"
#include "workload/job.hpp"

namespace dynp::sim {

/// What happened. The numeric values define the processing order at equal
/// times (lower first): completions free resources first, then the fault
/// interrupts mutate capacity and the running set, and only then do
/// arrivals (fresh submits and requeued retries) plan against the result.
enum class EventKind : std::uint8_t {
  kFinish = 0,    ///< a running job completed
  kJobFail = 1,   ///< a running job died mid-run (fault injection)
  kNodeDown = 2,  ///< a node failed (fault injection)
  kNodeUp = 3,    ///< a failed node was repaired (fault injection)
  kSubmit = 4,    ///< a new job arrived
  kRequeue = 5,   ///< a failed job re-enters the queue after backoff
};

/// One calendar entry.
struct Event {
  Time time = 0;
  EventKind kind = EventKind::kSubmit;
  JobId job = 0;
  std::uint64_t seq = 0;  ///< assigned by the queue; breaks remaining ties
};

/// Strict-weak ordering: earlier time first; finish before submit; then FIFO.
struct EventAfter {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.seq > b.seq;
  }
};

/// Deterministic event calendar.
class EventQueue {
 public:
  /// Inserts an event; the queue assigns the tie-breaking sequence number.
  void push(Time time, EventKind kind, JobId job) {
    DYNP_EXPECTS(time >= last_popped_time_);
    heap_.push(Event{time, kind, job, next_seq_++});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] const Event& top() const {
    DYNP_EXPECTS(!heap_.empty());
    return heap_.top();
  }

  /// Removes and returns the earliest event. Time never goes backwards.
  Event pop() {
    DYNP_EXPECTS(!heap_.empty());
    Event e = heap_.top();
    heap_.pop();
    DYNP_ENSURES(e.time >= last_popped_time_);
    last_popped_time_ = e.time;
    return e;
  }

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::uint64_t next_seq_ = 0;
  Time last_popped_time_ = 0;
};

}  // namespace dynp::sim
