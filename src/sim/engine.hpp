#pragma once

/// \file engine.hpp
/// Minimal discrete-event engine: a clock plus the event calendar, driving a
/// `Process` handler until the calendar drains. The scheduler simulations in
/// `src/core` are Processes; keeping the engine separate lets tests drive
/// synthetic event streams directly.

#include <cstdint>

#include "sim/event_queue.hpp"

namespace dynp::sim {

/// Callback interface for event consumers.
class Process {
 public:
  virtual ~Process() = default;
  /// Handles one event. `Engine::now()` already equals `event.time` when this
  /// is invoked. The handler may schedule further events (at or after now).
  virtual void handle(const Event& event) = 0;
};

/// The simulation engine. Single-threaded by design (CP.1: the unit of
/// parallelism in this library is a whole simulation, never one engine).
class Engine {
 public:
  /// Current simulation time (the time of the event being processed, or of
  /// the last processed event once `run` returns).
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Number of events processed so far.
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Schedules an event; \p time must not precede the current time.
  void schedule(Time time, EventKind kind, JobId job) {
    DYNP_EXPECTS(time >= now_);
    queue_.push(time, kind, job);
  }

  /// Runs until the calendar is empty, dispatching every event to \p process.
  void run(Process& process) {
    while (!queue_.empty()) {
      const Event event = queue_.pop();
      now_ = event.time;
      ++processed_;
      process.handle(event);
    }
  }

  /// Runs until the calendar is empty or \p limit events were dispatched;
  /// returns true if the calendar drained.
  bool run_bounded(Process& process, std::uint64_t limit) {
    while (!queue_.empty() && limit-- > 0) {
      const Event event = queue_.pop();
      now_ = event.time;
      ++processed_;
      process.handle(event);
    }
    return queue_.empty();
  }

  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }

  /// Reinstates a snapshotted engine: clock, processed-events count and the
  /// full calendar (see `EventQueue::restore`). Only meaningful on a fresh
  /// engine before any event was dispatched.
  void restore(Time now, std::uint64_t processed,
               const std::vector<Event>& events, std::uint64_t next_seq,
               Time last_popped_time) {
    DYNP_EXPECTS(processed_ == 0 && queue_.empty());
    now_ = now;
    processed_ = processed;
    queue_.restore(events, next_seq, last_popped_time);
  }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace dynp::sim
