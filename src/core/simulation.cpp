#include "core/simulation.hpp"

#include <algorithm>

#include "rms/planner.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace dynp::core {

std::string SimulationConfig::label() const {
  std::string base = mode == SchedulerMode::kStatic
                         ? policies::name(static_policy)
                         : std::string("dynP/") +
                               (decider ? decider->name() : "?");
  if (semantics == PlannerSemantics::kGuarantee) base += "[guarantee]";
  if (semantics == PlannerSemantics::kQueueingEasy) base += "[EASY]";
  return base;
}

SimulationConfig static_config(policies::PolicyKind policy) {
  SimulationConfig config;
  config.mode = SchedulerMode::kStatic;
  config.static_policy = policy;
  return config;
}

SimulationConfig dynp_config(std::shared_ptr<const Decider> decider) {
  SimulationConfig config;
  config.mode = SchedulerMode::kDynP;
  config.decider = std::move(decider);
  return config;
}

namespace {

/// The scheduler process: owns all mutable run state; one instance per
/// simulation, used from one thread.
class SchedulerSim final : public sim::Process {
 public:
  SchedulerSim(const workload::JobSet& set, const SimulationConfig& config)
      : set_(set),
        config_(config),
        jobs_(set.jobs()),
        policy_index_(config.initial_index),
        profile_(set.machine().nodes, 0) {
    DYNP_EXPECTS(config.mode == SchedulerMode::kStatic ||
                 (config.decider != nullptr && !config.pool.empty() &&
                  config.initial_index < config.pool.size()));
    // A queueing RMS has no full schedule to evaluate, so the self-tuning
    // dynP step is only defined on the planning semantics.
    DYNP_EXPECTS(config.semantics != PlannerSemantics::kQueueingEasy ||
                 config.mode == SchedulerMode::kStatic);
    outcomes_.resize(jobs_.size());
    reserved_.assign(jobs_.size(), -1.0);
    if (config.mode == SchedulerMode::kDynP) {
      result_.decisions_per_policy.assign(config.pool.size(), 0);
      result_.time_in_policy.assign(config.pool.size(), 0.0);
    }
  }

  [[nodiscard]] SimulationResult run() {
    for (const workload::Job& job : jobs_) {
      engine_.schedule(job.submit, sim::EventKind::kSubmit, job.id);
    }
    engine_.run(*this);
    DYNP_ENSURES(waiting_.empty());
    DYNP_ENSURES(running_.empty());
    result_.events = engine_.processed();
    result_.outcomes = std::move(outcomes_);
    result_.summary =
        metrics::summarize(result_.outcomes, set_.machine().nodes);
    return std::move(result_);
  }

  void handle(const sim::Event& event) override {
    const Time now = engine_.now();
    if (config_.mode == SchedulerMode::kDynP) {
      // Time-in-policy accounting up to this event.
      result_.time_in_policy[policy_index_] += now - last_event_time_;
      last_event_time_ = now;
    }
    if (guarantee_mode()) profile_.trim_before(now);

    if (event.kind == sim::EventKind::kSubmit) {
      waiting_.push_back(event.job);
      if (guarantee_mode()) insert_reservation(event.job, now);
      if (config_.observer != nullptr) {
        config_.observer->on_job_submitted(now, jobs_[event.job]);
      }
    } else {
      finish_job(event.job, now);
    }

    switch (config_.semantics) {
      case PlannerSemantics::kGuarantee:
        guarantee_pass(now, event.kind);
        break;
      case PlannerSemantics::kReplan:
        replan_pass(now, event.kind);
        break;
      case PlannerSemantics::kQueueingEasy:
        queueing_pass(now);
        break;
    }
  }

 private:
  [[nodiscard]] bool guarantee_mode() const noexcept {
    return config_.semantics == PlannerSemantics::kGuarantee;
  }

  [[nodiscard]] bool tune_at(sim::EventKind trigger) const noexcept {
    if (config_.mode != SchedulerMode::kDynP) return false;
    return trigger == sim::EventKind::kSubmit ? config_.tune_on_submit
                                              : config_.tune_on_finish;
  }

  [[nodiscard]] policies::PolicyKind active_policy() const noexcept {
    return config_.mode == SchedulerMode::kStatic
               ? config_.static_policy
               : config_.pool[policy_index_];
  }

  void finish_job(JobId id, Time now) {
    const auto it = std::find_if(
        running_.begin(), running_.end(),
        [id](const rms::RunningJob& r) { return r.id == id; });
    DYNP_ASSERT(it != running_.end());
    if (guarantee_mode() && it->estimated_end > now) {
      // Release the phantom tail of the reservation (actual < estimate):
      // this freed capacity is what compression harvests.
      profile_.deallocate(now, it->estimated_end - now, it->width);
    }
    running_.erase(it);
    outcomes_[id].end = now;
    if (config_.observer != nullptr) {
      config_.observer->on_job_finished(now, jobs_[id], outcomes_[id]);
    }
  }

  /// Records a decision and returns the chosen pool index.
  std::size_t decide(DecisionInput input, Time now) {
    const std::size_t chosen = config_.decider->decide(input);
    DYNP_ASSERT(chosen < config_.pool.size());
    if (config_.observer != nullptr) {
      config_.observer->on_decision(now, input, chosen);
    }
    ++result_.decisions;
    ++result_.decisions_per_policy[chosen];
    if (chosen != policy_index_) {
      ++result_.switches;
      result_.policy_timeline.push_back(
          SimulationResult::PolicySwitch{now, policy_index_, chosen});
      policy_index_ = chosen;
    }
    return chosen;
  }

  void record_start(JobId id, Time now) {
    const workload::Job& job = jobs_[id];
    outcomes_[id] = metrics::JobOutcome{
        id,        job.submit,          now, now + job.actual_runtime,
        job.width, job.actual_runtime};
    running_.push_back(
        rms::RunningJob{id, job.width, now + job.estimated_runtime});
    engine_.schedule(now + job.actual_runtime, sim::EventKind::kFinish, id);
    if (config_.observer != nullptr) {
      config_.observer->on_job_started(now, job);
    }
  }

  // ----- kReplan semantics: full schedule from scratch at every event -----

  void replan_pass(Time now, sim::EventKind trigger) {
    if (waiting_.empty()) return;
    rms::Schedule schedule;
    if (tune_at(trigger)) {
      std::vector<rms::Schedule> candidates;
      candidates.reserve(config_.pool.size());
      DecisionInput input;
      input.values.reserve(config_.pool.size());
      input.old_index = policy_index_;
      for (const policies::PolicyKind policy : config_.pool) {
        candidates.push_back(plan_with(policy, now));
        input.values.push_back(metrics::evaluate_preview(
            config_.preview, candidates.back(), jobs_, now));
      }
      schedule = std::move(candidates[decide(std::move(input), now)]);
    } else {
      schedule = plan_with(active_policy(), now);
    }

    const std::vector<JobId> due = schedule.starting_at(now);
    for (const JobId id : due) record_start(id, now);
    std::erase_if(waiting_, [&](JobId id) {
      return std::find(due.begin(), due.end(), id) != due.end();
    });
  }

  [[nodiscard]] rms::Schedule plan_with(policies::PolicyKind policy,
                                        Time now) const {
    return rms::Planner::plan(set_.machine().nodes, now, running_,
                              policies::order(policy, waiting_, jobs_),
                              jobs_);
  }

  // ----- kGuarantee semantics: reservations + policy-ordered compression --

  /// Places a newly submitted job at its earliest feasible start without
  /// moving any existing reservation; this start is the job's guarantee.
  void insert_reservation(JobId id, Time now) {
    const workload::Job& job = jobs_[id];
    const Time start =
        profile_.earliest_start(now, job.width, job.estimated_runtime);
    profile_.allocate(start, job.estimated_runtime, job.width);
    reserved_[id] = start;
  }

  /// One compression sweep in \p order: every waiting job is re-placed at
  /// its earliest feasible start, which is never later than its current
  /// reservation (its own old slot is always available again). Returns the
  /// number of jobs that moved.
  static std::size_t compress_once(rms::ResourceProfile& profile,
                                   std::vector<Time>& reserved,
                                   const std::vector<JobId>& order,
                                   const std::vector<workload::Job>& jobs,
                                   Time now) {
    std::size_t moves = 0;
    for (const JobId id : order) {
      const workload::Job& job = jobs[id];
      DYNP_ASSERT(reserved[id] >= now);
      profile.deallocate(reserved[id], job.estimated_runtime, job.width);
      const Time start =
          profile.earliest_start(now, job.width, job.estimated_runtime);
      DYNP_ASSERT(start <= reserved[id]);
      if (start < reserved[id]) {
        reserved[id] = start;
        ++moves;
      }
      profile.allocate(start, job.estimated_runtime, job.width);
    }
    return moves;
  }

  /// Compression to fixpoint (moving one job can unblock another that was
  /// processed earlier in the sweep). Terminates: every sweep with a move
  /// strictly decreases the sum of reservations, and a sweep without moves
  /// ends the loop.
  static void compress(rms::ResourceProfile& profile,
                       std::vector<Time>& reserved,
                       const std::vector<JobId>& order,
                       const std::vector<workload::Job>& jobs, Time now) {
    constexpr int kMaxSweeps = 64;
    for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
      if (compress_once(profile, reserved, order, jobs, now) == 0) break;
    }
  }

  [[nodiscard]] rms::Schedule schedule_from(
      const std::vector<Time>& reserved) const {
    std::vector<rms::PlannedJob> planned;
    planned.reserve(waiting_.size());
    for (const JobId id : waiting_) {
      planned.push_back(rms::PlannedJob{id, reserved[id]});
    }
    return rms::Schedule{std::move(planned)};
  }

  void guarantee_pass(Time now, sim::EventKind trigger) {
    if (waiting_.empty()) return;

    if (tune_at(trigger)) {
      // One compressed candidate per pool policy, each on its own copy of
      // the reservation state; the chosen candidate becomes reality.
      std::vector<rms::ResourceProfile> profiles;
      std::vector<std::vector<Time>> reservations;
      profiles.reserve(config_.pool.size());
      reservations.reserve(config_.pool.size());
      DecisionInput input;
      input.values.reserve(config_.pool.size());
      input.old_index = policy_index_;
      for (const policies::PolicyKind policy : config_.pool) {
        profiles.push_back(profile_);
        reservations.push_back(reserved_);
        compress(profiles.back(), reservations.back(),
                 policies::order(policy, waiting_, jobs_), jobs_, now);
        input.values.push_back(metrics::evaluate_preview(
            config_.preview, schedule_from(reservations.back()), jobs_, now));
      }
      const std::size_t chosen = decide(std::move(input), now);
      profile_ = std::move(profiles[chosen]);
      reserved_ = std::move(reservations[chosen]);
    } else {
      compress(profile_, reserved_,
               policies::order(active_policy(), waiting_, jobs_), jobs_, now);
    }

    // Jobs whose reservation came due start now; their allocation is already
    // in the profile and simply carries over as the running reservation.
    std::vector<JobId> due;
    for (const JobId id : waiting_) {
      DYNP_ASSERT(reserved_[id] >= now);
      if (reserved_[id] <= now) due.push_back(id);
    }
    for (const JobId id : due) record_start(id, now);
    std::erase_if(waiting_, [&](JobId id) {
      return std::find(due.begin(), due.end(), id) != due.end();
    });
  }

  // ----- kQueueingEasy semantics: policy queue + EASY backfilling ---------

  /// EASY scheduling cycle (Lifka's algorithm on top of a policy-ordered
  /// queue): start queue-head jobs while they fit; when the head does not
  /// fit, compute its *shadow time* (earliest start given the running jobs'
  /// estimated ends) and the *extra* nodes left at that instant, then let
  /// later jobs start immediately iff they either finish (by estimate)
  /// before the shadow time or use no more than the extra nodes — i.e. they
  /// never delay the head's reservation.
  void queueing_pass(Time now) {
    if (waiting_.empty()) return;
    std::vector<JobId> queue =
        policies::order(active_policy(), waiting_, jobs_);
    std::vector<JobId> started;

    std::uint32_t used = 0;
    for (const rms::RunningJob& r : running_) used += r.width;
    const std::uint32_t capacity = set_.machine().nodes;

    std::size_t head = 0;
    // Phase 1: the queue drains in policy order while jobs fit.
    while (head < queue.size() &&
           jobs_[queue[head]].width <= capacity - used) {
      used += jobs_[queue[head]].width;
      started.push_back(queue[head]);
      ++head;
    }

    if (head < queue.size()) {
      // Phase 2: reservation for the blocked head, then one backfill sweep.
      const workload::Job& blocked = jobs_[queue[head]];
      const rms::ResourceProfile profile =
          rms::Planner::base_profile(capacity, now, running_);
      const Time shadow = profile.earliest_start(
          now, blocked.width, blocked.estimated_runtime);
      const std::uint32_t free_at_shadow = profile.free_at(shadow);
      std::uint32_t extra =
          free_at_shadow >= blocked.width ? free_at_shadow - blocked.width : 0;

      for (std::size_t i = head + 1; i < queue.size(); ++i) {
        const workload::Job& job = jobs_[queue[i]];
        if (job.width > capacity - used) continue;
        const bool ends_before_shadow = now + job.estimated_runtime <= shadow;
        const bool fits_extra = job.width <= extra;
        if (ends_before_shadow || fits_extra) {
          used += job.width;
          started.push_back(queue[i]);
          // A backfill running past the shadow time consumes the slack the
          // head job leaves at its reservation.
          if (!ends_before_shadow) extra -= job.width;
        }
      }
    }

    for (const JobId id : started) record_start(id, now);
    std::erase_if(waiting_, [&](JobId id) {
      return std::find(started.begin(), started.end(), id) != started.end();
    });
  }

  const workload::JobSet& set_;
  const SimulationConfig& config_;
  const std::vector<workload::Job>& jobs_;

  sim::Engine engine_;
  std::vector<JobId> waiting_;  // in arrival order
  std::vector<rms::RunningJob> running_;
  std::vector<metrics::JobOutcome> outcomes_;
  std::size_t policy_index_;
  Time last_event_time_ = 0;
  SimulationResult result_;

  // kGuarantee state: the live profile (running reservations + waiting-job
  // guarantees) and each waiting job's guaranteed start, indexed by JobId.
  rms::ResourceProfile profile_;
  std::vector<Time> reserved_;
};

}  // namespace

SimulationResult simulate(const workload::JobSet& set,
                          const SimulationConfig& config) {
  SchedulerSim sim(set, config);
  return sim.run();
}

}  // namespace dynp::core
