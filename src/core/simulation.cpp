#include "core/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <functional>
#include <limits>
#include <memory>
#include <thread>

#include "ckpt/codec.hpp"
#include "ckpt/journal.hpp"
#include "ckpt/snapshot.hpp"
#include "ckpt/state.hpp"
#include "core/audit.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "rms/planner.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"
#include "util/thread_pool.hpp"
#include "util/wallclock.hpp"

namespace dynp::core {

namespace {

/// True when the schedule invariant auditor should run: per-config opt-in,
/// or globally forced by building with `-DDYNP_AUDIT=ON` (which defines
/// `DYNP_AUDIT_FORCE` so the whole test suite runs audited).
[[nodiscard]] bool audit_enabled(const SimulationConfig& config) noexcept {
#if defined(DYNP_AUDIT_FORCE)
  static_cast<void>(config);
  return true;
#else
  return config.audit;
#endif
}

// The tracer mirrors the engine's event-kind encoding (the obs layer must
// not depend on sim headers), so per-event records are stamped with a plain
// cast. Keep the two enums value-aligned.
static_assert(static_cast<int>(obs::TraceEventKind::kFinish) ==
              static_cast<int>(sim::EventKind::kFinish));
static_assert(static_cast<int>(obs::TraceEventKind::kJobFail) ==
              static_cast<int>(sim::EventKind::kJobFail));
static_assert(static_cast<int>(obs::TraceEventKind::kNodeDown) ==
              static_cast<int>(sim::EventKind::kNodeDown));
static_assert(static_cast<int>(obs::TraceEventKind::kNodeUp) ==
              static_cast<int>(sim::EventKind::kNodeUp));
static_assert(static_cast<int>(obs::TraceEventKind::kSubmit) ==
              static_cast<int>(sim::EventKind::kSubmit));
static_assert(static_cast<int>(obs::TraceEventKind::kRequeue) ==
              static_cast<int>(sim::EventKind::kRequeue));

/// Identity of one (workload, configuration) pair for checkpoint purposes:
/// a snapshot may only be restored into a run that would deterministically
/// re-produce it. Everything that influences the event stream is hashed —
/// scheduler mode/semantics/pool/decider, tuning switches, the fault model
/// and the full job table; purely observational knobs (instruments, audit,
/// thread counts) are deliberately excluded, since they never change a
/// scheduling decision.
[[nodiscard]] std::uint64_t checkpoint_fingerprint(
    const workload::JobSet& set, const SimulationConfig& config) {
  ckpt::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(config.mode));
  w.u8(static_cast<std::uint8_t>(config.semantics));
  w.u8(static_cast<std::uint8_t>(config.static_policy));
  w.u64(config.pool.size());
  for (const policies::PolicyKind kind : config.pool) {
    w.u8(static_cast<std::uint8_t>(kind));
  }
  w.str(config.decider != nullptr ? config.decider->name() : "");
  w.u64(config.initial_index);
  w.u8(static_cast<std::uint8_t>(config.preview));
  w.u8(config.tune_on_submit ? 1 : 0);
  w.u8(config.tune_on_finish ? 1 : 0);
  w.f64(config.plan_budget_us);
  w.str(config.faults.has_value() ? config.faults->describe() : "off");
  w.u32(set.machine().nodes);
  w.u64(set.jobs().size());
  for (const workload::Job& job : set.jobs()) {
    w.u32(job.id);
    w.f64(job.submit);
    w.u32(job.width);
    w.f64(job.estimated_runtime);
    w.f64(job.actual_runtime);
  }
  return util::fnv1a64(w.bytes());
}

}  // namespace

std::string SimulationConfig::label() const {
  std::string base = mode == SchedulerMode::kStatic
                         ? policies::name(static_policy)
                         : std::string("dynP/") +
                               (decider ? decider->name() : "?");
  if (semantics == PlannerSemantics::kGuarantee) base += "[guarantee]";
  if (semantics == PlannerSemantics::kQueueingEasy) base += "[EASY]";
  return base;
}

SimulationConfig static_config(policies::PolicyKind policy) {
  SimulationConfig config;
  config.mode = SchedulerMode::kStatic;
  config.static_policy = policy;
  return config;
}

SimulationConfig dynp_config(std::shared_ptr<const Decider> decider) {
  SimulationConfig config;
  config.mode = SchedulerMode::kDynP;
  config.decider = std::move(decider);
  return config;
}

namespace detail {

/// Per-pool-policy scratch, reused across events so the hot path stops
/// allocating a fresh profile + schedule per candidate per event. Named
/// (not scheduler-private) so `SimWorkspace::Impl` can store the slots
/// across whole runs as well.
struct TuningCandidate {
  rms::PlanScratch scratch;         ///< planning scratch (replan only)
  rms::ResourceProfile profile{1};  ///< profile copy (guarantee only)
  rms::Schedule schedule;           ///< candidate (replan) or preview
  std::vector<Time> reserved;       ///< reservation copy (guarantee only)
  double value = 0;                 ///< preview-metric score
};

}  // namespace detail

/// The buffers a run borrows from a workspace at construction and returns
/// at destruction (see `SimWorkspace` in the header). Everything here is
/// either re-`assign`ed or explicitly invalidated on adoption, so stale
/// content can never leak between runs — only capacity survives.
struct SimWorkspace::Impl {
  std::vector<Time> reserved;
  std::vector<std::uint32_t> running_slot;
  std::vector<char> started_mark;
  std::vector<JobId> waiting;
  std::vector<JobId> due;
  std::vector<std::size_t> insert_pos;
  std::vector<char> slot_reusable;
  std::vector<detail::TuningCandidate> candidates;
  std::vector<policies::SortedQueue> queues;
  rms::ResourceProfile profile{1};
  rms::ResourceProfile base_profile{1};
};

SimWorkspace::SimWorkspace() : impl_(std::make_unique<Impl>()) {}
SimWorkspace::~SimWorkspace() = default;
SimWorkspace::SimWorkspace(SimWorkspace&&) noexcept = default;
SimWorkspace& SimWorkspace::operator=(SimWorkspace&&) noexcept = default;

namespace {

/// The scheduler process: owns all mutable run state; one instance per
/// simulation. The main loop is single-threaded; with `parallel_tuning` the
/// per-policy candidate evaluations additionally run on a private worker
/// pool, each task confined to its own candidate slot.
class SchedulerSim final : public sim::Process {
 public:
  SchedulerSim(const workload::JobSet& set, const SimulationConfig& config,
               SimWorkspace::Impl* ws = nullptr)
      : set_(set),
        config_(config),
        jobs_(set.jobs()),
        table_(set.table()),
        policy_index_(config.initial_index),
        ws_(ws),
        profile_(1),
        base_profile_(1) {
    DYNP_EXPECTS(config.mode == SchedulerMode::kStatic ||
                 (config.decider != nullptr && !config.pool.empty() &&
                  config.initial_index < config.pool.size()));
    // A queueing RMS has no full schedule to evaluate, so the self-tuning
    // dynP step is only defined on the planning semantics.
    DYNP_EXPECTS(config.semantics != PlannerSemantics::kQueueingEasy ||
                 config.mode == SchedulerMode::kStatic);
    if (ws_ != nullptr) adopt_workspace();
    profile_.reset(set.machine().nodes);
    base_profile_.reset(set.machine().nodes);
    outcomes_.resize(jobs_.size());
    reserved_.assign(jobs_.size(), -1.0);
    running_slot_.assign(jobs_.size(), kNotRunning);
    started_mark_.assign(jobs_.size(), 0);
    if (config.mode == SchedulerMode::kDynP) {
      result_.decisions_per_policy.assign(config.pool.size(), 0);
      result_.time_in_policy.assign(config.pool.size(), 0.0);
      rebuild_queues(config.pool);
      candidates_.resize(config.pool.size());
      if (config.parallel_tuning && config.pool.size() > 1) {
        std::size_t threads = config.tuning_threads != 0
                                  ? config.tuning_threads
                                  : std::max<std::size_t>(
                                        1, std::thread::hardware_concurrency());
        threads = std::min(threads, config.pool.size());
        if (config.thread_budget != 0) {
          threads = std::min(threads, config.thread_budget);
        }
        if (threads > 1) {
          workers_ = std::make_unique<util::ThreadPool>(threads);
        }
      }
    } else {
      if (queues_.size() == 1) {
        queues_.front().rebind(config.static_policy, table_);
      } else {
        queues_.clear();
        queues_.emplace_back(config.static_policy, table_);
      }
      candidates_.resize(1);
    }
    reset_candidates();
    slot_reusable_.assign(candidates_.size(), 0);
    if (config.faults.has_value() && config.faults->active()) {
      DYNP_EXPECTS(config.faults->validate().empty());
      injector_ = std::make_unique<fault::FaultInjector>(*config.faults,
                                                         set.machine().nodes);
      attempts_.assign(jobs_.size(), 0);
      fail_at_.assign(jobs_.size(), -1.0);
    }
    if (audit_enabled(config)) {
      // The auditor's pool mirrors the slot layout: the dynP pool, or the
      // single static policy at slot 0.
      std::vector<policies::PolicyKind> audit_pool =
          config.mode == SchedulerMode::kDynP
              ? config.pool
              : std::vector<policies::PolicyKind>{config.static_policy};
      auditor_ = std::make_unique<ScheduleAuditor>(
          set.machine().nodes, table_, std::move(audit_pool),
          config.decider.get());
      audit_views_.resize(candidates_.size());
    }
    if (config.checkpoint.armed()) {
      ckpt_ = std::make_unique<Ckpt>();
      ckpt_->fingerprint = checkpoint_fingerprint(set, config);
    }
#if !defined(DYNP_OBS_DISABLED)
    if (config.instruments.any()) {
      obs_ = std::make_unique<Instruments>();
      obs_->registry = config.instruments.registry;
      obs_->tracer = config.instruments.tracer;
      obs_->profiler = config.instruments.profiler;
      obs_->provenance = config.instruments.provenance;
      if (obs_->provenance != nullptr &&
          config.mode == SchedulerMode::kDynP) {
        std::vector<std::string> pool_names;
        pool_names.reserve(config.pool.size());
        for (const policies::PolicyKind kind : config.pool) {
          pool_names.emplace_back(policies::name(kind));
        }
        obs_->provenance->set_pool(std::move(pool_names));
      }
      if (obs_->registry != nullptr) {
        obs::Registry& reg = *obs_->registry;
        obs_->submit_events = &reg.counter("sim.events.submit");
        obs_->finish_events = &reg.counter("sim.events.finish");
        obs_->jobs_started = &reg.counter("sim.jobs.started");
        obs_->decisions = &reg.counter("sim.decider.decisions");
        obs_->switches = &reg.counter("sim.decider.switches");
        if (config.mode == SchedulerMode::kDynP) {
          obs_->policy_picks.reserve(config.pool.size());
          for (const policies::PolicyKind kind : config.pool) {
            obs_->policy_picks.push_back(&reg.counter(
                std::string("sim.decider.pick.") + policies::name(kind)));
          }
        }
        obs_->queue_depth =
            &reg.histogram("sim.queue_depth", obs::exponential_edges(1, 2, 12));
        obs_->profile_segments = &reg.histogram(
            "planner.profile_segments", obs::exponential_edges(1, 2, 14));
        // Fault counters exist only when injection is armed, so fault-free
        // registry exports stay byte-identical to pre-fault-layer output.
        if (injector_ != nullptr) {
          obs_->node_failures = &reg.counter("fault.node.failures");
          obs_->node_repairs = &reg.counter("fault.node.repairs");
          obs_->job_failures = &reg.counter("fault.job.failures");
          obs_->node_kills = &reg.counter("fault.job.node_kills");
          obs_->requeues = &reg.counter("fault.job.requeues");
          obs_->jobs_dropped = &reg.counter("fault.job.dropped");
        }
        if (config.plan_budget_us > 0) {
          obs_->degraded = &reg.counter("sim.tuning.degraded");
        }
        // Checkpoint/recovery metrics exist only when checkpointing is
        // armed, so un-checkpointed registry exports keep their exact
        // byte layout.
        if (ckpt_ != nullptr) {
          obs_->ckpt_snapshots = &reg.counter("ckpt.snapshots");
          obs_->ckpt_bytes = &reg.counter("ckpt.bytes");
          obs_->replayed_events = &reg.counter("recover.replayed_events");
          obs_->ckpt_write_us = &reg.histogram(
              "ckpt.write_us", obs::exponential_edges(1, 2, 20));
        }
        // Windowed time series over the event-ordinal domain (window k =
        // events [256k, 256(k+1))): deterministic keys, wall-time values
        // for the two latencies, fully deterministic queue depth.
        obs::SeriesOptions latency_options;
        latency_options.window = kSeriesWindowEvents;
        latency_options.capacity = kSeriesCapacity;
        latency_options.edges = obs::default_series_edges_us();
        obs::SeriesOptions depth_options;
        depth_options.window = kSeriesWindowEvents;
        depth_options.capacity = kSeriesCapacity;
        depth_options.edges = obs::exponential_edges(1, 2, 12);
        if (config.mode == SchedulerMode::kDynP) {
          obs_->decision_latency =
              &reg.series("series.decision_latency_us", latency_options);
        }
        obs_->plan_latency =
            &reg.series("series.plan_latency_us", latency_options);
        obs_->queue_depth_series =
            &reg.series("series.queue_depth", depth_options);
      }
      if (obs_->profiler != nullptr && workers_ != nullptr) {
        obs::PhaseProfiler* prof = obs_->profiler;
        workers_->set_task_timer([prof](double wait_us, double run_us) {
          prof->record(obs::Phase::kPoolTaskWait, wait_us);
          prof->record(obs::Phase::kPoolTaskRun, run_us);
        });
      }
    }
#endif
  }

  [[nodiscard]] SimulationResult run() {
    bool restored = false;
    if (ckpt_ != nullptr && !config_.checkpoint.restore_from.empty()) {
      restored = try_restore();
    }
    if (!restored) {
      pending_jobs_ = jobs_.size();
      for (const workload::Job& job : jobs_) {
        engine_.schedule(job.submit, sim::EventKind::kSubmit, job.id);
      }
      if (injector_ != nullptr && injector_->node_faults() && !jobs_.empty()) {
        engine_.schedule(injector_->next_failure_gap(),
                         sim::EventKind::kNodeDown, 0);
      }
    }
    if (ckpt_ != nullptr && config_.checkpoint.snapshots_armed()) {
      // Fresh journal in both cases. After a restore the re-processed
      // events are re-appended as they are replay-verified, rebuilding the
      // journal the crashed run left behind record by record.
      open_journal(engine_.processed());
    }
    if (ckpt_ != nullptr) {
      run_checkpointed();
    } else {
      engine_.run(*this);
    }
    DYNP_ENSURES(waiting_.empty());
    DYNP_ENSURES(running_.empty());
    DYNP_ENSURES(outages_.empty());
    result_.events = engine_.processed();
    if (auditor_ != nullptr) {
      result_.audit_events = auditor_->events();
      result_.audit_checks = auditor_->checks();
    }
    result_.outcomes = std::move(outcomes_);
    result_.summary =
        metrics::summarize(result_.outcomes, set_.machine().nodes);
    return std::move(result_);
  }

  void handle(const sim::Event& event) override {
    DYNP_OBS_SCOPED(profiler(), obs::Phase::kEvent);
    const Time now = engine_.now();
    if (ckpt_ != nullptr) journal_event(event, now);
#if !defined(DYNP_OBS_DISABLED)
    if (obs_ != nullptr) begin_event_record(event, now);
#endif
    if (config_.mode == SchedulerMode::kDynP) {
      // Time-in-policy accounting up to this event.
      result_.time_in_policy[policy_index_] += now - last_event_time_;
      last_event_time_ = now;
    }
    if (guarantee_mode()) profile_.trim_before(now);

    // A scheduling pass follows unless the event turned out to be inert: a
    // tombstoned (stale) finish/failure of an attempt that was killed in the
    // meantime, or a node failure skipped at the concurrency cap. Stale
    // entries exist because the calendar has no remove — a kill leaves the
    // victim's pending finish/failure event behind.
    bool pass = true;
    switch (event.kind) {
      case sim::EventKind::kSubmit:
      case sim::EventKind::kRequeue:
        admit_job(event.job, now, event.kind == sim::EventKind::kSubmit);
        break;
      case sim::EventKind::kFinish:
        if (injector_ != nullptr &&
            (running_slot_[event.job] == kNotRunning ||
             outcomes_[event.job].end != now)) {
          pass = false;
        } else {
          finish_job(event.job, now);
        }
        break;
      case sim::EventKind::kJobFail:
        if (running_slot_[event.job] == kNotRunning ||
            fail_at_[event.job] != now) {
          pass = false;
        } else {
          fail_job(event.job, now);
        }
        break;
      case sim::EventKind::kNodeDown:
        pass = handle_node_down(now);
        break;
      case sim::EventKind::kNodeUp:
        handle_node_up(now);
        break;
    }

    if (pass) {
#if !defined(DYNP_OBS_DISABLED)
      // Waiting count going into the pass; the difference after it is the
      // number of jobs that started at this event.
      const std::size_t waiting_before = waiting_.size();
      // Pass-latency self-measurement (observational only; the read never
      // influences scheduling, so instrumented runs stay byte-identical).
      const bool timed_pass =
          obs_ != nullptr && obs_->plan_latency != nullptr;
      const util::WallInstant pass_start =
          timed_pass ? util::wall_now() : util::WallInstant{};
#endif
      switch (config_.semantics) {
        case PlannerSemantics::kGuarantee:
          guarantee_pass(now, event.kind);
          break;
        case PlannerSemantics::kReplan:
          replan_pass(now, event.kind);
          break;
        case PlannerSemantics::kQueueingEasy:
          queueing_pass(now);
          break;
      }
#if !defined(DYNP_OBS_DISABLED)
      if (timed_pass) {
        obs_->plan_latency->observe(
            static_cast<double>(engine_.processed()),
            util::wall_micros_between(pass_start, util::wall_now()));
      }
      if (obs_ != nullptr) {
        finish_event_record(waiting_before - waiting_.size());
      }
#endif
    } else {
#if !defined(DYNP_OBS_DISABLED)
      if (obs_ != nullptr) finish_event_record(0);
#endif
    }
  }

  /// Returns the borrowed buffers to the workspace (capacity earned during
  /// this run included). Only the `simulate` overload taking a workspace
  /// calls this, after `run`; skipping it merely forfeits the reuse.
  void release_workspace() {
    if (ws_ == nullptr) return;
    ws_->reserved = std::move(reserved_);
    ws_->running_slot = std::move(running_slot_);
    ws_->started_mark = std::move(started_mark_);
    ws_->waiting = std::move(waiting_);
    ws_->due = std::move(due_);
    ws_->insert_pos = std::move(insert_pos_);
    ws_->slot_reusable = std::move(slot_reusable_);
    ws_->candidates = std::move(candidates_);
    ws_->queues = std::move(queues_);
    ws_->profile = std::move(profile_);
    ws_->base_profile = std::move(base_profile_);
    ws_ = nullptr;
  }

 private:
  static constexpr std::uint32_t kNotRunning =
      std::numeric_limits<std::uint32_t>::max();

  using Candidate = detail::TuningCandidate;

  /// Borrows the workspace buffers for this run (constructor only; every
  /// buffer is re-assigned or invalidated below before use).
  void adopt_workspace() {
    reserved_ = std::move(ws_->reserved);
    running_slot_ = std::move(ws_->running_slot);
    started_mark_ = std::move(ws_->started_mark);
    waiting_ = std::move(ws_->waiting);
    due_ = std::move(ws_->due);
    insert_pos_ = std::move(ws_->insert_pos);
    slot_reusable_ = std::move(ws_->slot_reusable);
    candidates_ = std::move(ws_->candidates);
    queues_ = std::move(ws_->queues);
    profile_ = std::move(ws_->profile);
    base_profile_ = std::move(ws_->base_profile);
    waiting_.clear();
    due_.clear();
    insert_pos_.clear();
  }

  /// Re-targets the per-policy queues at this run's pool and job table,
  /// recycling adopted queue storage when the pool width matches.
  void rebuild_queues(const std::vector<policies::PolicyKind>& kinds) {
    if (queues_.size() == kinds.size()) {
      for (std::size_t i = 0; i < kinds.size(); ++i) {
        queues_[i].rebind(kinds[i], table_);
      }
      return;
    }
    queues_.clear();
    queues_.reserve(kinds.size());
    for (const policies::PolicyKind kind : kinds) {
      queues_.emplace_back(kind, table_);
    }
  }

  /// Clears cross-run candidate state after adoption/resize. The planner
  /// scratch caches (width, estimate) job classes keyed only by table
  /// *size*, so a recycled scratch facing a different same-size job table
  /// must drop them; the cumulative plan-stats counters restart at zero so
  /// the per-event attribution diffs in `finish_event_record` stay exact.
  void reset_candidates() {
    for (Candidate& c : candidates_) {
      c.scratch.invalidate_classes();
      c.scratch.reset_stats();
      c.schedule.clear();
    }
  }

#if !defined(DYNP_OBS_DISABLED)
  /// Pre-resolved instrument handles (one registry name lookup at
  /// construction instead of one per event) plus the per-event record
  /// scratch. Built only when the config wires at least one sink; every
  /// use site is additionally compiled out under `-DDYNP_OBS=OFF`.
  struct Instruments {
    obs::Registry* registry = nullptr;
    obs::Tracer* tracer = nullptr;
    obs::PhaseProfiler* profiler = nullptr;

    obs::Counter* submit_events = nullptr;
    obs::Counter* finish_events = nullptr;
    obs::Counter* jobs_started = nullptr;
    obs::Counter* decisions = nullptr;
    obs::Counter* switches = nullptr;
    // Fault-layer counters; registered only when injection is armed (the
    // degradation counter only with a planning budget) so fault-free
    // registry exports keep their exact pre-fault byte layout.
    obs::Counter* node_failures = nullptr;
    obs::Counter* node_repairs = nullptr;
    obs::Counter* job_failures = nullptr;
    obs::Counter* node_kills = nullptr;
    obs::Counter* requeues = nullptr;
    obs::Counter* jobs_dropped = nullptr;
    obs::Counter* degraded = nullptr;
    // Checkpoint/recovery metrics; registered only when checkpointing is
    // armed (same byte-layout-preservation rule as the fault counters).
    obs::Counter* ckpt_snapshots = nullptr;
    obs::Counter* ckpt_bytes = nullptr;
    obs::Counter* replayed_events = nullptr;
    obs::Histogram* ckpt_write_us = nullptr;
    std::vector<obs::Counter*> policy_picks;  ///< pool order (dynP only)
    obs::Histogram* queue_depth = nullptr;
    obs::Histogram* profile_segments = nullptr;

    // Windowed time series (registered only with a registry wired): wall
    // latencies of the tuned decision step and of the whole per-event
    // scheduling pass, and the per-event queue depth, all keyed by event
    // ordinal so the window structure replays deterministically.
    obs::WindowedSeries* decision_latency = nullptr;
    obs::WindowedSeries* plan_latency = nullptr;
    obs::WindowedSeries* queue_depth_series = nullptr;

    obs::ProvenanceTracer* provenance = nullptr;  ///< span emitter (optional)

    obs::SchedEventRecord record;  ///< scratch for the in-flight event
    rms::PlanStats plan_seen;      ///< cumulative totals at the last event
  };

  /// Event-ordinal window width and ring capacity of the per-run series.
  static constexpr double kSeriesWindowEvents = 256;
  static constexpr std::size_t kSeriesCapacity = 64;

  [[nodiscard]] obs::PhaseProfiler* profiler() const noexcept {
    return obs_ != nullptr ? obs_->profiler : nullptr;
  }

  /// Opens the per-event record (called first thing in `handle`).
  void begin_event_record(const sim::Event& event, Time now) {
    obs::SchedEventRecord& r = obs_->record;
    r = obs::SchedEventRecord{};
    r.seq = engine_.processed();  // 1-based ordinal of the current event
    r.sim_time = now;
    r.kind = static_cast<obs::TraceEventKind>(event.kind);
  }

  /// Completes and emits the per-event record after the scheduling pass:
  /// planner work is attributed to this event by diffing the cumulative
  /// per-candidate scratch totals against the previous event's snapshot.
  void finish_event_record(std::size_t started) {
    obs::SchedEventRecord& r = obs_->record;
    r.queue_depth = waiting_.size();
    r.started = started;
    rms::PlanStats total;
    for (const Candidate& c : candidates_) {
      const rms::PlanStats& s = c.scratch.stats();
      total.full_plans += s.full_plans;
      total.incremental_plans += s.incremental_plans;
      total.jobs_placed += s.jobs_placed;
      total.jobs_replayed += s.jobs_replayed;
    }
    r.full_plans = total.full_plans - obs_->plan_seen.full_plans;
    r.incremental_plans =
        total.incremental_plans - obs_->plan_seen.incremental_plans;
    r.jobs_placed = total.jobs_placed - obs_->plan_seen.jobs_placed;
    r.jobs_replayed = total.jobs_replayed - obs_->plan_seen.jobs_replayed;
    obs_->plan_seen = total;
    r.profile_segments = guarantee_mode() ? profile_.segment_count()
                                          : base_profile_.segment_count();
    if (obs_->registry != nullptr) {
      if (r.kind == obs::TraceEventKind::kSubmit) {
        obs_->submit_events->add();
      } else if (r.kind == obs::TraceEventKind::kFinish) {
        obs_->finish_events->add();
      }
      if (started != 0) obs_->jobs_started->add(started);
      obs_->queue_depth->observe(static_cast<double>(r.queue_depth));
      obs_->profile_segments->observe(static_cast<double>(r.profile_segments));
      if (obs_->queue_depth_series != nullptr) {
        obs_->queue_depth_series->observe(static_cast<double>(r.seq),
                                          static_cast<double>(r.queue_depth));
      }
    }
    if (obs_->tracer != nullptr) obs_->tracer->event(r);
    if (obs_->provenance != nullptr && (r.tuned || started != 0)) {
      // The pass chain references the run spans opened by this event's
      // `on_start` hooks, so it is emitted last. `due_` still holds this
      // event's started jobs (it is cleared at the next pass).
      obs::PassRecord pass;
      pass.seq = r.seq;
      pass.sim_time = r.sim_time;
      pass.tuned = r.tuned;
      pass.values = r.decision.values;
      pass.old_index = r.decision.old_index;
      pass.chosen = r.decision.chosen;
      pass.switched = r.switched;
      if (started != 0) pass.started.assign(due_.begin(), due_.end());
      obs_->provenance->on_pass(pass);
    }
  }
#endif

  [[nodiscard]] bool guarantee_mode() const noexcept {
    return config_.semantics == PlannerSemantics::kGuarantee;
  }

  /// Submits and backoff retries both put one job into the waiting set.
  [[nodiscard]] static bool arrival_event(sim::EventKind kind) noexcept {
    return kind == sim::EventKind::kSubmit ||
           kind == sim::EventKind::kRequeue;
  }

  [[nodiscard]] bool tune_at(sim::EventKind trigger) const noexcept {
    if (config_.mode != SchedulerMode::kDynP) return false;
    return arrival_event(trigger) ? config_.tune_on_submit
                                  : config_.tune_on_finish;
  }

  [[nodiscard]] policies::PolicyKind active_policy() const noexcept {
    return config_.mode == SchedulerMode::kStatic
               ? config_.static_policy
               : config_.pool[policy_index_];
  }

  /// The incrementally maintained priority order of the waiting jobs under
  /// \p kind (every pool policy, or the static policy, has a live queue).
  [[nodiscard]] const std::vector<JobId>& ordered_wait(
      policies::PolicyKind kind) const {
    for (const policies::SortedQueue& queue : queues_) {
      if (queue.kind() == kind) return queue.ids();
    }
    DYNP_ASSERT(false);
    return queues_.front().ids();
  }

  /// Runs one candidate-evaluation task per pool policy, sequentially or on
  /// the worker pool. Bit-identical either way: tasks are independent (each
  /// touches only its own candidate slot) and callers consume the results
  /// in pool order.
  void run_tuning_tasks(const std::function<void(std::size_t)>& task) {
    if (workers_ != nullptr) {
      util::parallel_invoke(*workers_, config_.pool.size(), task);
    } else {
      for (std::size_t i = 0; i < config_.pool.size(); ++i) task(i);
    }
  }

  /// Forwards one job-lifecycle stage to the provenance tracer (no-op
  /// without one). Purely observational, like `trace_fault`.
  template <typename Hook>
  void trace_lifecycle(Hook&& hook) {
#if !defined(DYNP_OBS_DISABLED)
    if (obs_ != nullptr && obs_->provenance != nullptr) {
      hook(*obs_->provenance);
    }
#else
    static_cast<void>(hook);
#endif
  }

  /// A job enters the waiting set: a fresh submission or a requeued retry.
  void admit_job(JobId id, Time now, bool fresh) {
    trace_lifecycle([&](obs::ProvenanceTracer& prov) {
      prov.on_admit(id, now, engine_.processed(), fresh);
    });
    waiting_.push_back(id);
    insert_pos_.clear();
    {
      DYNP_OBS_SCOPED(profiler(), obs::Phase::kQueueInsert);
      for (policies::SortedQueue& queue : queues_) {
        insert_pos_.push_back(queue.insert(id));
      }
    }
    if (guarantee_mode()) insert_reservation(id, now);
    if (fresh && config_.observer != nullptr) {
      config_.observer->on_job_submitted(now, jobs_[id]);
    }
  }

  /// Removes a running attempt (finish, fault death, or node kill) from the
  /// running set, releasing its reservation tail in guarantee mode.
  void remove_running(JobId id, Time now) {
    const std::uint32_t slot = running_slot_[id];
    DYNP_ASSERT(slot != kNotRunning && slot < running_.size());
    const rms::RunningJob gone = running_[slot];
    if (guarantee_mode() && gone.estimated_end > now) {
      // Release the phantom tail of the reservation (actual < estimate):
      // this freed capacity is what compression harvests.
      profile_.deallocate(now, gone.estimated_end - now, gone.width);
    }
    // Swap-remove: running-job order is irrelevant (the base profile is a
    // canonical merged representation whatever the allocation order).
    running_[slot] = running_.back();
    running_.pop_back();
    if (slot < running_.size()) running_slot_[running_[slot].id] = slot;
    running_slot_[id] = kNotRunning;
  }

  void finish_job(JobId id, Time now) {
    remove_running(id, now);
    outcomes_[id].end = now;
    ++result_.faults.jobs_completed;
    --pending_jobs_;
    trace_lifecycle([&](obs::ProvenanceTracer& prov) {
      prov.on_finish(id, now, engine_.processed());
    });
    if (config_.observer != nullptr) {
      config_.observer->on_job_finished(now, jobs_[id], outcomes_[id]);
    }
  }

  /// Emits one fault/resilience trace record (no-op without a tracer).
  void trace_fault(const char* what, Time now,
                   std::uint32_t job = obs::FaultRecord::kNoJob,
                   double delay = 0) {
#if !defined(DYNP_OBS_DISABLED)
    if (obs_ == nullptr || obs_->tracer == nullptr) return;
    obs::FaultRecord r;
    r.seq = engine_.processed();
    r.sim_time = now;
    r.what = what;
    r.job = job;
    r.down_nodes = down_nodes_;
    if (job != obs::FaultRecord::kNoJob) r.attempt = attempts_[job];
    r.delay = delay;
    obs_->tracer->fault(r);
#else
    static_cast<void>(what);
    static_cast<void>(now);
    static_cast<void>(job);
    static_cast<void>(delay);
#endif
  }

  /// A running attempt died of its own injected fault: remove it, then
  /// requeue with backoff or drop.
  void fail_job(JobId id, Time now) {
    remove_running(id, now);
    fail_at_[id] = -1.0;
    ++result_.faults.job_failures;
    trace_lifecycle([&](obs::ProvenanceTracer& prov) {
      prov.on_attempt_failed(id, now, engine_.processed(), "job_fail");
    });
#if !defined(DYNP_OBS_DISABLED)
    if (obs_ != nullptr && obs_->job_failures != nullptr) {
      obs_->job_failures->add();
    }
#endif
    trace_fault("job_fail", now, id);
    if (config_.observer != nullptr) {
      config_.observer->on_job_failed(now, jobs_[id], attempts_[id]);
    }
    requeue_or_drop(id, now);
  }

  /// After attempt `attempts_[id]` of job \p id died: schedule a capped
  /// exponential-backoff retry, or drop the job once the retry budget
  /// (`max_retries` requeues) is spent.
  void requeue_or_drop(JobId id, Time now) {
    if (attempts_[id] > injector_->config().max_retries) {
      // The dropped outcome keeps the sentinel width 0 (no valid job has
      // it); the summary and the validator skip such entries.
      outcomes_[id] =
          metrics::JobOutcome{id, jobs_[id].submit, now, now, 0, 0};
      ++result_.faults.jobs_dropped;
      --pending_jobs_;
      trace_lifecycle([&](obs::ProvenanceTracer& prov) {
        prov.on_drop(id, now, engine_.processed());
      });
#if !defined(DYNP_OBS_DISABLED)
      if (obs_ != nullptr && obs_->jobs_dropped != nullptr) {
        obs_->jobs_dropped->add();
      }
#endif
      trace_fault("drop", now, id);
      if (config_.observer != nullptr) {
        config_.observer->on_job_dropped(now, jobs_[id]);
      }
    } else {
      const Time delay = injector_->backoff_delay(id, attempts_[id]);
      engine_.schedule(now + delay, sim::EventKind::kRequeue, id);
      ++result_.faults.requeues;
      trace_lifecycle([&](obs::ProvenanceTracer& prov) {
        prov.on_backoff(id, now, engine_.processed(), delay);
      });
#if !defined(DYNP_OBS_DISABLED)
      if (obs_ != nullptr && obs_->requeues != nullptr) {
        obs_->requeues->add();
      }
#endif
      trace_fault("requeue", now, id, delay);
    }
  }

  /// Kills running attempts until the survivors fit the remaining capacity:
  /// youngest-started-first (the oldest work in progress survives — the
  /// least re-execution waste), ties broken towards the larger id.
  void kill_to_fit(Time now) {
    const std::uint32_t avail = set_.machine().nodes - down_nodes_;
    std::uint32_t used = 0;
    for (const rms::RunningJob& r : running_) used += r.width;
    while (used > avail) {
      JobId victim = running_.front().id;
      for (const rms::RunningJob& r : running_) {
        if (outcomes_[r.id].start > outcomes_[victim].start ||
            (outcomes_[r.id].start == outcomes_[victim].start &&
             r.id > victim)) {
          victim = r.id;
        }
      }
      used -= table_.width(victim);
      remove_running(victim, now);
      fail_at_[victim] = -1.0;
      ++result_.faults.node_kills;
      trace_lifecycle([&](obs::ProvenanceTracer& prov) {
        prov.on_attempt_failed(victim, now, engine_.processed(), "node_kill");
      });
#if !defined(DYNP_OBS_DISABLED)
      if (obs_ != nullptr && obs_->node_kills != nullptr) {
        obs_->node_kills->add();
      }
#endif
      trace_fault("node_kill", now, victim);
      if (config_.observer != nullptr) {
        config_.observer->on_job_failed(now, jobs_[victim],
                                        attempts_[victim]);
      }
      requeue_or_drop(victim, now);
    }
  }

  /// One node fails. Returns true when the failure actually happened (a
  /// scheduling pass must follow); false when it was skipped — at the
  /// concurrent-outage cap, or with the workload already drained (which is
  /// also when the chain stops re-arming, letting the calendar empty).
  bool handle_node_down(Time now) {
    if (pending_jobs_ == 0) return false;
    bool happened = false;
    if (down_nodes_ < injector_->max_concurrent_down()) {
      // The repair duration is drawn only for failures that happen, so the
      // sequential node stream is consumed strictly in event order.
      const Time end = now + injector_->repair_duration();
      ++down_nodes_;
      ++result_.faults.node_failures;
      outages_.push_back(rms::RunningJob{kOutageId, 1, end});
      engine_.schedule(end, sim::EventKind::kNodeUp, 0);
#if !defined(DYNP_OBS_DISABLED)
      if (obs_ != nullptr && obs_->node_failures != nullptr) {
        obs_->node_failures->add();
      }
#endif
      trace_fault("node_down", now);
      kill_to_fit(now);
      if (guarantee_mode()) {
        // Schedule repair: reserve the outage in the live profile, evicting
        // and incrementally re-placing only the guarantees in its way.
        const rms::Planner::RepairResult repaired =
            rms::Planner::repair_capacity_drop(
                profile_, reserved_, ordered_wait(active_policy()), table_,
                now, end, 1);
        result_.faults.repair_evictions += repaired.evicted;
      }
      happened = true;
    }
    engine_.schedule(now + injector_->next_failure_gap(),
                     sim::EventKind::kNodeDown, 0);
    return happened;
  }

  /// A failed node returns: retire its outage. In guarantee mode the outage
  /// reservation expires by itself at exactly this instant; the compression
  /// in the following pass pulls guarantees forward onto the regained node.
  void handle_node_up(Time now) {
    bool found = false;
    for (std::size_t i = 0; i < outages_.size(); ++i) {
      if (outages_[i].estimated_end == now) {
        outages_[i] = outages_.back();
        outages_.pop_back();
        found = true;
        break;
      }
    }
    DYNP_ASSERT(found && down_nodes_ >= 1);
    --down_nodes_;
    ++result_.faults.node_repairs;
#if !defined(DYNP_OBS_DISABLED)
    if (obs_ != nullptr && obs_->node_repairs != nullptr) {
      obs_->node_repairs->add();
    }
#endif
    trace_fault("node_up", now);
  }

  /// Claims the active node outages in \p profile as width-1 blocks lasting
  /// until their repair instants (no-op in fault-free runs).
  void apply_outages(rms::ResourceProfile& profile, Time now) const {
    for (const rms::RunningJob& outage : outages_) {
      if (outage.estimated_end > now) {
        profile.allocate(now, outage.estimated_end - now, outage.width);
      }
    }
  }

  /// Degraded-mode gate for one would-be self-tuning step: inside the
  /// post-overrun window the step is skipped and the decider's fallback
  /// policy takes over (recorded on the policy timeline, but not as a
  /// decision — no candidate values exist).
  [[nodiscard]] bool degraded(Time now) {
    if (config_.plan_budget_us <= 0 ||
        engine_.processed() > degrade_until_event_) {
      return false;
    }
    ++result_.faults.degraded_tunings;
#if !defined(DYNP_OBS_DISABLED)
    if (obs_ != nullptr && obs_->degraded != nullptr) obs_->degraded->add();
#endif
    const std::optional<std::size_t> fallback =
        config_.decider->fallback_index();
    if (fallback.has_value() && *fallback != policy_index_) {
      result_.policy_timeline.push_back(
          SimulationResult::PolicySwitch{now, policy_index_, *fallback});
      policy_index_ = *fallback;
    }
    return true;
  }

  /// True when this run self-measures its tuned decision step: for the
  /// degraded-mode budget, for the decision-latency series, or both (one
  /// clock read pair serves both consumers).
  [[nodiscard]] bool timed_tuning() const noexcept {
#if !defined(DYNP_OBS_DISABLED)
    if (obs_ != nullptr && obs_->decision_latency != nullptr) return true;
#endif
    return config_.plan_budget_us > 0;
  }

  /// Consumes one tuned-step measurement: arms the degradation window when
  /// a budget is set and the pass blew it, and feeds the decision-latency
  /// series when one is registered.
  void note_tuning_cost(util::WallInstant start) {
    const double spent_us = util::wall_micros_between(start, util::wall_now());
    if (config_.plan_budget_us > 0 && spent_us > config_.plan_budget_us) {
      degrade_until_event_ = engine_.processed() + kDegradeWindow;
    }
#if !defined(DYNP_OBS_DISABLED)
    if (obs_ != nullptr && obs_->decision_latency != nullptr) {
      obs_->decision_latency->observe(static_cast<double>(engine_.processed()),
                                      spent_us);
    }
#endif
  }

  /// Records a decision and returns the chosen pool index.
  std::size_t decide(const DecisionInput& input, Time now) {
    std::size_t chosen;
    {
      DYNP_OBS_SCOPED(profiler(), obs::Phase::kDecide);
      chosen = config_.decider->decide(input);
    }
    DYNP_ASSERT(chosen < config_.pool.size());
#if !defined(DYNP_OBS_DISABLED)
    // Record the verdict before `policy_index_` mutates below, while the
    // old/new comparison is still observable.
    if (obs_ != nullptr) {
      obs::SchedEventRecord& r = obs_->record;
      r.tuned = true;
      r.decision.values = input.values;
      r.decision.old_index = input.old_index;
      r.decision.chosen = chosen;
      r.switched = chosen != policy_index_;
      if (obs_->registry != nullptr) {
        obs_->decisions->add();
        obs_->policy_picks[chosen]->add();
        if (chosen != policy_index_) obs_->switches->add();
      }
    }
#endif
    if (config_.observer != nullptr) {
      config_.observer->on_decision(now, input, chosen);
    }
    ++result_.decisions;
    ++result_.decisions_per_policy[chosen];
    if (chosen != policy_index_) {
      ++result_.switches;
      result_.policy_timeline.push_back(
          SimulationResult::PolicySwitch{now, policy_index_, chosen});
      policy_index_ = chosen;
    }
    return chosen;
  }

  void record_start(JobId id, Time now) {
    trace_lifecycle([&](obs::ProvenanceTracer& prov) {
      prov.on_start(id, now, engine_.processed());
    });
    const workload::Job& job = jobs_[id];
    outcomes_[id] = metrics::JobOutcome{
        id,        job.submit,          now, now + job.actual_runtime,
        job.width, job.actual_runtime};
    running_slot_[id] = static_cast<std::uint32_t>(running_.size());
    running_.push_back(
        rms::RunningJob{id, job.width, now + job.estimated_runtime});
    if (injector_ != nullptr) {
      // This attempt's fate is a pure function of (job, attempt), so fault
      // histories replay identically whatever the planning path. A doomed
      // attempt schedules only its failure — never a finish it cannot reach.
      const std::uint32_t attempt = attempts_[id]++;
      const Time offset =
          injector_->failure_offset(id, attempt, job.actual_runtime);
      if (offset >= 0) {
        fail_at_[id] = now + offset;
        engine_.schedule(now + offset, sim::EventKind::kJobFail, id);
      } else {
        fail_at_[id] = -1.0;
        engine_.schedule(now + job.actual_runtime, sim::EventKind::kFinish,
                         id);
      }
    } else {
      engine_.schedule(now + job.actual_runtime, sim::EventKind::kFinish, id);
    }
    if (config_.observer != nullptr) {
      config_.observer->on_job_started(now, job);
    }
  }

  /// Starts every job in `due_` and removes them from the waiting set and
  /// all policy queues via the JobId-indexed mark vector — one linear pass
  /// per container instead of a nested find per member.
  void start_due(Time now) {
    if (due_.empty()) return;
    DYNP_OBS_SCOPED(profiler(), obs::Phase::kCommit);
    for (const JobId id : due_) record_start(id, now);
    for (const JobId id : due_) started_mark_[id] = 1;
    std::erase_if(waiting_,
                  [this](JobId id) { return started_mark_[id] != 0; });
    for (policies::SortedQueue& queue : queues_) {
      queue.remove_marked(started_mark_);
    }
    for (const JobId id : due_) started_mark_[id] = 0;
  }

  // ----- kReplan semantics: full schedule from scratch at every event -----

  /// True iff candidate \p c's stored schedule can seed an incremental
  /// replan at \p now: a planned start that slid into the past would be
  /// re-planned at or after `now` by a fresh pass, so the stored prefix
  /// would no longer be verbatim-reproducible.
  [[nodiscard]] static bool replayable_at(const Candidate& c, Time now) {
    for (const rms::PlannedJob& p : c.schedule.entries()) {
      if (p.start < now) return false;
    }
    return true;
  }

  /// Plans candidate slot \p i (slot index == queue index == pool index) for
  /// the event at \p now. On a submit event with a reusable slot — the
  /// previous pass planned this slot against the current waiting set minus
  /// the new job, and no planned start slid into the past — the replan is
  /// incremental; otherwise it is a full pass. A finish event always replans
  /// fully (freed capacity can move any start) and thereby re-arms the slot.
  void plan_candidate(std::size_t i, Time now, bool submit_event) {
    Candidate& c = candidates_[i];
    if (submit_event && slot_reusable_[i] != 0 && replayable_at(c, now)) {
      DYNP_OBS_SCOPED(profiler(), obs::Phase::kPlanIncremental);
      rms::Planner::replan_inserted_into(base_profile_, now, queues_[i].ids(),
                                         insert_pos_[i], table_, c.scratch,
                                         c.schedule);
    } else {
      DYNP_OBS_SCOPED(profiler(), obs::Phase::kPlanFull);
      rms::Planner::plan_into(base_profile_, now, queues_[i].ids(), table_,
                              c.scratch, c.schedule);
    }
  }

  void replan_pass(Time now, sim::EventKind trigger) {
    if (waiting_.empty()) {
      std::fill(slot_reusable_.begin(), slot_reusable_.end(), char{0});
      return;
    }
    const bool tuned = tune_at(trigger) && !degraded(now);
    const bool submit_event = arrival_event(trigger);
    // The running-jobs profile is identical for every candidate: build it
    // once per event and let each candidate copy it. Active node outages
    // claim their nodes like running jobs, until repair.
    {
      DYNP_OBS_SCOPED(profiler(), obs::Phase::kBaseProfile);
      rms::Planner::base_profile_into(set_.machine().nodes, now, running_,
                                      base_profile_);
      apply_outages(base_profile_, now);
    }
    std::size_t chosen;
    DecisionInput input;  // outlives decide() so the auditor can re-check it
    if (tuned) {
      const bool timed = timed_tuning();
      const util::WallInstant tuning_start =
          timed ? util::wall_now() : util::WallInstant{};
      input.values.reserve(config_.pool.size());
      input.old_index = policy_index_;
      run_tuning_tasks([&](std::size_t i) {
        Candidate& c = candidates_[i];
        plan_candidate(i, now, submit_event);
        DYNP_OBS_SCOPED(profiler(), obs::Phase::kPreviewScore);
        c.value = metrics::evaluate_preview(config_.preview, c.schedule,
                                            table_, now);
      });
      for (const Candidate& c : candidates_) input.values.push_back(c.value);
      chosen = decide(input, now);
      if (timed) note_tuning_cost(tuning_start);
    } else {
      // Static mode keeps its single queue/candidate at slot 0; a non-tuning
      // dynP pass uses the active policy's slot (queues_ is in pool order).
      chosen = config_.mode == SchedulerMode::kStatic ? 0 : policy_index_;
      plan_candidate(chosen, now, submit_event);
    }

    if (auditor_ != nullptr) {
      std::fill(audit_views_.begin(), audit_views_.end(), nullptr);
      for (std::size_t i = 0; i < candidates_.size(); ++i) {
        if (tuned || i == chosen) audit_views_[i] = &candidates_[i].schedule;
      }
      auditor_->audit_replan_pass(
          AuditEvent{engine_.processed(), now, tuned, chosen,
                     tuned ? &input : nullptr},
          running_, waiting_, queues_, base_profile_, audit_views_,
          outages_);
    }

    due_.clear();
    candidates_[chosen].schedule.starting_at_into(now, due_);
    // Which slots can seed the next event's incremental replan? A slot must
    // have been planned *this* pass (its schedule matches the waiting set),
    // and must survive this event's starts. Starting jobs invalidates every
    // slot except the chosen one: a started job's allocation in the chosen
    // slot's profile is exactly its reservation in the next base profile
    // (same interval, from the same instant), so dropping its schedule entry
    // keeps that slot consistent — while the other slots planned the job at
    // a different place and must replan from scratch.
    for (std::size_t i = 0; i < slot_reusable_.size(); ++i) {
      const bool planned = tuned || i == chosen;
      slot_reusable_[i] =
          planned && (due_.empty() || i == chosen) ? char{1} : char{0};
    }
    if (!due_.empty()) candidates_[chosen].schedule.drop_started(now);
    start_due(now);
  }

  // ----- kGuarantee semantics: reservations + policy-ordered compression --

  /// Places a newly submitted job at its earliest feasible start without
  /// moving any existing reservation; this start is the job's guarantee.
  void insert_reservation(JobId id, Time now) {
    const std::uint32_t width = table_.width(id);
    const Time estimate = table_.estimate(id);
    const Time start = profile_.earliest_start(now, width, estimate);
    profile_.allocate(start, estimate, width);
    reserved_[id] = start;
  }

  /// One compression sweep in \p order: every waiting job is re-placed at
  /// its earliest feasible start, which is never later than its current
  /// reservation (its own old slot is always available again). Returns the
  /// number of jobs that moved.
  static std::size_t compress_once(rms::ResourceProfile& profile,
                                   std::vector<Time>& reserved,
                                   const std::vector<JobId>& order,
                                   const workload::JobTable& jobs, Time now) {
    std::size_t moves = 0;
    for (const JobId id : order) {
      const std::uint32_t width = jobs.width(id);
      const Time estimate = jobs.estimate(id);
      DYNP_ASSERT(reserved[id] >= now);
      profile.deallocate(reserved[id], estimate, width);
      const Time start = profile.earliest_start(now, width, estimate);
      DYNP_ASSERT(start <= reserved[id]);
      if (start < reserved[id]) {
        reserved[id] = start;
        ++moves;
      }
      profile.allocate(start, estimate, width);
    }
    return moves;
  }

  /// Compression to fixpoint (moving one job can unblock another that was
  /// processed earlier in the sweep). Terminates: every sweep with a move
  /// strictly decreases the sum of reservations, and a sweep without moves
  /// ends the loop.
  static void compress(rms::ResourceProfile& profile,
                       std::vector<Time>& reserved,
                       const std::vector<JobId>& order,
                       const workload::JobTable& jobs, Time now) {
    constexpr int kMaxSweeps = 64;
    for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
      if (compress_once(profile, reserved, order, jobs, now) == 0) break;
    }
  }

  /// Builds the preview schedule of the waiting jobs from \p reserved into
  /// \p out (storage reused).
  void preview_into(const std::vector<Time>& reserved,
                    rms::Schedule& out) const {
    out.clear();
    for (const JobId id : waiting_) {
      out.push_back(rms::PlannedJob{id, reserved[id]});
    }
  }

  void guarantee_pass(Time now, sim::EventKind trigger) {
    if (waiting_.empty()) return;

    const bool tuned = tune_at(trigger) && !degraded(now);
    std::size_t chosen = policy_index_;
    DecisionInput input;  // outlives decide() so the auditor can re-check it
    if (tuned) {
      const bool timed = timed_tuning();
      const util::WallInstant tuning_start =
          timed ? util::wall_now() : util::WallInstant{};
      // One compressed candidate per pool policy, each on its own copy of
      // the reservation state; the chosen candidate becomes reality.
      input.values.reserve(config_.pool.size());
      input.old_index = policy_index_;
      run_tuning_tasks([&](std::size_t i) {
        Candidate& c = candidates_[i];
        c.profile = profile_;
        c.reserved = reserved_;
        {
          DYNP_OBS_SCOPED(profiler(), obs::Phase::kCompress);
          compress(c.profile, c.reserved, ordered_wait(config_.pool[i]),
                   table_, now);
        }
        preview_into(c.reserved, c.schedule);
        DYNP_OBS_SCOPED(profiler(), obs::Phase::kPreviewScore);
        c.value = metrics::evaluate_preview(config_.preview, c.schedule,
                                            table_, now);
      });
      for (const Candidate& c : candidates_) input.values.push_back(c.value);
      chosen = decide(input, now);
      profile_ = candidates_[chosen].profile;
      reserved_ = candidates_[chosen].reserved;
      if (timed) note_tuning_cost(tuning_start);
    } else {
      DYNP_OBS_SCOPED(profiler(), obs::Phase::kCompress);
      compress(profile_, reserved_, ordered_wait(active_policy()), table_,
               now);
    }

    if (auditor_ != nullptr) {
      auditor_->audit_guarantee_pass(
          AuditEvent{engine_.processed(), now, tuned, chosen,
                     tuned ? &input : nullptr},
          running_, waiting_, queues_, profile_, reserved_, outages_);
    }

    // Jobs whose reservation came due start now; their allocation is already
    // in the profile and simply carries over as the running reservation.
    due_.clear();
    for (const JobId id : waiting_) {
      DYNP_ASSERT(reserved_[id] >= now);
      if (reserved_[id] <= now) due_.push_back(id);
    }
    start_due(now);
  }

  // ----- kQueueingEasy semantics: policy queue + EASY backfilling ---------

  /// EASY scheduling cycle (Lifka's algorithm on top of a policy-ordered
  /// queue): start queue-head jobs while they fit; when the head does not
  /// fit, compute its *shadow time* (earliest start given the running jobs'
  /// estimated ends) and the *extra* nodes left at that instant, then let
  /// later jobs start immediately iff they either finish (by estimate)
  /// before the shadow time or use no more than the extra nodes — i.e. they
  /// never delay the head's reservation.
  void queueing_pass(Time now) {
    if (waiting_.empty()) return;
    const std::vector<JobId>& queue = ordered_wait(active_policy());
    due_.clear();

    // Down nodes are unavailable exactly like busy ones (`kill_to_fit` has
    // already culled the running set to the reduced machine).
    std::uint32_t used = down_nodes_;
    for (const rms::RunningJob& r : running_) used += r.width;
    const std::uint32_t capacity = set_.machine().nodes;

    std::size_t head = 0;
    // Phase 1: the queue drains in policy order while jobs fit.
    while (head < queue.size() &&
           table_.width(queue[head]) <= capacity - used) {
      used += table_.width(queue[head]);
      due_.push_back(queue[head]);
      ++head;
    }

    if (head < queue.size()) {
      // Phase 2: reservation for the blocked head, then one backfill sweep.
      const std::uint32_t blocked_width = table_.width(queue[head]);
      rms::Planner::base_profile_into(capacity, now, running_, base_profile_);
      apply_outages(base_profile_, now);
      const Time shadow = base_profile_.earliest_start(
          now, blocked_width, table_.estimate(queue[head]));
      const std::uint32_t free_at_shadow = base_profile_.free_at(shadow);
      std::uint32_t extra =
          free_at_shadow >= blocked_width ? free_at_shadow - blocked_width : 0;

      for (std::size_t i = head + 1; i < queue.size(); ++i) {
        const std::uint32_t width = table_.width(queue[i]);
        if (width > capacity - used) continue;
        const bool ends_before_shadow =
            now + table_.estimate(queue[i]) <= shadow;
        const bool fits_extra = width <= extra;
        if (ends_before_shadow || fits_extra) {
          used += width;
          due_.push_back(queue[i]);
          // A backfill running past the shadow time consumes the slack the
          // head job leaves at its reservation.
          if (!ends_before_shadow) extra -= width;
        }
      }
    }

    if (auditor_ != nullptr) {
      auditor_->audit_queueing_pass(
          AuditEvent{engine_.processed(), now, false, 0, nullptr}, running_,
          waiting_, queues_, due_, outages_);
    }

    start_due(now);
  }

  // ----- Crash-consistent checkpoint/restore (src/ckpt) -------------------

  /// Live checkpoint state (null unless `config.checkpoint.armed()`): the
  /// run-identity fingerprint, the write-ahead journal, and the journal
  /// suffix a restored run replay-verifies.
  struct Ckpt {
    std::uint64_t fingerprint = 0;
    ckpt::Journal journal;
    std::vector<ckpt::JournalRecord> replay;
    std::size_t replay_next = 0;
  };

  static constexpr std::size_t kSnapshotsKept = 3;

  [[nodiscard]] std::string journal_path() const {
    return config_.checkpoint.dir + "/journal.wal";
  }

  void open_journal(std::uint64_t base_seq) {
    // Journal I/O failure is never fatal: the run continues, only crash
    // recovery past the last snapshot degrades.
    (void)ckpt_->journal.open_fresh(journal_path(), ckpt_->fingerprint,
                                    base_seq);
  }

  /// Restores from `checkpoint.restore_from` (a snapshot file or a
  /// checkpoint directory). Returns false when no valid snapshot exists —
  /// the run then starts fresh; rejected (torn, corrupt, foreign) files are
  /// still reported through the result so callers can surface the rollback.
  [[nodiscard]] bool try_restore() {
    ckpt::RestoreScan scan = ckpt::find_restore_source(
        config_.checkpoint.restore_from, ckpt_->fingerprint);
    result_.recovery.rejected_snapshots = std::move(scan.rejected);
    if (!scan.snapshot.has_value()) return false;
    ckpt::LoadedSnapshot& snap = *scan.snapshot;
    ckpt::SimState state;
    if (!ckpt::SimState::decode(snap.payload, state)) {
      // Hash-valid but undecodable: written by an incompatible binary.
      result_.recovery.rejected_snapshots.push_back(snap.path);
      return false;
    }
    load_replay_journal(snap);
    apply_state(state);
    result_.recovery.restored_from = snap.path;
    result_.recovery.restored_seq = snap.meta.seq;
    return true;
  }

  /// Reads the write-ahead journal next to the restored snapshot; its
  /// record suffix becomes the replay-verification script for the
  /// re-processed events. A journal based on a different snapshot (e.g.
  /// rotated at a newer, torn snapshot we rolled back past) or a different
  /// configuration is ignored — there is nothing sound to verify against.
  void load_replay_journal(const ckpt::LoadedSnapshot& snap) {
    const std::size_t slash = snap.path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? std::string(".") : snap.path.substr(0, slash);
    const std::optional<ckpt::Journal::Contents> journal =
        ckpt::Journal::read_file(dir + "/journal.wal");
    if (!journal.has_value() ||
        journal->config_fingerprint != ckpt_->fingerprint ||
        journal->base_seq != snap.meta.seq) {
      return;
    }
    ckpt_->replay = journal->records;
  }

  /// Write-ahead hook, first thing in `handle`: the event about to be
  /// processed is appended and pushed to the OS before any state mutates,
  /// so after a crash the journal names exactly the events since the last
  /// snapshot. While a restored run is inside the replayed suffix, each
  /// regenerated event is additionally verified against the crashed run's
  /// journal — a mismatch would be a determinism bug.
  void journal_event(const sim::Event& event, Time now) {
    const ckpt::JournalRecord rec{engine_.processed(), now,
                                  static_cast<std::uint8_t>(event.kind),
                                  event.job};
    if (ckpt_->replay_next < ckpt_->replay.size()) {
      DYNP_ASSERT(rec == ckpt_->replay[ckpt_->replay_next]);
      ++ckpt_->replay_next;
      ++result_.recovery.replayed_events;
#if !defined(DYNP_OBS_DISABLED)
      if (obs_ != nullptr && obs_->replayed_events != nullptr) {
        obs_->replayed_events->add();
      }
#endif
    }
    if (ckpt_->journal.is_open()) ckpt_->journal.append(rec);
  }

  /// The checkpointed main loop: runs the engine in bounded chunks so the
  /// quiescent inter-event boundaries line up with snapshot instants (every
  /// N events) and with the chaos harness's SIGKILL crash hook.
  void run_checkpointed() {
    const ckpt::CheckpointOptions& co = config_.checkpoint;
    constexpr std::uint64_t kNoStop =
        std::numeric_limits<std::uint64_t>::max();
    for (;;) {
      std::uint64_t stop = kNoStop;
      if (co.snapshots_armed()) {
        stop = std::min(stop, (engine_.processed() / co.every + 1) * co.every);
      }
      if (co.kill_after_event > engine_.processed()) {
        stop = std::min(stop, co.kill_after_event);
      }
      if (stop == kNoStop) {
        engine_.run(*this);
        return;
      }
      const bool drained =
          engine_.run_bounded(*this, stop - engine_.processed());
      if (co.kill_after_event != 0 &&
          engine_.processed() >= co.kill_after_event) {
        // Chaos crash hook: die exactly as an external SIGKILL would — no
        // flushing, no destructors. Unreachable code past this point.
        (void)std::raise(SIGKILL);
      }
      if (drained) return;
      if (co.snapshots_armed() && engine_.processed() % co.every == 0) {
        take_snapshot();
      }
    }
  }

  /// Captures and atomically publishes one snapshot, then rotates the
  /// journal (records before the snapshot retire with the older snapshots).
  void take_snapshot() {
#if !defined(DYNP_OBS_DISABLED)
    // Make the trace durable up to the snapshot point: a later crash then
    // loses at most the torn tail of the post-snapshot trace suffix.
    if (obs_ != nullptr && obs_->tracer != nullptr) obs_->tracer->flush();
    const bool timed = obs_ != nullptr && obs_->ckpt_write_us != nullptr;
    const util::WallInstant start =
        timed ? util::wall_now() : util::WallInstant{};
#endif
    ckpt::SnapshotMeta meta;
    meta.config_fingerprint = ckpt_->fingerprint;
    meta.seq = engine_.processed();
    meta.sim_time = engine_.now();
    meta.build = config_.checkpoint.build_tag;
    std::uint64_t bytes = 0;
    const std::string payload = capture_state().encode();
    if (!ckpt::write_snapshot(config_.checkpoint.dir, meta, payload,
                              kSnapshotsKept, &bytes)) {
      return;  // I/O failure: keep running, just un-checkpointed
    }
    ++result_.recovery.snapshots_written;
    open_journal(meta.seq);
#if !defined(DYNP_OBS_DISABLED)
    if (obs_ != nullptr && obs_->ckpt_snapshots != nullptr) {
      obs_->ckpt_snapshots->add();
      obs_->ckpt_bytes->add(bytes);
      if (timed) {
        obs_->ckpt_write_us->observe(
            util::wall_micros_between(start, util::wall_now()));
      }
    }
#endif
  }

  /// Serializes the full quiescent state. Called between events only; the
  /// event-scoped scratch (`due_`, `insert_pos_`, base profile, planner
  /// caches) is excluded by design — see `ckpt::SimState`.
  [[nodiscard]] ckpt::SimState capture_state() const {
    ckpt::SimState s;
    s.now = engine_.now();
    s.processed = engine_.processed();
    s.next_seq = engine_.queue().next_seq();
    s.last_popped_time = engine_.queue().last_popped_time();
    const std::vector<sim::Event> pending = engine_.queue().sorted_events();
    s.events.reserve(pending.size());
    for (const sim::Event& e : pending) {
      s.events.push_back(ckpt::EventRec{
          e.time, static_cast<std::uint8_t>(e.kind), e.job, e.seq});
    }
    s.policy_index = policy_index_;
    s.last_event_time = last_event_time_;
    s.waiting = waiting_;
    s.running.reserve(running_.size());
    for (const rms::RunningJob& r : running_) {
      s.running.push_back(ckpt::RunningRec{r.id, r.width, r.estimated_end});
    }
    s.outcomes.reserve(outcomes_.size());
    for (const metrics::JobOutcome& o : outcomes_) {
      s.outcomes.push_back(ckpt::OutcomeRec{o.id, o.submit, o.start, o.end,
                                            o.width, o.actual_runtime});
    }
    s.candidates.reserve(candidates_.size());
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      ckpt::CandidateRec c;
      c.reusable = static_cast<std::uint8_t>(slot_reusable_[i]);
      for (const rms::PlannedJob& p : candidates_[i].schedule.entries()) {
        c.plan.push_back(ckpt::PlannedRec{p.id, p.start});
      }
      if (c.reusable != 0) {
        // A reusable slot's next replan may extend the scratch's retained
        // pass-end profile in place (tail insertion), so that profile is
        // part of the resumable state, not a re-derivable cache.
        const rms::ResourceProfile& retained =
            candidates_[i].scratch.retained_profile();
        c.profile_capacity = retained.capacity();
        c.profile_starts = retained.segment_starts();
        c.profile_frees = retained.segment_frees();
      }
      s.candidates.push_back(std::move(c));
    }
    s.pending_jobs = pending_jobs_;
    s.degrade_until_event = degrade_until_event_;
    s.decisions = result_.decisions;
    s.switches = result_.switches;
    s.decisions_per_policy = result_.decisions_per_policy;
    s.time_in_policy = result_.time_in_policy;
    s.timeline.reserve(result_.policy_timeline.size());
    for (const SimulationResult::PolicySwitch& sw : result_.policy_timeline) {
      s.timeline.push_back(ckpt::SwitchRec{sw.when, sw.from, sw.to});
    }
    s.fault_stats = {
        result_.faults.node_failures,    result_.faults.node_repairs,
        result_.faults.job_failures,     result_.faults.node_kills,
        result_.faults.requeues,         result_.faults.jobs_dropped,
        result_.faults.jobs_completed,   result_.faults.repair_evictions,
        result_.faults.degraded_tunings};
    if (guarantee_mode()) {
      s.has_profile = 1;
      s.profile_capacity = profile_.capacity();
      s.profile_starts = profile_.segment_starts();
      s.profile_frees = profile_.segment_frees();
      s.reserved = reserved_;
    }
    if (injector_ != nullptr) {
      s.has_faults = 1;
      s.node_rng = injector_->node_rng_state();
      s.attempts = attempts_;
      s.fail_at = fail_at_;
      s.outages.reserve(outages_.size());
      for (const rms::RunningJob& o : outages_) {
        s.outages.push_back(ckpt::RunningRec{o.id, o.width, o.estimated_end});
      }
      s.down_nodes = down_nodes_;
    }
    return s;
  }

  /// Reinstates a decoded snapshot; the exact inverse of `capture_state`,
  /// applied to a fresh scheduler before any event. The payload already
  /// passed content-hash and fingerprint validation, so structural
  /// mismatches here are bugs, not bad input — they trip contracts. The
  /// per-policy sorted queues are rebuilt by re-inserting the waiting set
  /// (their order is unique and audit-verified, so re-insertion in any
  /// order reproduces them exactly).
  void apply_state(const ckpt::SimState& s) {
    DYNP_EXPECTS(s.outcomes.size() == jobs_.size());
    DYNP_EXPECTS(s.candidates.size() == candidates_.size());
    std::vector<sim::Event> events;
    events.reserve(s.events.size());
    for (const ckpt::EventRec& e : s.events) {
      events.push_back(sim::Event{
          e.time, static_cast<sim::EventKind>(e.kind), e.job, e.seq});
    }
    engine_.restore(s.now, s.processed, events, s.next_seq,
                    s.last_popped_time);
    policy_index_ = s.policy_index;
    DYNP_EXPECTS(config_.mode == SchedulerMode::kStatic ||
                 policy_index_ < config_.pool.size());
    last_event_time_ = s.last_event_time;
    waiting_ = s.waiting;
    running_.clear();
    running_.reserve(s.running.size());
    for (const ckpt::RunningRec& r : s.running) {
      running_.push_back(rms::RunningJob{r.id, r.width, r.estimated_end});
    }
    for (std::size_t i = 0; i < s.outcomes.size(); ++i) {
      const ckpt::OutcomeRec& o = s.outcomes[i];
      outcomes_[i] = metrics::JobOutcome{o.id,  o.submit, o.start,
                                         o.end, o.width,  o.actual_runtime};
    }
    std::fill(running_slot_.begin(), running_slot_.end(), kNotRunning);
    for (std::size_t i = 0; i < running_.size(); ++i) {
      DYNP_EXPECTS(running_[i].id < running_slot_.size());
      running_slot_[running_[i].id] = static_cast<std::uint32_t>(i);
    }
    for (policies::SortedQueue& queue : queues_) {
      for (const JobId id : waiting_) {
        DYNP_EXPECTS(id < jobs_.size());
        queue.insert(id);
      }
    }
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const ckpt::CandidateRec& c = s.candidates[i];
      rms::Schedule& schedule = candidates_[i].schedule;
      schedule.clear();
      for (const ckpt::PlannedRec& p : c.plan) {
        schedule.push_back(rms::PlannedJob{p.id, p.start});
      }
      slot_reusable_[i] = static_cast<char>(c.reusable);
      if (c.reusable != 0) {
        // Re-prime the scratch the reusable flag points at: the next event
        // may route straight into the tail-insertion replan, which extends
        // this profile without a rebuilding pass.
        rms::ResourceProfile retained(1);
        retained.restore_segments(c.profile_capacity, c.profile_starts,
                                  c.profile_frees);
        rms::Planner::adopt_retained(candidates_[i].scratch,
                                     std::move(retained), table_);
      }
    }
    pending_jobs_ = s.pending_jobs;
    degrade_until_event_ = s.degrade_until_event;
    result_.decisions = s.decisions;
    result_.switches = s.switches;
    if (config_.mode == SchedulerMode::kDynP) {
      DYNP_EXPECTS(s.decisions_per_policy.size() == config_.pool.size() &&
                   s.time_in_policy.size() == config_.pool.size());
      result_.decisions_per_policy = s.decisions_per_policy;
      result_.time_in_policy = s.time_in_policy;
    }
    result_.policy_timeline.clear();
    for (const ckpt::SwitchRec& sw : s.timeline) {
      result_.policy_timeline.push_back(SimulationResult::PolicySwitch{
          sw.when, static_cast<std::size_t>(sw.from),
          static_cast<std::size_t>(sw.to)});
    }
    result_.faults.node_failures = s.fault_stats[0];
    result_.faults.node_repairs = s.fault_stats[1];
    result_.faults.job_failures = s.fault_stats[2];
    result_.faults.node_kills = s.fault_stats[3];
    result_.faults.requeues = s.fault_stats[4];
    result_.faults.jobs_dropped = s.fault_stats[5];
    result_.faults.jobs_completed = s.fault_stats[6];
    result_.faults.repair_evictions = s.fault_stats[7];
    result_.faults.degraded_tunings = s.fault_stats[8];
    DYNP_EXPECTS((s.has_profile != 0) == guarantee_mode());
    if (s.has_profile != 0) {
      DYNP_EXPECTS(s.reserved.size() == jobs_.size());
      profile_.restore_segments(s.profile_capacity, s.profile_starts,
                                s.profile_frees);
      reserved_ = s.reserved;
    }
    DYNP_EXPECTS((s.has_faults != 0) == (injector_ != nullptr));
    if (s.has_faults != 0) {
      DYNP_EXPECTS(s.attempts.size() == jobs_.size() &&
                   s.fail_at.size() == jobs_.size());
      injector_->set_node_rng_state(s.node_rng);
      attempts_ = s.attempts;
      fail_at_ = s.fail_at;
      outages_.clear();
      outages_.reserve(s.outages.size());
      for (const ckpt::RunningRec& o : s.outages) {
        outages_.push_back(rms::RunningJob{o.id, o.width, o.estimated_end});
      }
      down_nodes_ = s.down_nodes;
    }
  }

  const workload::JobSet& set_;
  const SimulationConfig& config_;
  /// AoS job records: observer callbacks, outcomes and fault bookkeeping.
  const std::vector<workload::Job>& jobs_;
  /// SoA view of the same jobs: everything the planner, policies, metrics
  /// and audit layers touch per event reads the dense columns instead.
  const workload::JobTable& table_;

  sim::Engine engine_;
  std::vector<JobId> waiting_;  // in arrival order
  std::vector<rms::RunningJob> running_;
  std::vector<metrics::JobOutcome> outcomes_;
  std::size_t policy_index_;
  Time last_event_time_ = 0;
  SimulationResult result_;

  // Incremental scheduling state: one policy-ordered queue per pool policy
  // (or the single static policy), the JobId -> running_ slot index, and
  // reusable scratch for the per-event planning work.
  std::vector<policies::SortedQueue> queues_;
  std::vector<std::uint32_t> running_slot_;
  std::vector<char> started_mark_;  // JobId -> pending-removal flag
  std::vector<JobId> due_;          // scratch: jobs starting at this event
  std::vector<Candidate> candidates_;

  // Incremental-replan bookkeeping: where the latest submit landed in each
  // policy queue, and which candidate slots still hold a plan of the current
  // waiting set (see `replan_pass` for the re-arming rules).
  std::vector<std::size_t> insert_pos_;  // queue index -> insertion position
  std::vector<char> slot_reusable_;      // slot index -> plan still valid
  std::unique_ptr<util::ThreadPool> workers_;  // parallel tuning (optional)

  // Borrowed buffer source (null without a workspace; nulled on release).
  SimWorkspace::Impl* ws_;

  // Fault-injection state (all inert without an injector): active node
  // outages as width-1 pseudo-reservations until their repair instants,
  // per-job started-attempt counts and pending failure instants (for
  // tombstoning stale calendar entries), the not-yet-resolved job count that
  // keeps the failure chain armed, and the degradation window bound.
  static constexpr JobId kOutageId = std::numeric_limits<JobId>::max();
  static constexpr std::uint64_t kDegradeWindow = 64;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<rms::RunningJob> outages_;
  std::uint32_t down_nodes_ = 0;
  std::vector<std::uint32_t> attempts_;  // JobId -> attempts started
  std::vector<Time> fail_at_;            // JobId -> pending failure instant
  std::size_t pending_jobs_ = 0;         // not yet completed or dropped
  std::uint64_t degrade_until_event_ = 0;

  // Checkpoint/restore state (null unless `config.checkpoint.armed()`).
  std::unique_ptr<Ckpt> ckpt_;

  // Invariant auditor (null unless enabled; see `audit_enabled`) and its
  // per-event view of which candidate slots were planned this pass.
  std::unique_ptr<ScheduleAuditor> auditor_;
  std::vector<const rms::Schedule*> audit_views_;

#if !defined(DYNP_OBS_DISABLED)
  // Instrumentation handles (null unless the config wires a sink).
  std::unique_ptr<Instruments> obs_;
#endif

  // kGuarantee state: the live profile (running reservations + waiting-job
  // guarantees) and each waiting job's guaranteed start, indexed by JobId.
  rms::ResourceProfile profile_;
  std::vector<Time> reserved_;

  // Shared per-event base profile of the running jobs (replan/queueing).
  rms::ResourceProfile base_profile_;
};

}  // namespace

SimulationResult simulate(const workload::JobSet& set,
                          const SimulationConfig& config) {
  SchedulerSim sim(set, config);
  return sim.run();
}

SimulationResult simulate(const workload::JobSet& set,
                          const SimulationConfig& config,
                          SimWorkspace& workspace) {
  SchedulerSim sim(set, config, workspace.impl());
  SimulationResult result = sim.run();
  sim.release_workspace();
  return result;
}

}  // namespace dynp::core
