#pragma once

/// \file simulation.hpp
/// The scheduler simulation: a planning-based RMS driven by the
/// discrete-event engine, running either a single static policy or the
/// self-tuning dynP scheduler with a pluggable decider.
///
/// Event semantics follow the paper (§3): a scheduling pass happens whenever
/// jobs are submitted and whenever executed jobs finish. In dynP mode the
/// pass first performs a *self-tuning step* — compute one full candidate
/// schedule per pool policy, score each with the preview metric, ask the
/// decider — and then adopts the chosen policy's schedule. Jobs planned at
/// the current instant start executing; an early finish (actual < estimated
/// run time) triggers the next pass, which is where backfilling gains
/// materialise.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/decider.hpp"
#include "core/observer.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "obs/instruments.hpp"
#include "policies/policy.hpp"
#include "workload/job.hpp"

namespace dynp::core {

/// How the scheduler chooses planning order.
enum class SchedulerMode : std::uint8_t {
  kStatic,  ///< one fixed policy for the whole run
  kDynP,    ///< self-tuning dynP: switch policies via the decider
};

/// Planning semantics of the RMS.
///
/// * `kGuarantee`: the RMS assigns every job a **start-time guarantee** when
///   it is submitted (earliest feasible slot, no existing reservation moves).
///   Whenever a job finishes early — the common case, given over-estimation
///   factors above 2 — the scheduler runs *compression*: waiting jobs are
///   re-placed **in policy order**, each at its earliest feasible start,
///   which by construction is never later than its current guarantee. The
///   policy therefore decides who harvests freed capacity first, but no job
///   can be starved past its original guarantee — exactly the user contract
///   of a planning-based RMS such as CCS.
/// * `kReplan` (default, and the reading that reproduces the paper's
///   curves — the large policy spreads of Table 4, e.g. LJF's KTH slowdown
///   of 120 vs FCFS's 46, require reordering waiting jobs wholesale): the
///   full schedule is rebuilt from scratch in policy order at every event;
///   planned starts may move arbitrarily, so SJF/LJF can starve long/short
///   jobs, bounded in practice by the workload's nightly and weekly arrival
///   lulls (see the `ablation_semantics` bench).
/// * `kQueueingEasy`: not a planning RMS at all, but the classic *queueing*
///   alternative the paper contrasts with ([6], Hovestadt et al.): jobs wait
///   in a policy-ordered queue, only the head job holds a reservation, and
///   later jobs backfill aggressively if they do not delay the head (EASY
///   backfilling, Lifka [9]). No full schedule exists, so the self-tuning
///   dynP step is impossible — static policies only; provided as the
///   baseline for the planning-vs-queueing ablation.
enum class PlannerSemantics : std::uint8_t {
  kReplan,
  kGuarantee,
  kQueueingEasy,
};

/// Full configuration of one simulation run.
struct SimulationConfig {
  SchedulerMode mode = SchedulerMode::kStatic;

  /// Planning semantics (see `PlannerSemantics`).
  PlannerSemantics semantics = PlannerSemantics::kReplan;

  /// Policy used in static mode.
  policies::PolicyKind static_policy = policies::PolicyKind::kFcfs;

  /// Candidate pool in dynP mode; the order defines decider tie-breaking
  /// (the paper's pool is FCFS, SJF, LJF).
  std::vector<policies::PolicyKind> pool = policies::paper_pool();

  /// Decider used in dynP mode (required there, ignored in static mode).
  std::shared_ptr<const Decider> decider;

  /// Pool index of the policy active before the first decision.
  std::size_t initial_index = 0;

  /// Metric scoring the candidate schedules.
  metrics::PreviewMetric preview = metrics::PreviewMetric::kSldwa;

  /// Optional observation hooks (non-owning; may be nullptr). Called
  /// synchronously from the simulation loop.
  SimulationObserver* observer = nullptr;

  /// Instrumentation sinks (metrics registry, event tracer, phase profiler;
  /// see `obs/instruments.hpp`). All optional and non-owning. Purely
  /// observational: wiring them never changes a scheduling decision, and a
  /// library built with `-DDYNP_OBS=OFF` ignores them entirely — the
  /// simulation is bit-identical either way.
  obs::RunInstruments instruments;

  /// Self-tuning step on submit events (paper: on).
  bool tune_on_submit = true;
  /// Self-tuning step on finish events (paper: on; §3 mentions submit-only
  /// as an unstudied option — Ablation B studies it).
  bool tune_on_finish = true;

  /// Evaluate the self-tuning candidate schedules concurrently, one worker
  /// task per pool policy, instead of in a sequential loop. Results are
  /// bit-identical either way: each candidate works on its own copy of the
  /// planning state and the decider consumes the scores in pool order.
  /// Off by default (the sequential path has no synchronisation cost).
  bool parallel_tuning = false;
  /// Worker threads for parallel tuning (0 = hardware concurrency; capped at
  /// the pool size). Ignored unless `parallel_tuning` is set.
  std::size_t tuning_threads = 0;

  /// Upper bound on the worker threads any nested parallelism of this run
  /// may spawn (0 = no bound). An outer scheduler that already saturates
  /// every core — the sweep orchestrator — pins this to 1 so per-event
  /// parallel tuning degrades to the sequential path instead of stacking a
  /// pool per in-flight simulation on oversubscribed cores. Purely a
  /// resource cap: candidate evaluation is bit-identical either way.
  std::size_t thread_budget = 0;

  /// Runs the schedule invariant auditor (`core/audit.hpp`) after every
  /// scheduling event: candidate and committed schedules re-verified against
  /// from-scratch plans, incremental queues against fresh sorts, decider
  /// choices against the argmin rules. The first violation aborts through
  /// the contract machinery with a structured diagnostic. Also forced on for
  /// every run when the library is built with `-DDYNP_AUDIT=ON`.
  bool audit = false;

  /// Optional fault injection (node outages, mid-run job failures, requeue
  /// with capped exponential backoff; see `fault/fault.hpp`). When absent —
  /// or present but inactive — the scheduler takes exactly the fault-free
  /// code paths, so results are byte-identical to a config without it. Must
  /// pass `FaultConfig::validate` when active.
  std::optional<fault::FaultConfig> faults;

  /// Per-event wall-clock budget for the self-tuning step in microseconds
  /// (0 = unlimited). When one tuned pass overruns the budget, self-tuning
  /// degrades for a window of subsequent events: the candidate fan-out and
  /// decider step are skipped and the decider's fallback policy
  /// (`Decider::fallback_index`, or the currently active policy) plans
  /// alone. Wall-clock-driven by design, so budgeted runs trade replay
  /// determinism for bounded per-event latency.
  double plan_budget_us = 0;

  /// Crash-consistent checkpointing (see `ckpt/checkpoint.hpp`): periodic
  /// snapshots + a write-ahead event journal, restore from a snapshot file
  /// or directory, and an optional SIGKILL crash hook for the chaos soak.
  /// Default-constructed = fully disarmed; the scheduler then takes exactly
  /// the checkpoint-free code paths and results stay byte-identical.
  ckpt::CheckpointOptions checkpoint;

  /// Display label, e.g. "FCFS" or "dynP/SJF-preferred".
  [[nodiscard]] std::string label() const;
};

/// Convenience: configuration for a static policy.
[[nodiscard]] SimulationConfig static_config(policies::PolicyKind policy);

/// Convenience: paper-style dynP configuration (pool FCFS/SJF/LJF, SLDwA
/// preview) with the given decider.
[[nodiscard]] SimulationConfig dynp_config(std::shared_ptr<const Decider> decider);

/// Everything a simulation run produces.
struct SimulationResult {
  metrics::ScheduleSummary summary;
  /// Per-job outcomes, indexed by JobId.
  std::vector<metrics::JobOutcome> outcomes;
  /// Events processed (submits + finishes).
  std::uint64_t events = 0;
  /// Self-tuning decisions taken (dynP only).
  std::uint64_t decisions = 0;
  /// Decisions that changed the active policy (dynP only).
  std::uint64_t switches = 0;
  /// Decisions per pool policy (dynP only; indexed like the pool).
  std::vector<std::uint64_t> decisions_per_policy;
  /// Simulated seconds spent under each pool policy (dynP only).
  std::vector<double> time_in_policy;

  /// One policy-switch record (dynP only).
  struct PolicySwitch {
    Time when = 0;
    std::size_t from = 0;  ///< pool index before the switch
    std::size_t to = 0;    ///< pool index after the switch
  };
  /// Chronological switch history (dynP only; empty if no switch happened).
  std::vector<PolicySwitch> policy_timeline;

  /// Scheduling passes audited and individual invariant checks evaluated
  /// (both 0 unless the auditor ran; a returned result implies every check
  /// passed — the auditor aborts on the first violation).
  std::uint64_t audit_events = 0;
  std::uint64_t audit_checks = 0;

  /// Fault-injection and resilience counters. All zero in a fault-free run
  /// except `jobs_completed`, which always counts jobs that ran to
  /// completion (== every job when nothing fails).
  struct FaultStats {
    std::uint64_t node_failures = 0;   ///< node-down events injected
    std::uint64_t node_repairs = 0;    ///< node-up events processed
    std::uint64_t job_failures = 0;    ///< attempts that died of a job fault
    std::uint64_t node_kills = 0;      ///< attempts killed by a node outage
    std::uint64_t requeues = 0;        ///< backoff retries scheduled
    std::uint64_t jobs_dropped = 0;    ///< jobs that exhausted max_retries
    std::uint64_t jobs_completed = 0;  ///< jobs that ran to completion
    std::uint64_t repair_evictions = 0;  ///< guarantees moved by repair
    std::uint64_t degraded_tunings = 0;  ///< tuning steps skipped over budget
  };
  FaultStats faults;

  /// Crash-recovery provenance (all empty/zero unless the run restored from
  /// a checkpoint). The core never prints; `dynp_sim` surfaces these.
  struct RecoveryInfo {
    /// Path of the snapshot the run restored from ("" = fresh run).
    std::string restored_from;
    /// Event ordinal of the restored snapshot (events already processed).
    std::uint64_t restored_seq = 0;
    /// Journal records replayed and verified after the snapshot point.
    std::uint64_t replayed_events = 0;
    /// Snapshot files rejected during restore (torn, hash-mismatched, or
    /// config-mismatched) before a good one was found, newest first.
    std::vector<std::string> rejected_snapshots;
    /// Snapshots written by this run.
    std::uint64_t snapshots_written = 0;
  };
  RecoveryInfo recovery;
};

/// Reusable per-worker scratch for `simulate`: owns the scheduler's
/// job-count- and event-scaled buffers (reservation tables, per-policy
/// sorted-queue storage, planning scratch + profile segment vectors,
/// candidate slots) between runs, so a sweep worker that simulates
/// thousands of cells stops paying the allocation cost of that state per
/// cell. Opaque: the contents are an implementation detail of the
/// simulation core.
///
/// Contract: one workspace per worker — a workspace must never be used by
/// two simulations concurrently (runs borrow the buffers for their whole
/// duration). Reuse across runs of *different* job sets, machines, pools or
/// semantics is safe: adoption re-targets every buffer and invalidates all
/// cross-run caches (notably the planner's job-class tables, which would
/// otherwise go stale between same-size job tables). Results are
/// bit-identical with and without a workspace.
class SimWorkspace {
 public:
  SimWorkspace();
  ~SimWorkspace();
  SimWorkspace(SimWorkspace&&) noexcept;
  SimWorkspace& operator=(SimWorkspace&&) noexcept;
  SimWorkspace(const SimWorkspace&) = delete;
  SimWorkspace& operator=(const SimWorkspace&) = delete;

  /// Opaque storage, defined in simulation.cpp. Never null.
  struct Impl;
  [[nodiscard]] Impl* impl() const noexcept { return impl_.get(); }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Runs \p config over \p set to completion. Deterministic: identical inputs
/// give identical results.
[[nodiscard]] SimulationResult simulate(const workload::JobSet& set,
                                        const SimulationConfig& config);

/// As above, but recycling \p workspace's buffers (see `SimWorkspace`).
/// Bit-identical to the workspace-free overload.
[[nodiscard]] SimulationResult simulate(const workload::JobSet& set,
                                        const SimulationConfig& config,
                                        SimWorkspace& workspace);

}  // namespace dynp::core
