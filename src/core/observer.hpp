#pragma once

/// \file observer.hpp
/// Observation hooks into a running simulation: live tracing, custom
/// statistics, animation, debugging. The observer is non-owning and called
/// synchronously from the simulation loop; callbacks must not mutate the
/// scheduler (they receive const views only).

#include "core/decider.hpp"
#include "metrics/metrics.hpp"
#include "workload/job.hpp"

namespace dynp::core {

/// Receives simulation lifecycle events. Default implementations do nothing,
/// so implementors override only what they need.
class SimulationObserver {
 public:
  virtual ~SimulationObserver() = default;

  /// A job entered the waiting queue.
  virtual void on_job_submitted(Time /*now*/, const workload::Job& /*job*/) {}

  /// A job began executing.
  virtual void on_job_started(Time /*now*/, const workload::Job& /*job*/) {}

  /// A job completed; \p outcome carries its final timings.
  virtual void on_job_finished(Time /*now*/, const workload::Job& /*job*/,
                               const metrics::JobOutcome& /*outcome*/) {}

  /// A running job died mid-run (fault injection: its own failure or a node
  /// loss). \p attempt is the 1-based execution attempt that failed; the
  /// job either requeues after backoff or is dropped (see `on_job_dropped`).
  virtual void on_job_failed(Time /*now*/, const workload::Job& /*job*/,
                             std::uint32_t /*attempt*/) {}

  /// A failed job exhausted its retries and was dropped.
  virtual void on_job_dropped(Time /*now*/, const workload::Job& /*job*/) {}

  /// The self-tuning step decided (dynP only). \p input holds the candidate
  /// values (pool order) and the previously active index; \p chosen is the
  /// decider's pick.
  virtual void on_decision(Time /*now*/, const DecisionInput& /*input*/,
                           std::size_t /*chosen*/) {}
};

}  // namespace dynp::core
