#pragma once

/// \file decider.hpp
/// Decider mechanisms of the self-tuning dynP scheduler family.
///
/// At every self-tuning step the scheduler has one performance value per
/// candidate policy (lower = better) plus the currently active policy. The
/// decider picks the policy to use next:
///
///  * `SimpleDecider`  — the original three-if construct ([21]): the first
///    policy in pool order that is no worse than all later ones. Ignores the
///    old policy; Table 1 shows it decides wrongly in 4 of 20 cases.
///  * `AdvancedDecider` — the "fair" decider ([20]): stays with the old
///    policy whenever it ties the minimum, otherwise picks the best policy
///    (pool order breaks exact ties).
///  * `PreferredDecider` — the paper's contribution, deliberately *unfair*:
///    sticks with a preferred policy P unless some other policy is strictly
///    better (by more than a configurable threshold percentage), and returns
///    to P as soon as P is at least equal to the best alternative. With
///    threshold 0 this is exactly the paper's mechanism.
///
/// Values are compared with a small relative epsilon so that two policies
/// producing the *same* schedule (hence the same value up to rounding) are
/// treated as equal.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dynp::core {

/// Everything a decider may look at.
struct DecisionInput {
  /// One value per candidate policy (same order as the scheduler's pool);
  /// lower is better.
  std::vector<double> values;
  /// Index of the currently active policy within the pool.
  std::size_t old_index = 0;
};

/// Decider interface. Implementations must be stateless with respect to the
/// decision history (all state they may use is in `DecisionInput`), so a
/// single instance can serve many concurrent simulations.
class Decider {
 public:
  virtual ~Decider() = default;

  /// Returns the pool index of the policy to use next.
  [[nodiscard]] virtual std::size_t decide(const DecisionInput& input) const = 0;

  /// Short display name ("simple", "advanced", "SJF-preferred", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Pool index to fall back to when the scheduler's per-event planning
  /// budget is exceeded and the self-tuning step degrades (no candidate
  /// scoring, one policy planned directly). Mechanisms with a globally
  /// preferred policy name it here; the default — no value — keeps the
  /// currently active policy.
  [[nodiscard]] virtual std::optional<std::size_t> fallback_index() const {
    return std::nullopt;
  }
};

/// Relative-epsilon comparison helpers shared by the deciders (exposed for
/// tests). `value_equal(a, b)` treats values within `rel_eps x max(1,|a|,|b|)`
/// as equal.
[[nodiscard]] bool value_equal(double a, double b,
                               double rel_eps = 1e-9) noexcept;
[[nodiscard]] bool value_less(double a, double b,
                              double rel_eps = 1e-9) noexcept;

/// The original simple decider.
class SimpleDecider final : public Decider {
 public:
  [[nodiscard]] std::size_t decide(const DecisionInput& input) const override;
  [[nodiscard]] std::string name() const override { return "simple"; }
};

/// The fair advanced decider.
class AdvancedDecider final : public Decider {
 public:
  [[nodiscard]] std::size_t decide(const DecisionInput& input) const override;
  [[nodiscard]] std::string name() const override { return "advanced"; }
};

/// The unfair preferred decider (paper §3).
class PreferredDecider final : public Decider {
 public:
  /// \param preferred_index pool index of the preferred policy
  /// \param display_name    e.g. "SJF-preferred"
  /// \param threshold_pct   switch away from the preferred policy only when
  ///        the best alternative is better by more than this percentage
  ///        (0 = the paper's strict mechanism)
  PreferredDecider(std::size_t preferred_index, std::string display_name,
                   double threshold_pct = 0.0);

  [[nodiscard]] std::size_t decide(const DecisionInput& input) const override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// Degraded-mode fallback: the preferred policy.
  [[nodiscard]] std::optional<std::size_t> fallback_index() const override {
    return preferred_;
  }

  [[nodiscard]] std::size_t preferred_index() const noexcept {
    return preferred_;
  }
  [[nodiscard]] double threshold_pct() const noexcept { return threshold_pct_; }

 private:
  std::size_t preferred_;
  std::string name_;
  double threshold_pct_;
};

/// The fair threshold decider from the dynP scheduler family ([20]): like
/// the advanced decider, but sticky around the *currently active* policy —
/// it switches only when the best alternative beats the old policy by more
/// than `threshold_pct` percent. With threshold 0 it degenerates to the
/// advanced decider. Unlike `PreferredDecider` it has no globally preferred
/// policy; the stickiness follows whatever is active.
class ThresholdDecider final : public Decider {
 public:
  explicit ThresholdDecider(double threshold_pct);

  [[nodiscard]] std::size_t decide(const DecisionInput& input) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double threshold_pct() const noexcept { return threshold_pct_; }

 private:
  double threshold_pct_;
};

/// Convenience factories.
[[nodiscard]] std::shared_ptr<const Decider> make_simple_decider();
[[nodiscard]] std::shared_ptr<const Decider> make_advanced_decider();
[[nodiscard]] std::shared_ptr<const Decider> make_preferred_decider(
    std::size_t preferred_index, std::string display_name,
    double threshold_pct = 0.0);
[[nodiscard]] std::shared_ptr<const Decider> make_threshold_decider(
    double threshold_pct);

}  // namespace dynp::core
