#include "core/recording_decider.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dynp::core {

RecordingDecider::RecordingDecider(std::shared_ptr<const Decider> inner,
                                   obs::Tracer* tracer)
    : inner_(std::move(inner)), tracer_(tracer) {
  DYNP_EXPECTS(inner_ != nullptr);
}

std::size_t RecordingDecider::decide(const DecisionInput& input) const {
  const std::size_t chosen = inner_->decide(input);
  records_.push_back(DecisionRecord{input.values, input.old_index, chosen});
  if (tracer_ != nullptr) tracer_->decision(records_.back());
  return chosen;
}

std::string RecordingDecider::name() const {
  return inner_->name() + "+rec";
}

double RecordingDecider::tie_fraction() const noexcept {
  if (records_.empty()) return 0.0;
  std::size_t ties = 0;
  for (const DecisionRecord& r : records_) {
    const auto [lo, hi] =
        std::minmax_element(r.values.begin(), r.values.end());
    if (value_equal(*lo, *hi)) ++ties;
  }
  return static_cast<double>(ties) / static_cast<double>(records_.size());
}

double RecordingDecider::stay_fraction() const noexcept {
  if (records_.empty()) return 0.0;
  std::size_t stays = 0;
  for (const DecisionRecord& r : records_) {
    if (r.chosen == r.old_index) ++stays;
  }
  return static_cast<double>(stays) / static_cast<double>(records_.size());
}

}  // namespace dynp::core
