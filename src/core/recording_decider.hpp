#pragma once

/// \file recording_decider.hpp
/// A decorator that wraps any decider and records every decision it makes —
/// the candidate values, the previously active policy and the choice. Used
/// to audit decider behaviour offline (e.g. how often candidates tie, how
/// often the decision depends on the old policy) without touching the
/// wrapped decider or the scheduler. Optionally streams each record to an
/// `obs::Tracer` as it happens, so the decision log lands in the same trace
/// file as the scheduling events.

#include <memory>
#include <vector>

#include "core/decider.hpp"
#include "obs/obs.hpp"

namespace dynp::core {

/// One recorded decision. The record type is shared with the tracer
/// (`obs::DecisionRecord`) so the decorator's buffer and the trace stream
/// carry identical data.
using DecisionRecord = obs::DecisionRecord;

/// Wraps another decider and appends a `DecisionRecord` per call.
///
/// The record buffer is internal mutable state: use one instance per
/// simulation and do not share across threads (the same caveat as any
/// stateful decider).
class RecordingDecider final : public Decider {
 public:
  /// \param inner  the wrapped decider (required)
  /// \param tracer optional sink: every record is additionally emitted as a
  ///        trace decision record (non-owning; must outlive the decider).
  explicit RecordingDecider(std::shared_ptr<const Decider> inner,
                            obs::Tracer* tracer = nullptr);

  [[nodiscard]] std::size_t decide(const DecisionInput& input) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const std::vector<DecisionRecord>& records() const noexcept {
    return records_;
  }
  void clear() noexcept { records_.clear(); }

  /// Fraction of recorded decisions where all candidate values tied
  /// (within the decider epsilon). 0 when nothing was recorded.
  [[nodiscard]] double tie_fraction() const noexcept;

  /// Fraction of recorded decisions that kept the previously active policy.
  [[nodiscard]] double stay_fraction() const noexcept;

 private:
  std::shared_ptr<const Decider> inner_;
  obs::Tracer* tracer_;
  mutable std::vector<DecisionRecord> records_;
};

}  // namespace dynp::core
