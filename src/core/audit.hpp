#pragma once

/// \file audit.hpp
/// The schedule invariant auditor: an independent re-verification layer that
/// validates the scheduler's full state after every scheduling event. The
/// incremental planning core (shared base profiles, bounded re-merge,
/// incremental replan, per-policy sorted queues, parallel tuning) earns its
/// speed by *not* recomputing from scratch; the auditor is the machinery
/// that proves those shortcuts stay bit-identical to the from-scratch
/// semantics as the system grows.
///
/// Enabled per run via `SimulationConfig::audit` (or globally via the
/// `DYNP_AUDIT` CMake option / `dynp_sim --audit`). Checks are deliberately
/// implemented *independently* of the data structures they verify: schedule
/// feasibility uses a sweep line instead of `ResourceProfile`, queue order
/// uses a fresh `policies::order` sort instead of the incremental queues,
/// and decider choices are re-derived from the SLDwA argmin rules rather
/// than by re-invoking the decider. A violation aborts through the
/// `DYNP_EXPECTS` contract machinery with a structured diagnostic carrying
/// the event id, policy, and offending job.

#include <cstdint>
#include <vector>

#include "core/decider.hpp"
#include "policies/policy.hpp"
#include "rms/planner.hpp"
#include "rms/profile.hpp"
#include "workload/job.hpp"

namespace dynp::core {

/// Identity of one audited scheduling pass.
struct AuditEvent {
  std::uint64_t event_id = 0;  ///< engine event ordinal (1-based)
  Time now = 0;                ///< simulation time of the pass
  bool tuned = false;          ///< a self-tuning decision happened
  std::size_t chosen = 0;      ///< pool/slot index of the committed schedule
  /// Candidate values + previous policy (only meaningful when `tuned`).
  const DecisionInput* decision = nullptr;
};

/// Independent invariant checker for the three planner semantics. One
/// instance per simulation; all methods abort (via the contract handler) on
/// the first violation, so a completed run implies zero violations.
class ScheduleAuditor {
 public:
  /// \param capacity machine size in nodes
  /// \param jobs     job table indexed by JobId (must outlive the auditor)
  /// \param pool     the scheduler's policy pool (pool order = slot order)
  /// \param decider  decider under audit (null in static mode)
  ScheduleAuditor(std::uint32_t capacity,
                  const workload::JobTable& jobs,
                  std::vector<policies::PolicyKind> pool,
                  const Decider* decider);

  /// Audits one replan-semantics pass, after planning and the decision but
  /// before jobs start: every audited candidate schedule (slot ->
  /// schedule, null = not planned this pass) must cover its policy queue
  /// exactly, respect `start >= max(now, submit)`, fit the machine jointly
  /// with the running jobs, and — the determinism anchor — reproduce a
  /// from-scratch `Planner::plan` byte for byte. Also validates the shared
  /// base profile's representation invariants, all incremental queues
  /// against fresh sorts, and the decider's choice.
  void audit_replan_pass(const AuditEvent& ev,
                         const std::vector<rms::RunningJob>& running,
                         const std::vector<JobId>& waiting,
                         const std::vector<policies::SortedQueue>& queues,
                         const rms::ResourceProfile& base,
                         const std::vector<const rms::Schedule*>& audited);

  /// Outage-aware variant: \p outages lists the active node outages as
  /// pseudo-reservations (width nodes unavailable until `estimated_end`).
  /// The feasibility sweep then verifies schedules against the
  /// *time-varying* capacity — usage(t) must stay within capacity minus the
  /// nodes down at t — and the from-scratch anchor plans on a base profile
  /// carrying the same outage claims. The outage-free overloads delegate
  /// here with an empty list and are byte-for-byte the original checks.
  void audit_replan_pass(const AuditEvent& ev,
                         const std::vector<rms::RunningJob>& running,
                         const std::vector<JobId>& waiting,
                         const std::vector<policies::SortedQueue>& queues,
                         const rms::ResourceProfile& base,
                         const std::vector<const rms::Schedule*>& audited,
                         const std::vector<rms::RunningJob>& outages);

  /// Audits one guarantee-semantics pass after compression committed:
  /// profile representation invariants, every reservation at or after both
  /// `now` and the job's submit time, the running + reserved set jointly
  /// feasible, fresh-sort queue equality, and the decision if one happened.
  void audit_guarantee_pass(const AuditEvent& ev,
                            const std::vector<rms::RunningJob>& running,
                            const std::vector<JobId>& waiting,
                            const std::vector<policies::SortedQueue>& queues,
                            const rms::ResourceProfile& profile,
                            const std::vector<Time>& reserved);

  /// Outage-aware variant (see the replan overload).
  void audit_guarantee_pass(const AuditEvent& ev,
                            const std::vector<rms::RunningJob>& running,
                            const std::vector<JobId>& waiting,
                            const std::vector<policies::SortedQueue>& queues,
                            const rms::ResourceProfile& profile,
                            const std::vector<Time>& reserved,
                            const std::vector<rms::RunningJob>& outages);

  /// Audits one EASY queueing pass before the due jobs start: queue order
  /// against a fresh sort, the due set a subset of the waiting queue, and
  /// running + due widths within machine capacity.
  void audit_queueing_pass(const AuditEvent& ev,
                           const std::vector<rms::RunningJob>& running,
                           const std::vector<JobId>& waiting,
                           const std::vector<policies::SortedQueue>& queues,
                           const std::vector<JobId>& due);

  /// Outage-aware variant: down nodes count against machine capacity.
  void audit_queueing_pass(const AuditEvent& ev,
                           const std::vector<rms::RunningJob>& running,
                           const std::vector<JobId>& waiting,
                           const std::vector<policies::SortedQueue>& queues,
                           const std::vector<JobId>& due,
                           const std::vector<rms::RunningJob>& outages);

  /// Scheduling passes audited.
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  /// Individual invariant checks evaluated (all passed, or we aborted).
  [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }

 private:
  /// Formats the structured diagnostic context ("event=.. now=.. policy=..
  /// job=..") into `ctx_` and returns it. `policy` / `job` may be null /
  /// `kNoJob` when not applicable.
  const char* ctx(const AuditEvent& ev, const char* policy, JobId job);

  static constexpr JobId kNoJob = static_cast<JobId>(-1);

  void check_queues(const AuditEvent& ev,
                    const std::vector<JobId>& waiting,
                    const std::vector<policies::SortedQueue>& queues);

  /// Joint feasibility of running jobs (clipped to now), \p planned
  /// intervals, and the capacity lost to \p outages via an event sweep,
  /// independent of `ResourceProfile`. Counting an outage's width as a
  /// claim over [now, repair) is exactly the time-varying-capacity check
  /// usage(t) <= capacity - down(t).
  void check_feasible(const AuditEvent& ev, const char* policy, Time now,
                      const std::vector<rms::RunningJob>& running,
                      const std::vector<rms::PlannedJob>& planned,
                      const std::vector<rms::RunningJob>& outages);

  void check_schedule(const AuditEvent& ev, const char* policy, Time now,
                      const rms::Schedule& schedule,
                      const std::vector<JobId>& queue_order,
                      const std::vector<rms::RunningJob>& running,
                      const std::vector<rms::RunningJob>& outages);

  void check_decision(const AuditEvent& ev);

  /// One counted check.
  void expect(bool ok, const char* what, const AuditEvent& ev,
              const char* policy, JobId job);

  std::uint32_t capacity_;
  const workload::JobTable& jobs_;
  std::vector<policies::PolicyKind> pool_;
  const Decider* decider_;

  std::uint64_t events_ = 0;
  std::uint64_t checks_ = 0;

  // Scratch (audit mode is opt-in, but there is no reason to churn the
  // allocator on every event).
  std::vector<JobId> sort_scratch_;
  std::vector<std::pair<Time, std::int64_t>> sweep_;  ///< (time, +/- width)
  std::vector<rms::PlannedJob> planned_scratch_;
  rms::Schedule fresh_;
  rms::ResourceProfile fresh_base_{1};  ///< anchor base (running + outages)
  char ctx_[160] = {};
  char msg_[224] = {};
};

}  // namespace dynp::core
