#include "core/audit.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/assert.hpp"

namespace dynp::core {

namespace {

/// Argmin membership under the deciders' epsilon comparison.
[[nodiscard]] bool ties_minimum(const std::vector<double>& v, std::size_t i) {
  const double best = *std::min_element(v.begin(), v.end());
  return value_equal(v[i], best);
}

/// First pool index tying the minimum, skipping \p skip (use `v.size()` to
/// skip nothing). The deciders' tie-break is pool order.
[[nodiscard]] std::size_t first_argmin(const std::vector<double>& v,
                                       std::size_t skip) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != skip && ties_minimum(v, i)) return i;
  }
  return v.size();
}

/// Re-derivation of `SimpleDecider`: the first policy in pool order that no
/// later policy strictly beats.
[[nodiscard]] std::size_t rederive_simple(const std::vector<double>& v) {
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    bool beaten = false;
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      beaten = beaten || value_less(v[j], v[i]);
    }
    if (!beaten) return i;
  }
  return v.size() - 1;
}

/// Re-derivation of `AdvancedDecider`: stay while tying the minimum, else
/// best in pool order.
[[nodiscard]] std::size_t rederive_advanced(const std::vector<double>& v,
                                            std::size_t old_index) {
  if (ties_minimum(v, old_index)) return old_index;
  return first_argmin(v, v.size());
}

/// The preferred/threshold deciders' allowance band above the minimum.
[[nodiscard]] double allowance(const std::vector<double>& v, double pct) {
  const double best = *std::min_element(v.begin(), v.end());
  return best + std::abs(best) * pct / 100.0;
}

[[nodiscard]] std::size_t rederive_preferred(const std::vector<double>& v,
                                             std::size_t old_index,
                                             std::size_t preferred,
                                             double pct) {
  const double allow = allowance(v, pct);
  if (v[preferred] <= allow || value_equal(v[preferred], allow)) {
    return preferred;
  }
  if (old_index != preferred && ties_minimum(v, old_index)) return old_index;
  return first_argmin(v, preferred);
}

[[nodiscard]] std::size_t rederive_threshold(const std::vector<double>& v,
                                             std::size_t old_index,
                                             double pct) {
  const double allow = allowance(v, pct);
  if (v[old_index] <= allow || value_equal(v[old_index], allow)) {
    return old_index;
  }
  return first_argmin(v, v.size());
}

/// Shared empty outage list for the outage-free overloads.
const std::vector<rms::RunningJob>& no_outages() {
  static const std::vector<rms::RunningJob> empty;
  return empty;
}

}  // namespace

ScheduleAuditor::ScheduleAuditor(std::uint32_t capacity,
                                 const workload::JobTable& jobs,
                                 std::vector<policies::PolicyKind> pool,
                                 const Decider* decider)
    : capacity_(capacity),
      jobs_(jobs),
      pool_(std::move(pool)),
      decider_(decider) {
  DYNP_EXPECTS(capacity_ >= 1);
  DYNP_EXPECTS(!pool_.empty());
}

const char* ScheduleAuditor::ctx(const AuditEvent& ev, const char* policy,
                                 JobId job) {
  char job_str[16];
  if (job == kNoJob) {
    job_str[0] = '-';
    job_str[1] = '\0';
  } else {
    std::snprintf(job_str, sizeof job_str, "%" PRIu32, job);
  }
  std::snprintf(ctx_, sizeof ctx_,
                "event=%" PRIu64 " now=%.6f policy=%s job=%s",
                ev.event_id, ev.now, policy != nullptr ? policy : "-",
                job_str);
  return ctx_;
}

void ScheduleAuditor::expect(bool ok, const char* what, const AuditEvent& ev,
                             const char* policy, JobId job) {
  ++checks_;
  if (ok) return;
  ctx(ev, policy, job);
  std::snprintf(msg_, sizeof msg_, "%s", ctx_);
  ::dynp::detail::contract_violation_ex("audit invariant", what, __FILE__,
                                        __LINE__, msg_);
}

void ScheduleAuditor::check_queues(
    const AuditEvent& ev, const std::vector<JobId>& waiting,
    const std::vector<policies::SortedQueue>& queues) {
  for (const policies::SortedQueue& queue : queues) {
    const char* policy = policies::name(queue.kind());
    // A fresh full sort of the current waiting set is the specification the
    // incremental queue must match exactly (the order is a strict total
    // order, so it is unique — see SortedQueue's class invariant).
    sort_scratch_ = policies::order(queue.kind(), waiting, jobs_);
    expect(queue.ids() == sort_scratch_,
           "incremental queue equals fresh policy sort", ev, policy, kNoJob);
  }
}

void ScheduleAuditor::check_feasible(
    const AuditEvent& ev, const char* policy, Time now,
    const std::vector<rms::RunningJob>& running,
    const std::vector<rms::PlannedJob>& planned,
    const std::vector<rms::RunningJob>& outages) {
  // Sweep line over reservation deltas, independent of ResourceProfile:
  // running jobs occupy [now, estimated_end), planned jobs
  // [start, start + estimate). Frees sort before claims at equal times,
  // matching the profile's half-open interval semantics. Node outages claim
  // their width over [now, repair) — usage(t) <= capacity - down(t),
  // i.e. the time-varying-capacity feasibility check.
  sweep_.clear();
  for (const rms::RunningJob& r : running) {
    if (r.estimated_end > now) {
      sweep_.emplace_back(now, static_cast<std::int64_t>(r.width));
      sweep_.emplace_back(r.estimated_end,
                          -static_cast<std::int64_t>(r.width));
    }
  }
  for (const rms::RunningJob& o : outages) {
    if (o.estimated_end > now) {
      sweep_.emplace_back(now, static_cast<std::int64_t>(o.width));
      sweep_.emplace_back(o.estimated_end,
                          -static_cast<std::int64_t>(o.width));
    }
  }
  for (const rms::PlannedJob& p : planned) {
    const Time estimate = jobs_.estimate(p.id);
    if (estimate <= 0) continue;
    sweep_.emplace_back(p.start, static_cast<std::int64_t>(jobs_.width(p.id)));
    sweep_.emplace_back(p.start + estimate,
                        -static_cast<std::int64_t>(jobs_.width(p.id)));
  }
  std::sort(sweep_.begin(), sweep_.end());
  std::int64_t used = 0;
  bool within = true;
  for (const auto& [time, delta] : sweep_) {
    used += delta;
    within = within && used <= static_cast<std::int64_t>(capacity_);
  }
  expect(within, "reservations never exceed machine capacity", ev, policy,
         kNoJob);
  expect(used == 0, "reservation sweep balances", ev, policy, kNoJob);
}

void ScheduleAuditor::check_schedule(
    const AuditEvent& ev, const char* policy, Time now,
    const rms::Schedule& schedule, const std::vector<JobId>& queue_order,
    const std::vector<rms::RunningJob>& running,
    const std::vector<rms::RunningJob>& outages) {
  expect(schedule.size() == queue_order.size(),
         "schedule covers the whole policy queue", ev, policy, kNoJob);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const rms::PlannedJob& p = schedule.entries()[i];
    expect(p.id == queue_order[i], "schedule follows policy order", ev,
           policy, p.id);
    expect(p.start >= now, "planned start not in the past", ev, policy, p.id);
    expect(p.start >= jobs_.submit(p.id), "planned start after submission",
           ev, policy, p.id);
  }
  check_feasible(ev, policy, now, running, schedule.entries(), outages);

  // The determinism anchor: whatever incremental path produced this
  // schedule (retained scratch profile, replayed prefix, parallel worker),
  // a from-scratch plan of the same queue — on a base carrying the same
  // outage claims — must reproduce it byte for byte. The scratch is local
  // so no planning state survives between audited events.
  rms::Planner::base_profile_into(capacity_, now, running, fresh_base_);
  for (const rms::RunningJob& o : outages) {
    if (o.estimated_end > now) {
      fresh_base_.allocate(now, o.estimated_end - now, o.width);
    }
  }
  rms::PlanScratch scratch;
  rms::Planner::plan_into(fresh_base_, now, queue_order, jobs_, scratch,
                          fresh_);
  bool identical = fresh_.size() == schedule.size();
  JobId offender = kNoJob;
  for (std::size_t i = 0; identical && i < fresh_.size(); ++i) {
    const rms::PlannedJob& a = schedule.entries()[i];
    const rms::PlannedJob& b = fresh_.entries()[i];
    if (a.id != b.id || a.start != b.start) {
      identical = false;
      offender = a.id;
    }
  }
  expect(identical, "incremental schedule bit-identical to fresh plan", ev,
         policy, offender);
}

void ScheduleAuditor::check_decision(const AuditEvent& ev) {
  const DecisionInput& input = *ev.decision;
  const std::vector<double>& v = input.values;
  expect(v.size() == pool_.size(), "decision covers the whole pool", ev,
         nullptr, kNoJob);
  expect(ev.chosen < v.size(), "chosen index within pool", ev, nullptr,
         kNoJob);

  // Re-derive the expected choice from the published argmin rules. Custom
  // deciders (outside the paper's family) only get the bounds check above.
  std::size_t expected = v.size();
  if (dynamic_cast<const SimpleDecider*>(decider_) != nullptr) {
    expected = rederive_simple(v);
  } else if (dynamic_cast<const AdvancedDecider*>(decider_) != nullptr) {
    expected = rederive_advanced(v, input.old_index);
  } else if (const auto* preferred =
                 dynamic_cast<const PreferredDecider*>(decider_)) {
    expected = rederive_preferred(v, input.old_index,
                                  preferred->preferred_index(),
                                  preferred->threshold_pct());
  } else if (const auto* threshold =
                 dynamic_cast<const ThresholdDecider*>(decider_)) {
    expected = rederive_threshold(v, input.old_index,
                                  threshold->threshold_pct());
  }
  if (expected != v.size()) {
    expect(ev.chosen == expected, "decider choice matches argmin rules", ev,
           policies::name(pool_[ev.chosen]), kNoJob);
  }
}

void ScheduleAuditor::audit_replan_pass(
    const AuditEvent& ev, const std::vector<rms::RunningJob>& running,
    const std::vector<JobId>& waiting,
    const std::vector<policies::SortedQueue>& queues,
    const rms::ResourceProfile& base,
    const std::vector<const rms::Schedule*>& audited) {
  audit_replan_pass(ev, running, waiting, queues, base, audited, no_outages());
}

void ScheduleAuditor::audit_replan_pass(
    const AuditEvent& ev, const std::vector<rms::RunningJob>& running,
    const std::vector<JobId>& waiting,
    const std::vector<policies::SortedQueue>& queues,
    const rms::ResourceProfile& base,
    const std::vector<const rms::Schedule*>& audited,
    const std::vector<rms::RunningJob>& outages) {
  DYNP_EXPECTS(audited.size() == queues.size() &&
               queues.size() == pool_.size());
  ++events_;
  expect(base.invariants_ok(),
         "base profile sorted/merged with bounded free counts", ev, nullptr,
         kNoJob);
  check_queues(ev, waiting, queues);
  expect(ev.chosen < audited.size() && audited[ev.chosen] != nullptr,
         "committed schedule was planned this pass", ev, nullptr, kNoJob);
  for (std::size_t slot = 0; slot < audited.size(); ++slot) {
    if (audited[slot] == nullptr) continue;
    check_schedule(ev, policies::name(pool_[slot]), ev.now, *audited[slot],
                   queues[slot].ids(), running, outages);
  }
  if (ev.tuned && ev.decision != nullptr) check_decision(ev);
}

void ScheduleAuditor::audit_guarantee_pass(
    const AuditEvent& ev, const std::vector<rms::RunningJob>& running,
    const std::vector<JobId>& waiting,
    const std::vector<policies::SortedQueue>& queues,
    const rms::ResourceProfile& profile, const std::vector<Time>& reserved) {
  audit_guarantee_pass(ev, running, waiting, queues, profile, reserved,
                       no_outages());
}

void ScheduleAuditor::audit_guarantee_pass(
    const AuditEvent& ev, const std::vector<rms::RunningJob>& running,
    const std::vector<JobId>& waiting,
    const std::vector<policies::SortedQueue>& queues,
    const rms::ResourceProfile& profile, const std::vector<Time>& reserved,
    const std::vector<rms::RunningJob>& outages) {
  DYNP_EXPECTS(reserved.size() == jobs_.size());
  ++events_;
  expect(profile.invariants_ok(),
         "guarantee profile sorted/merged with bounded free counts", ev,
         nullptr, kNoJob);
  check_queues(ev, waiting, queues);
  const char* policy = ev.tuned ? policies::name(pool_[ev.chosen]) : nullptr;
  planned_scratch_.clear();
  for (const JobId id : waiting) {
    const Time start = reserved[id];
    expect(start >= ev.now, "reservation not in the past", ev, policy, id);
    expect(start >= jobs_.submit(id), "reservation after submission", ev,
           policy, id);
    planned_scratch_.push_back(rms::PlannedJob{id, start});
  }
  check_feasible(ev, policy, ev.now, running, planned_scratch_, outages);
  if (ev.tuned && ev.decision != nullptr) check_decision(ev);
}

void ScheduleAuditor::audit_queueing_pass(
    const AuditEvent& ev, const std::vector<rms::RunningJob>& running,
    const std::vector<JobId>& waiting,
    const std::vector<policies::SortedQueue>& queues,
    const std::vector<JobId>& due) {
  audit_queueing_pass(ev, running, waiting, queues, due, no_outages());
}

void ScheduleAuditor::audit_queueing_pass(
    const AuditEvent& ev, const std::vector<rms::RunningJob>& running,
    const std::vector<JobId>& waiting,
    const std::vector<policies::SortedQueue>& queues,
    const std::vector<JobId>& due,
    const std::vector<rms::RunningJob>& outages) {
  DYNP_EXPECTS(!queues.empty());
  ++events_;
  check_queues(ev, waiting, queues);
  std::int64_t used = 0;
  for (const rms::RunningJob& r : running) used += r.width;
  // Down nodes are unavailable for the whole pass, so they count against
  // capacity exactly like running width.
  for (const rms::RunningJob& o : outages) {
    if (o.estimated_end > ev.now) used += o.width;
  }
  for (const JobId id : due) {
    const bool is_waiting =
        std::find(waiting.begin(), waiting.end(), id) != waiting.end();
    expect(is_waiting, "started job was waiting", ev, nullptr, id);
    used += jobs_.width(id);
  }
  expect(used <= static_cast<std::int64_t>(capacity_),
         "started jobs fit the free machine", ev, nullptr, kNoJob);
}

}  // namespace dynp::core
