#include "core/decider.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace dynp::core {

bool value_equal(double a, double b, double rel_eps) noexcept {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= rel_eps * scale;
}

bool value_less(double a, double b, double rel_eps) noexcept {
  return a < b && !value_equal(a, b, rel_eps);
}

namespace {

/// Smallest value in \p values under the epsilon comparison.
[[nodiscard]] double min_value(const std::vector<double>& values) noexcept {
  return *std::min_element(values.begin(), values.end());
}

/// True when values[i] ties the minimum.
[[nodiscard]] bool in_argmin(const std::vector<double>& values,
                             std::size_t i) noexcept {
  return value_equal(values[i], min_value(values));
}

}  // namespace

std::size_t SimpleDecider::decide(const DecisionInput& input) const {
  const auto& v = input.values;
  DYNP_EXPECTS(!v.empty());
  DYNP_EXPECTS(input.old_index < v.size());
  // First policy in pool order that is <= every later policy. For the pool
  // (FCFS, SJF, LJF) this reproduces all 20 decisions of Table 1, including
  // the four wrong ones (cases 1, 6b, 8c, 10c).
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    bool leq_all_later = true;
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      if (value_less(v[j], v[i])) {
        leq_all_later = false;
        break;
      }
    }
    if (leq_all_later) return i;
  }
  return v.size() - 1;
}

std::size_t AdvancedDecider::decide(const DecisionInput& input) const {
  const auto& v = input.values;
  DYNP_EXPECTS(!v.empty());
  DYNP_EXPECTS(input.old_index < v.size());
  // Stay with the old policy whenever it ties the minimum ("correct
  // decision" column of Table 1)...
  if (in_argmin(v, input.old_index)) return input.old_index;
  // ...otherwise take the best policy; exact ties resolve in pool order
  // (FCFS before SJF before LJF), matching cases 6c, 8b and 10a.
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (in_argmin(v, i)) return i;
  }
  DYNP_ASSERT(false);
  return input.old_index;
}

PreferredDecider::PreferredDecider(std::size_t preferred_index,
                                   std::string display_name,
                                   double threshold_pct)
    : preferred_(preferred_index),
      name_(std::move(display_name)),
      threshold_pct_(threshold_pct) {
  DYNP_EXPECTS(threshold_pct >= 0);
}

std::size_t PreferredDecider::decide(const DecisionInput& input) const {
  const auto& v = input.values;
  DYNP_EXPECTS(!v.empty());
  DYNP_EXPECTS(input.old_index < v.size());
  DYNP_EXPECTS(preferred_ < v.size());

  // The preferred policy wins whenever it is within the threshold of the
  // best value: it only has to *match* the competition, never beat it. With
  // threshold 0 this is "stay unless clearly (strictly) better elsewhere" /
  // "switch back on equal performance" from §3.
  const double best = min_value(v);
  const double allowance = best + std::abs(best) * threshold_pct_ / 100.0;
  if (v[preferred_] <= allowance ||
      value_equal(v[preferred_], allowance)) {
    return preferred_;
  }

  // Otherwise decide fairly among the remaining policies: keep the old one
  // if it ties the minimum, else best-in-pool-order.
  if (input.old_index != preferred_ && in_argmin(v, input.old_index)) {
    return input.old_index;
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != preferred_ && in_argmin(v, i)) return i;
  }
  DYNP_ASSERT(false);
  return input.old_index;
}

ThresholdDecider::ThresholdDecider(double threshold_pct)
    : threshold_pct_(threshold_pct) {
  DYNP_EXPECTS(threshold_pct >= 0);
}

std::string ThresholdDecider::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "threshold(%.1f%%)", threshold_pct_);
  return buf;
}

std::size_t ThresholdDecider::decide(const DecisionInput& input) const {
  const auto& v = input.values;
  DYNP_EXPECTS(!v.empty());
  DYNP_EXPECTS(input.old_index < v.size());

  // Stay with the active policy unless the best alternative beats it by
  // more than the threshold percentage.
  const double best = min_value(v);
  const double allowance =
      best + std::abs(best) * threshold_pct_ / 100.0;
  if (v[input.old_index] <= allowance ||
      value_equal(v[input.old_index], allowance)) {
    return input.old_index;
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (in_argmin(v, i)) return i;
  }
  DYNP_ASSERT(false);
  return input.old_index;
}

std::shared_ptr<const Decider> make_simple_decider() {
  return std::make_shared<SimpleDecider>();
}

std::shared_ptr<const Decider> make_advanced_decider() {
  return std::make_shared<AdvancedDecider>();
}

std::shared_ptr<const Decider> make_preferred_decider(
    std::size_t preferred_index, std::string display_name,
    double threshold_pct) {
  return std::make_shared<PreferredDecider>(preferred_index,
                                            std::move(display_name),
                                            threshold_pct);
}

std::shared_ptr<const Decider> make_threshold_decider(double threshold_pct) {
  return std::make_shared<ThresholdDecider>(threshold_pct);
}

}  // namespace dynp::core
