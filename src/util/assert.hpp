#pragma once

/// \file assert.hpp
/// Contract-checking macros in the spirit of the C++ Core Guidelines
/// `Expects`/`Ensures` (GSL). Violations abort with a diagnostic; they are
/// active in all build types because the simulator's correctness arguments
/// (profile invariants, heap ordering) depend on them.

#include <cstdio>
#include <cstdlib>

namespace dynp::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "dynp: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace dynp::detail

/// Precondition check: argument/state requirements at function entry.
#define DYNP_EXPECTS(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::dynp::detail::contract_violation("precondition", #cond,      \
                                               __FILE__, __LINE__))

/// Postcondition / invariant check.
#define DYNP_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::dynp::detail::contract_violation("postcondition", #cond,     \
                                               __FILE__, __LINE__))

/// Internal invariant check (mid-function).
#define DYNP_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                           \
          : ::dynp::detail::contract_violation("invariant", #cond,         \
                                               __FILE__, __LINE__))
