#pragma once

/// \file assert.hpp
/// Contract-checking macros in the spirit of the C++ Core Guidelines
/// `Expects`/`Ensures` (GSL). Violations route through an installable
/// handler; the default prints a diagnostic and aborts. They are active in
/// all build types because the simulator's correctness arguments (profile
/// invariants, heap ordering, audit checks) depend on them.
///
/// Tests install a throwing handler (`ScopedContractThrower`) so contract
/// checks become observable with `EXPECT_THROW` instead of being untestable
/// aborts. Handlers may throw (a `[[noreturn]]` function is allowed to exit
/// by exception); a handler that *returns* still aborts, so the macros'
/// noreturn guarantee holds for all callers.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dynp {

/// Everything known about one failed contract check. `detail` is optional
/// structured context (e.g. the schedule auditor's "event=12 policy=SJF
/// job=7" breadcrumb); empty when the plain macros fire.
struct ContractViolation {
  const char* kind = "";  ///< "precondition", "postcondition", ...
  const char* expr = "";  ///< stringified condition
  const char* file = "";
  int line = 0;
  const char* detail = "";  ///< structured context, "" if none

  /// One-line human-readable rendering (the default handler's message and
  /// `ContractViolationError::what()`).
  [[nodiscard]] std::string to_string() const {
    std::string s = "dynp: ";
    s += kind;
    s += " violated: (";
    s += expr;
    s += ") at ";
    s += file;
    s += ':';
    s += std::to_string(line);
    if (detail[0] != '\0') {
      s += " [";
      s += detail;
      s += ']';
    }
    return s;
  }
};

/// Thrown by the test handler installed via `ScopedContractThrower`.
class ContractViolationError : public std::logic_error {
 public:
  explicit ContractViolationError(const ContractViolation& v)
      : std::logic_error(v.to_string()), violation_(v) {}

  [[nodiscard]] const ContractViolation& violation() const noexcept {
    return violation_;
  }

 private:
  ContractViolation violation_;
};

/// A violation handler either throws or does not return (a returning handler
/// falls through to `std::abort`). Must be reentrant: contract checks fire
/// from parallel tuning workers too.
using ContractHandler = void (*)(const ContractViolation&);

/// Called before any contract violation is reported (handler or default
/// diagnostic), so buffered observers can make their data durable first —
/// the trace layer registers a flush of all live tracers here. Must be
/// noexcept and must not trip further contracts (it runs on the failure
/// path; the tracer uses try-lock for exactly that reason).
using FailureObserver = void (*)() noexcept;

namespace detail {

/// Installed handler; null selects the default print-and-abort behaviour.
/// Atomic because workers and the main thread may check contracts while a
/// test (re)installs a handler.
inline std::atomic<ContractHandler> g_contract_handler{nullptr};

/// Installed pre-failure observer; null = none.
inline std::atomic<FailureObserver> g_failure_observer{nullptr};

[[noreturn]] inline void contract_violation_ex(const char* kind,
                                               const char* expr,
                                               const char* file, int line,
                                               const char* detail) {
  const ContractViolation v{kind, expr, file, line, detail};
  if (FailureObserver observer =
          g_failure_observer.load(std::memory_order_acquire)) {
    observer();
  }
  if (ContractHandler handler =
          g_contract_handler.load(std::memory_order_acquire)) {
    handler(v);  // may throw; a returning handler aborts below
  } else {
    std::fprintf(stderr, "%s\n", v.to_string().c_str());
  }
  std::abort();
}

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  contract_violation_ex(kind, expr, file, line, "");
}

}  // namespace detail

/// Installs \p handler for all contract violations and returns the previous
/// one (null = default print-and-abort). Pass null to restore the default.
inline ContractHandler set_contract_handler(ContractHandler handler) noexcept {
  return detail::g_contract_handler.exchange(handler,
                                             std::memory_order_acq_rel);
}

/// Installs \p observer to run before any contract violation is reported
/// and returns the previous one (null = none). Pass null to remove.
inline FailureObserver set_failure_observer(FailureObserver observer) noexcept {
  return detail::g_failure_observer.exchange(observer,
                                             std::memory_order_acq_rel);
}

/// RAII: makes contract violations throw `ContractViolationError` for the
/// lifetime of the object, then restores the previous handler. Intended for
/// tests (`EXPECT_THROW(profile.allocate(...), ContractViolationError)`).
class ScopedContractThrower {
 public:
  ScopedContractThrower()
      : previous_(set_contract_handler(
            [](const ContractViolation& v) -> void {
              throw ContractViolationError(v);
            })) {}

  ScopedContractThrower(const ScopedContractThrower&) = delete;
  ScopedContractThrower& operator=(const ScopedContractThrower&) = delete;

  ~ScopedContractThrower() { set_contract_handler(previous_); }

 private:
  ContractHandler previous_;
};

}  // namespace dynp

/// Precondition check: argument/state requirements at function entry.
#define DYNP_EXPECTS(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::dynp::detail::contract_violation("precondition", #cond,      \
                                               __FILE__, __LINE__))

/// Postcondition / invariant check.
#define DYNP_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::dynp::detail::contract_violation("postcondition", #cond,     \
                                               __FILE__, __LINE__))

/// Internal invariant check (mid-function).
#define DYNP_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                           \
          : ::dynp::detail::contract_violation("invariant", #cond,         \
                                               __FILE__, __LINE__))

/// Invariant check with structured context: \p ctx is a null-terminated
/// C string (typically a scratch buffer) carried into the diagnostic and
/// the `ContractViolation` record as its `detail`. Used by the schedule
/// auditor to attach "event=... policy=... job=..." breadcrumbs to a
/// failure. (The parameter is deliberately not named `detail`: that would
/// macro-replace the `::dynp::detail` namespace qualifier below.)
#define DYNP_CHECK_CTX(cond, ctx)                                           \
  ((cond) ? static_cast<void>(0)                                           \
          : ::dynp::detail::contract_violation_ex("audit invariant", #cond, \
                                                  __FILE__, __LINE__,       \
                                                  (ctx)))
