#pragma once

/// \file stats.hpp
/// Summary statistics used throughout the evaluation: online (Welford)
/// accumulators, quantiles, and the paper's "drop min and max, average the
/// rest" combining rule for repeated job sets (§4.2).

#include <cstddef>
#include <vector>

namespace dynp::util {

/// Numerically-stable online accumulator for count/mean/variance/min/max.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel reduction step).
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of \p values; 0 for an empty vector.
[[nodiscard]] double mean(const std::vector<double>& values) noexcept;

/// The paper's combining rule: drop one minimum and one maximum observation,
/// average the remainder. NaN observations are rejected (dropped before
/// trimming) — a NaN would otherwise poison the sum and defeat the
/// comparison-based trim. Small inputs degrade explicitly, there is nothing
/// sensible to trim below three observations:
///   n == 0 -> 0, n == 1 -> the value, n == 2 -> plain mean of both
/// (counts taken after NaN rejection).
[[nodiscard]] double trimmed_mean_drop_extremes(std::vector<double> values) noexcept;

/// Linear-interpolation quantile, q in [0, 1]. Sorts a copy.
[[nodiscard]] double quantile(std::vector<double> values, double q) noexcept;

/// Median via `quantile(values, 0.5)`.
[[nodiscard]] double median(std::vector<double> values) noexcept;

}  // namespace dynp::util
