#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// The simulator requires bit-identical reruns for a given master seed, across
/// platforms and standard-library versions. `std::mt19937` would do, but the
/// distributions in `<random>` are implementation-defined; we therefore ship
/// our own generator (xoshiro256**, public domain, Blackman & Vigna) and our
/// own distributions (see distributions.hpp), both fully specified.

#include <array>
#include <cstdint>
#include <limits>

namespace dynp::util {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator with 256-bit state.
/// Satisfies the C++ `UniformRandomBitGenerator` concept so it can also feed
/// standard facilities when exact reproducibility across stdlibs is not
/// needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from \p seed via SplitMix64 (the seeding
  /// procedure recommended by the algorithm's authors).
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// The raw 256-bit state, for checkpointing a generator mid-stream.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }

  /// Reinstates a state captured by `state()`; the generator continues the
  /// exact sequence it would have produced uninterrupted.
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified to rejection on the multiply-shift range).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // For our workloads bound << 2^64 so the rejection loop is near-free.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives a child seed from a master seed and a sequence of stream labels.
/// Used to give every (trace, job-set, purpose) tuple an independent,
/// reproducible random stream: `derive_seed(master, trace_id, set_index)`.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::uint64_t a,
                                                  std::uint64_t b = 0,
                                                  std::uint64_t c = 0) noexcept {
  SplitMix64 sm(master);
  std::uint64_t s = sm.next();
  SplitMix64 sa(s ^ (a * 0x9e3779b97f4a7c15ULL));
  s = sa.next();
  SplitMix64 sb(s ^ (b * 0xc2b2ae3d27d4eb4fULL));
  s = sb.next();
  SplitMix64 sc(s ^ (c * 0x165667b19e3779f9ULL));
  return sc.next();
}

}  // namespace dynp::util
