#pragma once

/// \file thread_pool.hpp
/// A fixed-size work-stealing thread pool plus a `parallel_for` helper used
/// to run independent simulations (trace x factor x job-set x scheduler) in
/// parallel. The simulation core itself is single-threaded and shares no
/// mutable state between tasks (C++ Core Guidelines CP.2); the pool only
/// partitions work items.
///
/// Scheduling discipline: every worker owns a deque. Submissions from a
/// worker thread go to its own deque; external submissions are distributed
/// round-robin. A worker pops from the back of its own deque (LIFO — the
/// freshest task is the cache-warmest) and, when empty, scans the other
/// workers in a deterministic ring order and *steals half* of the first
/// non-empty victim's deque from the front (the oldest tasks). Stealing in
/// batches amortises the victim-lock cost and keeps a long task list from
/// ping-ponging between thieves one task at a time — the standard remedy
/// for the barrier-idle problem where one long-tail task strands the other
/// workers (see the sweep orchestrator, `exp/orchestrator.hpp`).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/wallclock.hpp"

namespace dynp::util {

/// Fixed-size worker pool. Tasks are `std::function<void()>`; `wait_idle`
/// blocks until every submitted task has finished. Exceptions escaping a task
/// terminate (tasks are expected to handle their own errors).
class ThreadPool {
 public:
  /// \param threads number of workers; 0 selects `hardware_concurrency()`
  ///        (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task for execution. Called from a worker of this pool, the
  /// task lands in that worker's own deque (depth-first execution order);
  /// from any other thread it is distributed round-robin across workers.
  void submit(std::function<void()> task);

  /// Blocks until all deques are empty and all workers are idle.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// The calling worker's index in [0, thread_count()), or `npos` when the
  /// caller is not a worker of *this* pool. Stable for the thread's
  /// lifetime; used to index per-worker workspaces (one slot per worker, no
  /// sharing) without threading an id through every task closure.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t worker_index() const noexcept;

  /// Work-stealing traffic counters, summed over all workers. Exact once the
  /// pool is idle (`wait_idle`); approximate while tasks are in flight
  /// (relaxed atomics). `executed` counts completed tasks, `steal_batches`
  /// successful steal operations, `stolen_tasks` tasks moved by them.
  struct StealStats {
    std::uint64_t executed = 0;
    std::uint64_t steal_batches = 0;
    std::uint64_t stolen_tasks = 0;
  };
  [[nodiscard]] StealStats steal_stats() const noexcept;

  /// Per-task timing hook for the observability layer: called on the worker
  /// thread after each completed task with the task's queue wait and run
  /// time in microseconds. The hook must be thread-safe (workers invoke it
  /// concurrently); install or clear it only while the pool is idle. An
  /// unset hook costs one relaxed atomic load per task — enqueue timestamps
  /// are only taken while a hook is installed. Tasks that throw are not
  /// reported (the exception propagates unchanged).
  using TaskTimer = std::function<void(double wait_us, double run_us)>;
  void set_task_timer(TaskTimer timer);

 private:
  /// A queued task plus its enqueue instant (only stamped while a task
  /// timer is installed; default-constructed otherwise).
  struct Task {
    std::function<void()> fn;
    WallInstant enqueued;
  };

  /// One worker's deque. Owner pushes/pops at the back; thieves take a batch
  /// from the front. The per-deque mutex is uncontended in the common case
  /// (only the owner touches it), so this stays simple and TSan-friendly
  /// without a lock-free Chase-Lev buffer.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t index);
  void push_task(std::size_t queue_index, Task task);
  /// Pops the back of the worker's own deque, or steals half of the first
  /// non-empty victim (ring scan from `self + 1`). False when every deque
  /// was observed empty.
  [[nodiscard]] bool next_task(std::size_t self, Task& out);
  void run_task(Task& task);

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<std::size_t> submit_cursor_{0};  ///< round-robin for externals

  // `queued_` counts tasks sitting in deques (not yet popped); it is the
  // workers' sleep predicate. `pending_` additionally includes tasks being
  // executed; it is the `wait_idle` predicate. Both change outside the
  // global mutex; sleepers re-check them under it, and every transition that
  // could satisfy a waiter (submit, task completion) runs an empty critical
  // section on `mutex_` before notifying, so no wakeup is lost.
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> pending_{0};
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steal_batches_{0};
  std::atomic<std::uint64_t> stolen_tasks_{0};

  std::atomic<bool> timer_armed_{false};
  TaskTimer task_timer_;  ///< null unless instrumentation installed one
};

/// Runs `body(i)` for every i in [0, count), distributing iterations over a
/// transient pool of `threads` workers (0 = hardware concurrency). Blocks
/// until all iterations complete. Iterations must be independent. An
/// exception escaping an iteration is captured (first one wins) and
/// rethrown here after all workers drain; remaining iterations may be
/// skipped once a throw is observed.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Futures-style fork/join on an existing pool: submits `body(i)` for every
/// i in [0, count) and blocks until the last one finishes. Unlike
/// `pool.wait_idle()`, this waits only for *these* tasks, so a pool can be
/// shared by nested or interleaved invocations. Tasks must be independent.
/// An exception escaping a task is captured (first one wins) and rethrown
/// here after every task of this invocation completed, so the contract
/// machinery's throwing test handler propagates cleanly out of worker
/// tasks instead of terminating the process. The caller's thread does not
/// execute tasks, so the invocation also works from inside another pool
/// task.
void parallel_invoke(ThreadPool& pool, std::size_t count,
                     const std::function<void(std::size_t)>& body);

}  // namespace dynp::util
