#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool plus a `parallel_for` helper used to run
/// independent simulations (trace x factor x job-set x scheduler) in
/// parallel. The simulation core itself is single-threaded and shares no
/// mutable state between tasks (C++ Core Guidelines CP.2); the pool only
/// partitions an index range.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dynp::util {

/// Fixed-size worker pool. Tasks are `std::function<void()>`; `wait_idle`
/// blocks until every submitted task has finished. Exceptions escaping a task
/// terminate (tasks are expected to handle their own errors).
class ThreadPool {
 public:
  /// \param threads number of workers; 0 selects `hardware_concurrency()`
  ///        (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Per-task timing hook for the observability layer: called on the worker
  /// thread after each completed task with the task's queue wait and run
  /// time in microseconds. The hook must be thread-safe (workers invoke it
  /// concurrently); install or clear it only while the pool is idle. An
  /// unset hook costs nothing — enqueue timestamps are only taken while a
  /// hook is installed. Tasks that throw are not reported (the exception
  /// propagates unchanged).
  using TaskTimer = std::function<void(double wait_us, double run_us)>;
  void set_task_timer(TaskTimer timer);

 private:
  /// A queued task plus its enqueue instant (only stamped while a task
  /// timer is installed; default-constructed otherwise).
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  TaskTimer task_timer_;  ///< null unless instrumentation installed one
};

/// Runs `body(i)` for every i in [0, count), distributing iterations over a
/// transient pool of `threads` workers (0 = hardware concurrency). Blocks
/// until all iterations complete. Iterations must be independent. An
/// exception escaping an iteration is captured (first one wins) and
/// rethrown here after all workers drain; remaining iterations may be
/// skipped once a throw is observed.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Futures-style fork/join on an existing pool: submits `body(i)` for every
/// i in [0, count) and blocks until the last one finishes. Unlike
/// `pool.wait_idle()`, this waits only for *these* tasks, so a pool can be
/// shared by nested or interleaved invocations. Tasks must be independent.
/// An exception escaping a task is captured (first one wins) and rethrown
/// here after every task of this invocation completed, so the contract
/// machinery's throwing test handler propagates cleanly out of worker
/// tasks instead of terminating the process. The caller's thread does not
/// execute tasks, so the invocation also works from inside another pool
/// task.
void parallel_invoke(ThreadPool& pool, std::size_t count,
                     const std::function<void(std::size_t)>& body);

}  // namespace dynp::util
