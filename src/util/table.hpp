#pragma once

/// \file table.hpp
/// Plain-text table rendering and CSV emission for the benchmark harness.
/// All paper tables are printed through `TextTable` so the layout is uniform;
/// figures are emitted as CSV series readable by any plotting tool.

#include <iosfwd>
#include <string>
#include <vector>

namespace dynp::util {

/// Column alignment for `TextTable`.
enum class Align { kLeft, kRight };

/// A simple monospace table: add a header, then rows of pre-formatted cells.
/// Rendering pads each column to its widest cell and draws a rule under the
/// header. Rows of a single empty cell render as separator rules, which the
/// paper tables use between trace blocks.
class TextTable {
 public:
  /// Sets the header row and per-column alignment (alignment vector may be
  /// shorter than the header; missing entries default to right-aligned).
  void set_header(std::vector<std::string> header,
                  std::vector<Align> align = {});

  /// Appends a data row. Rows may be ragged; short rows are padded.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator rule.
  void add_rule();

  /// Renders the table to \p os.
  void render(std::ostream& os) const;

  /// Convenience: render to a string.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

/// Formats \p v with \p decimals fixed decimal places.
[[nodiscard]] std::string fmt_fixed(double v, int decimals);

/// Formats \p v with a thousands separator (e.g. 79,302), for counts.
[[nodiscard]] std::string fmt_count(long long v);

/// Formats a signed value with explicit '+' for positive numbers, as the
/// paper's difference columns do.
[[nodiscard]] std::string fmt_signed(double v, int decimals);

/// Writes rows of doubles as CSV with a header line. Used for figure series.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<double>& row);
  void add_row(const std::vector<std::string>& row);

  /// Writes to \p path; returns false (and leaves no partial file behind is
  /// not guaranteed) on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

  void render(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dynp::util
