#pragma once

/// \file fnv.hpp
/// FNV-1a 64-bit hashing over byte strings. Used for content-addressed file
/// names (the sweep point cache): stable across platforms and runs, cheap,
/// and good enough dispersion for a directory of cache entries — collisions
/// are additionally guarded by storing and verifying the full key string
/// inside each entry.

#include <cstdint>
#include <string_view>

namespace dynp::util {

/// FNV-1a over \p bytes with the standard 64-bit offset basis and prime.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace dynp::util
