#pragma once

/// \file wallclock.hpp
/// The repo's single sanctioned wall-clock read. Simulation results must be
/// a pure function of (trace, config, seed); the only legitimate uses of
/// real time are self-measurement — tuning-pass budgets, task-timer
/// instrumentation, sweep wall-clock stats. Funneling those reads through
/// this header keeps `dynp_analyze`'s det-clock check meaningful: this file
/// is the one impure-listed clock source (tools/analyze/purity.toml), so a
/// `steady_clock` spelled anywhere else in src/ is a finding, not a style
/// choice.
///
/// Durations are returned as doubles (µs or s) rather than chrono types so
/// call sites never need to name a clock.

#include <chrono>

namespace dynp::util {

/// An instant on the machine's monotonic clock. Comparable and
/// default-constructible; a default-constructed instant means "never
/// stamped" and compares unequal to any real reading.
using WallInstant = std::chrono::steady_clock::time_point;

/// Reads the monotonic wall clock. Never use this to influence scheduling
/// decisions — only to measure how long the scheduler itself took.
[[nodiscard]] inline WallInstant wall_now() noexcept {
  return std::chrono::steady_clock::now();
}

/// Microseconds elapsed from \p start to \p end (negative if reversed).
[[nodiscard]] inline double wall_micros_between(WallInstant start,
                                                WallInstant end) noexcept {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

/// Seconds elapsed from \p start to \p end (negative if reversed).
[[nodiscard]] inline double wall_seconds_between(WallInstant start,
                                                 WallInstant end) noexcept {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace dynp::util
