#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <latch>
#include <utility>

namespace dynp::util {

namespace {

/// First-exception capture shared by the fork/join helpers: `run` shields a
/// task body, `rethrow` re-raises the captured exception at the join point.
class FirstError {
 public:
  void run(const std::function<void(std::size_t)>& body, std::size_t i) noexcept {
    if (failed_.load(std::memory_order_acquire)) return;
    try {
      body(i);
    } catch (...) {
      const std::lock_guard lock(mutex_);
      if (!failed_.load(std::memory_order_relaxed)) {
        error_ = std::current_exception();
        failed_.store(true, std::memory_order_release);
      }
    }
  }

  void rethrow() {
    if (failed_.load(std::memory_order_acquire)) {
      std::rethrow_exception(error_);
    }
  }

 private:
  std::atomic<bool> failed_{false};
  std::mutex mutex_;
  std::exception_ptr error_;
};

/// Worker identity: which pool the current thread belongs to (if any) and
/// its index there. Distinct pool instances never confuse each other —
/// `submit` and `worker_index` compare the pool pointer — so nested pools
/// (an orchestrator worker driving a simulation with its own tuning pool)
/// resolve correctly.
thread_local const void* tl_pool = nullptr;
thread_local std::size_t tl_index = ThreadPool::npos;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  {
    // Empty critical section: any worker between its predicate check and
    // its wait is forced to observe `stopping_`.
    const std::lock_guard lock(mutex_);
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::worker_index() const noexcept {
  return tl_pool == this ? tl_index : npos;
}

void ThreadPool::push_task(std::size_t queue_index, Task task) {
  WorkerQueue& q = *queues_[queue_index];
  {
    const std::lock_guard lock(q.mutex);
    q.tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    const std::lock_guard lock(mutex_);
  }
  cv_task_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  Task entry{std::move(task), {}};
  if (timer_armed_.load(std::memory_order_relaxed)) {
    entry.enqueued = wall_now();
  }
  pending_.fetch_add(1, std::memory_order_release);
  const std::size_t self = worker_index();
  const std::size_t target =
      self != npos
          ? self
          : submit_cursor_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  push_task(target, std::move(entry));
}

void ThreadPool::set_task_timer(TaskTimer timer) {
  const std::lock_guard lock(mutex_);
  task_timer_ = std::move(timer);
  timer_armed_.store(task_timer_ != nullptr, std::memory_order_relaxed);
}

ThreadPool::StealStats ThreadPool::steal_stats() const noexcept {
  return StealStats{executed_.load(std::memory_order_relaxed),
                    steal_batches_.load(std::memory_order_relaxed),
                    stolen_tasks_.load(std::memory_order_relaxed)};
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

bool ThreadPool::next_task(std::size_t self, Task& out) {
  {
    WorkerQueue& own = *queues_[self];
    const std::lock_guard lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  const std::size_t n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[(self + k) % n];
    std::deque<Task> loot;
    {
      const std::lock_guard lock(victim.mutex);
      const std::size_t avail = victim.tasks.size();
      if (avail == 0) continue;
      // Steal the older half (front); the victim keeps its hot back end.
      const std::size_t take = (avail + 1) / 2;
      const auto end = victim.tasks.begin() +
                       static_cast<std::ptrdiff_t>(take);
      loot.insert(loot.end(), std::make_move_iterator(victim.tasks.begin()),
                  std::make_move_iterator(end));
      victim.tasks.erase(victim.tasks.begin(), end);
    }
    steal_batches_.fetch_add(1, std::memory_order_relaxed);
    stolen_tasks_.fetch_add(loot.size(), std::memory_order_relaxed);
    out = std::move(loot.front());
    loot.pop_front();
    queued_.fetch_sub(1, std::memory_order_release);
    if (!loot.empty()) {
      WorkerQueue& own = *queues_[self];
      const std::lock_guard lock(own.mutex);
      for (Task& t : loot) own.tasks.push_back(std::move(t));
      // The moved tasks stay counted in `queued_`, and a worker only sleeps
      // after observing `queued_ == 0`, so peers keep hunting; no extra
      // notification is needed for correctness.
    }
    return true;
  }
  return false;
}

void ThreadPool::run_task(Task& task) {
  if (timer_armed_.load(std::memory_order_relaxed)) {
    const WallInstant started = wall_now();
    task.fn();
    const WallInstant finished = wall_now();
    // The hook may only change while the pool is idle, so reading it here
    // without the lock is race-free. Tasks enqueued before the hook was
    // installed carry no timestamp; report zero wait rather than a bogus
    // epoch-relative duration.
    const double wait_us = task.enqueued == WallInstant{}
                               ? 0.0
                               : wall_micros_between(task.enqueued, started);
    task_timer_(wait_us, wall_micros_between(started, finished));
  } else {
    task.fn();
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      const std::lock_guard lock(mutex_);
    }
    cv_idle_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_index = index;
  for (;;) {
    Task task;
    if (next_task(index, task)) {
      run_task(task);
      continue;
    }
    std::unique_lock lock(mutex_);
    cv_task_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    // Like the pre-stealing pool, shutdown drains every queued task before
    // the workers exit.
    if (stopping_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  FirstError error;
  ThreadPool pool(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        error.run(body, i);
      }
    });
  }
  pool.wait_idle();
  error.rethrow();
}

void parallel_invoke(ThreadPool& pool, std::size_t count,
                     const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  FirstError error;
  std::latch done(static_cast<std::ptrdiff_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&body, &done, &error, i] {
      error.run(body, i);
      done.count_down();
    });
  }
  done.wait();
  error.rethrow();
}

}  // namespace dynp::util
