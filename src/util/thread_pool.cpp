#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <latch>
#include <mutex>

namespace dynp::util {

namespace {

/// First-exception capture shared by the fork/join helpers: `run` shields a
/// task body, `rethrow` re-raises the captured exception at the join point.
class FirstError {
 public:
  void run(const std::function<void(std::size_t)>& body, std::size_t i) noexcept {
    if (failed_.load(std::memory_order_acquire)) return;
    try {
      body(i);
    } catch (...) {
      const std::lock_guard lock(mutex_);
      if (!failed_.load(std::memory_order_relaxed)) {
        error_ = std::current_exception();
        failed_.store(true, std::memory_order_release);
      }
    }
  }

  void rethrow() {
    if (failed_.load(std::memory_order_acquire)) {
      std::rethrow_exception(error_);
    }
  }

 private:
  std::atomic<bool> failed_{false};
  std::mutex mutex_;
  std::exception_ptr error_;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    Task entry{std::move(task), {}};
    if (task_timer_) entry.enqueued = std::chrono::steady_clock::now();
    queue_.push(std::move(entry));
  }
  cv_task_.notify_one();
}

void ThreadPool::set_task_timer(TaskTimer timer) {
  const std::lock_guard lock(mutex_);
  task_timer_ = std::move(timer);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    const TaskTimer* timer = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
      // The hook may only change while the pool is idle, so reading it once
      // under the lock and invoking it after the task is race-free.
      if (task_timer_) timer = &task_timer_;
    }
    if (timer != nullptr) {
      using Clock = std::chrono::steady_clock;
      using MicrosF = std::chrono::duration<double, std::micro>;
      const Clock::time_point started = Clock::now();
      task.fn();
      const Clock::time_point finished = Clock::now();
      // Tasks enqueued before the hook was installed carry no timestamp;
      // report zero wait rather than a bogus epoch-relative duration.
      const double wait_us = task.enqueued == Clock::time_point{}
                                 ? 0.0
                                 : MicrosF(started - task.enqueued).count();
      (*timer)(wait_us, MicrosF(finished - started).count());
    } else {
      task.fn();
    }
    {
      const std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  FirstError error;
  ThreadPool pool(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        error.run(body, i);
      }
    });
  }
  pool.wait_idle();
  error.rethrow();
}

void parallel_invoke(ThreadPool& pool, std::size_t count,
                     const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  FirstError error;
  std::latch done(static_cast<std::ptrdiff_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&body, &done, &error, i] {
      error.run(body, i);
      done.count_down();
    });
  }
  done.wait();
  error.rethrow();
}

}  // namespace dynp::util
