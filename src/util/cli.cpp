#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/assert.hpp"

namespace dynp::util {

CliParser::CliParser(std::string program) : program_(std::move(program)) {}

void CliParser::add_option(std::string name, std::string default_value,
                           std::string help_text) {
  DYNP_EXPECTS(find(name) == nullptr);
  options_.push_back(Option{std::move(name), default_value,
                            std::move(default_value), std::move(help_text),
                            /*is_flag=*/false, /*seen=*/false});
}

void CliParser::add_flag(std::string name, std::string help_text) {
  DYNP_EXPECTS(find(name) == nullptr);
  options_.push_back(Option{std::move(name), "false", "false",
                            std::move(help_text), /*is_flag=*/true,
                            /*seen=*/false});
}

const CliParser::Option* CliParser::find(const std::string& name) const {
  for (const auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

CliParser::Option* CliParser::find(const std::string& name) {
  for (auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      return false;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    Option* opt = find(arg);
    if (opt == nullptr) {
      std::fprintf(stderr, "unknown option: --%s (try --help)\n", arg.c_str());
      return false;
    }
    if (opt->is_flag) {
      if (has_value && value != "true" && value != "false") {
        std::fprintf(stderr, "flag --%s takes no value\n", arg.c_str());
        return false;
      }
      opt->value = has_value ? value : "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "option --%s requires a value\n", arg.c_str());
          return false;
        }
        value = argv[++i];
      }
      opt->value = value;
    }
    opt->seen = true;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const Option* opt = find(name);
  DYNP_EXPECTS(opt != nullptr);
  return opt->value;
}

long long CliParser::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool CliParser::get_flag(const std::string& name) const {
  return get(name) == "true";
}

std::optional<long long> CliParser::get_int_checked(const std::string& name,
                                                    long long min,
                                                    long long max) const {
  const std::string value = get(name);
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "--%s: '%s' is not an integer (expected %lld..%lld)\n",
                 name.c_str(), value.c_str(), min, max);
    return std::nullopt;
  }
  if (parsed < min || parsed > max) {
    std::fprintf(stderr, "--%s: %lld is out of range (expected %lld..%lld)\n",
                 name.c_str(), parsed, min, max);
    return std::nullopt;
  }
  return parsed;
}

std::optional<double> CliParser::get_double_checked(const std::string& name,
                                                    double min,
                                                    double max) const {
  const std::string value = get(name);
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      !std::isfinite(parsed)) {
    std::fprintf(stderr, "--%s: '%s' is not a number (expected %g..%g)\n",
                 name.c_str(), value.c_str(), min, max);
    return std::nullopt;
  }
  if (parsed < min || parsed > max) {
    std::fprintf(stderr, "--%s: %g is out of range (expected %g..%g)\n",
                 name.c_str(), parsed, min, max);
    return std::nullopt;
  }
  return parsed;
}

std::string CliParser::help() const {
  std::ostringstream oss;
  oss << program_ << "\n\noptions:\n";
  for (const auto& opt : options_) {
    oss << "  --" << opt.name;
    if (!opt.is_flag) oss << " <value>";
    oss << "\n      " << opt.help;
    if (!opt.is_flag) oss << " (default: " << opt.default_value << ")";
    oss << "\n";
  }
  oss << "  --help\n      show this message\n";
  return oss.str();
}

}  // namespace dynp::util
