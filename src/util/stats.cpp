#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace dynp::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double trimmed_mean_drop_extremes(std::vector<double> values) noexcept {
  // NaNs carry no ordering, so they can neither be trimmed as extremes nor
  // averaged; reject them up front and trim what remains.
  std::erase_if(values, [](double v) { return std::isnan(v); });
  if (values.empty()) return 0.0;
  if (values.size() == 1) return values.front();
  if (values.size() == 2) return mean(values);
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (std::size_t i = 1; i + 1 < values.size(); ++i) sum += values[i];
  return sum / static_cast<double>(values.size() - 2);
}

double quantile(std::vector<double> values, double q) noexcept {
  if (values.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double median(std::vector<double> values) noexcept {
  return quantile(std::move(values), 0.5);
}

}  // namespace dynp::util
