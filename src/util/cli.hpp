#pragma once

/// \file cli.hpp
/// Minimal command-line option parser shared by the bench and example
/// binaries. Supports `--name value`, `--name=value` and boolean flags, with
/// typed accessors and an auto-generated `--help` text.

#include <optional>
#include <string>
#include <vector>

namespace dynp::util {

/// Declarative CLI parser. Declare options up front, then `parse(argc, argv)`.
class CliParser {
 public:
  /// \param program one-line description printed at the top of --help.
  explicit CliParser(std::string program);

  /// Declares a string-valued option with a default.
  void add_option(std::string name, std::string default_value,
                  std::string help);

  /// Declares a boolean flag (defaults to false; present => true).
  void add_flag(std::string name, std::string help);

  /// Parses argv. Returns false (after printing a message to stderr) on
  /// unknown options or missing values; prints help and returns false when
  /// `--help` is given.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Validating accessors: parse the option's value strictly (the whole
  /// token must be a number) and check it against [min, max]. On failure
  /// they print a one-line actionable message to stderr — naming the option,
  /// the offending value and the accepted range — and return `nullopt`, so
  /// tools can refuse bad input instead of silently running on garbage.
  [[nodiscard]] std::optional<long long> get_int_checked(
      const std::string& name, long long min, long long max) const;
  [[nodiscard]] std::optional<double> get_double_checked(
      const std::string& name, double min, double max) const;

  /// Renders the help text.
  [[nodiscard]] std::string help() const;

 private:
  struct Option {
    std::string name;
    std::string value;
    std::string default_value;
    std::string help;
    bool is_flag = false;
    bool seen = false;
  };

  [[nodiscard]] const Option* find(const std::string& name) const;
  [[nodiscard]] Option* find(const std::string& name);

  std::string program_;
  std::vector<Option> options_;
};

}  // namespace dynp::util
