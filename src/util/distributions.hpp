#pragma once

/// \file distributions.hpp
/// Fully-specified random distributions (independent of the standard
/// library's implementation-defined algorithms) used by the synthetic
/// workload generators.
///
/// Each distribution is a small value type with a `sample(Xoshiro256&)`
/// member. Composition helpers (`Bounded`, `Mixture`) build the hyper- and
/// truncated distributions the trace models need.

#include <cmath>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dynp::util {

/// Continuous uniform on [lo, hi).
class UniformReal {
 public:
  UniformReal(double lo, double hi) : lo_(lo), hi_(hi) {
    DYNP_EXPECTS(lo <= hi);
  }

  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept {
    return lo_ + (hi_ - lo_) * rng.next_double();
  }

 private:
  double lo_;
  double hi_;
};

/// Exponential with the given mean (= 1/rate).
class Exponential {
 public:
  explicit Exponential(double mean) : mean_(mean) { DYNP_EXPECTS(mean > 0); }

  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept {
    // Inverse CDF; 1 - u avoids log(0).
    return -mean_ * std::log1p(-rng.next_double());
  }

  [[nodiscard]] double mean() const noexcept { return mean_; }

 private:
  double mean_;
};

/// Lognormal parameterised by the underlying normal's (mu, sigma).
/// `Lognormal::from_mean_cv` builds one from a target mean and coefficient of
/// variation, which is how trace models are calibrated.
class Lognormal {
 public:
  Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
    DYNP_EXPECTS(sigma >= 0);
  }

  /// Calibration constructor: choose (mu, sigma) so that the distribution has
  /// the requested mean and coefficient of variation (stddev / mean).
  [[nodiscard]] static Lognormal from_mean_cv(double mean, double cv) {
    DYNP_EXPECTS(mean > 0);
    DYNP_EXPECTS(cv >= 0);
    const double sigma2 = std::log1p(cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return {mu, std::sqrt(sigma2)};
  }

  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept {
    return std::exp(mu_ + sigma_ * standard_normal(rng));
  }

  [[nodiscard]] double mean() const noexcept {
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
  }

  /// One standard-normal variate via Marsaglia's polar method (deterministic
  /// given the generator stream; no internal caching so streams stay aligned).
  [[nodiscard]] static double standard_normal(Xoshiro256& rng) noexcept {
    for (;;) {
      const double u = 2.0 * rng.next_double() - 1.0;
      const double v = 2.0 * rng.next_double() - 1.0;
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

 private:
  double mu_;
  double sigma_;
};

/// Two-branch hyper-exponential: with probability p sample Exponential(m1),
/// otherwise Exponential(m2). Captures the bursty interarrival behaviour of
/// production traces (many back-to-back script submissions plus long gaps).
class HyperExponential {
 public:
  HyperExponential(double p, double mean1, double mean2)
      : p_(p), e1_(mean1), e2_(mean2) {
    DYNP_EXPECTS(p >= 0 && p <= 1);
  }

  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept {
    return rng.next_double() < p_ ? e1_.sample(rng) : e2_.sample(rng);
  }

  [[nodiscard]] double mean() const noexcept {
    return p_ * e1_.mean() + (1 - p_) * e2_.mean();
  }

 private:
  double p_;
  Exponential e1_;
  Exponential e2_;
};

/// Discrete distribution over explicit (value, weight) pairs.
/// Sampling is O(log n) via the cumulative-weight table.
class DiscreteValues {
 public:
  explicit DiscreteValues(std::vector<std::pair<double, double>> value_weight)
      : values_() {
    DYNP_EXPECTS(!value_weight.empty());
    double total = 0;
    values_.reserve(value_weight.size());
    for (const auto& [value, weight] : value_weight) {
      DYNP_EXPECTS(weight >= 0);
      total += weight;
      values_.emplace_back(value, total);
    }
    DYNP_EXPECTS(total > 0);
    for (auto& [value, cum] : values_) cum /= total;
  }

  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept {
    const double u = rng.next_double();
    // Binary search over cumulative weights.
    std::size_t lo = 0, hi = values_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (values_[mid].second < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return values_[lo].first;
  }

 private:
  std::vector<std::pair<double, double>> values_;  // (value, cumulative prob)
};

/// Clamps another distribution's samples into [lo, hi] by resampling (up to a
/// fixed retry budget, then hard clamping). Keeps the shape of the inner
/// distribution while honouring the trace's published min/max columns.
template <class Inner>
class Bounded {
 public:
  Bounded(Inner inner, double lo, double hi)
      : inner_(std::move(inner)), lo_(lo), hi_(hi) {
    DYNP_EXPECTS(lo <= hi);
  }

  [[nodiscard]] double sample(Xoshiro256& rng) const noexcept {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const double x = inner_.sample(rng);
      if (x >= lo_ && x <= hi_) return x;
    }
    const double x = inner_.sample(rng);
    return x < lo_ ? lo_ : (x > hi_ ? hi_ : x);
  }

 private:
  Inner inner_;
  double lo_;
  double hi_;
};

}  // namespace dynp::util
