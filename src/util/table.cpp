#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dynp::util {

void TextTable::set_header(std::vector<std::string> header,
                           std::vector<Align> align) {
  header_ = std::move(header);
  align_ = std::move(align);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

void TextTable::render(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  if (cols == 0) return;

  std::vector<std::size_t> width(cols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = std::max(width[c], header_[c].size());
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto pad = [&](const std::string& s, std::size_t c) {
    const Align a = c < align_.size() ? align_[c] : Align::kRight;
    std::string out;
    const std::size_t fill = width[c] - std::min(width[c], s.size());
    if (a == Align::kLeft) {
      out = s + std::string(fill, ' ');
    } else {
      out = std::string(fill, ' ') + s;
    }
    return out;
  };

  const auto rule = [&] {
    std::string r;
    for (std::size_t c = 0; c < cols; ++c) {
      r += std::string(width[c], '-');
      if (c + 1 < cols) r += "-+-";
    }
    return r;
  };

  if (!header_.empty()) {
    for (std::size_t c = 0; c < cols; ++c) {
      os << pad(c < header_.size() ? header_[c] : "", c);
      if (c + 1 < cols) os << " | ";
    }
    os << '\n' << rule() << '\n';
  }

  for (const auto& row : rows_) {
    if (row.empty()) {
      os << rule() << '\n';
      continue;
    }
    for (std::size_t c = 0; c < cols; ++c) {
      os << pad(c < row.size() ? row[c] : "", c);
      if (c + 1 < cols) os << " | ";
    }
    os << '\n';
  }
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

std::string fmt_fixed(double v, int decimals) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(decimals) << v;
  return oss.str();
}

std::string fmt_count(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string fmt_signed(double v, int decimals) {
  std::string s = fmt_fixed(v, decimals);
  if (v >= 0.0) s.insert(s.begin(), '+');
  return s;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (const double v : row) {
    std::ostringstream oss;
    oss << std::setprecision(10) << v;
    cells.push_back(oss.str());
  }
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  rows_.push_back(row);
}

void CsvWriter::render(std::ostream& os) const {
  const auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  render(out);
  return static_cast<bool>(out);
}

}  // namespace dynp::util
