#pragma once

/// \file job.hpp
/// The job and job-set model used throughout the library.
///
/// Following the paper (§4.2), a job is defined by its submission time, the
/// number of requested resources ("width") and the estimated run time
/// ("length"); the simulator additionally needs the actual run time. A
/// planning-based RMS requires run-time estimates, and treats them as hard
/// upper bounds (jobs never exceed their estimate).

#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace dynp {

/// Simulation time in seconds. Trace submit times are integer seconds, but
/// shrinking factors (0.9, 0.8, ...) produce fractional times, so time is a
/// double throughout.
using Time = double;

/// Dense job identifier, also the index into `JobSet::jobs`.
using JobId = std::uint32_t;

namespace workload {

/// One batch job.
struct Job {
  JobId id = 0;
  /// Submission time, seconds from trace start.
  Time submit = 0;
  /// Requested resources (processors/nodes).
  std::uint32_t width = 1;
  /// User-supplied run-time estimate in seconds (upper bound; the planner
  /// reserves resources for this long).
  Time estimated_runtime = 0;
  /// Actual run time in seconds; `actual_runtime <= estimated_runtime`.
  Time actual_runtime = 0;

  /// Actual resource consumption: actual run time x width. This is the
  /// weight used by the SLDwA metric.
  [[nodiscard]] double area() const noexcept {
    return actual_runtime * static_cast<double>(width);
  }

  /// Resource reservation the planner must make: estimate x width.
  [[nodiscard]] double estimated_area() const noexcept {
    return estimated_runtime * static_cast<double>(width);
  }

  /// Validates the planning-RMS job contract.
  [[nodiscard]] bool valid() const noexcept {
    return width >= 1 && estimated_runtime >= 0 && actual_runtime >= 0 &&
           actual_runtime <= estimated_runtime && submit >= 0;
  }
};

/// The machine a job set targets.
struct Machine {
  std::string name;
  std::uint32_t nodes = 1;
};

/// Structure-of-arrays job table: the planner-facing view of a job set.
/// Hot planning loops touch one or two attributes of many jobs (width and
/// estimate per placement, submit per policy comparison); parallel arrays
/// keyed by the dense JobId turn those walks into contiguous loads instead
/// of striding over full `Job` records. Built once per `JobSet` (by
/// `normalize`) and immutable afterwards, like the job vector it mirrors.
class JobTable {
 public:
  JobTable() = default;
  explicit JobTable(const std::vector<Job>& jobs) { assign(jobs); }

  /// Rebuilds the columns from \p jobs (requires `jobs[i].id == i`).
  void assign(const std::vector<Job>& jobs);

  [[nodiscard]] std::size_t size() const noexcept { return width_.size(); }
  [[nodiscard]] bool empty() const noexcept { return width_.empty(); }

  // Per-job accessors; \p id must be a dense id below `size()`.
  [[nodiscard]] Time submit(JobId id) const noexcept { return submit_[id]; }
  [[nodiscard]] std::uint32_t width(JobId id) const noexcept {
    return width_[id];
  }
  [[nodiscard]] Time estimate(JobId id) const noexcept {
    return estimate_[id];
  }
  [[nodiscard]] Time actual(JobId id) const noexcept { return actual_[id]; }
  [[nodiscard]] double estimated_area(JobId id) const noexcept {
    return estimate_[id] * static_cast<double>(width_[id]);
  }

  // Whole columns, for vectorisable passes.
  [[nodiscard]] const std::vector<Time>& submits() const noexcept {
    return submit_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& widths() const noexcept {
    return width_;
  }
  [[nodiscard]] const std::vector<Time>& estimates() const noexcept {
    return estimate_;
  }
  [[nodiscard]] const std::vector<Time>& actuals() const noexcept {
    return actual_;
  }

 private:
  std::vector<Time> submit_;
  std::vector<std::uint32_t> width_;
  std::vector<Time> estimate_;
  std::vector<Time> actual_;
};

/// An ordered collection of jobs for one machine. Invariant: jobs are sorted
/// by submit time (ties keep insertion order) and `jobs[i].id == i`.
class JobSet {
 public:
  JobSet() = default;
  JobSet(Machine machine, std::vector<Job> jobs);

  [[nodiscard]] const Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] const std::vector<Job>& jobs() const noexcept { return jobs_; }
  /// SoA view of the same jobs, rebuilt whenever the set changes.
  [[nodiscard]] const JobTable& table() const noexcept { return table_; }
  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs_.empty(); }
  [[nodiscard]] const Job& operator[](std::size_t i) const {
    DYNP_EXPECTS(i < jobs_.size());
    return jobs_[i];
  }

  /// Applies the paper's workload-increasing transform: every submission time
  /// is multiplied by \p factor (the "shrinking factor"; < 1 compresses the
  /// arrival process and thereby increases load without changing job areas).
  /// Scaled submission times are rounded to whole seconds: trace timestamps
  /// are integral, and keeping every simulation time integral makes all
  /// double arithmetic in the planner exact (no one-ulp boundary slivers in
  /// the resource profile).
  [[nodiscard]] JobSet with_shrinking_factor(double factor) const;

  /// In-place variant of `with_shrinking_factor` for the sweep hot path:
  /// rebuilds *this* set as \p source scaled by \p factor, reusing the
  /// existing job storage instead of allocating a fresh vector per cell.
  /// Produces exactly the set `source.with_shrinking_factor(factor)` would.
  /// \p source may not alias `*this`.
  void assign_scaled_from(const JobSet& source, double factor);

  /// The second load-increasing approach from §4.2: scales both estimated
  /// and actual run times by \p factor (> 1 increases load, and unlike
  /// shrinking it changes the jobs' areas). Run times are rounded to whole
  /// seconds; estimates keep covering actuals.
  [[nodiscard]] JobSet with_runtime_scaling(double factor) const;

  /// The third load-increasing approach from §4.2: submits every job
  /// \p copies times (same submit time, width and run times). Copies are
  /// interleaved at the original submission instants.
  [[nodiscard]] JobSet with_multisubmission(unsigned copies) const;

  /// Total actual area of all jobs (node-seconds of real work).
  [[nodiscard]] double total_area() const noexcept;

 private:
  void normalize();

  Machine machine_;
  std::vector<Job> jobs_;
  JobTable table_;
};

/// Repairs raw jobs that violate the planning-RMS contract (used when
/// ingesting external traces): width is clamped to [1, machine nodes],
/// negative times to 0, and the actual run time to the estimate. The result
/// satisfies the `JobSet` constructor's preconditions.
[[nodiscard]] std::vector<Job> sanitize_jobs(std::vector<Job> jobs,
                                             const Machine& machine);

}  // namespace workload
}  // namespace dynp
