#include "workload/job.hpp"

#include <algorithm>
#include <cmath>

namespace dynp::workload {

JobSet::JobSet(Machine machine, std::vector<Job> jobs)
    : machine_(std::move(machine)), jobs_(std::move(jobs)) {
  DYNP_EXPECTS(machine_.nodes >= 1);
  normalize();
}

void JobSet::normalize() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) { return a.submit < b.submit; });
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].id = static_cast<JobId>(i);
    DYNP_ENSURES(jobs_[i].valid());
    DYNP_ENSURES(jobs_[i].width <= machine_.nodes);
  }
  table_.assign(jobs_);
}

void JobTable::assign(const std::vector<Job>& jobs) {
  const std::size_t n = jobs.size();
  submit_.resize(n);
  width_.resize(n);
  estimate_.resize(n);
  actual_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    DYNP_EXPECTS(jobs[i].id == static_cast<JobId>(i));
    submit_[i] = jobs[i].submit;
    width_[i] = jobs[i].width;
    estimate_[i] = jobs[i].estimated_runtime;
    actual_[i] = jobs[i].actual_runtime;
  }
}

JobSet JobSet::with_shrinking_factor(double factor) const {
  DYNP_EXPECTS(factor > 0);
  std::vector<Job> scaled = jobs_;
  for (Job& job : scaled) job.submit = std::round(job.submit * factor);
  return JobSet{machine_, std::move(scaled)};
}

void JobSet::assign_scaled_from(const JobSet& source, double factor) {
  DYNP_EXPECTS(factor > 0);
  DYNP_EXPECTS(this != &source);
  machine_ = source.machine_;
  jobs_ = source.jobs_;  // copy-assign reuses this set's capacity
  for (Job& job : jobs_) job.submit = std::round(job.submit * factor);
  normalize();
}

JobSet JobSet::with_runtime_scaling(double factor) const {
  DYNP_EXPECTS(factor > 0);
  std::vector<Job> scaled = jobs_;
  for (Job& job : scaled) {
    job.actual_runtime = std::max(1.0, std::round(job.actual_runtime * factor));
    job.estimated_runtime =
        std::max(job.actual_runtime, std::round(job.estimated_runtime * factor));
  }
  return JobSet{machine_, std::move(scaled)};
}

JobSet JobSet::with_multisubmission(unsigned copies) const {
  DYNP_EXPECTS(copies >= 1);
  std::vector<Job> expanded;
  expanded.reserve(jobs_.size() * copies);
  for (const Job& job : jobs_) {
    for (unsigned c = 0; c < copies; ++c) expanded.push_back(job);
  }
  return JobSet{machine_, std::move(expanded)};
}

std::vector<Job> sanitize_jobs(std::vector<Job> jobs, const Machine& machine) {
  for (Job& job : jobs) {
    job.width = std::max<std::uint32_t>(1, std::min(job.width, machine.nodes));
    job.estimated_runtime = std::max(job.estimated_runtime, 0.0);
    job.actual_runtime =
        std::clamp(job.actual_runtime, 0.0, job.estimated_runtime);
    job.submit = std::max(job.submit, 0.0);
  }
  return jobs;
}

double JobSet::total_area() const noexcept {
  double total = 0;
  for (const Job& job : jobs_) total += job.area();
  return total;
}

}  // namespace dynp::workload
