#pragma once

/// \file trace_stats.hpp
/// Table-2-style descriptive statistics for a job set: width, estimated and
/// actual run time, over-estimation factor and interarrival times. Used both
/// to validate the synthetic generators against the published trace
/// characteristics and by `bench/table2_trace_properties`.

#include "util/stats.hpp"
#include "workload/job.hpp"

namespace dynp::workload {

/// Descriptive statistics over one job set (the columns of the paper's
/// Table 2).
struct TraceStats {
  std::size_t job_count = 0;
  util::OnlineStats width;
  util::OnlineStats estimated_runtime;
  util::OnlineStats actual_runtime;
  util::OnlineStats interarrival;
  /// The paper's "average overest. factor": mean estimated run time divided
  /// by mean actual run time (matches the published values, e.g. CTC
  /// 24324/10958 = 2.220).
  double overestimation_factor = 0.0;
  /// Offered load at shrinking factor 1: total actual area divided by
  /// (machine nodes x submission span). A lower bound on achievable
  /// utilisation pressure.
  double offered_load = 0.0;
};

/// Computes statistics for \p set.
[[nodiscard]] TraceStats compute_stats(const JobSet& set);

}  // namespace dynp::workload
