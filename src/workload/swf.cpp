#include "workload/swf.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string_view>

namespace dynp::workload {
namespace {

/// SWF field indices (0-based) for the fields we consume.
constexpr std::size_t kFieldSubmit = 1;
constexpr std::size_t kFieldRunTime = 3;
constexpr std::size_t kFieldAllocProcs = 4;
constexpr std::size_t kFieldReqProcs = 7;
constexpr std::size_t kFieldReqTime = 8;
constexpr std::size_t kFieldCount = 18;

/// Records one rejected line: bumps the matching category counter (and the
/// total) and keeps a capped per-line diagnostic.
void reject(SwfParseResult& result, std::size_t* category, std::size_t line,
            const char* reason) {
  ++result.skipped_records;
  ++*category;
  if (result.diagnostics.size() < SwfParseResult::kMaxDiagnostics) {
    result.diagnostics.push_back(SwfDiagnostic{line, reason});
  }
}

[[nodiscard]] constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// Characters that can continue a decimal/exponent number token. A number
/// immediately followed by one of these was really a single larger token
/// that is not a valid number ("1e", "3.."), so the field fails as a whole
/// instead of being split mid-token.
[[nodiscard]] constexpr bool is_number_atom(char c) noexcept {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F') || c == 'p' || c == 'P' || c == 'x' ||
         c == 'X' || c == '+' || c == '-' || c == '.';
}

/// Extracts the next whitespace-separated numeric field starting at \p pos.
/// On success stores the value, advances \p pos past the token and returns
/// true. On failure (end of line, or a token that is not a complete number)
/// leaves \p pos at the first non-whitespace character and returns false.
[[nodiscard]] bool parse_field(std::string_view line, std::size_t& pos,
                               double& out) {
  while (pos < line.size() && is_space(line[pos])) ++pos;
  if (pos >= line.size()) return false;

  std::size_t start = pos;
  // std::from_chars accepts a leading '-' but not '+'; SWF writers emit
  // both. A lone sign must not count as progress into the token.
  if (line[start] == '+') {
    if (start + 1 >= line.size()) return false;
    const char next = line[start + 1];
    if (!((next >= '0' && next <= '9') || next == '.')) return false;
    ++start;
  }
  // from_chars parses "inf"/"nan"; the field grammar here is strictly
  // numeric, so alphabetic tokens fail like any other garbage.
  {
    std::size_t digit = start + (line[start] == '-' ? 1u : 0u);
    if (digit >= line.size() ||
        !((line[digit] >= '0' && line[digit] <= '9') || line[digit] == '.')) {
      return false;
    }
  }

  double v = 0;
  const char* const end = line.data() + line.size();
  const std::from_chars_result r = std::from_chars(line.data() + start, end, v);
  if (r.ec != std::errc{}) return false;
  // "1e" parses as 1 with 'e' left over; a real tokenizer would have taken
  // "1e" as one (invalid) token. Reject when the leftover continues the
  // number token.
  if (r.ptr != end && is_number_atom(*r.ptr)) return false;

  out = v;
  pos = static_cast<std::size_t>(r.ptr - line.data());
  return true;
}

/// Streaming parse state: jobs accumulated so far plus the line counter.
/// One instance lives across all chunks of a stream.
struct SwfParser {
  SwfParseResult result;
  std::vector<Job> jobs;
  std::size_t line_no = 0;

  /// Consumes one input line (without its terminating newline).
  void consume_line(std::string_view line) {
    ++line_no;
    if (line.empty()) return;
    if (line.front() == ';') {
      ++result.header_lines;
      return;
    }

    std::array<double, kFieldCount> value{};
    value.fill(-1.0);
    std::size_t n = 0;
    std::size_t pos = 0;
    bool ok = true;
    while (n < kFieldCount && ok) {
      double v = 0;
      if (parse_field(line, pos, v)) {
        value[n++] = v;
      } else {
        ok = false;
      }
    }
    if (n <= kFieldReqProcs) {
      // Too few numeric fields. Distinguish a record that simply ends early
      // from one cut short by a non-numeric token: if anything but
      // whitespace remains, field extraction stopped on garbage.
      std::size_t rest = pos;
      while (rest < line.size() && is_space(line[rest])) ++rest;
      if (rest >= line.size()) {
        reject(result, &result.skipped_truncated, line_no,
               "truncated record: too few fields");
      } else {
        reject(result, &result.skipped_malformed, line_no,
               "malformed record: non-numeric field");
      }
      return;
    }

    const double submit = value[kFieldSubmit];
    const double run_time = value[kFieldRunTime];
    double procs = value[kFieldReqProcs];
    if (procs <= 0) procs = value[kFieldAllocProcs];
    double req_time = n > kFieldReqTime ? value[kFieldReqTime] : -1.0;
    if (req_time < 0) req_time = run_time;

    if (!std::isfinite(submit) || !std::isfinite(run_time) ||
        !std::isfinite(procs) || !std::isfinite(req_time)) {
      reject(result, &result.skipped_unusable, line_no,
             "unusable record: non-finite field value");
      return;
    }
    if (submit < 0 || run_time < 0 || procs < 1 || req_time < 0) {
      reject(result, &result.skipped_unusable, line_no,
             "unusable record: negative or missing submit/run time/width");
      return;
    }
    if (procs >
        static_cast<double>(std::numeric_limits<std::uint32_t>::max())) {
      reject(result, &result.skipped_unusable, line_no,
             "unusable record: processor count out of range");
      return;
    }

    Job job;
    job.submit = submit;
    job.width = static_cast<std::uint32_t>(procs);
    job.estimated_runtime = std::max(req_time, run_time);
    job.actual_runtime = run_time;
    jobs.push_back(job);
  }
};

}  // namespace

SwfParseResult read_swf(std::istream& in, Machine machine,
                        const SwfReadOptions& options) {
  SwfParser parser;
  // The only text held at any moment: one fixed chunk plus the partial line
  // carried across its trailing edge. Memory use is independent of stream
  // length.
  std::vector<char> chunk(std::max<std::size_t>(options.chunk_bytes, 1));
  std::string carry;
  while (in) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    std::string_view data(chunk.data(), static_cast<std::size_t>(got));
    std::size_t pos = 0;
    while (pos <= data.size()) {
      const std::size_t nl = data.find('\n', pos);
      if (nl == std::string_view::npos) {
        carry.append(data.substr(pos));
        break;
      }
      if (carry.empty()) {
        parser.consume_line(data.substr(pos, nl - pos));
      } else {
        carry.append(data.substr(pos, nl - pos));
        parser.consume_line(carry);
        carry.clear();
      }
      pos = nl + 1;
    }
  }
  // A final line without a terminating newline still counts.
  if (!carry.empty()) parser.consume_line(carry);

  SwfParseResult result = std::move(parser.result);
  std::vector<Job> jobs = sanitize_jobs(std::move(parser.jobs), machine);
  result.set = JobSet{std::move(machine), std::move(jobs)};
  return result;
}

SwfParseResult read_swf_file(const std::string& path, Machine machine,
                             const SwfReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open SWF file: " + path);
  return read_swf(in, std::move(machine), options);
}

void write_swf(std::ostream& out, const JobSet& set) {
  out << "; Machine: " << set.machine().name << "\n";
  out << "; MaxProcs: " << set.machine().nodes << "\n";
  out << "; Generated by dynp (synthetic workload)\n";
  for (const Job& job : set.jobs()) {
    // 18 SWF fields; the ones the model does not carry are -1.
    out << (job.id + 1) << ' '      // 1 job number
        << job.submit << ' '        // 2 submit time
        << -1 << ' '                // 3 wait time (scheduler output)
        << job.actual_runtime << ' '  // 4 run time
        << job.width << ' '         // 5 allocated processors
        << -1 << ' ' << -1 << ' '   // 6 avg cpu, 7 memory
        << job.width << ' '         // 8 requested processors
        << job.estimated_runtime    // 9 requested time
        << " -1 1 -1 -1 -1 -1 -1 -1 -1\n";  // 10..18
  }
}

bool write_swf_file(const std::string& path, const JobSet& set) {
  std::ofstream out(path);
  if (!out) return false;
  write_swf(out, set);
  return static_cast<bool>(out);
}

}  // namespace dynp::workload
