#pragma once

/// \file models.hpp
/// Parametric per-trace workload models.
///
/// The paper evaluates on synthetic job sets "based on" four Parallel
/// Workloads Archive traces (CTC SP2, KTH SP2, LANL CM-5, SDSC SP2). The raw
/// logs are not redistributable and unavailable offline, so this module
/// implements the closest synthetic equivalent: a generative model per trace,
/// calibrated against the published Table 2 statistics (width min/avg/max,
/// estimated and actual run time min/avg/max, mean over-estimation factor,
/// mean interarrival time) plus a width-runtime correlation target chosen so
/// that the offered load at shrinking factor 1.0 matches the utilisation the
/// paper reports (Table 4).
///
/// Model structure, per job:
///  * width  ~ discrete distribution over power-of-two-biased values,
///             rebalanced at construction to hit the published mean exactly;
///  * estimate ~ point mass at the queue limit (users requesting "max") mixed
///             with a bounded lognormal, scaled by (width/mean width)^gamma to
///             realise the width-runtime correlation (gamma solved by
///             bisection), rounded up to whole minutes; an internal
///             fixed-seed Monte Carlo pass rescales the lognormal so the
///             post-truncation mean hits the published value;
///  * actual  = estimate x fraction, where fraction is 1 with probability
///             p_full (jobs running into their limit) and Beta-like u^alpha
///             otherwise, alpha solved so E[actual]/E[estimate] matches the
///             published over-estimation factor; floored at 1 second;
///  * arrivals ~ two-branch hyper-exponential (burst + background) targeting
///             `ia_mean / load_calibration`, modulated by diurnal and weekend
///             rate cycles whose backlog drains bound policy-induced
///             starvation (the trace-derived sets the paper used inherit
///             these cycles from the logs).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/job.hpp"

namespace dynp::workload {

/// Tunable description of one trace's statistical shape. Obtain the four
/// calibrated instances from `ctc_model()` et al.; the fields are public so
/// users can build models for their own machines.
struct TraceModel {
  std::string name;
  std::uint32_t nodes = 1;

  /// (width value, relative weight) pairs; rebalanced to `width_mean`.
  std::vector<std::pair<double, double>> width_values;
  double width_mean = 1.0;

  double est_min = 60.0;    ///< smallest possible estimate [s]
  double est_max = 64800.0; ///< queue limit [s]
  double est_mean = 10000;  ///< published mean estimate [s]
  double est_cv = 1.3;      ///< lognormal coefficient of variation
  double p_est_max = 0.1;   ///< point mass at the queue limit
  double est_round = 60.0;  ///< estimates rounded up to this granularity [s]

  double p_full = 0.1;      ///< P(actual run time == estimate)
  double runtime_fraction = 0.5;  ///< target E[actual] / E[estimate]
  double act_max = 1e18;    ///< trace-specific cap on actual run time [s]

  /// Target E[width x estimate] / (E[width] x E[estimate]); 1.0 = independent.
  double area_correlation = 1.0;

  double ia_mean = 500.0;       ///< published mean interarrival [s]
  double ia_burst_prob = 0.3;   ///< fraction of burst (script) submissions
  double ia_burst_mean = 4.0;   ///< mean gap within a burst [s]

  /// Effective-load calibration: the generator targets a realised mean
  /// interarrival of `ia_mean / load_calibration`. The paper's utilisation
  /// at shrinking factor 1.0 exceeds the offered load implied by the
  /// published per-column means for LANL and SDSC (their synthetic sets
  /// carry more area per second than the product of Table 2 means); this
  /// factor reproduces that effective load without inflating the
  /// width-runtime correlation, which would distort SJF/LJF behaviour.
  double load_calibration = 1.0;

  /// Diurnal arrival-rate modulation depth in [0, 1); 0 disables. The PWA
  /// traces have strong day/night cycles; the nightly lull drains the
  /// backlog and bounds policy-induced starvation, which is essential for
  /// reproducing the paper's SJF results.
  double diurnal_amplitude = 0.0;

  /// Weekend arrival-rate multiplier in (0, 1]; 1 disables. Two days out of
  /// every seven run at this fraction of the weekday rate, giving the deep
  /// weekly drain production logs exhibit (the realised mean interarrival is
  /// recalibrated automatically).
  double weekend_factor = 1.0;
};

/// Calibrated models for the four traces of the paper (Table 2).
[[nodiscard]] TraceModel ctc_model();
[[nodiscard]] TraceModel kth_model();
[[nodiscard]] TraceModel lanl_model();
[[nodiscard]] TraceModel sdsc_model();

/// All four paper models in paper order (CTC, KTH, LANL, SDSC).
[[nodiscard]] std::vector<TraceModel> paper_models();

/// Looks up one of the paper models by case-insensitive name; throws
/// `std::invalid_argument` for unknown names.
[[nodiscard]] TraceModel model_by_name(const std::string& name);

/// Scales \p model to a machine \p machine_scale times larger while keeping
/// its utilisation target: `nodes` and `load_calibration` are both multiplied
/// by the scale (arrivals target `ia_mean / load_calibration`, so the arrival
/// rate grows with the machine and the offered load per node is unchanged).
/// Per-job width and run-time distributions are untouched, which means the
/// number of *concurrently running* jobs — and with it the resource-profile
/// segment count the planner must search — grows linearly with the scale.
/// This is the federation-scale stress shape used by the million-job
/// benchmarks; `machine_scale` must be >= 1.
[[nodiscard]] TraceModel scale_machine(TraceModel model,
                                       std::uint32_t machine_scale);

/// A trace model after its deterministic calibration passes (width-mean
/// rebalance, correlation-exponent bisection, post-truncation mean fitting,
/// arrival-scale fitting). Construction costs a few milliseconds; reuse one
/// sampler to generate many job sets.
class CalibratedSampler {
 public:
  explicit CalibratedSampler(const TraceModel& model);
  ~CalibratedSampler();

  CalibratedSampler(CalibratedSampler&&) noexcept;
  CalibratedSampler& operator=(CalibratedSampler&&) noexcept;
  CalibratedSampler(const CalibratedSampler&) = delete;
  CalibratedSampler& operator=(const CalibratedSampler&) = delete;

  /// Generates \p n_jobs jobs deterministically from \p seed.
  [[nodiscard]] JobSet generate(std::size_t n_jobs, std::uint64_t seed) const;

  [[nodiscard]] const TraceModel& model() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Generates \p n_jobs jobs from \p model. Deterministic in \p seed.
/// Convenience wrapper: calibrates on every call — construct a
/// `CalibratedSampler` once when generating many sets.
[[nodiscard]] JobSet generate(const TraceModel& model, std::size_t n_jobs,
                              std::uint64_t seed);

/// Generates the paper's input ensemble: \p n_sets independent job sets of
/// \p n_jobs each, with per-set seeds derived from (\p master_seed, set
/// index). Sets differ only in their random streams.
[[nodiscard]] std::vector<JobSet> generate_ensemble(const TraceModel& model,
                                                    std::size_t n_sets,
                                                    std::size_t n_jobs,
                                                    std::uint64_t master_seed);

/// Streaming variant of `generate_ensemble` for large scales (100k–1M jobs
/// per set): calibrates once, then generates one set at a time and hands it
/// to \p consume(set_index, set). Peak memory is a single set no matter how
/// many sets the ensemble has, and set `s` is identical to
/// `generate_ensemble(model, n_sets, n_jobs, master_seed)[s]`.
void generate_ensemble_streamed(
    const TraceModel& model, std::size_t n_sets, std::size_t n_jobs,
    std::uint64_t master_seed,
    const std::function<void(std::size_t, JobSet&&)>& consume);

}  // namespace dynp::workload
