#include "workload/models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/distributions.hpp"

namespace dynp::workload {
namespace {

/// Width distribution with exact-mean rebalancing and the moment machinery
/// needed to solve for the width-runtime correlation exponent.
class WidthModel {
 public:
  WidthModel(std::vector<std::pair<double, double>> value_weight,
             double target_mean)
      : entries_(std::move(value_weight)) {
    DYNP_EXPECTS(!entries_.empty());
    normalize();
    rebalance_to_mean(target_mean);
    normalize();
  }

  [[nodiscard]] double mean() const noexcept { return moment(1.0); }

  /// E[w^p] over the discrete distribution.
  [[nodiscard]] double moment(double p) const noexcept {
    double m = 0;
    for (const auto& [v, w] : entries_) m += w * std::pow(v, p);
    return m;
  }

  /// E[w^(1+g)] / (E[w] E[w^g]) — the area-correlation factor produced by
  /// scaling run times with (w / E[w])^g. Increasing in g, equals 1 at g=0.
  [[nodiscard]] double correlation_at(double g) const noexcept {
    return moment(1.0 + g) / (moment(1.0) * moment(g));
  }

  [[nodiscard]] util::DiscreteValues distribution() const {
    return util::DiscreteValues(entries_);
  }

 private:
  void normalize() {
    double total = 0;
    for (const auto& [v, w] : entries_) total += w;
    DYNP_EXPECTS(total > 0);
    for (auto& [v, w] : entries_) w /= total;
  }

  /// Exponentially tilts the weights (w_i' = w_i * exp(theta * v_i / vmax))
  /// so the mean hits \p target exactly. The tilt is smooth across all
  /// values — unlike a point-mass fix-up at an extreme value, it does not
  /// manufacture artificial full-machine jobs, which would wreck slowdowns
  /// through head-of-line blocking.
  void rebalance_to_mean(double target) {
    auto [min_it, max_it] = std::minmax_element(
        entries_.begin(), entries_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    const double vmin = min_it->first;
    const double vmax = max_it->first;
    DYNP_EXPECTS(target >= vmin && target <= vmax);

    const auto tilted_mean = [&](double theta) {
      double num = 0, den = 0;
      for (const auto& [v, w] : entries_) {
        const double t = w * std::exp(theta * v / vmax);
        num += t * v;
        den += t;
      }
      return num / den;
    };
    // Tilted mean is strictly increasing in theta; bisect.
    double lo = -80, hi = 80;
    if (tilted_mean(lo) > target || tilted_mean(hi) < target) {
      // Target unreachable by tilting (degenerate weights); leave as is.
      return;
    }
    for (int i = 0; i < 100; ++i) {
      const double mid = 0.5 * (lo + hi);
      (tilted_mean(mid) < target ? lo : hi) = mid;
    }
    const double theta = 0.5 * (lo + hi);
    for (auto& [v, w] : entries_) w *= std::exp(theta * v / vmax);
  }

  std::vector<std::pair<double, double>> entries_;
};

// (The correlation exponent is solved empirically in TraceSampler below:
// the analytic moment solution over the width distribution is badly biased
// once estimates are clamped at the queue limit, which hits exactly the wide
// jobs that carry the correlation.)

/// The full per-trace sampler: owns calibrated distributions and produces
/// jobs. Construction runs the deterministic calibration passes described in
/// models.hpp.
class TraceSampler {
 public:
  explicit TraceSampler(const TraceModel& model)
      : model_(model),
        widths_(model.width_values, model.width_mean),
        width_dist_(widths_.distribution()),
        gamma_(0.0),
        z_norm_(1.0),
        body_scale_(1.0),
        body_(util::Lognormal::from_mean_cv(1.0, model.est_cv)) {
    DYNP_EXPECTS(model.p_est_max >= 0 && model.p_est_max < 1);
    DYNP_EXPECTS(model.runtime_fraction > model.p_full);

    // Body (non-queue-limit) estimate mean required so that the mixture with
    // the point mass at est_max has the published mean.
    const double body_target =
        (model.est_mean - model.p_est_max * model.est_max) /
        (1.0 - model.p_est_max);
    DYNP_EXPECTS(body_target > model.est_min);
    body_ = util::Lognormal::from_mean_cv(body_target, model.est_cv);

    // Joint calibration of (gamma, body_scale): gamma is bisected until the
    // *realised* width-estimate correlation (measured on the full sampling
    // pipeline, including truncation at the queue limit and minute rounding)
    // hits the target; for every trial gamma the scale is re-fit so the mean
    // estimate stays on the published value. All passes use fixed seeds, so
    // construction is deterministic.
    const auto fit_scale_and_measure_corr = [&](double gamma) {
      gamma_ = gamma;
      z_norm_ = widths_.moment(gamma) / std::pow(widths_.mean(), gamma);
      body_scale_ = 1.0;
      double corr = 1.0;
      for (int pass = 0; pass < 4; ++pass) {
        util::Xoshiro256 rng(0xCA11B8A7E5EEDULL + static_cast<unsigned>(pass));
        double sum_e = 0, sum_w = 0, sum_we = 0;
        constexpr int kSamples = 8192;
        for (int i = 0; i < kSamples; ++i) {
          const double w = width_dist_.sample(rng);
          const bool at_limit = rng.next_double() < model.p_est_max;
          const double e =
              at_limit ? model.est_max : sample_body_estimate(rng, w);
          sum_e += e;
          sum_w += w;
          sum_we += w * e;
        }
        const double mean_e = sum_e / kSamples;
        const double mean_w = sum_w / kSamples;
        corr = (sum_we / kSamples) / (mean_w * mean_e);
        // Rescale the body so the mixture mean returns to est_mean.
        const double body_mean =
            (mean_e - model.p_est_max * model.est_max) /
            (1.0 - model.p_est_max);
        if (body_mean > 0) body_scale_ *= body_target / body_mean;
      }
      return corr;
    };

    if (model.area_correlation <= 1.0 + 1e-9) {
      (void)fit_scale_and_measure_corr(0.0);
    } else if (fit_scale_and_measure_corr(8.0) > model.area_correlation) {
      double lo = 0.0, hi = 8.0;
      for (int i = 0; i < 24; ++i) {
        const double mid = 0.5 * (lo + hi);
        (fit_scale_and_measure_corr(mid) < model.area_correlation ? lo : hi) =
            mid;
      }
      // One final fit pins the scale for the solved gamma.
      (void)fit_scale_and_measure_corr(0.5 * (lo + hi));
    }
    // else: even gamma = 8 cannot reach the target (queue-limit truncation
    // dominates); the sampler stays at the saturating exponent.

    // Run-time fraction: E[frac] = p_full + (1-p_full)/(1+alpha).
    alpha_ = (1.0 - model.p_full) /
                 (model.runtime_fraction - model.p_full) -
             1.0;
    DYNP_ENSURES(alpha_ >= 0.0);

    // Background interarrival mean completing the hyper-exponential mixture;
    // the realised mean targets ia_mean / load_calibration (see models.hpp).
    DYNP_EXPECTS(model.load_calibration > 0);
    const double ia_target = model.ia_mean / model.load_calibration;
    DYNP_EXPECTS(ia_target > model.ia_burst_prob * model.ia_burst_mean);
    ia_background_mean_ =
        (ia_target - model.ia_burst_prob * model.ia_burst_mean) /
        (1.0 - model.ia_burst_prob);

    // Diurnal modulation changes the realised mean interarrival time (more
    // arrivals land in the fast phase), so calibrate a global gap scale by
    // simulating the arrival recursion with a fixed seed.
    if (model.diurnal_amplitude > 0) {
      for (int pass = 0; pass < 3; ++pass) {
        util::Xoshiro256 rng(0xD1A2B3C4D5E6F7ULL);
        constexpr int kSamples = 8192;
        Time now = 0;
        for (int i = 0; i < kSamples; ++i) now += sample_gap(rng, now);
        ia_scale_ *= ia_target / (now / kSamples);
      }
    }
  }

  [[nodiscard]] Job sample_job(util::Xoshiro256& rng) const {
    Job job;
    const double w = width_dist_.sample(rng);
    job.width = static_cast<std::uint32_t>(w);

    double estimate;
    if (rng.next_double() < model_.p_est_max) {
      estimate = model_.est_max;
    } else {
      estimate = sample_body_estimate(rng, w);
    }

    double frac;
    if (rng.next_double() < model_.p_full) {
      frac = 1.0;
    } else {
      frac = std::pow(rng.next_double(), alpha_);
    }
    // Whole-second actual run times keep every simulation timestamp
    // integral, so profile arithmetic stays exact (see job.hpp).
    double actual = std::ceil(estimate * frac);
    actual = std::clamp(actual, 1.0, std::min(model_.act_max, estimate));
    // Keep the planning contract: the estimate covers the actual run time.
    estimate = std::max(estimate, actual);

    job.estimated_runtime = estimate;
    job.actual_runtime = actual;
    return job;
  }

  /// Next interarrival gap given the current absolute time (for the optional
  /// diurnal modulation).
  [[nodiscard]] double sample_gap(util::Xoshiro256& rng, Time now) const {
    const double mean = rng.next_double() < model_.ia_burst_prob
                            ? model_.ia_burst_mean
                            : ia_background_mean_;
    double gap = -mean * std::log1p(-rng.next_double()) * ia_scale_;
    constexpr double kDay = 86400.0;
    if (model_.diurnal_amplitude > 0) {
      const double phase = 2.0 * 3.14159265358979323846 *
                           std::fmod(now, kDay) / kDay;
      // High rate (short gaps) around midday, low at night. The nightly lull
      // lets the backlog drain, which bounds how long SJF can starve long
      // jobs — a property the PWA traces have and a homogeneous arrival
      // process lacks (see DESIGN.md).
      gap /= 1.0 + model_.diurnal_amplitude * std::sin(phase);
    }
    if (model_.weekend_factor < 1.0) {
      // Days 5 and 6 of each week run at a fraction of the weekday rate,
      // producing the deep weekly drains of production logs.
      const double day_of_week = std::fmod(now / kDay, 7.0);
      if (day_of_week >= 5.0) gap /= model_.weekend_factor;
    }
    return gap;
  }

 private:
  /// Bounded, width-correlated, minute-rounded lognormal estimate.
  [[nodiscard]] double sample_body_estimate(util::Xoshiro256& rng,
                                            double width) const {
    const double width_factor =
        std::pow(width / widths_.mean(), gamma_) / z_norm_;
    double e = body_.sample(rng) * body_scale_ * width_factor;
    e = std::clamp(e, model_.est_min, model_.est_max);
    if (model_.est_round > 0) {
      e = std::ceil(e / model_.est_round) * model_.est_round;
      e = std::min(e, model_.est_max);
    }
    return e;
  }

  TraceModel model_;
  WidthModel widths_;
  util::DiscreteValues width_dist_;
  double gamma_;
  double z_norm_;
  double body_scale_;
  util::Lognormal body_;
  double alpha_ = 0.0;
  double ia_background_mean_ = 0.0;
  double ia_scale_ = 1.0;
};

[[nodiscard]] TraceModel base_model(std::string name, std::uint32_t nodes) {
  TraceModel m;
  m.name = std::move(name);
  m.nodes = nodes;
  return m;
}

}  // namespace

TraceModel ctc_model() {
  TraceModel m = base_model("CTC", 430);
  m.width_values = {{1, 0.33}, {2, 0.14},  {3, 0.05},  {4, 0.12},
                    {8, 0.11}, {16, 0.10}, {32, 0.08}, {64, 0.04},
                    {128, 0.02}, {256, 0.007}, {336, 0.003}};
  m.width_mean = 10.72;
  m.est_min = 60;
  m.est_max = 64800;
  m.est_mean = 24324;
  m.est_cv = 1.2;
  m.p_est_max = 0.25;
  m.p_full = 0.15;
  m.runtime_fraction = 1.0 / 2.220;
  m.act_max = 64800;
  m.area_correlation = 1.05;
  m.ia_mean = 369;
  m.ia_burst_prob = 0.35;
  m.ia_burst_mean = 4;
  m.load_calibration = 0.92;
  m.diurnal_amplitude = 0.75;
  m.weekend_factor = 0.25;
  return m;
}

TraceModel kth_model() {
  TraceModel m = base_model("KTH", 100);
  m.width_values = {{1, 0.35},  {2, 0.17}, {4, 0.15}, {8, 0.14},
                    {16, 0.10}, {32, 0.06}, {64, 0.02}, {100, 0.01}};
  m.width_mean = 7.66;
  m.est_min = 60;
  m.est_max = 216000;
  m.est_mean = 13678;
  m.est_cv = 1.4;
  m.p_est_max = 0.005;
  m.p_full = 0.25;
  m.runtime_fraction = 1.0 / 1.544;
  m.act_max = 216000;
  m.area_correlation = 1.07;
  m.ia_mean = 1031;
  m.ia_burst_prob = 0.35;
  m.ia_burst_mean = 4;
  m.load_calibration = 0.95;
  m.diurnal_amplitude = 0.75;
  m.weekend_factor = 0.25;
  return m;
}

TraceModel lanl_model() {
  TraceModel m = base_model("LANL", 1024);
  m.width_values = {{32, 0.45},  {64, 0.27},  {128, 0.17},
                    {256, 0.07}, {512, 0.03}, {1024, 0.01}};
  m.width_mean = 104.95;
  m.est_min = 60;
  m.est_max = 30000;
  m.est_mean = 3683;
  m.est_cv = 1.6;
  m.p_est_max = 0.06;
  m.p_full = 0.10;
  m.runtime_fraction = 1.0 / 2.220;
  m.act_max = 25200;
  m.area_correlation = 1.15;
  m.ia_mean = 509;
  m.ia_burst_prob = 0.35;
  m.ia_burst_mean = 4;
  m.load_calibration = 1.65;
  m.diurnal_amplitude = 0.75;
  m.weekend_factor = 0.25;
  return m;
}

TraceModel sdsc_model() {
  TraceModel m = base_model("SDSC", 128);
  m.width_values = {{1, 0.30},  {2, 0.18}, {4, 0.16},  {8, 0.14},
                    {16, 0.12}, {32, 0.07}, {64, 0.02}, {128, 0.01}};
  m.width_mean = 10.54;
  m.est_min = 60;
  m.est_max = 172800;
  m.est_mean = 14344;
  m.est_cv = 1.0;
  m.p_est_max = 0.005;
  m.p_full = 0.10;
  m.runtime_fraction = 1.0 / 2.360;
  m.act_max = 172800;
  m.area_correlation = 1.15;
  m.ia_mean = 934;
  m.ia_burst_prob = 0.35;
  m.ia_burst_mean = 4;
  m.load_calibration = 1.12;
  m.diurnal_amplitude = 0.75;
  m.weekend_factor = 0.25;
  return m;
}

std::vector<TraceModel> paper_models() {
  return {ctc_model(), kth_model(), lanl_model(), sdsc_model()};
}

TraceModel model_by_name(const std::string& name) {
  std::string upper;
  upper.reserve(name.size());
  for (const char c : name) {
    upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  if (upper == "CTC") return ctc_model();
  if (upper == "KTH") return kth_model();
  if (upper == "LANL") return lanl_model();
  if (upper == "SDSC") return sdsc_model();
  throw std::invalid_argument("unknown trace model: " + name);
}

TraceModel scale_machine(TraceModel model, std::uint32_t machine_scale) {
  DYNP_EXPECTS(machine_scale >= 1);
  model.nodes *= machine_scale;
  model.load_calibration *= machine_scale;
  // The arrival process of a federation is the superposition of the member
  // machines' streams: every gap compresses by the scale, within-burst gaps
  // included (this also keeps the sampler's requirement that the burst
  // branch cannot exceed the overall rate target satisfied at any scale).
  model.ia_burst_mean /= machine_scale;
  if (machine_scale > 1) {
    model.name += "-x" + std::to_string(machine_scale);
  }
  return model;
}

struct CalibratedSampler::Impl {
  TraceModel model;
  TraceSampler sampler;
  explicit Impl(const TraceModel& m) : model(m), sampler(m) {}
};

CalibratedSampler::CalibratedSampler(const TraceModel& model)
    : impl_(std::make_unique<Impl>(model)) {}

CalibratedSampler::~CalibratedSampler() = default;
CalibratedSampler::CalibratedSampler(CalibratedSampler&&) noexcept = default;
CalibratedSampler& CalibratedSampler::operator=(CalibratedSampler&&) noexcept =
    default;

const TraceModel& CalibratedSampler::model() const noexcept {
  return impl_->model;
}

JobSet CalibratedSampler::generate(std::size_t n_jobs,
                                   std::uint64_t seed) const {
  util::Xoshiro256 rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(n_jobs);
  Time now = 0;
  for (std::size_t i = 0; i < n_jobs; ++i) {
    Job job = impl_->sampler.sample_job(rng);
    job.submit = std::round(now);
    jobs.push_back(job);
    now += impl_->sampler.sample_gap(rng, now);
  }
  return JobSet{Machine{impl_->model.name, impl_->model.nodes},
                std::move(jobs)};
}

JobSet generate(const TraceModel& model, std::size_t n_jobs,
                std::uint64_t seed) {
  return CalibratedSampler(model).generate(n_jobs, seed);
}

std::vector<JobSet> generate_ensemble(const TraceModel& model,
                                      std::size_t n_sets, std::size_t n_jobs,
                                      std::uint64_t master_seed) {
  std::vector<JobSet> sets;
  sets.reserve(n_sets);
  generate_ensemble_streamed(
      model, n_sets, n_jobs, master_seed,
      [&sets](std::size_t, JobSet&& set) { sets.push_back(std::move(set)); });
  return sets;
}

void generate_ensemble_streamed(
    const TraceModel& model, std::size_t n_sets, std::size_t n_jobs,
    std::uint64_t master_seed,
    const std::function<void(std::size_t, JobSet&&)>& consume) {
  const CalibratedSampler sampler(model);
  for (std::size_t s = 0; s < n_sets; ++s) {
    consume(s,
            sampler.generate(n_jobs, util::derive_seed(master_seed, 0x77, s)));
  }
}

}  // namespace dynp::workload
