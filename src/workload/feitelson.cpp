#include "workload/feitelson.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace dynp::workload {
namespace {

/// Largest power of two not exceeding \p n.
[[nodiscard]] std::uint32_t floor_pow2(std::uint32_t n) {
  std::uint32_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// Width sampler: powers of two log-uniform with probability p, else
/// uniform integer in [1, nodes].
[[nodiscard]] std::uint32_t sample_width(const FeitelsonParams& params,
                                         util::Xoshiro256& rng) {
  if (rng.next_double() < params.p_power_of_two) {
    const std::uint32_t max_pow = floor_pow2(params.nodes);
    int max_exp = 0;
    while ((1u << (max_exp + 1)) <= max_pow) ++max_exp;
    const auto exponent = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(max_exp) + 1));
    return 1u << exponent;
  }
  return static_cast<std::uint32_t>(1 + rng.next_below(params.nodes));
}

/// Expected width of `sample_width`, needed to normalise the width-runtime
/// coupling so the overall mean run time stays on target.
[[nodiscard]] double expected_width(const FeitelsonParams& params) {
  const std::uint32_t max_pow = floor_pow2(params.nodes);
  int levels = 1;
  double sum = 1;
  for (std::uint32_t p = 2; p <= max_pow; p *= 2) {
    sum += p;
    ++levels;
  }
  const double pow_mean = sum / levels;
  const double uni_mean = (1.0 + params.nodes) / 2.0;
  return params.p_power_of_two * pow_mean +
         (1.0 - params.p_power_of_two) * uni_mean;
}

}  // namespace

JobSet generate_feitelson(const FeitelsonParams& params, std::size_t n_jobs,
                          std::uint64_t seed) {
  DYNP_EXPECTS(params.nodes >= 1);
  DYNP_EXPECTS(params.short_prob > 0 && params.short_prob < 1);
  DYNP_EXPECTS(params.short_fraction > 0 && params.short_fraction < 1);
  DYNP_EXPECTS(params.repeat_prob >= 0 && params.repeat_prob < 1);
  DYNP_EXPECTS(params.max_overestimate >= 1);

  util::Xoshiro256 rng(seed);

  // Hyper-exponential run-time branches preserving the overall mean:
  // short_prob * short_mean + (1-short_prob) * long_mean = mean_runtime.
  const double short_mean = params.short_fraction * params.mean_runtime;
  const double long_mean =
      (params.mean_runtime - params.short_prob * short_mean) /
      (1.0 - params.short_prob);
  const double mean_w = expected_width(params);

  // Normalisation of the width coupling so E[runtime] stays on target:
  // E[(w / mean_w)^gamma] over the width distribution, estimated once with
  // a fixed-seed pass (deterministic).
  double coupling_norm = 1.0;
  {
    util::Xoshiro256 cal(0xFE17E15011ULL);
    double sum = 0;
    constexpr int kSamples = 8192;
    for (int i = 0; i < kSamples; ++i) {
      sum += std::pow(sample_width(params, cal) / mean_w,
                      params.runtime_width_exponent);
    }
    coupling_norm = sum / kSamples;
  }

  std::vector<Job> jobs;
  jobs.reserve(n_jobs);
  Time now = 0;

  while (jobs.size() < n_jobs) {
    // One job body...
    const std::uint32_t width = sample_width(params, rng);
    const double branch_mean =
        rng.next_double() < params.short_prob ? short_mean : long_mean;
    const double coupling =
        std::pow(width / mean_w, params.runtime_width_exponent) /
        coupling_norm;
    double actual = -branch_mean * coupling * std::log1p(-rng.next_double());
    actual = std::max(1.0, std::ceil(actual));

    double estimate =
        actual * (1.0 + (params.max_overestimate - 1.0) * rng.next_double());
    estimate = std::ceil(estimate / 60.0) * 60.0;
    estimate = std::max(estimate, actual);

    // ...submitted 1 + Geometric(repeat_prob) times.
    Time submit = now;
    for (;;) {
      Job job;
      job.submit = std::round(submit);
      job.width = width;
      job.estimated_runtime = estimate;
      job.actual_runtime = actual;
      jobs.push_back(job);
      if (jobs.size() >= n_jobs ||
          rng.next_double() >= params.repeat_prob) {
        break;
      }
      submit += -params.mean_think_time * std::log1p(-rng.next_double());
    }
    now += -params.mean_interarrival * std::log1p(-rng.next_double());
  }

  return JobSet{Machine{"FEITELSON", params.nodes}, std::move(jobs)};
}

}  // namespace dynp::workload
