#pragma once

/// \file feitelson.hpp
/// The classic Feitelson'96 workload model (paper reference [1]: Feitelson,
/// "A Survey of Scheduling in Multiprogrammed Parallel Systems"), provided
/// as a second, independent generator next to the Table-2-calibrated trace
/// models: useful for sensitivity studies ("does the dynP result survive a
/// different workload model?") and as a neutral default for new machines.
///
/// Model ingredients, following the published structure:
///  * **widths** emphasise powers of two (observed on all production MPPs):
///    with probability `p_power_of_two` a power of two is drawn
///    log-uniformly from [1, nodes], otherwise a uniform integer;
///  * **run times** are hyper-exponential with a weak positive correlation
///    to width (wider jobs run longer on average);
///  * **repeated runs**: users resubmit the same binary — each generated job
///    body is submitted `1 + Geometric(repeat_prob)` times, separated by
///    exponential think times;
///  * **arrivals** are Poisson (exponential interarrival).
///
/// Feitelson'96 predates user run-time estimates; the planning RMS needs
/// them, so estimates are drawn as actual x Uniform[1, max_overestimate],
/// rounded up to whole minutes (the standard bridge used when driving
/// backfilling simulators with this model).

#include <cstdint>

#include "workload/job.hpp"

namespace dynp::workload {

/// Parameters of the Feitelson'96-style generator.
struct FeitelsonParams {
  std::uint32_t nodes = 128;

  double mean_interarrival = 600;   ///< Poisson arrivals [s]
  double mean_runtime = 3000;       ///< overall mean actual run time [s]
  /// Hyper-exponential branch: with `short_prob`, the mean is
  /// `short_fraction x mean_runtime`; otherwise the complementary long
  /// branch keeps the overall mean.
  double short_prob = 0.7;
  double short_fraction = 0.2;

  double p_power_of_two = 0.75;     ///< width is a power of two this often
  /// Width-runtime coupling: the conditional mean run time scales with
  /// (width / mean width)^runtime_width_exponent (0 = independent).
  double runtime_width_exponent = 0.3;

  double repeat_prob = 0.25;        ///< geometric continuation probability
  double mean_think_time = 1200;    ///< gap between reruns [s]

  double max_overestimate = 5.0;    ///< estimate = actual x U[1, this]
};

/// Generates \p n_jobs jobs (counting repetitions) deterministically from
/// \p seed. Submission times are whole seconds; the planning contract
/// (actual <= estimated run time) holds for every job.
[[nodiscard]] JobSet generate_feitelson(const FeitelsonParams& params,
                                        std::size_t n_jobs,
                                        std::uint64_t seed);

}  // namespace dynp::workload
