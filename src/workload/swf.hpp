#pragma once

/// \file swf.hpp
/// Reader/writer for the Standard Workload Format (SWF) used by the Parallel
/// Workloads Archive, so that users who have the real CTC/KTH/LANL/SDSC logs
/// can feed them to the simulator directly.
///
/// SWF is line-oriented: `;`-prefixed header comments followed by 18
/// whitespace-separated fields per job. We consume the fields the paper's job
/// model needs: submit time (2), run time (4), requested processors (8,
/// falling back to allocated processors, 5) and requested time (9, the
/// estimate, falling back to run time). Jobs with unusable fields (negative
/// or missing width/run time) are skipped and counted.

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace dynp::workload {

/// Tuning knobs for the streaming SWF reader.
struct SwfReadOptions {
  /// Size of the fixed read buffer. The reader never materializes the whole
  /// stream: peak text memory is one chunk plus the longest line straddling
  /// a chunk boundary. The default keeps multi-GB logs well under a couple
  /// of megabytes of transient text.
  std::size_t chunk_bytes = 1u << 20;
};

/// One skipped-line diagnostic: which input line, and why it was rejected.
struct SwfDiagnostic {
  std::size_t line = 0;  ///< 1-based line number in the input stream
  std::string reason;    ///< one-line human-readable cause
};

/// Result of parsing an SWF stream.
struct SwfParseResult {
  JobSet set;
  /// Lines that looked like job records but were rejected (the sum of the
  /// three category counters below).
  std::size_t skipped_records = 0;
  /// Rejected: fewer whitespace-separated numeric fields than the job model
  /// needs (a short or cut-off record).
  std::size_t skipped_truncated = 0;
  /// Rejected: a non-numeric token where a field was expected.
  std::size_t skipped_malformed = 0;
  /// Rejected: fields parsed but are unusable (negative submit/run time,
  /// non-finite values, processor count out of range).
  std::size_t skipped_unusable = 0;
  /// Header comment lines encountered.
  std::size_t header_lines = 0;
  /// Per-line diagnostics for the first `kMaxDiagnostics` rejected records.
  /// Capped so a multi-gigabyte corrupt log cannot balloon memory; the
  /// counters above always reflect the full stream.
  std::vector<SwfDiagnostic> diagnostics;
  /// Cap on `diagnostics` entries retained.
  static constexpr std::size_t kMaxDiagnostics = 20;
};

/// Parses SWF text from \p in for machine \p machine. Jobs wider than the
/// machine or with actual > estimated run time are sanitized per the
/// planning-RMS contract (width capped, actual clamped to the estimate).
/// Reads the stream in fixed-size chunks (see `SwfReadOptions`); parse
/// results are identical for every chunk size, down to the per-line
/// diagnostics.
[[nodiscard]] SwfParseResult read_swf(std::istream& in, Machine machine,
                                      const SwfReadOptions& options = {});

/// Convenience overload reading from a file. Throws `std::runtime_error`
/// when the file cannot be opened.
[[nodiscard]] SwfParseResult read_swf_file(const std::string& path,
                                           Machine machine,
                                           const SwfReadOptions& options = {});

/// Writes \p set in SWF (18 fields; unknown fields emitted as -1), with a
/// small comment header recording the machine. Round-trips through
/// `read_swf`.
void write_swf(std::ostream& out, const JobSet& set);

/// Convenience overload writing to a file. Returns false on I/O failure.
[[nodiscard]] bool write_swf_file(const std::string& path, const JobSet& set);

}  // namespace dynp::workload
