#include "workload/trace_stats.hpp"

namespace dynp::workload {

TraceStats compute_stats(const JobSet& set) {
  TraceStats stats;
  stats.job_count = set.size();
  Time prev_submit = 0;
  bool first = true;
  for (const Job& job : set.jobs()) {
    stats.width.add(static_cast<double>(job.width));
    stats.estimated_runtime.add(job.estimated_runtime);
    stats.actual_runtime.add(job.actual_runtime);
    if (!first) stats.interarrival.add(job.submit - prev_submit);
    prev_submit = job.submit;
    first = false;
  }
  if (stats.actual_runtime.mean() > 0) {
    stats.overestimation_factor =
        stats.estimated_runtime.mean() / stats.actual_runtime.mean();
  }
  if (!set.empty()) {
    const Time span = set.jobs().back().submit - set.jobs().front().submit;
    if (span > 0) {
      stats.offered_load =
          set.total_area() /
          (static_cast<double>(set.machine().nodes) * span);
    }
  }
  return stats;
}

}  // namespace dynp::workload
