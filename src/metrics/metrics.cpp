#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace dynp::metrics {

double slowdown(const JobOutcome& o, double floor_runtime) noexcept {
  const double run = std::max(o.actual_runtime, floor_runtime);
  return o.response() / run;
}

double bounded_slowdown(const JobOutcome& o, double tau) noexcept {
  return std::max(o.response() / std::max(o.actual_runtime, tau), 1.0);
}

ScheduleSummary summarize(const std::vector<JobOutcome>& outcomes,
                          std::uint32_t nodes) {
  DYNP_EXPECTS(nodes >= 1);
  ScheduleSummary s;
  double weighted_sld = 0, weight = 0;
  double sld_sum = 0, bsld_sum = 0, resp_sum = 0, wait_sum = 0;
  double width_resp = 0, width_sum = 0;
  double area_total = 0;
  Time first_submit = 0;
  Time last_submit = 0;
  Time last_end = 0;
  std::size_t completed = 0;
  for (const JobOutcome& o : outcomes) {
    // Jobs dropped by fault injection (retries exhausted) carry the sentinel
    // width 0 — no valid job has it — and count towards no aggregate.
    if (o.width == 0) continue;
    if (completed == 0) {
      first_submit = o.submit;
      last_submit = o.submit;
      last_end = o.end;
    }
    ++completed;
    last_submit = std::max(last_submit, o.submit);
    const double sld = slowdown(o);
    const double a = o.area();
    weighted_sld += a * sld;
    weight += a;
    sld_sum += sld;
    bsld_sum += bounded_slowdown(o);
    resp_sum += o.response();
    wait_sum += o.wait();
    s.max_wait = std::max(s.max_wait, o.wait());
    width_resp += static_cast<double>(o.width) * o.response();
    width_sum += static_cast<double>(o.width);
    area_total += a;
    first_submit = std::min(first_submit, o.submit);
    last_end = std::max(last_end, o.end);
  }
  s.jobs = completed;
  if (completed == 0) return s;
  const auto n = static_cast<double>(completed);
  s.sldwa = weight > 0 ? weighted_sld / weight : 0;
  s.avg_slowdown = sld_sum / n;
  s.avg_bounded_slowdown = bsld_sum / n;
  s.avg_response = resp_sum / n;
  s.artww = width_sum > 0 ? width_resp / width_sum : 0;
  s.avg_wait = wait_sum / n;
  s.makespan = last_end - first_submit;
  s.utilization_makespan =
      s.makespan > 0
          ? area_total / (static_cast<double>(nodes) * s.makespan)
          : 0;
  const double window = last_submit - first_submit;
  if (window > 0) {
    double used = 0;
    for (const JobOutcome& o : outcomes) {
      if (o.width == 0) continue;
      const Time lo = std::max(o.start, first_submit);
      const Time hi = std::min(o.end, last_submit);
      if (hi > lo) used += static_cast<double>(o.width) * (hi - lo);
    }
    s.utilization = used / (static_cast<double>(nodes) * window);
  }
  return s;
}

const char* name(PreviewMetric metric) noexcept {
  switch (metric) {
    case PreviewMetric::kSldwa: return "SLDwA";
    case PreviewMetric::kAvgResponse: return "ART";
    case PreviewMetric::kAvgSlowdown: return "SLD";
    case PreviewMetric::kBoundedSlowdown: return "BSLD";
    case PreviewMetric::kArtww: return "ARTwW";
    case PreviewMetric::kMaxCompletion: return "MAXC";
  }
  return "?";
}

double evaluate_preview(PreviewMetric metric, const rms::Schedule& schedule,
                        const workload::JobTable& jobs, Time now) {
  if (schedule.empty()) return 0.0;

  double acc = 0, weight = 0, max_completion = now;
  for (const rms::PlannedJob& p : schedule.entries()) {
    DYNP_EXPECTS(p.id < jobs.size());
    const Time estimate = jobs.estimate(p.id);
    const double est = std::max(estimate, 1.0);
    const double completion = p.start + estimate;
    const double response = completion - jobs.submit(p.id);
    switch (metric) {
      case PreviewMetric::kSldwa: {
        const double area = jobs.estimated_area(p.id);
        acc += area * (response / est);
        weight += area;
        break;
      }
      case PreviewMetric::kAvgResponse:
        acc += response;
        weight += 1;
        break;
      case PreviewMetric::kAvgSlowdown:
        acc += response / est;
        weight += 1;
        break;
      case PreviewMetric::kBoundedSlowdown:
        acc += std::max(response / std::max(est, 60.0), 1.0);
        weight += 1;
        break;
      case PreviewMetric::kArtww:
        acc += static_cast<double>(jobs.width(p.id)) * response;
        weight += static_cast<double>(jobs.width(p.id));
        break;
      case PreviewMetric::kMaxCompletion:
        max_completion = std::max(max_completion, completion);
        break;
    }
  }
  if (metric == PreviewMetric::kMaxCompletion) return max_completion - now;
  return weight > 0 ? acc / weight : 0.0;
}

}  // namespace dynp::metrics
