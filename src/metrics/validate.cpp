#include "metrics/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace dynp::metrics {
namespace {

[[nodiscard]] std::string describe(const char* what, JobId job, double a,
                                   double b) {
  std::ostringstream oss;
  oss << what << " (job " << job << ": " << a << " vs " << b << ")";
  return oss.str();
}

}  // namespace

ValidationReport validate_outcomes(const workload::JobSet& set,
                                   const std::vector<JobOutcome>& outcomes) {
  ValidationReport report;

  if (outcomes.size() < set.size()) {
    for (std::size_t i = outcomes.size(); i < set.size(); ++i) {
      report.issues.push_back(
          {ValidationIssue::Kind::kMissingJob, static_cast<JobId>(i), 0,
           "job missing from outcomes"});
    }
  }

  // Per-job consistency.
  const std::size_t n = std::min(outcomes.size(), set.size());
  for (std::size_t i = 0; i < n; ++i) {
    const JobOutcome& o = outcomes[i];
    const workload::Job& j = set[i];
    // Sentinel width 0: the job was dropped by fault injection (retries
    // exhausted) and never completed; none of the completion checks apply.
    if (o.width == 0) continue;
    if (o.start < j.submit) {
      report.issues.push_back({ValidationIssue::Kind::kStartBeforeSubmit,
                               j.id, o.start,
                               describe("start before submit", j.id, o.start,
                                        j.submit)});
    }
    if (o.end != o.start + j.actual_runtime) {
      report.issues.push_back({ValidationIssue::Kind::kWrongDuration, j.id,
                               o.end,
                               describe("duration mismatch", j.id,
                                        o.end - o.start, j.actual_runtime)});
    }
    if (o.width != j.width) {
      report.issues.push_back({ValidationIssue::Kind::kWidthMismatch, j.id,
                               o.start,
                               describe("width mismatch", j.id, o.width,
                                        j.width)});
    }
  }

  // Global capacity: sweep the start/end deltas.
  std::map<Time, std::int64_t> delta;
  for (std::size_t i = 0; i < n; ++i) {
    if (outcomes[i].width == 0) continue;
    delta[outcomes[i].start] += outcomes[i].width;
    delta[outcomes[i].end] -= outcomes[i].width;
  }
  std::int64_t used = 0;
  const auto capacity = static_cast<std::int64_t>(set.machine().nodes);
  for (const auto& [t, d] : delta) {
    used += d;
    if (used > capacity) {
      std::ostringstream oss;
      oss << "capacity exceeded at t=" << t << ": " << used << " > "
          << capacity;
      report.issues.push_back(
          {ValidationIssue::Kind::kOversubscribed, 0, t, oss.str()});
    }
  }
  return report;
}

}  // namespace dynp::metrics
