#pragma once

/// \file metrics.hpp
/// Performance metrics (paper §4.1), in two flavours:
///
///  * **outcome metrics** — computed after the simulation from actual start
///    and completion times: slowdown, bounded slowdown s^60, slowdown
///    weighted by area (SLDwA, the paper's headline metric), response and
///    wait times, ARTwW, and machine utilisation;
///  * **preview metrics** — computed during the run on a *candidate*
///    schedule, from planned start times and run-time *estimates* (all the
///    scheduler can know). The self-tuning step scores each policy's
///    candidate with one preview metric; all previews are oriented so that
///    *lower is better*.

#include <vector>

#include "rms/planner.hpp"
#include "workload/job.hpp"

namespace dynp::metrics {

/// What happened to one job.
struct JobOutcome {
  JobId id = 0;
  Time submit = 0;
  Time start = 0;
  Time end = 0;
  std::uint32_t width = 1;
  Time actual_runtime = 0;

  [[nodiscard]] double wait() const noexcept { return start - submit; }
  [[nodiscard]] double response() const noexcept { return end - submit; }
  [[nodiscard]] double area() const noexcept {
    return actual_runtime * static_cast<double>(width);
  }
};

/// Job slowdown s = response / run time. Run times below \p floor_runtime
/// are floored to keep the ratio finite (SLDwA is immune — a zero-area job
/// has zero weight — but the unweighted average is not).
[[nodiscard]] double slowdown(const JobOutcome& o,
                              double floor_runtime = 1.0) noexcept;

/// Bounded slowdown s^tau = max(response / max(run time, tau), 1)
/// (Feitelson, JSSPP 2001); tau defaults to the paper's 60 s.
[[nodiscard]] double bounded_slowdown(const JobOutcome& o,
                                      double tau = 60.0) noexcept;

/// Aggregate results of one simulation run.
struct ScheduleSummary {
  std::size_t jobs = 0;
  /// Slowdown weighted by job area: sum(a_i s_i) / sum(a_i).
  double sldwa = 0;
  double avg_slowdown = 0;
  double avg_bounded_slowdown = 0;
  double avg_response = 0;
  /// Average response time weighted by width (ARTwW).
  double artww = 0;
  double avg_wait = 0;
  double max_wait = 0;
  /// Steady-state utilisation, in [0, 1]: node-seconds actually used during
  /// the submission window [first submit, last submit], divided by the
  /// machine capacity over that window (job intervals are clipped to the
  /// window). Insensitive to the cool-down drain after arrivals stop, which
  /// otherwise dominates at small job counts. 0 when the window is empty.
  double utilization = 0;
  /// Total actual area / (nodes x makespan), in [0, 1] — the naive
  /// whole-run definition, kept for reference.
  double utilization_makespan = 0;
  /// Last completion minus first submission.
  double makespan = 0;
};

/// Summarises completed-job outcomes for a machine with \p nodes nodes.
[[nodiscard]] ScheduleSummary summarize(const std::vector<JobOutcome>& outcomes,
                                        std::uint32_t nodes);

/// Preview metric used by the self-tuning step to score candidate schedules.
enum class PreviewMetric : std::uint8_t {
  kSldwa,            ///< estimated-area-weighted slowdown of planned jobs (paper default)
  kAvgResponse,      ///< mean planned response time
  kAvgSlowdown,      ///< mean planned slowdown
  kBoundedSlowdown,  ///< mean planned bounded slowdown (tau = 60 s)
  kArtww,            ///< planned response time weighted by width
  kMaxCompletion,    ///< latest planned completion (a makespan/utilisation proxy)
};

/// Human-readable preview-metric name.
[[nodiscard]] const char* name(PreviewMetric metric) noexcept;

/// Scores a candidate schedule; lower is better for every metric. An empty
/// schedule scores 0 (all policies tie, so the decider keeps its policy).
/// Planned response of job j = planned start + estimated run time - submit.
[[nodiscard]] double evaluate_preview(PreviewMetric metric,
                                      const rms::Schedule& schedule,
                                      const workload::JobTable& jobs,
                                      Time now);

}  // namespace dynp::metrics
