#pragma once

/// \file validate.hpp
/// Schedule validation: checks that a set of job outcomes is a physically
/// possible execution on the machine. Used by the test suite, the CLI tool
/// and available to users ingesting externally produced schedules.

#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "workload/job.hpp"

namespace dynp::metrics {

/// One detected violation.
struct ValidationIssue {
  enum class Kind : std::uint8_t {
    kStartBeforeSubmit,   ///< a job started before it was submitted
    kWrongDuration,       ///< end - start != actual runtime
    kOversubscribed,      ///< more nodes in use than the machine has
    kWidthMismatch,       ///< outcome width differs from the job's width
    kMissingJob,          ///< job present in the set but not in the outcomes
  };
  Kind kind;
  JobId job = 0;      ///< offending job (0 for kOversubscribed)
  Time when = 0;      ///< instant of the violation where applicable
  std::string detail; ///< human-readable description
};

/// Result of a validation pass.
struct ValidationReport {
  std::vector<ValidationIssue> issues;
  [[nodiscard]] bool ok() const noexcept { return issues.empty(); }
};

/// Validates \p outcomes against the job set they were produced from:
/// per-job consistency (start >= submit, duration == actual runtime, width)
/// and global capacity (at no instant are more than `set.machine().nodes`
/// nodes in use). Runs in O(n log n).
[[nodiscard]] ValidationReport validate_outcomes(
    const workload::JobSet& set, const std::vector<JobOutcome>& outcomes);

}  // namespace dynp::metrics
