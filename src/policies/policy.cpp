#include "policies/policy.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <tuple>

#include "util/assert.hpp"

namespace dynp::policies {

const char* name(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kFcfs: return "FCFS";
    case PolicyKind::kSjf: return "SJF";
    case PolicyKind::kLjf: return "LJF";
    case PolicyKind::kSaf: return "SAF";
    case PolicyKind::kWf: return "WF";
  }
  return "?";
}

PolicyKind policy_by_name(const std::string& text) {
  std::string upper;
  upper.reserve(text.size());
  for (const char c : text) {
    upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  if (upper == "FCFS") return PolicyKind::kFcfs;
  if (upper == "SJF") return PolicyKind::kSjf;
  if (upper == "LJF") return PolicyKind::kLjf;
  if (upper == "SAF") return PolicyKind::kSaf;
  if (upper == "WF") return PolicyKind::kWf;
  throw std::invalid_argument("unknown policy: " + text);
}

std::vector<PolicyKind> paper_pool() {
  return {PolicyKind::kFcfs, PolicyKind::kSjf, PolicyKind::kLjf};
}

bool precedes(PolicyKind kind, const workload::Job& a,
              const workload::Job& b) noexcept {
  // Primary key per policy; (submit, id) always break remaining ties so the
  // order is total and deterministic.
  const auto tail = [](const workload::Job& j) {
    return std::make_tuple(j.submit, j.id);
  };
  switch (kind) {
    case PolicyKind::kFcfs:
      return tail(a) < tail(b);
    case PolicyKind::kSjf:
      return std::tuple_cat(std::make_tuple(a.estimated_runtime), tail(a)) <
             std::tuple_cat(std::make_tuple(b.estimated_runtime), tail(b));
    case PolicyKind::kLjf:
      return std::tuple_cat(std::make_tuple(-a.estimated_runtime), tail(a)) <
             std::tuple_cat(std::make_tuple(-b.estimated_runtime), tail(b));
    case PolicyKind::kSaf:
      return std::tuple_cat(std::make_tuple(a.estimated_area()), tail(a)) <
             std::tuple_cat(std::make_tuple(b.estimated_area()), tail(b));
    case PolicyKind::kWf:
      return std::tuple_cat(std::make_tuple(-static_cast<double>(a.width)),
                            tail(a)) <
             std::tuple_cat(std::make_tuple(-static_cast<double>(b.width)),
                            tail(b));
  }
  return false;
}

bool precedes(PolicyKind kind, const workload::JobTable& jobs, JobId a,
              JobId b) noexcept {
  // Primary key per policy, then (submit, id) — the same strict total order
  // as the `Job&` overload, expressed over the SoA columns.
  switch (kind) {
    case PolicyKind::kFcfs:
      break;
    case PolicyKind::kSjf:
      if (jobs.estimate(a) != jobs.estimate(b)) {
        return jobs.estimate(a) < jobs.estimate(b);
      }
      break;
    case PolicyKind::kLjf:
      if (jobs.estimate(a) != jobs.estimate(b)) {
        return jobs.estimate(a) > jobs.estimate(b);
      }
      break;
    case PolicyKind::kSaf:
      if (jobs.estimated_area(a) != jobs.estimated_area(b)) {
        return jobs.estimated_area(a) < jobs.estimated_area(b);
      }
      break;
    case PolicyKind::kWf:
      if (jobs.width(a) != jobs.width(b)) return jobs.width(a) > jobs.width(b);
      break;
  }
  if (jobs.submit(a) != jobs.submit(b)) return jobs.submit(a) < jobs.submit(b);
  return a < b;
}

std::vector<JobId> order(PolicyKind kind, std::vector<JobId> waiting,
                         const workload::JobTable& jobs) {
  std::sort(waiting.begin(), waiting.end(), [&](JobId x, JobId y) {
    return precedes(kind, jobs, x, y);
  });
  return waiting;
}

std::size_t SortedQueue::insert(JobId id) {
  const auto it = std::lower_bound(
      ids_.begin(), ids_.end(), id, [&](JobId member, JobId value) {
        return precedes(kind_, *jobs_, member, value);
      });
  const std::size_t pos = static_cast<std::size_t>(it - ids_.begin());
  ids_.insert(it, id);
  return pos;
}

void SortedQueue::remove(JobId id) {
  // `precedes` is a strict total order, so lower_bound lands exactly on the
  // member (no equal-range scan needed).
  const auto it = std::lower_bound(
      ids_.begin(), ids_.end(), id, [&](JobId member, JobId value) {
        return precedes(kind_, *jobs_, member, value);
      });
  DYNP_EXPECTS(it != ids_.end() && *it == id);
  ids_.erase(it);
}

void SortedQueue::remove_marked(const std::vector<char>& mark) {
  std::erase_if(ids_, [&](JobId id) { return mark[id] != 0; });
}

}  // namespace dynp::policies
