#pragma once

/// \file policy.hpp
/// Scheduling policies = priority orders over the waiting queue. The
/// planning-based RMS plans jobs in exactly this order (earliest feasible
/// start each), so the policy fully determines the candidate schedule.
///
/// FCFS, SJF and LJF are the three policies of the paper (the ones CCS
/// implements); SAF (smallest area first) and WF (widest first) are provided
/// as extension policies for experiments with larger dynP pools.

#include <string>
#include <vector>

#include "workload/job.hpp"

namespace dynp::policies {

/// Available scheduling policies.
enum class PolicyKind : std::uint8_t {
  kFcfs,  ///< first come, first serve (by submission time)
  kSjf,   ///< shortest (estimated run time) job first
  kLjf,   ///< longest (estimated run time) job first
  kSaf,   ///< smallest estimated area (estimate x width) first — extension
  kWf,    ///< widest job first — extension
};

/// Human-readable policy name ("FCFS", "SJF", ...).
[[nodiscard]] const char* name(PolicyKind kind) noexcept;

/// Parses a policy name (case-insensitive); throws `std::invalid_argument`
/// for unknown names.
[[nodiscard]] PolicyKind policy_by_name(const std::string& name);

/// The paper's policy pool, in the paper's canonical (tie-breaking) order:
/// FCFS, SJF, LJF.
[[nodiscard]] std::vector<PolicyKind> paper_pool();

/// Returns \p waiting reordered by \p kind's priority. The sort is stable
/// with (submit time, id) as the final tie-breakers, so the result is fully
/// deterministic.
[[nodiscard]] std::vector<JobId> order(PolicyKind kind,
                                       std::vector<JobId> waiting,
                                       const std::vector<workload::Job>& jobs);

/// Three-way priority comparison used by `order` (exposed for tests):
/// returns true when job \p a precedes job \p b under \p kind.
[[nodiscard]] bool precedes(PolicyKind kind, const workload::Job& a,
                            const workload::Job& b) noexcept;

}  // namespace dynp::policies
