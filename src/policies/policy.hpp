#pragma once

/// \file policy.hpp
/// Scheduling policies = priority orders over the waiting queue. The
/// planning-based RMS plans jobs in exactly this order (earliest feasible
/// start each), so the policy fully determines the candidate schedule.
///
/// FCFS, SJF and LJF are the three policies of the paper (the ones CCS
/// implements); SAF (smallest area first) and WF (widest first) are provided
/// as extension policies for experiments with larger dynP pools.

#include <string>
#include <vector>

#include "workload/job.hpp"

namespace dynp::policies {

/// Available scheduling policies.
enum class PolicyKind : std::uint8_t {
  kFcfs,  ///< first come, first serve (by submission time)
  kSjf,   ///< shortest (estimated run time) job first
  kLjf,   ///< longest (estimated run time) job first
  kSaf,   ///< smallest estimated area (estimate x width) first — extension
  kWf,    ///< widest job first — extension
};

/// Human-readable policy name ("FCFS", "SJF", ...).
[[nodiscard]] const char* name(PolicyKind kind) noexcept;

/// Parses a policy name (case-insensitive); throws `std::invalid_argument`
/// for unknown names.
[[nodiscard]] PolicyKind policy_by_name(const std::string& name);

/// The paper's policy pool, in the paper's canonical (tie-breaking) order:
/// FCFS, SJF, LJF.
[[nodiscard]] std::vector<PolicyKind> paper_pool();

/// Returns \p waiting reordered by \p kind's priority. The sort is stable
/// with (submit time, id) as the final tie-breakers, so the result is fully
/// deterministic.
[[nodiscard]] std::vector<JobId> order(PolicyKind kind,
                                       std::vector<JobId> waiting,
                                       const workload::JobTable& jobs);

/// Three-way priority comparison used by `order` (exposed for tests):
/// returns true when job \p a precedes job \p b under \p kind.
[[nodiscard]] bool precedes(PolicyKind kind, const workload::Job& a,
                            const workload::Job& b) noexcept;

/// Id-based variant over the SoA job table — the form the sort and the
/// incremental queues use (identical order to the `Job&` overload).
[[nodiscard]] bool precedes(PolicyKind kind, const workload::JobTable& jobs,
                            JobId a, JobId b) noexcept;

/// An incrementally maintained policy-ordered waiting queue.
///
/// The self-tuning scheduler needs every pool policy's priority order of the
/// waiting jobs at every submit/finish event; re-sorting the whole queue per
/// policy per event is O(n log n) each. Because each event only adds one job
/// (submit) or removes the started ones, the order can instead be maintained
/// incrementally: `insert` places a job at its priority position (binary
/// search + vector insert), `remove`/`remove_marked` erase members.
///
/// Invariant (checked by the property test): `ids()` always equals
/// `order(kind, <current members>, jobs)` — `precedes` is a strict total
/// order (ties broken by submit time then id), so that order is unique.
class SortedQueue {
 public:
  /// \p jobs must outlive the queue (ids index into it).
  SortedQueue(PolicyKind kind, const workload::JobTable& jobs)
      : kind_(kind), jobs_(&jobs) {}

  [[nodiscard]] PolicyKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::vector<JobId>& ids() const noexcept { return ids_; }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }

  /// Inserts \p id at its priority position and returns that position.
  /// Must not already be a member. (The position tells incremental planners
  /// how much of the previous order — and thus of the previous schedule —
  /// is unchanged: everything before it.)
  std::size_t insert(JobId id);

  /// Removes member \p id (precondition: it was inserted).
  void remove(JobId id);

  /// Removes every member whose `mark[id]` is non-zero in one linear pass —
  /// O(n) regardless of how many jobs start at once.
  void remove_marked(const std::vector<char>& mark);

  /// Re-targets the queue at a (possibly different) policy and job table,
  /// emptying it but keeping the member storage. Equivalent to constructing
  /// `SortedQueue(kind, jobs)` except for the retained capacity; used by the
  /// per-worker simulation workspaces to recycle queue storage across runs.
  void rebind(PolicyKind kind, const workload::JobTable& jobs) {
    kind_ = kind;
    jobs_ = &jobs;
    ids_.clear();
  }

 private:
  PolicyKind kind_;
  const workload::JobTable* jobs_;
  std::vector<JobId> ids_;
};

}  // namespace dynp::policies
