#include "ckpt/journal.hpp"

#include <filesystem>
#include <system_error>

#include "ckpt/codec.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace dynp::ckpt {

namespace {

constexpr char kMagic[8] = {'D', 'Y', 'N', 'P', 'W', 'A', 'L', '0'};
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::uint64_t kChainSeed = 0x6a6f75726e616c31ULL;  // "journal1"

/// Serialized size of one record: ordinal + time + kind + job + chain.
constexpr std::size_t kRecordBytes = 8 + 8 + 1 + 4 + 8;

/// Encodes the hash-covered part of a record (everything but the chain).
void encode_body(ByteWriter& w, const JournalRecord& r) {
  w.u64(r.ordinal);
  w.f64(r.time);
  w.u8(r.kind);
  w.u32(r.job);
}

/// Advances the hash chain over one record body.
[[nodiscard]] std::uint64_t chain_next(std::uint64_t chain,
                                       std::string_view body) {
  ByteWriter w;
  w.u64(chain);
  std::string covered = w.bytes();
  covered.append(body);
  return util::fnv1a64(covered);
}

}  // namespace

bool Journal::open_fresh(const std::string& path,
                         std::uint64_t config_fingerprint,
                         std::uint64_t base_seq) {
  DYNP_EXPECTS(!path.empty());
  close();
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return false;
  chain_ = kChainSeed;
  ByteWriter w;
  w.str(std::string_view(kMagic, sizeof kMagic));
  w.u32(kJournalVersion);
  w.u64(config_fingerprint);
  w.u64(base_seq);
  const bool ok =
      std::fwrite(w.bytes().data(), 1, w.size(), file_) == w.size() &&
      std::fflush(file_) == 0;
  if (!ok) close();
  return ok;
}

void Journal::append(const JournalRecord& record) {
  DYNP_EXPECTS(file_ != nullptr);
  ByteWriter body;
  encode_body(body, record);
  chain_ = chain_next(chain_, body.bytes());
  ByteWriter w;
  encode_body(w, record);
  w.u64(chain_);
  // Short writes or flush failures leave at most a torn tail, which the
  // reader's chain check drops — journaling must never abort the run.
  (void)std::fwrite(w.bytes().data(), 1, w.size(), file_);
  (void)std::fflush(file_);
}

void Journal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::optional<Journal::Contents> Journal::read_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return std::nullopt;
  std::string data;
  char buf[1 << 14];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, in);
    data.append(buf, n);
    if (n < sizeof buf) break;
  }
  const bool read_ok = std::ferror(in) == 0;
  std::fclose(in);
  if (!read_ok) return std::nullopt;

  ByteReader r(data);
  if (r.str() != std::string_view(kMagic, sizeof kMagic)) return std::nullopt;
  if (r.u32() != kJournalVersion) return std::nullopt;
  Contents contents;
  contents.config_fingerprint = r.u64();
  contents.base_seq = r.u64();
  if (!r.ok()) return std::nullopt;

  std::uint64_t chain = kChainSeed;
  while (r.remaining() >= kRecordBytes) {
    JournalRecord rec;
    rec.ordinal = r.u64();
    rec.time = r.f64();
    rec.kind = r.u8();
    rec.job = r.u32();
    const std::uint64_t stored_chain = r.u64();
    ByteWriter body;
    encode_body(body, rec);
    chain = chain_next(chain, body.bytes());
    if (!r.ok() || stored_chain != chain) break;  // torn tail — drop
    contents.records.push_back(rec);
  }
  return contents;
}

}  // namespace dynp::ckpt
