#pragma once

/// \file codec.hpp
/// Fixed little-endian byte codec shared by the snapshot and journal
/// formats. The encoding is fully specified (no struct dumps, no host
/// endianness, doubles as IEEE-754 bit patterns), so a snapshot written on
/// one machine decodes bit-exactly on any other — the same portability bar
/// the simulator itself meets.
///
/// `ByteReader` never aborts on malformed input: every read checks bounds
/// and latches `ok() == false` on overrun, because torn or corrupt files
/// are an *expected* input of the restore path (crash mid-write) and must
/// be rejected gracefully, not trip a contract.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dynp::ckpt {

/// Append-only little-endian encoder over a growable byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { append_le(v, 1); }
  void u32(std::uint32_t v) { append_le(v, 4); }
  void u64(std::uint64_t v) { append_le(v, 8); }
  void f64(double v) { append_le(std::bit_cast<std::uint64_t>(v), 8); }

  /// Length-prefixed byte string.
  void str(std::string_view s) { append_str(s); }

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void append_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
  }
  void append_str(std::string_view s) {
    append_le(s.size(), 8);
    buf_.append(s.data(), s.size());
  }

  std::string buf_;
};

/// Bounds-checked little-endian decoder over a byte view. After an overrun
/// every further read returns zero values and `ok()` stays false.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) noexcept : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// All bytes consumed and no overrun — a complete, exact parse.
  [[nodiscard]] bool done() const noexcept {
    return ok_ && pos_ == data_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  std::uint8_t u8() { return static_cast<std::uint8_t>(take_le(1)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take_le(4)); }
  std::uint64_t u64() { return take_le(8); }
  double f64() { return std::bit_cast<double>(take_le(8)); }

  /// Length-prefixed byte string (empty on overrun).
  std::string str() { return take_str(); }

 private:
  [[nodiscard]] std::uint64_t take_le(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return v;
  }

  [[nodiscard]] std::string take_str() {
    const std::uint64_t n = take_le(8);
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dynp::ckpt
