#pragma once

/// \file checkpoint.hpp
/// Crash-consistent checkpointing knobs for `core::simulate`. All default
/// values leave checkpointing off; a fresh, un-checkpointed run is
/// byte-identical whether this struct exists or not (the run loop only
/// branches when `armed()`).

#include <cstdint>
#include <string>

namespace dynp::ckpt {

/// Checkpoint/restore configuration of one simulation run.
struct CheckpointOptions {
  /// Snapshot every N processed events into `dir` (0 = no periodic
  /// snapshots). Snapshots are only ever taken *between* events, where the
  /// scheduler state is quiescent.
  std::uint64_t every = 0;

  /// Directory for snapshots (`ckpt-<seq>.snap`) and the write-ahead event
  /// journal (`journal.wal`). Created on demand.
  std::string dir;

  /// Restore source: a snapshot file, or a checkpoint directory in which
  /// the newest *valid* snapshot is selected (torn/truncated files are
  /// detected via the content hash and skipped — rollback to the previous
  /// good checkpoint). Empty = fresh run.
  std::string restore_from;

  /// Crash-injection test hook: raise SIGKILL immediately after processing
  /// event N (0 = off). Used by tools/dynp_chaos to die at deterministic,
  /// seed-derived event offsets instead of racing an external kill.
  std::uint64_t kill_after_event = 0;

  /// Binary identity stamp written into snapshot headers (git SHA,
  /// compiler, build type — see `dynp_sim --version`). Informational only;
  /// restore never compares it.
  std::string build_tag;

  /// Anything to do at all?
  [[nodiscard]] bool armed() const noexcept {
    return (every > 0 && !dir.empty()) || !restore_from.empty() ||
           kill_after_event > 0;
  }

  /// Periodic snapshots requested (and a directory to put them in)?
  [[nodiscard]] bool snapshots_armed() const noexcept {
    return every > 0 && !dir.empty();
  }
};

}  // namespace dynp::ckpt
