#include "ckpt/state.hpp"

#include "ckpt/codec.hpp"

namespace dynp::ckpt {

namespace {

/// Sanity cap on decoded element counts: rejects garbage length prefixes
/// before they turn into multi-gigabyte allocations. Far above any real
/// workload (the biggest vectors scale with job count).
constexpr std::uint64_t kMaxElements = 1ULL << 28;

template <typename T, typename Fn>
void write_vec(ByteWriter& w, const std::vector<T>& v, Fn&& element) {
  w.u64(v.size());
  for (const T& e : v) element(w, e);
}

template <typename T, typename Fn>
[[nodiscard]] bool read_vec(ByteReader& r, std::vector<T>& v, Fn&& element) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > kMaxElements) return false;
  v.clear();
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    T e{};
    element(r, e);
    v.push_back(e);
  }
  return r.ok();
}

void write_u32s(ByteWriter& w, const std::vector<std::uint32_t>& v) {
  write_vec(w, v, [](ByteWriter& o, std::uint32_t e) { o.u32(e); });
}
void write_u64s(ByteWriter& w, const std::vector<std::uint64_t>& v) {
  write_vec(w, v, [](ByteWriter& o, std::uint64_t e) { o.u64(e); });
}
void write_f64s(ByteWriter& w, const std::vector<double>& v) {
  write_vec(w, v, [](ByteWriter& o, double e) { o.f64(e); });
}
bool read_u32s(ByteReader& r, std::vector<std::uint32_t>& v) {
  return read_vec(r, v, [](ByteReader& i, std::uint32_t& e) { e = i.u32(); });
}
bool read_u64s(ByteReader& r, std::vector<std::uint64_t>& v) {
  return read_vec(r, v, [](ByteReader& i, std::uint64_t& e) { e = i.u64(); });
}
bool read_f64s(ByteReader& r, std::vector<double>& v) {
  return read_vec(r, v, [](ByteReader& i, double& e) { e = i.f64(); });
}

void write_running(ByteWriter& w, const std::vector<RunningRec>& v) {
  write_vec(w, v, [](ByteWriter& o, const RunningRec& e) {
    o.u32(e.id);
    o.u32(e.width);
    o.f64(e.estimated_end);
  });
}
bool read_running(ByteReader& r, std::vector<RunningRec>& v) {
  return read_vec(r, v, [](ByteReader& i, RunningRec& e) {
    e.id = i.u32();
    e.width = i.u32();
    e.estimated_end = i.f64();
  });
}

}  // namespace

std::string SimState::encode() const {
  ByteWriter w;
  w.f64(now);
  w.u64(processed);
  w.u64(next_seq);
  w.f64(last_popped_time);
  write_vec(w, events, [](ByteWriter& o, const EventRec& e) {
    o.f64(e.time);
    o.u8(e.kind);
    o.u32(e.job);
    o.u64(e.seq);
  });

  w.u64(policy_index);
  w.f64(last_event_time);
  write_u32s(w, waiting);
  write_running(w, running);
  write_vec(w, outcomes, [](ByteWriter& o, const OutcomeRec& e) {
    o.u32(e.id);
    o.f64(e.submit);
    o.f64(e.start);
    o.f64(e.end);
    o.u32(e.width);
    o.f64(e.actual_runtime);
  });
  write_vec(w, candidates, [](ByteWriter& o, const CandidateRec& e) {
    o.u8(e.reusable);
    write_vec(o, e.plan, [](ByteWriter& p, const PlannedRec& j) {
      p.u32(j.id);
      p.f64(j.start);
    });
    if (e.reusable != 0) {
      o.u32(e.profile_capacity);
      write_f64s(o, e.profile_starts);
      write_u32s(o, e.profile_frees);
    }
  });
  w.u64(pending_jobs);
  w.u64(degrade_until_event);

  w.u64(decisions);
  w.u64(switches);
  write_u64s(w, decisions_per_policy);
  write_f64s(w, time_in_policy);
  write_vec(w, timeline, [](ByteWriter& o, const SwitchRec& e) {
    o.f64(e.when);
    o.u64(e.from);
    o.u64(e.to);
  });
  for (const std::uint64_t v : fault_stats) w.u64(v);

  w.u8(has_profile);
  if (has_profile != 0) {
    w.u32(profile_capacity);
    write_f64s(w, profile_starts);
    write_u32s(w, profile_frees);
    write_f64s(w, reserved);
  }

  w.u8(has_faults);
  if (has_faults != 0) {
    for (const std::uint64_t v : node_rng) w.u64(v);
    write_u32s(w, attempts);
    write_f64s(w, fail_at);
    write_running(w, outages);
    w.u32(down_nodes);
  }
  return w.bytes();
}

bool SimState::decode(std::string_view payload, SimState& out) {
  ByteReader r(payload);
  out = SimState{};
  out.now = r.f64();
  out.processed = r.u64();
  out.next_seq = r.u64();
  out.last_popped_time = r.f64();
  if (!read_vec(r, out.events, [](ByteReader& i, EventRec& e) {
        e.time = i.f64();
        e.kind = i.u8();
        e.job = i.u32();
        e.seq = i.u64();
      })) {
    return false;
  }

  out.policy_index = r.u64();
  out.last_event_time = r.f64();
  if (!read_u32s(r, out.waiting)) return false;
  if (!read_running(r, out.running)) return false;
  if (!read_vec(r, out.outcomes, [](ByteReader& i, OutcomeRec& e) {
        e.id = i.u32();
        e.submit = i.f64();
        e.start = i.f64();
        e.end = i.f64();
        e.width = i.u32();
        e.actual_runtime = i.f64();
      })) {
    return false;
  }
  {
    const std::uint64_t n = r.u64();
    if (!r.ok() || n > kMaxElements) return false;
    out.candidates.clear();
    out.candidates.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t c = 0; c < n; ++c) {
      CandidateRec rec;
      rec.reusable = r.u8();
      if (!read_vec(r, rec.plan, [](ByteReader& i, PlannedRec& j) {
            j.id = i.u32();
            j.start = i.f64();
          })) {
        return false;
      }
      if (rec.reusable != 0) {
        rec.profile_capacity = r.u32();
        if (!read_f64s(r, rec.profile_starts)) return false;
        if (!read_u32s(r, rec.profile_frees)) return false;
      }
      out.candidates.push_back(std::move(rec));
    }
  }
  out.pending_jobs = r.u64();
  out.degrade_until_event = r.u64();

  out.decisions = r.u64();
  out.switches = r.u64();
  if (!read_u64s(r, out.decisions_per_policy)) return false;
  if (!read_f64s(r, out.time_in_policy)) return false;
  if (!read_vec(r, out.timeline, [](ByteReader& i, SwitchRec& e) {
        e.when = i.f64();
        e.from = i.u64();
        e.to = i.u64();
      })) {
    return false;
  }
  for (std::uint64_t& v : out.fault_stats) v = r.u64();

  out.has_profile = r.u8();
  if (out.has_profile != 0) {
    out.profile_capacity = r.u32();
    if (!read_f64s(r, out.profile_starts)) return false;
    if (!read_u32s(r, out.profile_frees)) return false;
    if (!read_f64s(r, out.reserved)) return false;
  }

  out.has_faults = r.u8();
  if (out.has_faults != 0) {
    for (std::uint64_t& v : out.node_rng) v = r.u64();
    if (!read_u32s(r, out.attempts)) return false;
    if (!read_f64s(r, out.fail_at)) return false;
    if (!read_running(r, out.outages)) return false;
    out.down_nodes = r.u32();
  }
  return r.done();
}

}  // namespace dynp::ckpt
