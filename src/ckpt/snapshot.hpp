#pragma once

/// \file snapshot.hpp
/// Versioned snapshot files with torn-write detection. A snapshot is a
/// small self-describing header (magic, format version, build stamp,
/// configuration fingerprint, event ordinal, sim time) followed by an
/// opaque payload whose FNV-1a 64 content hash is stamped into the header.
/// Files are published atomically (temp + rename in the same directory), so
/// a reader only ever sees absent, whole, or *externally* damaged files —
/// and the hash catches the damaged ones, which the restore scan then rolls
/// back past to the previous good checkpoint.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dynp::ckpt {

/// Snapshot format version; bumped on any layout change so old binaries
/// reject new files (and vice versa) instead of misdecoding them.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Self-describing header of one snapshot file.
struct SnapshotMeta {
  std::uint64_t config_fingerprint = 0;  ///< run identity (see state.hpp)
  std::uint64_t seq = 0;                 ///< events processed at capture
  double sim_time = 0;                   ///< engine clock at capture
  std::string build;                     ///< binary stamp (informational)
};

/// `ckpt-<seq, 12 digits>.snap` — zero-padded so lexicographic order is
/// numeric order.
[[nodiscard]] std::string snapshot_file_name(std::uint64_t seq);

/// Writes `dir/ckpt-<seq>.snap` atomically (temp + rename), creating the
/// directory if needed, then prunes all but the \p keep newest snapshots.
/// Returns false on I/O failure. \p bytes_out (optional) receives the full
/// file size.
[[nodiscard]] bool write_snapshot(const std::string& dir,
                                  const SnapshotMeta& meta,
                                  const std::string& payload,
                                  std::size_t keep = 3,
                                  std::uint64_t* bytes_out = nullptr);

/// One successfully validated snapshot.
struct LoadedSnapshot {
  SnapshotMeta meta;
  std::string payload;
  std::string path;
};

/// Reads and validates one snapshot file: magic, version, header shape,
/// payload length against the actual file size, and the payload hash.
/// nullopt on any mismatch (torn write, truncation, corruption, foreign
/// file).
[[nodiscard]] std::optional<LoadedSnapshot> read_snapshot(
    const std::string& path);

/// Result of a restore scan: the chosen snapshot (if any) plus every
/// candidate file that existed but failed validation or belonged to a
/// different configuration — surfaced so callers can report the rollback.
struct RestoreScan {
  std::optional<LoadedSnapshot> snapshot;
  std::vector<std::string> rejected;
};

/// Resolves a restore source. \p path_or_dir may name a single snapshot
/// file or a checkpoint directory; directories (and invalid files, falling
/// back to their siblings) are scanned newest-seq-first for the first valid
/// snapshot whose fingerprint matches \p config_fingerprint (0 = accept
/// any).
[[nodiscard]] RestoreScan find_restore_source(
    const std::string& path_or_dir, std::uint64_t config_fingerprint);

}  // namespace dynp::ckpt
