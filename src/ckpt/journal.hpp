#pragma once

/// \file journal.hpp
/// Write-ahead event journal: one fixed-size record is appended (and pushed
/// to the OS) *before* each scheduling event is handled, so after a crash
/// the journal names exactly the events processed since the last snapshot.
/// Restore replays only that suffix — the simulation regenerates the events
/// deterministically from the snapshotted calendar, and each replayed event
/// is verified record-by-record against the journal. A divergence is a
/// nondeterminism bug and fails loudly through the contract machinery.
///
/// Torn tails (a crash mid-append) are detected by a rolling FNV-1a hash
/// chain over the records: the reader stops at the first record whose chain
/// value does not verify, dropping the torn bytes. The journal is rotated
/// (truncated, new base) at every snapshot so it stays bounded by the
/// snapshot interval.

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace dynp::ckpt {

/// One write-ahead record: the identity of a scheduling event about to be
/// handled. `ordinal` is the engine's processed-events count at dispatch
/// (1-based), the same number trace records carry as `seq`.
struct JournalRecord {
  std::uint64_t ordinal = 0;
  double time = 0;
  std::uint8_t kind = 0;  ///< sim::EventKind value
  std::uint32_t job = 0;

  [[nodiscard]] bool operator==(const JournalRecord&) const = default;
};

/// Append-side of the journal. Not copyable (owns the FILE handle).
class Journal {
 public:
  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal() { close(); }

  /// (Re)creates the journal at \p path with a fresh header binding it to a
  /// configuration fingerprint and a base snapshot seq (records that follow
  /// are the events after that snapshot). Returns false on I/O failure.
  [[nodiscard]] bool open_fresh(const std::string& path,
                                std::uint64_t config_fingerprint,
                                std::uint64_t base_seq);

  /// Appends one record ahead of processing and flushes it to the OS, so a
  /// SIGKILL can lose at most a torn tail (which the reader drops).
  void append(const JournalRecord& record);

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }

  void close();

  /// Parsed journal contents; `records` stops before any torn tail.
  struct Contents {
    std::uint64_t config_fingerprint = 0;
    std::uint64_t base_seq = 0;
    std::vector<JournalRecord> records;
  };

  /// Reads a journal file, validating the header and the per-record hash
  /// chain. nullopt when the file is absent or its header is damaged.
  [[nodiscard]] static std::optional<Contents> read_file(
      const std::string& path);

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t chain_ = 0;
};

}  // namespace dynp::ckpt
