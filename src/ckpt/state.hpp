#pragma once

/// \file state.hpp
/// The serialized shape of one quiescent simulation: plain-data mirrors of
/// every piece of state `core::simulate` cannot rebuild deterministically
/// from its inputs. The scheduler core fills/applies this struct; this
/// layer only defines the canonical byte encoding (see codec.hpp), so the
/// ckpt layer stays below sim/core in the include DAG.
///
/// What is deliberately *not* here, and why restore is still byte-exact:
///
///  * per-policy sorted queues — `SortedQueue` maintains a unique total
///    order (audit-verified), so re-inserting the waiting set in any order
///    rebuilds them exactly;
///  * planner acceleration tables (class/width floors) — epoch-stamped
///    caches that every planning pass provably re-derives; the one piece of
///    scratch state that is NOT re-derivable — the retained pass-end
///    profile a reusable candidate's tail-insertion replan extends — is
///    captured per candidate (`CandidateRec`);
///  * the event heap's array layout — the comparator is a strict total
///    order, so any heap over the same element set pops identically.
///
/// Candidate schedules and their reuse flags *are* captured: the
/// incremental replanner attributes work to full vs incremental plans, and
/// trace records expose that attribution, so byte-identical stitched traces
/// require resuming the reuse state rather than falling back to full
/// replans (which would produce the same schedules but different planner
/// statistics).

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dynp::ckpt {

/// Mirror of `sim::Event` (kind as its numeric value).
struct EventRec {
  double time = 0;
  std::uint8_t kind = 0;
  std::uint32_t job = 0;
  std::uint64_t seq = 0;
};

/// Mirror of `rms::RunningJob`.
struct RunningRec {
  std::uint32_t id = 0;
  std::uint32_t width = 0;
  double estimated_end = 0;
};

/// Mirror of `metrics::JobOutcome`.
struct OutcomeRec {
  std::uint32_t id = 0;
  double submit = 0;
  double start = 0;
  double end = 0;
  std::uint32_t width = 0;
  double actual_runtime = 0;
};

/// Mirror of `core::PolicySwitch`.
struct SwitchRec {
  double when = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

/// One planned job of a candidate schedule.
struct PlannedRec {
  std::uint32_t id = 0;
  double start = 0;
};

/// One per-policy candidate slot: its adopted schedule and whether the
/// incremental replanner may reuse it next event. A reusable slot also
/// carries the planner scratch's retained pass-end profile — the state the
/// tail-insertion fast path of `rms::Planner::replan_inserted_into` extends
/// directly, which a restored run must therefore reconstruct exactly.
struct CandidateRec {
  std::uint8_t reusable = 0;
  std::vector<PlannedRec> plan;
  std::uint32_t profile_capacity = 0;      ///< present iff `reusable`
  std::vector<double> profile_starts;      ///< segment start times
  std::vector<std::uint32_t> profile_frees;  ///< free nodes per segment
};

/// Everything a restored run needs to continue byte-identically.
struct SimState {
  // Engine calendar. `events` is serialized in pop order (time, kind, seq)
  // so equal states encode to equal bytes regardless of heap layout.
  double now = 0;
  std::uint64_t processed = 0;
  std::uint64_t next_seq = 0;
  double last_popped_time = 0;
  std::vector<EventRec> events;

  // Scheduler state.
  std::uint64_t policy_index = 0;
  double last_event_time = 0;
  std::vector<std::uint32_t> waiting;  ///< arrival order
  std::vector<RunningRec> running;     ///< exact vector order
  std::vector<OutcomeRec> outcomes;    ///< full table (size = job count)
  std::vector<CandidateRec> candidates;
  std::uint64_t pending_jobs = 0;
  std::uint64_t degrade_until_event = 0;

  // Partial result counters (decider/tuning state: the active policy above
  // plus these per-policy totals and the switch timeline).
  std::uint64_t decisions = 0;
  std::uint64_t switches = 0;
  std::vector<std::uint64_t> decisions_per_policy;
  std::vector<double> time_in_policy;
  std::vector<SwitchRec> timeline;
  std::array<std::uint64_t, 9> fault_stats{};

  // Guarantee-semantics reservation state (absent under replan/queueing).
  std::uint8_t has_profile = 0;
  std::uint32_t profile_capacity = 0;
  std::vector<double> profile_starts;
  std::vector<std::uint32_t> profile_frees;
  std::vector<double> reserved;

  // Fault-injector state (absent when fault injection is off). The node
  // RNG is the injector's only sequential stream; job fates are pure
  // functions of (job, attempt) and need no state.
  std::uint8_t has_faults = 0;
  std::array<std::uint64_t, 4> node_rng{};
  std::vector<std::uint32_t> attempts;
  std::vector<double> fail_at;
  std::vector<RunningRec> outages;
  std::uint32_t down_nodes = 0;

  /// Canonical byte encoding (see codec.hpp).
  [[nodiscard]] std::string encode() const;

  /// Exact inverse of `encode`; false on any malformed payload (the caller
  /// treats that as a rejected snapshot).
  // lint: no-contract(decoders consume untrusted bytes; malformed input is an expected result, not a precondition violation)
  [[nodiscard]] static bool decode(std::string_view payload, SimState& out);
};

}  // namespace dynp::ckpt
