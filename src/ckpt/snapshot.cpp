#include "ckpt/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "ckpt/codec.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace dynp::ckpt {

namespace {

constexpr char kMagic[8] = {'D', 'Y', 'N', 'P', 'S', 'N', 'A', 'P'};
constexpr const char* kSnapshotSuffix = ".snap";
constexpr const char* kSnapshotPrefix = "ckpt-";

/// Reads a whole file in binary mode; nullopt when it cannot be opened.
std::optional<std::string> slurp(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return std::nullopt;
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, in);
    data.append(buf, n);
    if (n < sizeof buf) break;
  }
  const bool ok = std::ferror(in) == 0;
  std::fclose(in);
  if (!ok) return std::nullopt;
  return data;
}

/// All `ckpt-*.snap` paths under \p dir, newest seq first (name-encoded
/// seqs are zero-padded, so string order is numeric order). Sorted
/// explicitly because directory iteration order is filesystem-dependent.
std::vector<std::string> snapshot_paths_newest_first(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with(kSnapshotPrefix) && name.ends_with(kSnapshotSuffix)) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end(), std::greater<>());
  std::vector<std::string> paths;
  paths.reserve(names.size());
  for (const std::string& name : names) {
    paths.push_back((std::filesystem::path(dir) / name).string());
  }
  return paths;
}

void prune_snapshots(const std::string& dir, std::size_t keep) {
  const std::vector<std::string> paths = snapshot_paths_newest_first(dir);
  for (std::size_t i = keep; i < paths.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(paths[i], ec);
  }
}

}  // namespace

std::string snapshot_file_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%012llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(seq), kSnapshotSuffix);
  return buf;
}

bool write_snapshot(const std::string& dir, const SnapshotMeta& meta,
                    const std::string& payload, std::size_t keep,
                    std::uint64_t* bytes_out) {
  DYNP_EXPECTS(!dir.empty());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  ByteWriter w;
  w.str(std::string_view(kMagic, sizeof kMagic));
  w.u32(kSnapshotVersion);
  w.str(meta.build);
  w.u64(meta.config_fingerprint);
  w.u64(meta.seq);
  w.f64(meta.sim_time);
  w.u64(payload.size());
  w.u64(util::fnv1a64(payload));

  const std::filesystem::path target =
      std::filesystem::path(dir) / snapshot_file_name(meta.seq);
  const std::filesystem::path temp = target.string() + ".tmp";
  std::FILE* out = std::fopen(temp.string().c_str(), "wb");
  if (out == nullptr) return false;
  bool ok = std::fwrite(w.bytes().data(), 1, w.size(), out) == w.size();
  ok = ok &&
       std::fwrite(payload.data(), 1, payload.size(), out) == payload.size();
  // fflush pushes the bytes to the OS: a SIGKILL after the rename below can
  // no longer tear this file (page-cache durability is all a process kill
  // needs; power loss is out of scope).
  ok = ok && std::fflush(out) == 0;
  std::fclose(out);
  if (!ok) {
    std::filesystem::remove(temp, ec);
    return false;
  }
  std::filesystem::rename(temp, target, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return false;
  }
  if (bytes_out != nullptr) *bytes_out = w.size() + payload.size();
  prune_snapshots(dir, keep);
  return true;
}

std::optional<LoadedSnapshot> read_snapshot(const std::string& path) {
  const std::optional<std::string> data = slurp(path);
  if (!data) return std::nullopt;
  ByteReader r(*data);
  if (r.str() != std::string_view(kMagic, sizeof kMagic)) return std::nullopt;
  if (r.u32() != kSnapshotVersion) return std::nullopt;
  LoadedSnapshot loaded;
  loaded.meta.build = r.str();
  loaded.meta.config_fingerprint = r.u64();
  loaded.meta.seq = r.u64();
  loaded.meta.sim_time = r.f64();
  const std::uint64_t payload_size = r.u64();
  const std::uint64_t payload_hash = r.u64();
  if (!r.ok() || r.remaining() != payload_size) return std::nullopt;
  loaded.payload.assign(data->data() + (data->size() - r.remaining()),
                        payload_size);
  if (util::fnv1a64(loaded.payload) != payload_hash) return std::nullopt;
  loaded.path = path;
  return loaded;
}

RestoreScan find_restore_source(const std::string& path_or_dir,
                                std::uint64_t config_fingerprint) {
  RestoreScan scan;
  const auto accept = [&](const std::string& path) {
    std::optional<LoadedSnapshot> loaded = read_snapshot(path);
    if (loaded && (config_fingerprint == 0 ||
                   loaded->meta.config_fingerprint == config_fingerprint)) {
      scan.snapshot = std::move(loaded);
      return true;
    }
    scan.rejected.push_back(path);
    return false;
  };

  std::error_code ec;
  std::string dir = path_or_dir;
  if (!std::filesystem::is_directory(path_or_dir, ec)) {
    if (accept(path_or_dir)) return scan;
    // A named-but-invalid file rolls back to its siblings: scan the parent
    // directory for the previous good checkpoint.
    dir = std::filesystem::path(path_or_dir).parent_path().string();
    if (dir.empty()) return scan;
  }
  for (const std::string& path : snapshot_paths_newest_first(dir)) {
    if (path == path_or_dir) continue;  // already rejected above
    if (accept(path)) return scan;
  }
  return scan;
}

}  // namespace dynp::ckpt
