#include "rms/profile.hpp"

#include <algorithm>
#include <limits>

namespace dynp::rms {

ResourceProfile::ResourceProfile(std::uint32_t capacity, Time origin)
    : capacity_(capacity) {
  DYNP_EXPECTS(capacity >= 1);
  segments_.push_back(Segment{origin, capacity});
}

std::size_t ResourceProfile::segment_index(Time t) const {
  DYNP_EXPECTS(t >= segments_.front().start);
  // Last segment whose start <= t.
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](Time value, const Segment& s) { return value < s.start; });
  return static_cast<std::size_t>(it - segments_.begin()) - 1;
}

std::uint32_t ResourceProfile::free_at(Time t) const {
  return segments_[segment_index(t)].free;
}

Time ResourceProfile::earliest_start(Time earliest, std::uint32_t width,
                                     Time duration) const {
  DYNP_EXPECTS(width >= 1 && width <= capacity_);
  DYNP_EXPECTS(duration >= 0);
  earliest = std::max(earliest, segments_.front().start);

  constexpr Time kInf = std::numeric_limits<Time>::infinity();
  Time window_start = kInf;  // start of the current feasible run
  for (std::size_t i = segment_index(earliest); i < segments_.size(); ++i) {
    const Segment& seg = segments_[i];
    if (seg.free < width) {
      window_start = kInf;
      continue;
    }
    if (window_start == kInf) {
      window_start = std::max(earliest, seg.start);
    }
    const Time seg_end =
        i + 1 < segments_.size() ? segments_[i + 1].start : kInf;
    // Written as an addition so the feasibility check computes the window
    // end exactly like `allocate`'s boundary split (`start + duration`):
    // a freed reservation is then always re-admittable at its own slot,
    // which subtraction can miss by one ulp.
    if (window_start + duration <= seg_end) {
      return window_start;
    }
  }
  // Unreachable: the final segment is unbounded with full capacity free.
  DYNP_ASSERT(window_start != kInf);
  return window_start;
}

std::size_t ResourceProfile::split_at(Time t) {
  const std::size_t i = segment_index(t);
  if (segments_[i].start == t) return i;
  segments_.insert(segments_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                   Segment{t, segments_[i].free});
  return i + 1;
}

void ResourceProfile::apply(Time start, Time end, std::int64_t delta) {
  if (end <= start) return;
  const std::size_t first = split_at(start);
  const std::size_t last = split_at(end);  // boundary after the affected range
  for (std::size_t i = first; i < last; ++i) {
    const std::int64_t updated =
        static_cast<std::int64_t>(segments_[i].free) + delta;
    DYNP_ASSERT(updated >= 0 &&
                updated <= static_cast<std::int64_t>(capacity_));
    segments_[i].free = static_cast<std::uint32_t>(updated);
  }
  // Re-merge equal neighbours to keep the profile minimal (O(active
  // reservations) segments). Segments before the touched range are already
  // pairwise distinct, so compaction starts just before it.
  (void)last;
  const std::size_t merge_from = first > 0 ? first - 1 : 0;
  std::size_t write = merge_from;
  for (std::size_t read = merge_from + 1; read < segments_.size(); ++read) {
    if (segments_[read].free == segments_[write].free) continue;
    segments_[++write] = segments_[read];
  }
  segments_.resize(write + 1);
}

void ResourceProfile::allocate(Time start, Time duration, std::uint32_t width) {
  DYNP_EXPECTS(width <= capacity_);
  apply(start, start + duration, -static_cast<std::int64_t>(width));
}

void ResourceProfile::deallocate(Time start, Time duration,
                                 std::uint32_t width) {
  DYNP_EXPECTS(width <= capacity_);
  apply(start, start + duration, static_cast<std::int64_t>(width));
}

void ResourceProfile::trim_before(Time t) {
  if (t <= segments_.front().start) return;
  const std::size_t i = segment_index(t);
  if (i > 0) {
    segments_.erase(segments_.begin(),
                    segments_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  segments_.front().start = t;
}

bool ResourceProfile::invariants_ok() const noexcept {
  if (segments_.empty()) return false;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].free > capacity_) return false;
    if (i > 0 && segments_[i].start <= segments_[i - 1].start) return false;
    if (i > 0 && segments_[i].free == segments_[i - 1].free) return false;
  }
  return segments_.back().free == capacity_;
}

}  // namespace dynp::rms
