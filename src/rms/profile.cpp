#include "rms/profile.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace dynp::rms {

namespace {

/// First index in [i, n) with frees[i] >= width (n if none). This is one
/// half of the planner's innermost loop — at high load most of the profile
/// has too few free nodes and the scan's job is to skip it. Free counts fit
/// in 31 bits (machine sizes), so the SSE2 path can use signed 32-bit
/// compares, testing four segments per step.
#if defined(__SSE2__) && defined(__GNUC__)
/// AVX2 variant of the skip scan below, eight segments per step. Compiled
/// with a per-function target attribute and selected at run time, so the
/// binary stays baseline-SSE2 portable.
__attribute__((target("avx2"))) std::size_t find_fit_avx2(
    const std::uint32_t* frees, std::size_t i, std::size_t n,
    std::uint32_t width) {
  const __m256i vwidth = _mm256_set1_epi32(static_cast<int>(width));
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(frees + i));
    const unsigned less = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpgt_epi32(vwidth, v)));
    if (less != 0xFFFFFFFFu) {
      return i + static_cast<std::size_t>(std::countr_zero(~less) / 4);
    }
  }
  for (; i < n && frees[i] < width; ++i) {
  }
  return i;
}

const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;
#endif

std::size_t find_fit(const std::uint32_t* frees, std::size_t i, std::size_t n,
                     std::uint32_t width) {
#if defined(__SSE2__)
#if defined(__GNUC__)
  if (kHaveAvx2) return find_fit_avx2(frees, i, n, width);
#endif
  const __m128i vwidth = _mm_set1_epi32(static_cast<int>(width));
  for (; i + 4 <= n; i += 4) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(frees + i));
    const int less = _mm_movemask_epi8(_mm_cmplt_epi32(v, vwidth));
    if (less != 0xFFFF) {
      // First lane that fits = first zero bit group in the mask.
      return i + static_cast<std::size_t>(
                     std::countr_zero(static_cast<unsigned>(~less & 0xFFFF)) /
                     4);
    }
  }
#endif
  for (; i < n && frees[i] < width; ++i) {
  }
  return i;
}

}  // namespace

ResourceProfile::ResourceProfile(std::uint32_t capacity, Time origin)
    : capacity_(capacity) {
  DYNP_EXPECTS(capacity >= 1);
  starts_.push_back(origin);
  frees_.push_back(capacity);
}

void ResourceProfile::reset(std::uint32_t capacity, Time origin) {
  DYNP_EXPECTS(capacity >= 1);
  capacity_ = capacity;
  cursor_ = 0;
  starts_.clear();
  frees_.clear();
  starts_.push_back(origin);
  frees_.push_back(capacity);
}

std::size_t ResourceProfile::segment_index(Time t) const {
  DYNP_EXPECTS(t >= starts_.front());
  // Last segment whose start <= t. Gallop right from the cursor hint (the
  // usual case: an allocation lands where the preceding query answered),
  // then binary-search the remaining bracket.
  const std::size_t n = starts_.size();
  std::size_t lo = cursor_ < n && starts_[cursor_] <= t ? cursor_ : 0;
  std::size_t hi = lo + 1;
  for (std::size_t step = 1; hi < n && starts_[hi] <= t; step <<= 1) {
    lo = hi;
    hi += step;
  }
  hi = std::min(hi, n);
  const auto first = starts_.begin();
  const auto it = std::upper_bound(first + static_cast<std::ptrdiff_t>(lo) + 1,
                                   first + static_cast<std::ptrdiff_t>(hi), t);
  cursor_ = static_cast<std::size_t>(it - first) - 1;
  return cursor_;
}

std::uint32_t ResourceProfile::free_at(Time t) const {
  return frees_[segment_index(t)];
}

Time ResourceProfile::earliest_start(Time earliest, std::uint32_t width,
                                     Time duration) const {
  Time first_fit;
  return earliest_start(earliest, width, duration, first_fit);
}

Time ResourceProfile::earliest_start(Time earliest, std::uint32_t width,
                                     Time duration, Time& first_fit) const {
  DYNP_EXPECTS(width >= 1 && width <= capacity_);
  DYNP_EXPECTS(duration >= 0);
  earliest = std::max(earliest, starts_.front());

  constexpr Time kInf = std::numeric_limits<Time>::infinity();
  const std::size_t n = starts_.size();
  first_fit = kInf;
  std::size_t i = segment_index(earliest);
  for (;;) {
    i = find_fit(frees_.data(), i, n, width);
    // The final segment always has the full machine free, so a fit exists.
    DYNP_ASSERT(i < n);
    const Time window_start = std::max(earliest, starts_[i]);
    if (first_fit == kInf) first_fit = window_start;
    // Walk the feasible run until it covers the duration or breaks. The
    // window end is computed as an addition so the feasibility check matches
    // `allocate`'s boundary split (`start + duration`) exactly: a freed
    // reservation is then always re-admittable at its own slot, which
    // subtraction can miss by one ulp.
    std::size_t j = i;
    for (;;) {
      const Time seg_end = j + 1 < n ? starts_[j + 1] : kInf;
      if (window_start + duration <= seg_end) {
        cursor_ = i;  // the allocation that follows starts here
        return window_start;
      }
      ++j;  // seg_end was finite here, so j + 1 < n held
      if (frees_[j] < width) break;
    }
    i = j + 1;  // resume after the segment that broke the run
  }
}

Time ResourceProfile::place(Time earliest, std::uint32_t width, Time duration,
                            Time& first_fit) {
  DYNP_EXPECTS(width >= 1 && width <= capacity_);
  DYNP_EXPECTS(duration >= 0);
  earliest = std::max(earliest, starts_.front());

  constexpr Time kInf = std::numeric_limits<Time>::infinity();
  const std::size_t n = starts_.size();
  first_fit = kInf;
  std::size_t i = segment_index(earliest);
  for (;;) {
    i = find_fit(frees_.data(), i, n, width);
    DYNP_ASSERT(i < n);
    const Time window_start = std::max(earliest, starts_[i]);
    if (first_fit == kInf) first_fit = window_start;
    std::size_t j = i;
    for (;;) {
      const Time seg_end = j + 1 < n ? starts_[j + 1] : kInf;
      if (window_start + duration <= seg_end) {
        cursor_ = i;
        if (duration > 0) allocate_run(window_start, duration, width, i, j);
        return window_start;
      }
      ++j;  // seg_end was finite here, so j + 1 < n held
      if (frees_[j] < width) break;
    }
    i = j + 1;  // resume after the segment that broke the run
  }
}

void ResourceProfile::allocate_run(Time start, Time duration,
                                   std::uint32_t width, std::size_t i,
                                   std::size_t j) {
  // [start, start + duration) lies within the feasible run [i, j] the query
  // walked: starts_[i] <= start < end <= (start of segment j + 1, or inf).
  // Splitting the boundaries in place here is what the fused query+allocate
  // saves over `apply`, which would re-locate both via `segment_index`.
  const Time end = start + duration;
  std::size_t first = i;
  if (starts_[i] != start) {
    starts_.insert(starts_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                   start);
    frees_.insert(frees_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  frees_[i]);
    first = i + 1;
    ++j;
  }
  DYNP_ASSERT(starts_[j] < end);
  if (!(j + 1 < starts_.size() && starts_[j + 1] == end)) {
    starts_.insert(starts_.begin() + static_cast<std::ptrdiff_t>(j) + 1, end);
    frees_.insert(frees_.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                  frees_[j]);
  }
  const std::size_t last = j + 1;  // boundary after the affected range
  for (std::size_t s = first; s < last; ++s) {
    DYNP_ASSERT(frees_[s] >= width);
    frees_[s] -= width;
  }
  merge_range(first, last);
}

std::size_t ResourceProfile::split_at(Time t) {
  const std::size_t i = segment_index(t);
  if (starts_[i] == t) return i;
  starts_.insert(starts_.begin() + static_cast<std::ptrdiff_t>(i) + 1, t);
  frees_.insert(frees_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                frees_[i]);
  return i + 1;
}

void ResourceProfile::apply(Time start, Time end, std::int64_t delta) {
  if (end <= start) return;
  const std::size_t first = split_at(start);
  const std::size_t last = split_at(end);  // boundary after the affected range
  for (std::size_t i = first; i < last; ++i) {
    const std::int64_t updated =
        static_cast<std::int64_t>(frees_[i]) + delta;
    DYNP_ASSERT(updated >= 0 &&
                updated <= static_cast<std::int64_t>(capacity_));
    frees_[i] = static_cast<std::uint32_t>(updated);
  }
  merge_range(first, last);
}

void ResourceProfile::merge_range(std::size_t first, std::size_t last) {
  // Re-merge equal neighbours to keep the profile minimal (O(active
  // reservations) segments). Segments outside [first-1, last] are untouched
  // and already pairwise distinct, so compaction is bounded by the touched
  // range: the segment at `last` kept its free count and stays distinct from
  // its successor. When nothing merges, the tail is never visited at all.
  const std::size_t merge_from = first > 0 ? first - 1 : 0;
  const std::size_t merge_to = std::min(last, starts_.size() - 1);
  std::size_t write = merge_from;
  for (std::size_t read = merge_from + 1; read <= merge_to; ++read) {
    if (frees_[read] == frees_[write]) continue;
    ++write;
    starts_[write] = starts_[read];
    frees_[write] = frees_[read];
  }
  if (write < merge_to) {
    starts_.erase(starts_.begin() + static_cast<std::ptrdiff_t>(write) + 1,
                  starts_.begin() + static_cast<std::ptrdiff_t>(merge_to) + 1);
    frees_.erase(frees_.begin() + static_cast<std::ptrdiff_t>(write) + 1,
                 frees_.begin() + static_cast<std::ptrdiff_t>(merge_to) + 1);
  }
}

void ResourceProfile::allocate(Time start, Time duration, std::uint32_t width) {
  DYNP_EXPECTS(width <= capacity_);
  apply(start, start + duration, -static_cast<std::int64_t>(width));
}

void ResourceProfile::deallocate(Time start, Time duration,
                                 std::uint32_t width) {
  DYNP_EXPECTS(width <= capacity_);
  apply(start, start + duration, static_cast<std::int64_t>(width));
}

void ResourceProfile::trim_before(Time t) {
  DYNP_EXPECTS(!starts_.empty());
  if (t <= starts_.front()) return;
  const std::size_t i = segment_index(t);
  if (i > 0) {
    starts_.erase(starts_.begin(),
                  starts_.begin() + static_cast<std::ptrdiff_t>(i));
    frees_.erase(frees_.begin(),
                 frees_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  starts_.front() = t;
  cursor_ = 0;
  // The unbounded tail keeps the whole machine free whatever was dropped.
  DYNP_ENSURES(frees_.back() == capacity_);
}

bool ResourceProfile::invariants_ok() const noexcept {
  if (starts_.empty() || starts_.size() != frees_.size()) return false;
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    if (frees_[i] > capacity_) return false;
    if (i > 0 && starts_[i] <= starts_[i - 1]) return false;
    if (i > 0 && frees_[i] == frees_[i - 1]) return false;
  }
  return frees_.back() == capacity_;
}

}  // namespace dynp::rms
