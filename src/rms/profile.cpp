#include "rms/profile.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace dynp::rms {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::infinity();

/// First index in [i, n) with frees[i] >= width (n if none). This is one
/// half of the planner's innermost loop — at high load most of the profile
/// has too few free nodes and the scan's job is to skip it. Free counts fit
/// in 31 bits (machine sizes), so the SSE2 path can use signed 32-bit
/// compares, testing four segments per step.
#if defined(__SSE2__) && defined(__GNUC__)
/// AVX2 variant of the skip scan below, eight segments per step. Compiled
/// with a per-function target attribute and selected at run time, so the
/// binary stays baseline-SSE2 portable.
__attribute__((target("avx2"))) std::size_t find_fit_avx2(
    const std::uint32_t* frees, std::size_t i, std::size_t n,
    std::uint32_t width) {
  const __m256i vwidth = _mm256_set1_epi32(static_cast<int>(width));
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(frees + i));
    const unsigned less = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpgt_epi32(vwidth, v)));
    if (less != 0xFFFFFFFFu) {
      return i + static_cast<std::size_t>(std::countr_zero(~less) / 4);
    }
  }
  for (; i < n && frees[i] < width; ++i) {
  }
  return i;
}

const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;
#endif

std::size_t find_fit(const std::uint32_t* frees, std::size_t i, std::size_t n,
                     std::uint32_t width) {
#if defined(__SSE2__)
#if defined(__GNUC__)
  if (kHaveAvx2) return find_fit_avx2(frees, i, n, width);
#endif
  const __m128i vwidth = _mm_set1_epi32(static_cast<int>(width));
  for (; i + 4 <= n; i += 4) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(frees + i));
    const int less = _mm_movemask_epi8(_mm_cmplt_epi32(v, vwidth));
    if (less != 0xFFFF) {
      // First lane that fits = first zero bit group in the mask.
      return i + static_cast<std::size_t>(
                     std::countr_zero(static_cast<unsigned>(~less & 0xFFFF)) /
                     4);
    }
  }
#endif
  for (; i < n && frees[i] < width; ++i) {
  }
  return i;
}

/// Process-wide default representation; mutated only during startup, before
/// planning threads exist (same discipline as the contract handler).
ProfileImpl g_default_impl = ProfileImpl::kTree;

}  // namespace

void ResourceProfile::set_default_impl(ProfileImpl impl) noexcept {
  g_default_impl = impl;
}

ProfileImpl ResourceProfile::default_impl() noexcept { return g_default_impl; }

ResourceProfile::ResourceProfile(std::uint32_t capacity, Time origin)
    : ResourceProfile(capacity, origin, g_default_impl) {}

ResourceProfile::ResourceProfile(std::uint32_t capacity, Time origin,
                                 ProfileImpl impl)
    : capacity_(capacity), impl_(impl) {
  DYNP_EXPECTS(capacity >= 1);
  if (impl_ == ProfileImpl::kFlat) {
    starts_.push_back(origin);
    frees_.push_back(capacity);
  } else {
    tree_init(capacity, origin);
  }
}

ResourceProfile::ResourceProfile(const ResourceProfile& other)
    : capacity_(other.capacity_), impl_(other.impl_) {
  copy_from(other);
}

ResourceProfile& ResourceProfile::operator=(const ResourceProfile& other) {
  if (this == &other) return *this;
  capacity_ = other.capacity_;
  impl_ = other.impl_;
  copy_from(other);
  return *this;
}

void ResourceProfile::copy_from(const ResourceProfile& other) {
  if (other.impl_ == ProfileImpl::kFlat) {
    starts_ = other.starts_;
    frees_ = other.frees_;
    cursor_ = other.cursor_;
    mirror_fresh_ = true;
    pool_.clear();
    order_.clear();
    spare_.clear();
    return;
  }
  // Compacting copy: live blocks land in timeline order, so repeatedly
  // copied candidates stay dense whatever churn the source went through.
  const std::size_t blocks = other.order_.size();
  pool_.resize(blocks);
  order_.resize(blocks);
  for (std::size_t p = 0; p < blocks; ++p) {
    pool_[p] = other.pool_[other.order_[p]];
    order_[p] = static_cast<std::uint32_t>(p);
  }
  spare_.clear();
  head_starts_ = other.head_starts_;
  tree_min_ = other.tree_min_;
  tree_max_ = other.tree_max_;
  leaves_ = other.leaves_;
  segments_ = other.segments_;
  // Skip the mirror: copies are planning scratch, snapshots re-materialise.
  starts_.clear();
  frees_.clear();
  mirror_fresh_ = false;
  cursor_ = 0;
}

void ResourceProfile::reset(std::uint32_t capacity, Time origin) {
  DYNP_EXPECTS(capacity >= 1);
  capacity_ = capacity;
  cursor_ = 0;
  if (impl_ == ProfileImpl::kFlat) {
    starts_.clear();
    frees_.clear();
    starts_.push_back(origin);
    frees_.push_back(capacity);
  } else {
    tree_init(capacity, origin);
  }
}

std::size_t ResourceProfile::segment_index(Time t) const {
  DYNP_EXPECTS(t >= starts_.front());
  // Last segment whose start <= t. Gallop right from the cursor hint (the
  // usual case: an allocation lands where the preceding query answered),
  // then binary-search the remaining bracket.
  const std::size_t n = starts_.size();
  std::size_t lo = cursor_ < n && starts_[cursor_] <= t ? cursor_ : 0;
  std::size_t hi = lo + 1;
  for (std::size_t step = 1; hi < n && starts_[hi] <= t; step <<= 1) {
    lo = hi;
    hi += step;
  }
  hi = std::min(hi, n);
  const auto first = starts_.begin();
  const auto it = std::upper_bound(first + static_cast<std::ptrdiff_t>(lo) + 1,
                                   first + static_cast<std::ptrdiff_t>(hi), t);
  cursor_ = static_cast<std::size_t>(it - first) - 1;
  return cursor_;
}

std::uint32_t ResourceProfile::free_at(Time t) const {
  if (impl_ == ProfileImpl::kFlat) return frees_[segment_index(t)];
  const TreePos p = tree_locate(t);
  return effective(block_at(p.pos), p.slot);
}

Time ResourceProfile::earliest_start(Time earliest, std::uint32_t width,
                                     Time duration) const {
  Time first_fit;
  return earliest_start(earliest, width, duration, first_fit);
}

Time ResourceProfile::earliest_start(Time earliest, std::uint32_t width,
                                     Time duration, Time& first_fit) const {
  DYNP_EXPECTS(width >= 1 && width <= capacity_);
  DYNP_EXPECTS(duration >= 0);
  if (impl_ == ProfileImpl::kTree) {
    return tree_earliest_start(earliest, width, duration, first_fit);
  }
  earliest = std::max(earliest, starts_.front());

  const std::size_t n = starts_.size();
  first_fit = kInf;
  std::size_t i = segment_index(earliest);
  for (;;) {
    i = find_fit(frees_.data(), i, n, width);
    // The final segment always has the full machine free, so a fit exists.
    DYNP_ASSERT(i < n);
    const Time window_start = std::max(earliest, starts_[i]);
    if (first_fit == kInf) first_fit = window_start;
    // Walk the feasible run until it covers the duration or breaks. The
    // window end is computed as an addition so the feasibility check matches
    // `allocate`'s boundary split (`start + duration`) exactly: a freed
    // reservation is then always re-admittable at its own slot, which
    // subtraction can miss by one ulp.
    std::size_t j = i;
    for (;;) {
      const Time seg_end = j + 1 < n ? starts_[j + 1] : kInf;
      if (window_start + duration <= seg_end) {
        cursor_ = i;  // the allocation that follows starts here
        return window_start;
      }
      ++j;  // seg_end was finite here, so j + 1 < n held
      if (frees_[j] < width) break;
    }
    i = j + 1;  // resume after the segment that broke the run
  }
}

Time ResourceProfile::place(Time earliest, std::uint32_t width, Time duration,
                            Time& first_fit) {
  DYNP_EXPECTS(width >= 1 && width <= capacity_);
  DYNP_EXPECTS(duration >= 0);
  if (impl_ == ProfileImpl::kTree) {
    const Time start = tree_earliest_start(earliest, width, duration,
                                           first_fit);
    if (duration > 0) {
      tree_apply(start, start + duration, -static_cast<std::int64_t>(width));
    }
    return start;
  }
  earliest = std::max(earliest, starts_.front());

  const std::size_t n = starts_.size();
  first_fit = kInf;
  std::size_t i = segment_index(earliest);
  for (;;) {
    i = find_fit(frees_.data(), i, n, width);
    DYNP_ASSERT(i < n);
    const Time window_start = std::max(earliest, starts_[i]);
    if (first_fit == kInf) first_fit = window_start;
    std::size_t j = i;
    for (;;) {
      const Time seg_end = j + 1 < n ? starts_[j + 1] : kInf;
      if (window_start + duration <= seg_end) {
        cursor_ = i;
        if (duration > 0) allocate_run(window_start, duration, width, i, j);
        return window_start;
      }
      ++j;  // seg_end was finite here, so j + 1 < n held
      if (frees_[j] < width) break;
    }
    i = j + 1;  // resume after the segment that broke the run
  }
}

void ResourceProfile::allocate_run(Time start, Time duration,
                                   std::uint32_t width, std::size_t i,
                                   std::size_t j) {
  // [start, start + duration) lies within the feasible run [i, j] the query
  // walked: starts_[i] <= start < end <= (start of segment j + 1, or inf).
  // Splitting the boundaries in place here is what the fused query+allocate
  // saves over `apply`, which would re-locate both via `segment_index`.
  const Time end = start + duration;
  std::size_t first = i;
  if (starts_[i] != start) {
    starts_.insert(starts_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                   start);
    frees_.insert(frees_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  frees_[i]);
    first = i + 1;
    ++j;
  }
  DYNP_ASSERT(starts_[j] < end);
  if (!(j + 1 < starts_.size() && starts_[j + 1] == end)) {
    starts_.insert(starts_.begin() + static_cast<std::ptrdiff_t>(j) + 1, end);
    frees_.insert(frees_.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                  frees_[j]);
  }
  const std::size_t last = j + 1;  // boundary after the affected range
  for (std::size_t s = first; s < last; ++s) {
    DYNP_ASSERT(frees_[s] >= width);
    frees_[s] -= width;
  }
  merge_range(first, last);
}

std::size_t ResourceProfile::split_at(Time t) {
  const std::size_t i = segment_index(t);
  if (starts_[i] == t) return i;
  starts_.insert(starts_.begin() + static_cast<std::ptrdiff_t>(i) + 1, t);
  frees_.insert(frees_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                frees_[i]);
  return i + 1;
}

void ResourceProfile::apply(Time start, Time end, std::int64_t delta) {
  if (end <= start) return;
  const std::size_t first = split_at(start);
  const std::size_t last = split_at(end);  // boundary after the affected range
  for (std::size_t i = first; i < last; ++i) {
    const std::int64_t updated =
        static_cast<std::int64_t>(frees_[i]) + delta;
    DYNP_ASSERT(updated >= 0 &&
                updated <= static_cast<std::int64_t>(capacity_));
    frees_[i] = static_cast<std::uint32_t>(updated);
  }
  merge_range(first, last);
}

void ResourceProfile::merge_range(std::size_t first, std::size_t last) {
  // Re-merge equal neighbours to keep the profile minimal (O(active
  // reservations) segments). Segments outside [first-1, last] are untouched
  // and already pairwise distinct, so compaction is bounded by the touched
  // range: the segment at `last` kept its free count and stays distinct from
  // its successor. When nothing merges, the tail is never visited at all.
  const std::size_t merge_from = first > 0 ? first - 1 : 0;
  const std::size_t merge_to = std::min(last, starts_.size() - 1);
  std::size_t write = merge_from;
  for (std::size_t read = merge_from + 1; read <= merge_to; ++read) {
    if (frees_[read] == frees_[write]) continue;
    ++write;
    starts_[write] = starts_[read];
    frees_[write] = frees_[read];
  }
  if (write < merge_to) {
    starts_.erase(starts_.begin() + static_cast<std::ptrdiff_t>(write) + 1,
                  starts_.begin() + static_cast<std::ptrdiff_t>(merge_to) + 1);
    frees_.erase(frees_.begin() + static_cast<std::ptrdiff_t>(write) + 1,
                 frees_.begin() + static_cast<std::ptrdiff_t>(merge_to) + 1);
  }
}

void ResourceProfile::allocate(Time start, Time duration, std::uint32_t width) {
  DYNP_EXPECTS(width <= capacity_);
  if (impl_ == ProfileImpl::kTree) {
    tree_apply(start, start + duration, -static_cast<std::int64_t>(width));
    return;
  }
  apply(start, start + duration, -static_cast<std::int64_t>(width));
}

void ResourceProfile::deallocate(Time start, Time duration,
                                 std::uint32_t width) {
  DYNP_EXPECTS(width <= capacity_);
  if (impl_ == ProfileImpl::kTree) {
    tree_apply(start, start + duration, static_cast<std::int64_t>(width));
    return;
  }
  apply(start, start + duration, static_cast<std::int64_t>(width));
}

void ResourceProfile::trim_before(Time t) {
  if (impl_ == ProfileImpl::kTree) {
    tree_trim_before(t);
    return;
  }
  DYNP_EXPECTS(!starts_.empty());
  if (t <= starts_.front()) return;
  const std::size_t i = segment_index(t);
  if (i > 0) {
    starts_.erase(starts_.begin(),
                  starts_.begin() + static_cast<std::ptrdiff_t>(i));
    frees_.erase(frees_.begin(),
                 frees_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  starts_.front() = t;
  cursor_ = 0;
  // The unbounded tail keeps the whole machine free whatever was dropped.
  DYNP_ENSURES(frees_.back() == capacity_);
}

const std::vector<Time>& ResourceProfile::segment_starts() const {
  if (impl_ == ProfileImpl::kTree) sync_mirror();
  return starts_;
}

const std::vector<std::uint32_t>& ResourceProfile::segment_frees() const {
  if (impl_ == ProfileImpl::kTree) sync_mirror();
  return frees_;
}

void ResourceProfile::restore_segments(std::uint32_t capacity,
                                       std::vector<Time> starts,
                                       std::vector<std::uint32_t> frees) {
  capacity_ = capacity;
  cursor_ = 0;
  if (impl_ == ProfileImpl::kTree) {
    tree_build_from(std::move(starts), std::move(frees));
  } else {
    starts_ = std::move(starts);
    frees_ = std::move(frees);
  }
  DYNP_EXPECTS(invariants_ok());
}

bool ResourceProfile::invariants_ok() const noexcept {
  return impl_ == ProfileImpl::kFlat ? flat_invariants_ok()
                                     : tree_invariants_ok();
}

bool ResourceProfile::flat_invariants_ok() const noexcept {
  if (starts_.empty() || starts_.size() != frees_.size()) return false;
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    if (frees_[i] > capacity_) return false;
    if (i > 0 && starts_[i] <= starts_[i - 1]) return false;
    if (i > 0 && frees_[i] == frees_[i - 1]) return false;
  }
  return frees_.back() == capacity_;
}

// ----- tree representation -------------------------------------------------

void ResourceProfile::tree_init(std::uint32_t capacity, Time origin) {
  pool_.clear();
  spare_.clear();
  pool_.emplace_back();
  Block& b = pool_.front();
  b.start[0] = origin;
  b.free[0] = capacity;
  b.count = 1;
  b.delta = 0;
  b.min_free = capacity;
  b.max_free = capacity;
  order_.assign(1, 0);
  segments_ = 1;
  tree_rebuild_index();
  starts_.assign(1, origin);
  frees_.assign(1, capacity);
  mirror_fresh_ = true;
}

std::uint32_t ResourceProfile::alloc_block() {
  if (!spare_.empty()) {
    const std::uint32_t id = spare_.back();
    spare_.pop_back();
    return id;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void ResourceProfile::recompute_minmax(Block& b) {
  std::uint32_t lo = b.free[0];
  std::uint32_t hi = b.free[0];
  for (std::uint32_t s = 1; s < b.count; ++s) {
    lo = std::min(lo, b.free[s]);
    hi = std::max(hi, b.free[s]);
  }
  b.min_free = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(lo) + b.delta);
  b.max_free = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(hi) + b.delta);
}

void ResourceProfile::flush_delta(Block& b) {
  if (b.delta == 0) return;
  for (std::uint32_t s = 0; s < b.count; ++s) {
    b.free[s] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(b.free[s]) + b.delta);
  }
  b.delta = 0;
}

void ResourceProfile::tree_rebuild_index() {
  const std::size_t blocks = order_.size();
  head_starts_.resize(blocks);
  for (std::size_t p = 0; p < blocks; ++p) {
    head_starts_[p] = pool_[order_[p]].start[0];
  }
  leaves_ = std::bit_ceil(std::max<std::size_t>(blocks, 1));
  tree_min_.assign(2 * leaves_, std::numeric_limits<std::uint32_t>::max());
  tree_max_.assign(2 * leaves_, 0);
  for (std::size_t p = 0; p < blocks; ++p) {
    const Block& b = pool_[order_[p]];
    tree_min_[leaves_ + p] = b.min_free;
    tree_max_[leaves_ + p] = b.max_free;
  }
  for (std::size_t i = leaves_ - 1; i >= 1; --i) {
    tree_min_[i] = std::min(tree_min_[2 * i], tree_min_[2 * i + 1]);
    tree_max_[i] = std::max(tree_max_[2 * i], tree_max_[2 * i + 1]);
  }
}

void ResourceProfile::tree_point_update(std::uint32_t pos) {
  const Block& b = block_at(pos);
  std::size_t i = leaves_ + pos;
  tree_min_[i] = b.min_free;
  tree_max_[i] = b.max_free;
  for (i /= 2; i >= 1; i /= 2) {
    tree_min_[i] = std::min(tree_min_[2 * i], tree_min_[2 * i + 1]);
    tree_max_[i] = std::max(tree_max_[2 * i], tree_max_[2 * i + 1]);
  }
}

void ResourceProfile::tree_rebuild_interval(std::size_t lo, std::size_t hi) {
  if (lo >= hi) return;
  std::size_t l = leaves_ + lo;
  std::size_t r = leaves_ + hi - 1;
  while (l > 1) {
    l /= 2;
    r /= 2;
    for (std::size_t i = l; i <= r; ++i) {
      tree_min_[i] = std::min(tree_min_[2 * i], tree_min_[2 * i + 1]);
      tree_max_[i] = std::max(tree_max_[2 * i], tree_max_[2 * i + 1]);
    }
  }
}

std::uint32_t ResourceProfile::tree_first_ge(std::uint32_t from,
                                             std::uint32_t width) const {
  const std::size_t n = order_.size();
  if (from >= n) return kNoPos;
  std::size_t i = leaves_ + from;
  if (tree_max_[i] >= width) return from;
  for (;;) {
    while ((i & 1u) != 0) i >>= 1;  // right child: the subtree is exhausted
    if (i == 0) return kNoPos;      // climbed off the root's right spine
    ++i;                            // right sibling covers the next range
    if (tree_max_[i] >= width) {
      while (i < leaves_) {
        i *= 2;
        if (tree_max_[i] < width) ++i;
      }
      const std::size_t pos = i - leaves_;
      return pos < n ? static_cast<std::uint32_t>(pos) : kNoPos;
    }
  }
}

std::uint32_t ResourceProfile::tree_first_lt(std::uint32_t from,
                                             std::uint32_t width) const {
  const std::size_t n = order_.size();
  if (from >= n) return kNoPos;
  std::size_t i = leaves_ + from;
  if (tree_min_[i] < width) return from;
  for (;;) {
    while ((i & 1u) != 0) i >>= 1;
    if (i == 0) return kNoPos;
    ++i;
    if (tree_min_[i] < width) {
      while (i < leaves_) {
        i *= 2;
        if (tree_min_[i] >= width) ++i;
      }
      const std::size_t pos = i - leaves_;
      return pos < n ? static_cast<std::uint32_t>(pos) : kNoPos;
    }
  }
}

ResourceProfile::TreePos ResourceProfile::tree_locate(Time t) const {
  DYNP_EXPECTS(t >= head_starts_.front());
  const auto head_it =
      std::upper_bound(head_starts_.begin(), head_starts_.end(), t);
  const auto pos =
      static_cast<std::uint32_t>(head_it - head_starts_.begin() - 1);
  const Block& b = block_at(pos);
  const auto slot_it = std::upper_bound(b.start.begin(),
                                        b.start.begin() + b.count, t);
  const auto slot = static_cast<std::uint32_t>(slot_it - b.start.begin() - 1);
  return TreePos{pos, slot};
}

ResourceProfile::TreePos ResourceProfile::tree_next(TreePos p) const {
  const Block& b = block_at(p.pos);
  if (p.slot + 1 < b.count) return TreePos{p.pos, p.slot + 1};
  if (static_cast<std::size_t>(p.pos) + 1 < order_.size()) {
    return TreePos{p.pos + 1, 0};
  }
  return TreePos{kNoPos, 0};
}

ResourceProfile::TreePos ResourceProfile::tree_fit_from(
    TreePos p, std::uint32_t width) const {
  if (p.pos == kNoPos) return p;
  const Block& b = block_at(p.pos);
  if (b.max_free >= width) {
    const std::int64_t thr = static_cast<std::int64_t>(width) - b.delta;
    for (std::uint32_t s = p.slot; s < b.count; ++s) {
      if (static_cast<std::int64_t>(b.free[s]) >= thr) return TreePos{p.pos, s};
    }
  }
  const std::uint32_t pos = tree_first_ge(p.pos + 1, width);
  if (pos == kNoPos) return TreePos{kNoPos, 0};
  const Block& hit = block_at(pos);
  const std::int64_t thr = static_cast<std::int64_t>(width) - hit.delta;
  for (std::uint32_t s = 0; s < hit.count; ++s) {
    if (static_cast<std::int64_t>(hit.free[s]) >= thr) return TreePos{pos, s};
  }
  DYNP_ASSERT(false);  // max_free promised a fit in this block
  return TreePos{kNoPos, 0};
}

ResourceProfile::TreePos ResourceProfile::tree_below_from(
    TreePos p, std::uint32_t width) const {
  if (p.pos == kNoPos) return p;
  const Block& b = block_at(p.pos);
  if (b.min_free < width) {
    const std::int64_t thr = static_cast<std::int64_t>(width) - b.delta;
    for (std::uint32_t s = p.slot; s < b.count; ++s) {
      if (static_cast<std::int64_t>(b.free[s]) < thr) return TreePos{p.pos, s};
    }
  }
  const std::uint32_t pos = tree_first_lt(p.pos + 1, width);
  if (pos == kNoPos) return TreePos{kNoPos, 0};
  const Block& hit = block_at(pos);
  const std::int64_t thr = static_cast<std::int64_t>(width) - hit.delta;
  for (std::uint32_t s = 0; s < hit.count; ++s) {
    if (static_cast<std::int64_t>(hit.free[s]) < thr) return TreePos{pos, s};
  }
  DYNP_ASSERT(false);  // min_free promised a sub-width slot in this block
  return TreePos{kNoPos, 0};
}

Time ResourceProfile::tree_earliest_start(Time earliest, std::uint32_t width,
                                          Time duration,
                                          Time& first_fit) const {
  earliest = std::max(earliest, head_starts_.front());
  first_fit = kInf;
  // Same window walk as the flat scan, expressed over the aggregates: the
  // max-tree descends to the first segment that fits, the min-tree to the
  // first later segment that breaks the feasible run. The window end stays
  // an addition (`window_start + duration <= window_end`) so feasibility
  // matches `allocate`'s boundary split to the ulp — see the flat variant.
  TreePos i = tree_fit_from(tree_locate(earliest), width);
  for (;;) {
    // The final segment always has the full machine free, so a fit exists.
    DYNP_ASSERT(i.pos != kNoPos);
    const Time window_start = std::max(earliest, tree_start(i));
    if (first_fit == kInf) first_fit = window_start;
    const TreePos brk = tree_below_from(tree_next(i), width);
    const Time window_end = brk.pos == kNoPos ? kInf : tree_start(brk);
    if (window_start + duration <= window_end) return window_start;
    i = tree_fit_from(tree_next(brk), width);
  }
}

void ResourceProfile::tree_split_block(std::uint32_t pos) {
  const std::uint32_t lo_id = order_[pos];
  const std::uint32_t hi_id = alloc_block();  // may move pool_: re-index after
  Block& lo = pool_[lo_id];
  Block& hi = pool_[hi_id];
  constexpr std::uint32_t kHalf = kBlockCap / 2;
  std::copy(lo.start.begin() + kHalf, lo.start.end(), hi.start.begin());
  std::copy(lo.free.begin() + kHalf, lo.free.end(), hi.free.begin());
  hi.count = kBlockCap - kHalf;
  hi.delta = lo.delta;
  lo.count = kHalf;
  recompute_minmax(lo);
  recompute_minmax(hi);
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos) + 1, hi_id);
  tree_rebuild_index();
}

void ResourceProfile::tree_split_at(Time t) {
  TreePos p = tree_locate(t);
  if (block_at(p.pos).start[p.slot] == t) return;
  if (block_at(p.pos).count == kBlockCap) {
    tree_split_block(p.pos);
    p = tree_locate(t);
  }
  Block& b = block_at(p.pos);
  DYNP_ASSERT(b.count < kBlockCap);
  for (std::uint32_t s = b.count; s > p.slot + 1; --s) {
    b.start[s] = b.start[s - 1];
    b.free[s] = b.free[s - 1];
  }
  b.start[p.slot + 1] = t;
  b.free[p.slot + 1] = b.free[p.slot];  // same raw value: same block delta
  ++b.count;
  ++segments_;
  // A duplicated value leaves min/max (and the tree) untouched.
  mirror_fresh_ = false;
}

void ResourceProfile::tree_remove(TreePos p) {
  Block& b = block_at(p.pos);
  for (std::uint32_t s = p.slot; s + 1 < b.count; ++s) {
    b.start[s] = b.start[s + 1];
    b.free[s] = b.free[s + 1];
  }
  --b.count;
  --segments_;
  mirror_fresh_ = false;
  if (b.count == 0) {
    spare_.push_back(order_[p.pos]);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(p.pos));
    tree_rebuild_index();
    return;
  }
  if (p.slot == 0) head_starts_[p.pos] = b.start[0];
  recompute_minmax(b);
  tree_point_update(p.pos);
}

void ResourceProfile::tree_merge_at(Time t) {
  const TreePos p = tree_locate(t);
  DYNP_ASSERT(tree_start(p) == t);
  if (p.pos == 0 && p.slot == 0) return;  // no predecessor
  const TreePos prev =
      p.slot > 0 ? TreePos{p.pos, p.slot - 1}
                 : TreePos{p.pos - 1, block_at(p.pos - 1).count - 1};
  if (effective(block_at(prev.pos), prev.slot) ==
      effective(block_at(p.pos), p.slot)) {
    tree_remove(p);
  }
}

void ResourceProfile::edge_update(std::uint32_t pos, std::uint32_t begin,
                                  std::uint32_t end, std::int64_t delta) {
  if (begin >= end) return;
  Block& b = block_at(pos);
  flush_delta(b);
  for (std::uint32_t s = begin; s < end; ++s) {
    const std::int64_t updated = static_cast<std::int64_t>(b.free[s]) + delta;
    DYNP_ASSERT(updated >= 0 &&
                updated <= static_cast<std::int64_t>(capacity_));
    b.free[s] = static_cast<std::uint32_t>(updated);
  }
  recompute_minmax(b);
  tree_point_update(pos);
}

void ResourceProfile::tree_apply(Time start, Time end, std::int64_t delta) {
  if (end <= start) return;
  // Split end first: splitting at start could split the block holding both
  // boundaries, and the later re-locates want settled structure.
  tree_split_at(end);
  tree_split_at(start);
  const TreePos sp = tree_locate(start);
  const TreePos ep = tree_locate(end);
  DYNP_ASSERT(tree_start(sp) == start && tree_start(ep) == end);
  if (sp.pos == ep.pos) {
    edge_update(sp.pos, sp.slot, ep.slot, delta);
  } else {
    edge_update(sp.pos, sp.slot, block_at(sp.pos).count, delta);
    // Interior blocks take the delta lazily; their ancestors are rebuilt in
    // one O(blocks + log) interval pass instead of one root walk per block
    // (the root walks made wide deallocations — the per-finish phantom-tail
    // release over tens of thousands of segments — O(B log B)).
    for (std::uint32_t pos = sp.pos + 1; pos < ep.pos; ++pos) {
      Block& b = block_at(pos);
      const std::int64_t lo = static_cast<std::int64_t>(b.min_free) + delta;
      const std::int64_t hi = static_cast<std::int64_t>(b.max_free) + delta;
      DYNP_ASSERT(lo >= 0 && hi <= static_cast<std::int64_t>(capacity_));
      b.delta += delta;
      b.min_free = static_cast<std::uint32_t>(lo);
      b.max_free = static_cast<std::uint32_t>(hi);
      tree_min_[leaves_ + pos] = b.min_free;
      tree_max_[leaves_ + pos] = b.max_free;
    }
    tree_rebuild_interval(sp.pos, ep.pos + 1);
    edge_update(ep.pos, 0, ep.slot, delta);
  }
  // A constant delta keeps interior neighbours distinct (both sides moved by
  // the same amount), so only the two boundary pairs can merge. End first:
  // removing a later segment leaves the start boundary's address intact in
  // time, which is how it is re-located.
  tree_merge_at(end);
  tree_merge_at(start);
  mirror_fresh_ = false;
}

void ResourceProfile::tree_trim_before(Time t) {
  DYNP_EXPECTS(!order_.empty());
  if (t <= head_starts_.front()) return;
  const TreePos p = tree_locate(t);
  for (std::uint32_t pos = 0; pos < p.pos; ++pos) {
    segments_ -= block_at(pos).count;
    spare_.push_back(order_[pos]);
  }
  Block& b = block_at(p.pos);
  if (p.slot > 0) {
    for (std::uint32_t s = 0; s + p.slot < b.count; ++s) {
      b.start[s] = b.start[s + p.slot];
      b.free[s] = b.free[s + p.slot];
    }
    b.count -= p.slot;
    segments_ -= p.slot;
    recompute_minmax(b);
  }
  b.start[0] = t;
  order_.erase(order_.begin(),
               order_.begin() + static_cast<std::ptrdiff_t>(p.pos));
  tree_rebuild_index();
  mirror_fresh_ = false;
  // The unbounded tail keeps the whole machine free whatever was dropped.
  DYNP_ENSURES(block_at(static_cast<std::uint32_t>(order_.size() - 1))
                   .max_free == capacity_);
}

void ResourceProfile::tree_build_from(std::vector<Time>&& starts,
                                      std::vector<std::uint32_t>&& frees) {
  const std::size_t n = starts.size();
  DYNP_EXPECTS(n >= 1 && n == frees.size());
  // Half-filled blocks leave insertion headroom so the first splits after a
  // restore do not immediately rebuild the order index.
  constexpr std::uint32_t kFill = kBlockCap / 2;
  const std::size_t blocks = (n + kFill - 1) / kFill;
  pool_.clear();
  pool_.resize(blocks);
  spare_.clear();
  order_.resize(blocks);
  for (std::size_t p = 0; p < blocks; ++p) {
    Block& b = pool_[p];
    const std::size_t from = p * kFill;
    const std::size_t to = std::min(from + kFill, n);
    b.count = static_cast<std::uint32_t>(to - from);
    b.delta = 0;
    std::copy(starts.begin() + static_cast<std::ptrdiff_t>(from),
              starts.begin() + static_cast<std::ptrdiff_t>(to),
              b.start.begin());
    std::copy(frees.begin() + static_cast<std::ptrdiff_t>(from),
              frees.begin() + static_cast<std::ptrdiff_t>(to),
              b.free.begin());
    recompute_minmax(b);
    order_[p] = static_cast<std::uint32_t>(p);
  }
  segments_ = n;
  tree_rebuild_index();
  starts_ = std::move(starts);
  frees_ = std::move(frees);
  mirror_fresh_ = true;
}

void ResourceProfile::sync_mirror() const {
  if (mirror_fresh_) return;
  starts_.clear();
  frees_.clear();
  starts_.reserve(segments_);
  frees_.reserve(segments_);
  for (const std::uint32_t id : order_) {
    const Block& b = pool_[id];
    for (std::uint32_t s = 0; s < b.count; ++s) {
      starts_.push_back(b.start[s]);
      frees_.push_back(effective(b, s));
    }
  }
  mirror_fresh_ = true;
}

bool ResourceProfile::tree_invariants_ok() const noexcept {
  if (order_.empty() || head_starts_.size() != order_.size()) return false;
  std::size_t total = 0;
  bool have_prev = false;
  Time prev_start = 0;
  std::uint32_t prev_free = 0;
  std::uint32_t last_free = 0;
  for (std::size_t p = 0; p < order_.size(); ++p) {
    const Block& b = pool_[order_[p]];
    if (b.count == 0 || b.count > kBlockCap) return false;
    if (head_starts_[p] != b.start[0]) return false;
    std::uint32_t lo = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t hi = 0;
    for (std::uint32_t s = 0; s < b.count; ++s) {
      const std::uint32_t eff = effective(b, s);
      if (eff > capacity_) return false;
      if (have_prev && b.start[s] <= prev_start) return false;
      if (have_prev && eff == prev_free) return false;
      have_prev = true;
      prev_start = b.start[s];
      prev_free = eff;
      last_free = eff;
      lo = std::min(lo, eff);
      hi = std::max(hi, eff);
    }
    if (b.min_free != lo || b.max_free != hi) return false;
    if (leaves_ == 0 || p >= leaves_) return false;
    if (tree_min_[leaves_ + p] != lo || tree_max_[leaves_ + p] != hi) {
      return false;
    }
    total += b.count;
  }
  if (total != segments_) return false;
  return last_free == capacity_;
}

}  // namespace dynp::rms
