#pragma once

/// \file planner.hpp
/// The planner of the planning-based RMS: given the running jobs and the
/// waiting queue *in policy order*, it computes a full schedule — a planned
/// start time for every waiting job — by placing each job at its earliest
/// feasible start in the resource profile. Placing jobs in priority order at
/// their earliest feasible start is what realises *implicit backfilling*:
/// a later-priority job slides into any hole the earlier jobs left open.

#include <vector>

#include "rms/profile.hpp"
#include "workload/job.hpp"

namespace dynp::rms {

/// A job currently executing: it occupies `width` nodes until its estimated
/// end (the planner cannot know the actual finish in advance).
struct RunningJob {
  JobId id = 0;
  std::uint32_t width = 1;
  Time estimated_end = 0;
};

/// One planned (still waiting) job.
struct PlannedJob {
  JobId id = 0;
  Time start = 0;  ///< planned start time (>= planning instant)
};

/// A full schedule: planned start times for all waiting jobs, in the order
/// they were planned (= the policy's priority order).
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<PlannedJob> entries)
      : entries_(std::move(entries)) {}

  [[nodiscard]] const std::vector<PlannedJob>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Ids of jobs whose planned start equals \p now — these begin executing.
  [[nodiscard]] std::vector<JobId> starting_at(Time now) const;

 private:
  std::vector<PlannedJob> entries_;
};

/// Stateless planning routine (a class only to cache the profile buffer
/// between calls; `plan` is const-correct and reentrant per instance).
class Planner {
 public:
  /// Computes a full schedule.
  ///
  /// \param capacity     machine size in nodes
  /// \param now          planning instant; no job is planned earlier
  /// \param running      executing jobs (occupy nodes until estimated end)
  /// \param ordered_wait waiting jobs in policy priority order
  /// \param jobs         job table indexed by JobId (for width/estimate)
  [[nodiscard]] static Schedule plan(std::uint32_t capacity, Time now,
                                     const std::vector<RunningJob>& running,
                                     const std::vector<JobId>& ordered_wait,
                                     const std::vector<workload::Job>& jobs);

  /// Builds the profile of running-job reservations only (exposed for tests
  /// and for utilisation probes).
  [[nodiscard]] static ResourceProfile base_profile(
      std::uint32_t capacity, Time now, const std::vector<RunningJob>& running);
};

}  // namespace dynp::rms
