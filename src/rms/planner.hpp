#pragma once

/// \file planner.hpp
/// The planner of the planning-based RMS: given the running jobs and the
/// waiting queue *in policy order*, it computes a full schedule — a planned
/// start time for every waiting job — by placing each job at its earliest
/// feasible start in the resource profile. Placing jobs in priority order at
/// their earliest feasible start is what realises *implicit backfilling*:
/// a later-priority job slides into any hole the earlier jobs left open.

#include <vector>

#include "rms/profile.hpp"
#include "workload/job.hpp"

namespace dynp::rms {

/// A job currently executing: it occupies `width` nodes until its estimated
/// end (the planner cannot know the actual finish in advance).
struct RunningJob {
  JobId id = 0;
  std::uint32_t width = 1;
  Time estimated_end = 0;
};

/// One planned (still waiting) job.
struct PlannedJob {
  JobId id = 0;
  Time start = 0;  ///< planned start time (>= planning instant)
};

/// A full schedule: planned start times for all waiting jobs, in the order
/// they were planned (= the policy's priority order).
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<PlannedJob> entries)
      : entries_(std::move(entries)) {}

  [[nodiscard]] const std::vector<PlannedJob>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Ids of jobs whose planned start equals \p now — these begin executing.
  [[nodiscard]] std::vector<JobId> starting_at(Time now) const;

  /// Appends the ids of jobs whose planned start equals \p now to \p out
  /// (allocation-free variant of `starting_at` for hot-path callers).
  void starting_at_into(Time now, std::vector<JobId>& out) const;

  /// Drops all entries but keeps the allocated storage (scratch reuse).
  void clear() noexcept { entries_.clear(); }

  /// Keeps only the first \p n entries (no-op if there are fewer). Used by
  /// the incremental replanner to retain a still-valid schedule prefix.
  void truncate(std::size_t n) {
    if (n < entries_.size()) entries_.resize(n);
  }

  /// Removes every entry with start <= \p now — the jobs that just began
  /// executing — keeping the rest in planning order. Their allocations stay
  /// in the planning profile, where they are exactly the running-job
  /// reservations the next base profile would contain, which is what keeps
  /// the adopted schedule reusable across a start (see
  /// `Planner::replan_inserted_into`).
  void drop_started(Time now) {
    std::erase_if(entries_,
                  [now](const PlannedJob& p) { return p.start <= now; });
  }

  /// Appends one planned job (append order = planning = policy order).
  void push_back(PlannedJob planned) { entries_.push_back(planned); }

 private:
  std::vector<PlannedJob> entries_;
};

/// Cheap per-scratch planning counters, maintained unconditionally (a
/// handful of integer increments per planning *pass*, not per job — far
/// below measurement noise). The observability layer snapshots them per
/// scheduling event to attribute planner work to full vs incremental
/// replans; they never influence planning decisions.
struct PlanStats {
  std::uint64_t full_plans = 0;        ///< `plan_into` passes
  std::uint64_t incremental_plans = 0; ///< `replan_inserted_into` passes
  std::uint64_t jobs_placed = 0;       ///< feasibility query + allocation
  std::uint64_t jobs_replayed = 0;     ///< prefix placements reused verbatim
};

/// Reusable scratch state for `Planner::plan_into`: the planning profile
/// buffer plus the query-acceleration tables. Reusing one scratch across
/// calls (one per concurrent planning task) removes the per-candidate
/// profile/vector allocations from the self-tuning hot path, and the
/// acceleration tables let repeated `earliest_start` queries skip the
/// crowded profile prefix:
///
///  * jobs are grouped into (width, estimate) equivalence classes once per
///    job table; within one planning pass the profile only *fills*, so a
///    class's previous planned start is a sound lower bound for the next
///    query of the same class;
///  * per width, the first-fit time reported by `earliest_start` bounds
///    every later same-width query below, whatever its duration.
///
/// Both bounds are reset (by epoch stamping, O(1)) at the start of every
/// pass, so `plan_into` returns exactly what a scratch-free plan would.
class PlanScratch {
 public:
  PlanScratch() = default;

  /// The (width, estimate) equivalence classes of a job table.
  struct ClassTable {
    std::vector<std::uint32_t> job_class;  ///< JobId -> class index
    std::uint32_t class_count = 0;
  };

  /// Cumulative planning counters of this scratch (see `PlanStats`).
  [[nodiscard]] const PlanStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = PlanStats{}; }

  /// Drops the cached (width, estimate) job classes so the next planning
  /// pass rebuilds them. Required when a scratch is reused against a
  /// *different* job table of the same size: the staleness check in
  /// `prepare_scratch` compares sizes only, so without this call the old
  /// classes would silently misclassify the new jobs (the workspace-reuse
  /// path of `core::simulate` calls it between runs).
  void invalidate_classes() noexcept {
    classes_.job_class.clear();
    classes_.class_count = 0;
  }

  /// The profile this scratch retained from its last planning pass — the
  /// machine state *after* every planned allocation of that pass. This is
  /// exactly the state `replan_inserted_into`'s tail-insertion fast path
  /// extends, so a checkpoint must capture it for every candidate whose
  /// reuse flag is set (see `Planner::adopt_retained` for the restore side).
  [[nodiscard]] const ResourceProfile& retained_profile() const noexcept {
    return profile_;
  }

 private:
  friend class Planner;

  ResourceProfile profile_{1};
  ClassTable classes_;
  std::uint32_t epoch_ = 0;               ///< current planning pass
  std::vector<Time> class_floor_;         ///< class -> last planned start
  std::vector<std::uint32_t> class_epoch_;
  std::vector<Time> width_floor_;         ///< width -> first-fit time
  std::vector<std::uint32_t> width_epoch_;
  // Per-width dominance pair: the (duration, start) of the last planned job
  // of that width whose duration was >= every predecessor's (both
  // coordinates are then monotone). A later same-width query with duration
  // >= the stored one can never start earlier — its window would have fit
  // the stored job already, on a then-emptier profile. Under SJF order
  // (ascending durations) this chains through the whole pass.
  std::vector<Time> width_dom_dur_;
  std::vector<Time> width_dom_start_;
  std::vector<std::uint32_t> width_dom_epoch_;

  PlanStats stats_;
};

/// Stateless planning routine (a class only to cache the profile buffer
/// between calls; `plan` is const-correct and reentrant per instance).
class Planner {
 public:
  /// Computes a full schedule.
  ///
  /// \param capacity     machine size in nodes
  /// \param now          planning instant; no job is planned earlier
  /// \param running      executing jobs (occupy nodes until estimated end)
  /// \param ordered_wait waiting jobs in policy priority order
  /// \param jobs         job table indexed by JobId (for width/estimate)
  [[nodiscard]] static Schedule plan(std::uint32_t capacity, Time now,
                                     const std::vector<RunningJob>& running,
                                     const std::vector<JobId>& ordered_wait,
                                     const workload::JobTable& jobs);

  /// Allocation-free planning entry point for the self-tuning hot path:
  /// plans `ordered_wait` on top of a prebuilt running-jobs \p base profile
  /// (built once per event and shared across all per-policy candidates
  /// instead of being rebuilt inside each call), reusing \p scratch's
  /// buffers and acceleration tables, and writing the schedule into \p out
  /// (cleared first, storage reused). Produces exactly the schedule `plan`
  /// would. A scratch must not be shared between concurrent calls, and its
  /// cached job classes assume the same job table across calls (they are
  /// rebuilt when the table size changes; pass a fresh scratch for a
  /// different table of equal size).
  static void plan_into(const ResourceProfile& base, Time now,
                        const std::vector<JobId>& ordered_wait,
                        const workload::JobTable& jobs,
                        PlanScratch& scratch, Schedule& out);

  /// Builds the profile of running-job reservations only (exposed for tests
  /// and for utilisation probes).
  [[nodiscard]] static ResourceProfile base_profile(
      std::uint32_t capacity, Time now, const std::vector<RunningJob>& running);

  /// As `base_profile`, but reusing \p out's storage (hot-path variant).
  static void base_profile_into(std::uint32_t capacity, Time now,
                                const std::vector<RunningJob>& running,
                                ResourceProfile& out);

  /// Incremental replan for the dominant event shape of the replan-semantics
  /// scheduler: exactly one job was inserted into the policy order at
  /// position \p pos and *nothing else changed* since the previous
  /// `plan_into`/`replan_inserted_into` call on this (\p scratch, \p out)
  /// pair. Produces exactly what a fresh
  /// `plan_into(base, now, ordered_wait, jobs, scratch, out)` would, but
  /// reuses the previous result: the order prefix before \p pos is
  /// unchanged, and a fresh pass provably reproduces its planned starts
  /// verbatim (the planning recursion only depends on the profile at or
  /// after `now`, which the prefix allocations determine identically), so
  /// only the tail from \p pos on needs feasibility queries. When the job
  /// landed at the tail (always under FCFS, whose order is insertion order),
  /// the retained scratch profile already *is* the planning state before the
  /// new job and the whole replan collapses to one query.
  ///
  /// Caller-checked preconditions (the scheduler falls back to `plan_into`
  /// when any fails):
  ///  * `out` holds this scratch's previous schedule, whose order was
  ///    `ordered_wait` minus the job at \p pos;
  ///  * the running set, job table and machine are unchanged since then, and
  ///    `now` is at or after the previous planning instant;
  ///  * no previously planned start lies before \p now (none started, none
  ///    slid into the past).
  static void replan_inserted_into(const ResourceProfile& base, Time now,
                                   const std::vector<JobId>& ordered_wait,
                                   std::size_t pos,
                                   const workload::JobTable& jobs,
                                   PlanScratch& scratch, Schedule& out);

  /// Re-primes \p scratch after a checkpoint restore so that a following
  /// `replan_inserted_into` behaves exactly as it would have without the
  /// interruption: installs \p profile as the retained pass-end profile
  /// (the serialized value of `PlanScratch::retained_profile()`) and
  /// rebuilds the (width, estimate) class table from \p jobs — the same
  /// deterministic function of the job table `prepare_scratch` computes, so
  /// its precondition `job_class.size() == jobs.size()` holds again. The
  /// acceleration floors stay unstamped (epoch 0): the tail-insertion fast
  /// path never reads them, and every other path runs `prepare_scratch`
  /// first, which re-stamps before use.
  static void adopt_retained(PlanScratch& scratch, ResourceProfile profile,
                             const workload::JobTable& jobs);

  /// Outcome of `repair_capacity_drop`.
  struct RepairResult {
    std::size_t evicted = 0;  ///< guarantees that had to be re-placed
  };

  /// Schedule repair for the guarantee semantics when capacity drops: a node
  /// outage needs \p width nodes over [\p now, \p outage_end) in the live
  /// \p profile (which already holds the running reservations and every
  /// waiting job's guarantee). If the outage does not fit as-is, waiting
  /// guarantees overlapping the outage window are evicted oldest-start-first
  /// (ties by id) — only until the window frees up, not wholesale — the
  /// outage is reserved, and the evicted jobs are re-placed incrementally in
  /// policy order (\p order), each at its earliest feasible start, rather
  /// than by a from-scratch replan. Reservations of untouched jobs never
  /// move. \p reserved (JobId -> guaranteed start) is updated in place.
  static RepairResult repair_capacity_drop(
      ResourceProfile& profile, std::vector<Time>& reserved,
      const std::vector<JobId>& order,
      const workload::JobTable& jobs, Time now, Time outage_end,
      std::uint32_t width);

 private:
  /// Rebuilds `scratch`'s acceleration tables if the job table or machine
  /// changed, then opens a new floor epoch.
  static void prepare_scratch(PlanScratch& scratch,
                              const ResourceProfile& base,
                              const workload::JobTable& jobs);

  /// Plans `ordered_wait[from..]` onto `scratch.profile_`, appending to
  /// \p out (the shared tail loop of `plan_into` and
  /// `replan_inserted_into`).
  static void plan_range(PlanScratch& scratch, Time now,
                         const std::vector<JobId>& ordered_wait,
                         std::size_t from,
                         const workload::JobTable& jobs,
                         Schedule& out);
};

}  // namespace dynp::rms
