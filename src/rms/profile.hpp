#pragma once

/// \file profile.hpp
/// The resource profile of a planning-based RMS: a piecewise-constant
/// timeline of free node counts, supporting "earliest feasible start" queries
/// and interval allocation. This is the data structure that makes planning —
/// and with it implicit backfilling — possible (paper §3; Hovestadt et al.,
/// "Queuing vs. Planning", JSSPP 2003).
///
/// Two interchangeable representations sit behind one API (selected per
/// instance at construction, process-wide default via `set_default_impl`):
///
/// - `ProfileImpl::kFlat` — two parallel sorted vectors (segment start
///   times, free node counts); each segment extends to the next one's start,
///   the last to infinity. The "earliest feasible start" scan is a
///   branchless (and on x86, SIMD) sweep over the dense free array. Linear
///   in segment count, unbeatable for small profiles, and the reference
///   oracle for the tree.
///
/// - `ProfileImpl::kTree` — the million-job scale path: segments live in
///   fixed-capacity blocks (timeline-ordered via an indirection vector), and
///   an implicit segment tree over the block sequence carries subtree-min
///   and subtree-max free counts. `earliest_start` descends the max-tree to
///   the first feasible window and the min-tree to the window's end, making
///   queries O(log n · block); `allocate`/`place`/`deallocate` are range
///   updates that touch two edge blocks elementwise and interior blocks via
///   an O(1) lazy per-block delta. Segment inserts shift at most one block
///   instead of the whole timeline.
///
/// Because all allocations are finite, the final segment always has the full
/// machine free, so every query terminates. Both representations produce
/// byte-identical segment sequences for identical operation sequences
/// (enforced by the differential fuzz suite in tests/rms), so checkpoint
/// snapshots, the audit sweep-line and `segment_starts`/`segment_frees`
/// consumers never observe which one is active.

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "workload/job.hpp"

namespace dynp::rms {

/// Representation choice for `ResourceProfile` (see the file comment).
enum class ProfileImpl : std::uint8_t { kFlat = 0, kTree = 1 };

/// Piecewise-constant free-capacity timeline.
class ResourceProfile {
 public:
  /// A profile for a machine with \p capacity nodes, entirely free from
  /// \p origin onwards, using the process-wide default representation.
  explicit ResourceProfile(std::uint32_t capacity, Time origin = 0);

  /// As above with an explicit representation (tests and the differential
  /// fuzz oracle pin `kFlat` regardless of the process default).
  ResourceProfile(std::uint32_t capacity, Time origin, ProfileImpl impl);

  /// Copies adopt the source's representation; tree copies compact the
  /// block pool into timeline order (profiles are copied per candidate per
  /// event, so the copy is also the defragmentation point).
  ResourceProfile(const ResourceProfile& other);
  ResourceProfile& operator=(const ResourceProfile& other);
  ResourceProfile(ResourceProfile&&) = default;
  ResourceProfile& operator=(ResourceProfile&&) = default;
  ~ResourceProfile() = default;

  /// Process-wide default representation for new profiles. Set once at
  /// startup (before any planning thread spawns — the flag is unsynchronised
  /// by design, like the contract-handler installation).
  static void set_default_impl(ProfileImpl impl) noexcept;
  [[nodiscard]] static ProfileImpl default_impl() noexcept;

  /// This instance's representation (fixed at construction/assignment).
  [[nodiscard]] ProfileImpl impl() const noexcept { return impl_; }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Free nodes at time \p t (t must not precede the profile origin).
  [[nodiscard]] std::uint32_t free_at(Time t) const;

  /// Earliest time >= \p earliest at which \p width nodes are continuously
  /// free for \p duration seconds. Requires width <= capacity.
  [[nodiscard]] Time earliest_start(Time earliest, std::uint32_t width,
                                    Time duration) const;

  /// As `earliest_start`, additionally reporting in \p first_fit the start
  /// of the first segment at or after \p earliest with at least \p width
  /// nodes free — i.e. no width-wide job can start before \p first_fit
  /// *whatever its duration*. Hot-path planners cache this to skip the
  /// crowded profile prefix on later queries (see `Planner::plan_into`).
  [[nodiscard]] Time earliest_start(Time earliest, std::uint32_t width,
                                    Time duration, Time& first_fit) const;

  /// Reserves \p width nodes during [start, start+duration). The interval
  /// must fit (callers obtain `start` from `earliest_start`).
  void allocate(Time start, Time duration, std::uint32_t width);

  /// Fused `earliest_start` + `allocate`: finds the earliest feasible start,
  /// reserves it, and returns it (also reporting \p first_fit as the 4-arg
  /// `earliest_start` does). Exactly equivalent to the two separate calls,
  /// but the allocation reuses the feasible run the query just walked
  /// instead of re-locating both interval boundaries — this is the planner's
  /// innermost operation (one per waiting job per candidate per event).
  Time place(Time earliest, std::uint32_t width, Time duration,
             Time& first_fit);

  /// Releases a previous reservation (exact inverse of `allocate`).
  void deallocate(Time start, Time duration, std::uint32_t width);

  /// Reinitialises to a fully free profile (as after construction), reusing
  /// the existing segment storage. Used by incremental planners that rebuild
  /// a base profile every event without reallocating.
  void reset(std::uint32_t capacity, Time origin = 0);

  /// Forgets all structure before time \p t (the new origin). Used by
  /// long-running incremental schedulers to keep the profile at
  /// O(active reservations): segments wholly in the past are never queried
  /// again (all queries and allocations are at or after "now").
  void trim_before(Time t);

  /// Number of segments (profile complexity; O(active reservations)).
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return impl_ == ProfileImpl::kFlat ? starts_.size() : segments_;
  }

  /// Segment start times, sorted ascending (parallel to `segment_frees`).
  /// Cold path: under `kTree` this materialises a flat mirror on demand
  /// (checkpoint capture and tests; planners never call it).
  [[nodiscard]] const std::vector<Time>& segment_starts() const;

  /// Free node count per segment (parallel to `segment_starts`).
  [[nodiscard]] const std::vector<std::uint32_t>& segment_frees() const;

  /// Checks the representation invariants (sorted, merged, bounded free
  /// counts, full capacity in the unbounded tail; under `kTree` also the
  /// block/tree aggregates). Used by tests and debug assertions.
  [[nodiscard]] bool invariants_ok() const noexcept;

  /// Reinstates a profile from snapshotted segments (as reported by
  /// `segment_starts`/`segment_frees`). The segments must satisfy the
  /// representation invariants — checked, since they may come from a file.
  /// The instance keeps its representation: a tree profile rebuilds its
  /// blocks from the flat snapshot, so checkpoints stay format-stable.
  void restore_segments(std::uint32_t capacity, std::vector<Time> starts,
                        std::vector<std::uint32_t> frees);

 private:
  // ----- flat representation ---------------------------------------------

  /// Index of the segment containing time \p t.
  [[nodiscard]] std::size_t segment_index(Time t) const;

  /// Ensures a segment boundary exists exactly at \p t; returns its index.
  std::size_t split_at(Time t);

  /// Adds \p delta to the free count over [start, end) and re-merges.
  void apply(Time start, Time end, std::int64_t delta);

  /// Allocation half of `place`: reserves [start, start+duration) given the
  /// feasible run [i, j] the query walked (duration > 0).
  void allocate_run(Time start, Time duration, std::uint32_t width,
                    std::size_t i, std::size_t j);

  /// Merges equal neighbours over the touched range [first-1, last].
  void merge_range(std::size_t first, std::size_t last);

  [[nodiscard]] bool flat_invariants_ok() const noexcept;

  // ----- tree representation ---------------------------------------------

  /// Segments per block. 64 keeps a whole block's frees in two cache lines
  /// and makes in-block scans a short contiguous loop; profiles under 64
  /// segments (the common small case) stay in a single block with no tree
  /// overhead beyond one indirection.
  static constexpr std::uint32_t kBlockCap = 64;

  /// One run of consecutive segments. `free` stores raw counts; the
  /// effective count of slot s is `free[s] + delta` (the lazy range-update
  /// tag). `min_free`/`max_free` are maintained as *effective* values so
  /// tree descents never touch the tag.
  struct Block {
    std::array<Time, kBlockCap> start;
    std::array<std::uint32_t, kBlockCap> free;
    std::uint32_t count = 0;
    std::int64_t delta = 0;
    std::uint32_t min_free = 0;
    std::uint32_t max_free = 0;
  };

  /// A segment's address: block position in timeline order + slot within.
  struct TreePos {
    std::uint32_t pos;
    std::uint32_t slot;
  };
  static constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

  [[nodiscard]] Block& block_at(std::uint32_t pos) {
    return pool_[order_[pos]];
  }
  [[nodiscard]] const Block& block_at(std::uint32_t pos) const {
    return pool_[order_[pos]];
  }
  [[nodiscard]] static std::uint32_t effective(const Block& b,
                                               std::uint32_t slot) {
    return static_cast<std::uint32_t>(
        static_cast<std::int64_t>(b.free[slot]) + b.delta);
  }
  [[nodiscard]] Time tree_start(TreePos p) const {
    return block_at(p.pos).start[p.slot];
  }
  [[nodiscard]] TreePos tree_next(TreePos p) const;

  void tree_init(std::uint32_t capacity, Time origin);
  [[nodiscard]] TreePos tree_locate(Time t) const;
  [[nodiscard]] Time tree_earliest_start(Time earliest, std::uint32_t width,
                                         Time duration,
                                         Time& first_fit) const;
  void tree_apply(Time start, Time end, std::int64_t delta);
  void tree_split_at(Time t);
  void tree_split_block(std::uint32_t pos);
  void tree_merge_at(Time t);
  void tree_remove(TreePos p);
  void tree_trim_before(Time t);
  void tree_build_from(std::vector<Time>&& starts,
                       std::vector<std::uint32_t>&& frees);
  [[nodiscard]] bool tree_invariants_ok() const noexcept;

  /// First segment at/after \p p with effective free >= width (kNoPos pos
  /// if none): in-block scan, then a max-tree descent over later blocks.
  [[nodiscard]] TreePos tree_fit_from(TreePos p, std::uint32_t width) const;
  /// First segment at/after \p p with effective free < width.
  [[nodiscard]] TreePos tree_below_from(TreePos p, std::uint32_t width) const;

  /// First block position >= from with max_free >= width (kNoPos if none).
  [[nodiscard]] std::uint32_t tree_first_ge(std::uint32_t from,
                                            std::uint32_t width) const;
  /// First block position >= from with min_free < width (kNoPos if none).
  [[nodiscard]] std::uint32_t tree_first_lt(std::uint32_t from,
                                            std::uint32_t width) const;

  static void recompute_minmax(Block& b);
  void tree_point_update(std::uint32_t pos);
  void tree_rebuild_index();
  /// Recomputes the internal min/max nodes above leaf interval [lo, hi) in
  /// one bottom-up pass: O(hi - lo + log) total, vs one O(log) root walk
  /// per leaf.
  void tree_rebuild_interval(std::size_t lo, std::size_t hi);
  void edge_update(std::uint32_t pos, std::uint32_t begin, std::uint32_t end,
                   std::int64_t delta);
  static void flush_delta(Block& b);
  std::uint32_t alloc_block();

  /// Rebuilds the flat mirror (`starts_`/`frees_`) from the blocks.
  void sync_mirror() const;

  void copy_from(const ResourceProfile& other);

  // ----- state -----------------------------------------------------------

  std::uint32_t capacity_;
  ProfileImpl impl_;

  /// Flat storage under `kFlat`; the lazily materialised mirror under
  /// `kTree` (mutable: rebuilding it on access is not an observable
  /// mutation).
  mutable std::vector<Time> starts_;          ///< segment start times (sorted)
  mutable std::vector<std::uint32_t> frees_;  ///< free nodes per segment
  mutable bool mirror_fresh_ = true;          ///< kTree: mirror matches blocks

  /// Last segment index a query or edit touched — a pure search hint
  /// (validated before use, so staleness never changes results). Queries
  /// and the allocation that typically follows them land in the same
  /// region, which turns most segment lookups into O(1). A consequence:
  /// concurrent queries on one instance are a data race; give each
  /// concurrent planning task its own profile (planners already do).
  mutable std::size_t cursor_ = 0;

  // Tree storage (empty under kFlat).
  std::vector<Block> pool_;             ///< block storage (ids are indices)
  std::vector<std::uint32_t> order_;    ///< block ids in timeline order
  std::vector<std::uint32_t> spare_;    ///< free-listed block ids
  std::vector<Time> head_starts_;       ///< first start per order position
  std::vector<std::uint32_t> tree_min_; ///< implicit seg-tree over blocks
  std::vector<std::uint32_t> tree_max_; ///< implicit seg-tree over blocks
  std::size_t leaves_ = 0;              ///< bit_ceil(order_.size())
  std::size_t segments_ = 1;            ///< total live segments
};

}  // namespace dynp::rms
