#pragma once

/// \file profile.hpp
/// The resource profile of a planning-based RMS: a piecewise-constant
/// timeline of free node counts, supporting "earliest feasible start" queries
/// and interval allocation. This is the data structure that makes planning —
/// and with it implicit backfilling — possible (paper §3; Hovestadt et al.,
/// "Queuing vs. Planning", JSSPP 2003).
///
/// Representation: two parallel sorted vectors (segment start times, free
/// node counts); each segment extends to the next one's start, the last to
/// infinity. Because all allocations are finite, the final segment always
/// has the full machine free, so every query terminates. The
/// structure-of-arrays split exists for the planner's hot path: the
/// "earliest feasible start" scan spends most of its time skipping segments
/// with too few free nodes, which over a dense `free` array is a branchless
/// (and on x86, SIMD) sweep instead of a strided pointer chase.

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "workload/job.hpp"

namespace dynp::rms {

/// Piecewise-constant free-capacity timeline.
class ResourceProfile {
 public:
  /// A profile for a machine with \p capacity nodes, entirely free from
  /// \p origin onwards.
  explicit ResourceProfile(std::uint32_t capacity, Time origin = 0);

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Free nodes at time \p t (t must not precede the profile origin).
  [[nodiscard]] std::uint32_t free_at(Time t) const;

  /// Earliest time >= \p earliest at which \p width nodes are continuously
  /// free for \p duration seconds. Requires width <= capacity.
  [[nodiscard]] Time earliest_start(Time earliest, std::uint32_t width,
                                    Time duration) const;

  /// As `earliest_start`, additionally reporting in \p first_fit the start
  /// of the first segment at or after \p earliest with at least \p width
  /// nodes free — i.e. no width-wide job can start before \p first_fit
  /// *whatever its duration*. Hot-path planners cache this to skip the
  /// crowded profile prefix on later queries (see `Planner::plan_into`).
  [[nodiscard]] Time earliest_start(Time earliest, std::uint32_t width,
                                    Time duration, Time& first_fit) const;

  /// Reserves \p width nodes during [start, start+duration). The interval
  /// must fit (callers obtain `start` from `earliest_start`).
  void allocate(Time start, Time duration, std::uint32_t width);

  /// Fused `earliest_start` + `allocate`: finds the earliest feasible start,
  /// reserves it, and returns it (also reporting \p first_fit as the 4-arg
  /// `earliest_start` does). Exactly equivalent to the two separate calls,
  /// but the allocation reuses the feasible run the query just walked
  /// instead of re-locating both interval boundaries — this is the planner's
  /// innermost operation (one per waiting job per candidate per event).
  Time place(Time earliest, std::uint32_t width, Time duration,
             Time& first_fit);

  /// Releases a previous reservation (exact inverse of `allocate`).
  void deallocate(Time start, Time duration, std::uint32_t width);

  /// Reinitialises to a fully free profile (as after construction), reusing
  /// the existing segment storage. Used by incremental planners that rebuild
  /// a base profile every event without reallocating.
  void reset(std::uint32_t capacity, Time origin = 0);

  /// Forgets all structure before time \p t (the new origin). Used by
  /// long-running incremental schedulers to keep the profile at
  /// O(active reservations): segments wholly in the past are never queried
  /// again (all queries and allocations are at or after "now").
  void trim_before(Time t);

  /// Number of segments (profile complexity; O(active reservations)).
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return starts_.size();
  }

  /// Segment start times, sorted ascending (parallel to `segment_frees`).
  [[nodiscard]] const std::vector<Time>& segment_starts() const noexcept {
    return starts_;
  }

  /// Free node count per segment (parallel to `segment_starts`).
  [[nodiscard]] const std::vector<std::uint32_t>& segment_frees()
      const noexcept {
    return frees_;
  }

  /// Checks the representation invariants (sorted, merged, bounded free
  /// counts, full capacity in the unbounded tail). Used by tests and debug
  /// assertions.
  [[nodiscard]] bool invariants_ok() const noexcept;

  /// Reinstates a profile from snapshotted segments (as reported by
  /// `segment_starts`/`segment_frees`). The segments must satisfy the
  /// representation invariants — checked, since they may come from a file.
  void restore_segments(std::uint32_t capacity, std::vector<Time> starts,
                        std::vector<std::uint32_t> frees) {
    capacity_ = capacity;
    starts_ = std::move(starts);
    frees_ = std::move(frees);
    cursor_ = 0;
    DYNP_EXPECTS(invariants_ok());
  }

 private:
  /// Index of the segment containing time \p t.
  [[nodiscard]] std::size_t segment_index(Time t) const;

  /// Ensures a segment boundary exists exactly at \p t; returns its index.
  std::size_t split_at(Time t);

  /// Adds \p delta to the free count over [start, end) and re-merges.
  void apply(Time start, Time end, std::int64_t delta);

  /// Allocation half of `place`: reserves [start, start+duration) given the
  /// feasible run [i, j] the query walked (duration > 0).
  void allocate_run(Time start, Time duration, std::uint32_t width,
                    std::size_t i, std::size_t j);

  /// Merges equal neighbours over the touched range [first-1, last].
  void merge_range(std::size_t first, std::size_t last);

  std::uint32_t capacity_;
  std::vector<Time> starts_;          ///< segment start times (sorted)
  std::vector<std::uint32_t> frees_;  ///< free nodes per segment

  /// Last segment index a query or edit touched — a pure search hint
  /// (validated before use, so staleness never changes results). Queries
  /// and the allocation that typically follows them land in the same
  /// region, which turns most segment lookups into O(1). A consequence:
  /// concurrent queries on one instance are a data race; give each
  /// concurrent planning task its own profile (planners already do).
  mutable std::size_t cursor_ = 0;
};

}  // namespace dynp::rms
