#pragma once

/// \file profile.hpp
/// The resource profile of a planning-based RMS: a piecewise-constant
/// timeline of free node counts, supporting "earliest feasible start" queries
/// and interval allocation. This is the data structure that makes planning —
/// and with it implicit backfilling — possible (paper §3; Hovestadt et al.,
/// "Queuing vs. Planning", JSSPP 2003).
///
/// Representation: a sorted vector of segments (start time, free nodes); each
/// segment extends to the next one's start, the last to infinity. Because
/// all allocations are finite, the final segment always has the full machine
/// free, so every query terminates.

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "workload/job.hpp"

namespace dynp::rms {

/// Piecewise-constant free-capacity timeline.
class ResourceProfile {
 public:
  /// One maximal constant-capacity interval. `start` is inclusive; the
  /// segment ends where the next begins (the last is unbounded).
  struct Segment {
    Time start;
    std::uint32_t free;
  };

  /// A profile for a machine with \p capacity nodes, entirely free from
  /// \p origin onwards.
  explicit ResourceProfile(std::uint32_t capacity, Time origin = 0);

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Free nodes at time \p t (t must not precede the profile origin).
  [[nodiscard]] std::uint32_t free_at(Time t) const;

  /// Earliest time >= \p earliest at which \p width nodes are continuously
  /// free for \p duration seconds. Requires width <= capacity.
  [[nodiscard]] Time earliest_start(Time earliest, std::uint32_t width,
                                    Time duration) const;

  /// Reserves \p width nodes during [start, start+duration). The interval
  /// must fit (callers obtain `start` from `earliest_start`).
  void allocate(Time start, Time duration, std::uint32_t width);

  /// Releases a previous reservation (exact inverse of `allocate`).
  void deallocate(Time start, Time duration, std::uint32_t width);

  /// Forgets all structure before time \p t (the new origin). Used by
  /// long-running incremental schedulers to keep the profile at
  /// O(active reservations): segments wholly in the past are never queried
  /// again (all queries and allocations are at or after "now").
  void trim_before(Time t);

  /// Number of segments (profile complexity; O(active reservations)).
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size();
  }

  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }

  /// Checks the representation invariants (sorted, merged, bounded free
  /// counts, full capacity in the unbounded tail). Used by tests and debug
  /// assertions.
  [[nodiscard]] bool invariants_ok() const noexcept;

 private:
  /// Index of the segment containing time \p t.
  [[nodiscard]] std::size_t segment_index(Time t) const;

  /// Ensures a segment boundary exists exactly at \p t; returns its index.
  std::size_t split_at(Time t);

  /// Adds \p delta to the free count over [start, end) and re-merges.
  void apply(Time start, Time end, std::int64_t delta);

  std::uint32_t capacity_;
  std::vector<Segment> segments_;
};

}  // namespace dynp::rms
