#include "rms/planner.hpp"

namespace dynp::rms {

std::vector<JobId> Schedule::starting_at(Time now) const {
  std::vector<JobId> ids;
  for (const PlannedJob& p : entries_) {
    if (p.start <= now) ids.push_back(p.id);
  }
  return ids;
}

ResourceProfile Planner::base_profile(std::uint32_t capacity, Time now,
                                      const std::vector<RunningJob>& running) {
  ResourceProfile profile(capacity, now);
  for (const RunningJob& r : running) {
    // A running job keeps its nodes until its estimated end; if the estimate
    // has already elapsed (job running into its limit at exactly `now`), it
    // no longer reserves future capacity.
    if (r.estimated_end > now) {
      profile.allocate(now, r.estimated_end - now, r.width);
    }
  }
  return profile;
}

Schedule Planner::plan(std::uint32_t capacity, Time now,
                       const std::vector<RunningJob>& running,
                       const std::vector<JobId>& ordered_wait,
                       const std::vector<workload::Job>& jobs) {
  ResourceProfile profile = base_profile(capacity, now, running);
  std::vector<PlannedJob> planned;
  planned.reserve(ordered_wait.size());
  for (const JobId id : ordered_wait) {
    DYNP_EXPECTS(id < jobs.size());
    const workload::Job& job = jobs[id];
    const Time start =
        profile.earliest_start(now, job.width, job.estimated_runtime);
    profile.allocate(start, job.estimated_runtime, job.width);
    planned.push_back(PlannedJob{id, start});
  }
  return Schedule{std::move(planned)};
}

}  // namespace dynp::rms
