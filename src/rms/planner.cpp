#include "rms/planner.hpp"

#include <algorithm>
#include <numeric>

namespace dynp::rms {

std::vector<JobId> Schedule::starting_at(Time now) const {
  std::vector<JobId> ids;
  starting_at_into(now, ids);
  return ids;
}

void Schedule::starting_at_into(Time now, std::vector<JobId>& out) const {
  for (const PlannedJob& p : entries_) {
    if (p.start <= now) out.push_back(p.id);
  }
}

ResourceProfile Planner::base_profile(std::uint32_t capacity, Time now,
                                      const std::vector<RunningJob>& running) {
  ResourceProfile profile(capacity, now);
  base_profile_into(capacity, now, running, profile);
  return profile;
}

void Planner::base_profile_into(std::uint32_t capacity, Time now,
                                const std::vector<RunningJob>& running,
                                ResourceProfile& out) {
  DYNP_EXPECTS(capacity >= 1);
  out.reset(capacity, now);
  for (const RunningJob& r : running) {
    // A running job keeps its nodes until its estimated end; if the estimate
    // has already elapsed (job running into its limit at exactly `now`), it
    // no longer reserves future capacity.
    if (r.estimated_end > now) {
      out.allocate(now, r.estimated_end - now, r.width);
    }
  }
}

Schedule Planner::plan(std::uint32_t capacity, Time now,
                       const std::vector<RunningJob>& running,
                       const std::vector<JobId>& ordered_wait,
                       const workload::JobTable& jobs) {
  ResourceProfile base = base_profile(capacity, now, running);
  PlanScratch scratch;
  Schedule schedule;
  plan_into(base, now, ordered_wait, jobs, scratch, schedule);
  return schedule;
}

namespace {

/// Groups jobs by identical (width, estimated run time): queries of one
/// class are interchangeable for the planner, so within a pass a class's
/// previous result lower-bounds its next one.
void build_job_classes(PlanScratch::ClassTable& table,
                       const workload::JobTable& jobs) {
  table.job_class.resize(jobs.size());
  const std::vector<std::uint32_t>& widths = jobs.widths();
  const std::vector<Time>& estimates = jobs.estimates();
  std::vector<std::uint32_t> by_shape(jobs.size());
  std::iota(by_shape.begin(), by_shape.end(), 0);
  std::sort(by_shape.begin(), by_shape.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (widths[a] != widths[b]) return widths[a] < widths[b];
              return estimates[a] < estimates[b];
            });
  std::uint32_t next_class = 0;
  for (std::size_t i = 0; i < by_shape.size(); ++i) {
    if (i > 0) {
      const std::uint32_t prev = by_shape[i - 1];
      const std::uint32_t cur = by_shape[i];
      if (widths[prev] != widths[cur] || estimates[prev] != estimates[cur]) {
        ++next_class;
      }
    }
    table.job_class[by_shape[i]] = next_class;
  }
  table.class_count = by_shape.empty() ? 0 : next_class + 1;
}

}  // namespace

void Planner::prepare_scratch(PlanScratch& scratch,
                              const ResourceProfile& base,
                              const workload::JobTable& jobs) {
  // (Re)build the acceleration tables when the job table or machine changed.
  PlanScratch::ClassTable& classes = scratch.classes_;
  if (classes.job_class.size() != jobs.size()) {
    build_job_classes(classes, jobs);
    scratch.class_floor_.assign(classes.class_count, 0);
    scratch.class_epoch_.assign(classes.class_count, 0);
    scratch.epoch_ = 0;
  }
  if (scratch.width_floor_.size() !=
      static_cast<std::size_t>(base.capacity()) + 1) {
    scratch.width_floor_.assign(base.capacity() + 1, 0);
    scratch.width_epoch_.assign(base.capacity() + 1, 0);
    scratch.width_dom_dur_.assign(base.capacity() + 1, 0);
    scratch.width_dom_start_.assign(base.capacity() + 1, 0);
    scratch.width_dom_epoch_.assign(base.capacity() + 1, 0);
    scratch.epoch_ = 0;
  }
  // New pass: invalidate all floors by epoch bump (O(1)); on the rare
  // wraparound, clear the stamps so no stale floor can match.
  if (++scratch.epoch_ == 0) {
    std::fill(scratch.class_epoch_.begin(), scratch.class_epoch_.end(), 0);
    std::fill(scratch.width_epoch_.begin(), scratch.width_epoch_.end(), 0);
    std::fill(scratch.width_dom_epoch_.begin(),
              scratch.width_dom_epoch_.end(), 0);
    scratch.epoch_ = 1;
  }
}

void Planner::adopt_retained(PlanScratch& scratch, ResourceProfile profile,
                             const workload::JobTable& jobs) {
  DYNP_EXPECTS(profile.capacity() >= 1);
  build_job_classes(scratch.classes_, jobs);
  scratch.class_floor_.assign(scratch.classes_.class_count, 0);
  scratch.class_epoch_.assign(scratch.classes_.class_count, 0);
  scratch.epoch_ = 0;
  scratch.profile_ = std::move(profile);
}

void Planner::plan_into(const ResourceProfile& base, Time now,
                        const std::vector<JobId>& ordered_wait,
                        const workload::JobTable& jobs,
                        PlanScratch& scratch, Schedule& out) {
  DYNP_EXPECTS(ordered_wait.size() <= jobs.size());
  ++scratch.stats_.full_plans;
  scratch.profile_ = base;
  out.clear();
  prepare_scratch(scratch, base, jobs);
  plan_range(scratch, now, ordered_wait, 0, jobs, out);
}

void Planner::plan_range(PlanScratch& scratch, Time now,
                         const std::vector<JobId>& ordered_wait,
                         std::size_t from,
                         const workload::JobTable& jobs,
                         Schedule& out) {
  ResourceProfile& profile = scratch.profile_;
  const PlanScratch::ClassTable& classes = scratch.classes_;
  const std::uint32_t epoch = scratch.epoch_;
  scratch.stats_.jobs_placed += ordered_wait.size() - from;

  for (std::size_t w = from; w < ordered_wait.size(); ++w) {
    const JobId id = ordered_wait[w];
    DYNP_EXPECTS(id < jobs.size());
    const std::uint32_t width = jobs.width(id);
    const Time estimate = jobs.estimate(id);
    const std::uint32_t cls = classes.job_class[id];

    // Seed the query with the sound lower bounds gathered earlier in this
    // pass (the profile only fills during planning, so both are monotone):
    // the first-fit floor for this width and the class's previous start.
    Time seed = now;
    if (scratch.width_epoch_[width] == epoch) {
      seed = std::max(seed, scratch.width_floor_[width]);
    }
    const Time width_seed = seed;
    if (scratch.width_dom_epoch_[width] == epoch &&
        estimate >= scratch.width_dom_dur_[width]) {
      seed = std::max(seed, scratch.width_dom_start_[width]);
    }
    if (scratch.class_epoch_[cls] == epoch) {
      seed = std::max(seed, scratch.class_floor_[cls]);
    }

    Time first_fit;
    const Time start = profile.place(seed, width, estimate, first_fit);
    // The first-fit report is only a valid width floor if the scan started
    // no later than the true width-w first fit — i.e. if the class floor
    // (which encodes a duration constraint) did not push the seed past it.
    if (seed == width_seed) {
      scratch.width_floor_[width] = first_fit;
      scratch.width_epoch_[width] = epoch;
    }
    scratch.class_floor_[cls] = start;
    scratch.class_epoch_[cls] = epoch;
    if (scratch.width_dom_epoch_[width] != epoch ||
        estimate >= scratch.width_dom_dur_[width]) {
      scratch.width_dom_dur_[width] = estimate;
      scratch.width_dom_start_[width] = start;
      scratch.width_dom_epoch_[width] = epoch;
    }

    out.push_back(PlannedJob{id, start});
  }
}

Planner::RepairResult Planner::repair_capacity_drop(
    ResourceProfile& profile, std::vector<Time>& reserved,
    const std::vector<JobId>& order, const workload::JobTable& jobs,
    Time now, Time outage_end, std::uint32_t width) {
  const Time duration = outage_end - now;
  DYNP_EXPECTS(duration > 0);
  DYNP_EXPECTS(width >= 1);
  RepairResult result;

  const auto outage_fits = [&] {
    return profile.earliest_start(now, width, duration) == now;
  };

  std::vector<JobId> evicted;
  if (!outage_fits()) {
    // Eviction candidates: waiting guarantees whose reservation interval
    // overlaps the outage window (others cannot free it), oldest reserved
    // start first so the cheapest-to-move newest guarantees survive.
    std::vector<JobId> by_start;
    for (const JobId id : order) {
      if (reserved[id] < outage_end &&
          reserved[id] + jobs.estimate(id) > now) {
        by_start.push_back(id);
      }
    }
    std::sort(by_start.begin(), by_start.end(), [&](JobId a, JobId b) {
      if (reserved[a] != reserved[b]) return reserved[a] < reserved[b];
      return a < b;
    });
    for (const JobId id : by_start) {
      profile.deallocate(reserved[id], jobs.estimate(id), jobs.width(id));
      evicted.push_back(id);
      if (outage_fits()) break;
    }
    // The running set was already culled to the reduced capacity, so once
    // every overlapping guarantee is out the window must be free.
    DYNP_ASSERT(outage_fits());
  }
  profile.allocate(now, duration, width);

  if (!evicted.empty()) {
    // Re-place the evicted guarantees in policy order: one earliest-start
    // query + allocation each, on the live profile (the repair analogue of
    // the incremental replan — untouched reservations never move).
    for (const JobId id : order) {
      if (std::find(evicted.begin(), evicted.end(), id) == evicted.end()) {
        continue;
      }
      const Time start =
          profile.earliest_start(now, jobs.width(id), jobs.estimate(id));
      profile.allocate(start, jobs.estimate(id), jobs.width(id));
      reserved[id] = start;
    }
    result.evicted = evicted.size();
  }
  return result;
}

void Planner::replan_inserted_into(const ResourceProfile& base, Time now,
                                   const std::vector<JobId>& ordered_wait,
                                   std::size_t pos,
                                   const workload::JobTable& jobs,
                                   PlanScratch& scratch, Schedule& out) {
  DYNP_EXPECTS(pos < ordered_wait.size());
  DYNP_EXPECTS(out.size() + 1 == ordered_wait.size());
  DYNP_EXPECTS(scratch.classes_.job_class.size() == jobs.size());
  ++scratch.stats_.incremental_plans;
  scratch.stats_.jobs_replayed += pos;

  if (pos + 1 == ordered_wait.size()) {
    // Tail insertion (always the case under FCFS): the retained profile
    // already contains the base plus every previous placement — which a
    // fresh pass would reproduce verbatim — so planning the new job is a
    // single query. The floors stay stamped with the previous epoch and are
    // simply not consulted.
    ResourceProfile& profile = scratch.profile_;
    const JobId id = ordered_wait[pos];
    ++scratch.stats_.jobs_placed;
    Time first_fit;
    const Time start =
        profile.place(now, jobs.width(id), jobs.estimate(id), first_fit);
    out.push_back(PlannedJob{ordered_wait[pos], start});
    return;
  }

  // Mid-order insertion: replay the unchanged prefix from its stored starts
  // (allocations only, no feasibility queries), then plan the tail fresh.
  out.truncate(pos);
  scratch.profile_ = base;
  prepare_scratch(scratch, base, jobs);
  const std::uint32_t epoch = scratch.epoch_;
  for (const PlannedJob& p : out.entries()) {
    const std::uint32_t width = jobs.width(p.id);
    const Time estimate = jobs.estimate(p.id);
    scratch.profile_.allocate(p.start, estimate, width);
    // The replayed starts are exactly what this pass would have planned, so
    // they seed the class floors just as a fresh pass would. (The width
    // floors need the first-fit report of a real query; leaving them
    // unstamped merely skips an optimisation.)
    const std::uint32_t cls = scratch.classes_.job_class[p.id];
    scratch.class_floor_[cls] = p.start;
    scratch.class_epoch_[cls] = epoch;
    if (scratch.width_dom_epoch_[width] != epoch ||
        estimate >= scratch.width_dom_dur_[width]) {
      scratch.width_dom_dur_[width] = estimate;
      scratch.width_dom_start_[width] = p.start;
      scratch.width_dom_epoch_[width] = epoch;
    }
  }
  plan_range(scratch, now, ordered_wait, pos, jobs, out);
}

}  // namespace dynp::rms
