/// Micro benchmarks (google-benchmark) for the performance-critical
/// substrate: resource-profile queries/allocations, full planner passes at
/// different queue depths, policy ordering, decider decisions, and
/// end-to-end simulation throughput per trace.

#include <benchmark/benchmark.h>

#include "core/decider.hpp"
#include "core/simulation.hpp"
#include "policies/policy.hpp"
#include "rms/planner.hpp"
#include "rms/profile.hpp"
#include "util/rng.hpp"
#include "workload/models.hpp"

namespace {

using namespace dynp;

/// Builds a busy profile with `n` random finite reservations.
rms::ResourceProfile busy_profile(std::uint32_t capacity, int n,
                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  rms::ResourceProfile p(capacity);
  for (int i = 0; i < n; ++i) {
    const auto width =
        static_cast<std::uint32_t>(1 + rng.next_below(capacity / 4 + 1));
    const Time dur = static_cast<Time>(60 + rng.next_below(10000));
    const Time start = p.earliest_start(
        static_cast<Time>(rng.next_below(100000)), width, dur);
    p.allocate(start, dur, width);
  }
  return p;
}

void BM_ProfileEarliestStart(benchmark::State& state) {
  const auto p = busy_profile(430, static_cast<int>(state.range(0)), 1);
  util::Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.earliest_start(
        static_cast<Time>(rng.next_below(100000)),
        static_cast<std::uint32_t>(1 + rng.next_below(64)),
        static_cast<Time>(60 + rng.next_below(5000))));
  }
}
BENCHMARK(BM_ProfileEarliestStart)->Arg(16)->Arg(128)->Arg(1024);

void BM_ProfileAllocate(benchmark::State& state) {
  const auto base = busy_profile(430, static_cast<int>(state.range(0)), 3);
  util::Xoshiro256 rng(4);
  for (auto _ : state) {
    rms::ResourceProfile p = base;  // copy cost included; same for all args
    const Time start = p.earliest_start(0, 8, 600);
    p.allocate(start, 600, 8);
    benchmark::DoNotOptimize(p.segment_count());
  }
}
BENCHMARK(BM_ProfileAllocate)->Arg(16)->Arg(128)->Arg(1024);

void BM_PlannerFullPass(benchmark::State& state) {
  // Plan `n` waiting jobs from scratch — one candidate schedule of the
  // self-tuning step at queue depth n.
  const auto n = static_cast<std::size_t>(state.range(0));
  const workload::JobSet set =
      workload::generate(workload::ctc_model(), n, 99);
  std::vector<JobId> waiting(n);
  for (std::size_t i = 0; i < n; ++i) waiting[i] = static_cast<JobId>(i);
  const auto ordered =
      policies::order(policies::PolicyKind::kSjf, waiting, set.table());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rms::Planner::plan(430, 0, {}, ordered, set.table()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlannerFullPass)->Arg(10)->Arg(100)->Arg(500)->Arg(2000);

void BM_PolicyOrder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const workload::JobSet set =
      workload::generate(workload::sdsc_model(), n, 7);
  std::vector<JobId> waiting(n);
  for (std::size_t i = 0; i < n; ++i) waiting[i] = static_cast<JobId>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policies::order(policies::PolicyKind::kSjf, waiting, set.table()));
  }
}
BENCHMARK(BM_PolicyOrder)->Arg(100)->Arg(2000);

void BM_DeciderDecide(benchmark::State& state) {
  const core::AdvancedDecider decider;
  const core::DecisionInput input{{3.0, 2.0, 3.0}, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(decider.decide(input));
  }
}
BENCHMARK(BM_DeciderDecide);

void BM_SimulateStatic(benchmark::State& state) {
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 1000, 5)
          .with_shrinking_factor(0.8);
  const auto config = core::static_config(policies::PolicyKind::kFcfs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simulate(set, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulateStatic)->Unit(benchmark::kMillisecond);

void BM_SimulateDynP(benchmark::State& state) {
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 1000, 5)
          .with_shrinking_factor(0.8);
  const auto config = core::dynp_config(core::make_advanced_decider());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simulate(set, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulateDynP)->Unit(benchmark::kMillisecond);

void BM_GenerateWorkload(benchmark::State& state) {
  const auto model = workload::lanl_model();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::generate(model, 1000, ++seed));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_GenerateWorkload)->Unit(benchmark::kMillisecond);

}  // namespace
