/// Regenerates **Table 2**: basic properties of the four job traces, as
/// realised by the synthetic generators, side by side with the published
/// values. This is the calibration check for the PWA-trace substitution
/// (see DESIGN.md §3): width, estimated/actual run time, over-estimation
/// factor and interarrival statistics should track the paper's columns.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "exp/paper_reference.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace_stats.hpp"

namespace {

using namespace dynp;

void print_trace(const workload::TraceModel& model,
                 const exp::PaperTraceProperties& ref,
                 const exp::BenchOptions& opt) {
  // Statistics averaged over the ensemble's sets.
  const auto sets = workload::generate_ensemble(model, opt.scale.sets,
                                                opt.scale.jobs, opt.scale.seed);
  util::OnlineStats width, est, act, ia;
  double over = 0, min_w = 1e18, max_w = 0, min_e = 1e18, max_e = 0,
         min_a = 1e18, max_a = 0, min_i = 1e18, max_i = 0;
  for (const auto& set : sets) {
    const workload::TraceStats s = workload::compute_stats(set);
    width.add(s.width.mean());
    est.add(s.estimated_runtime.mean());
    act.add(s.actual_runtime.mean());
    ia.add(s.interarrival.mean());
    over += s.overestimation_factor;
    min_w = std::min(min_w, s.width.min());
    max_w = std::max(max_w, s.width.max());
    min_e = std::min(min_e, s.estimated_runtime.min());
    max_e = std::max(max_e, s.estimated_runtime.max());
    min_a = std::min(min_a, s.actual_runtime.min());
    max_a = std::max(max_a, s.actual_runtime.max());
    min_i = std::min(min_i, s.interarrival.min());
    max_i = std::max(max_i, s.interarrival.max());
  }
  over /= static_cast<double>(sets.size());

  util::TextTable t;
  t.set_header({"column", "paper", "measured"},
               {util::Align::kLeft, util::Align::kRight, util::Align::kRight});
  const auto row = [&t](const char* name, double paper, double measured,
                        int dec = 2) {
    t.add_row({name, util::fmt_fixed(paper, dec),
               util::fmt_fixed(measured, dec)});
  };
  row("width min", ref.width_min, min_w, 0);
  row("width avg", ref.width_avg, width.mean());
  row("width max", ref.width_max, max_w, 0);
  row("est. run time min [s]", ref.est_min, min_e, 0);
  row("est. run time avg [s]", ref.est_avg, est.mean(), 0);
  row("est. run time max [s]", ref.est_max, max_e, 0);
  row("act. run time min [s]", ref.act_min, min_a, 0);
  row("act. run time avg [s]", ref.act_avg, act.mean(), 0);
  row("act. run time max [s]", ref.act_max, max_a, 0);
  row("avg overest. factor", ref.overestimation, over, 3);
  row("interarrival min [s]", ref.ia_min, min_i, 0);
  row("interarrival avg [s]", ref.ia_avg, ia.mean(), 0);
  row("interarrival max [s]", ref.ia_max, max_i, 0);

  std::printf("--- %s (machine: %u nodes; paper trace had %s jobs; synthetic: "
              "%zu sets x %zu jobs) ---\n%s\n",
              model.name.c_str(), model.nodes,
              util::fmt_count(ref.jobs_in_trace).c_str(), sets.size(),
              opt.scale.jobs, t.to_string().c_str());
  std::printf("known deviations (documented in DESIGN.md): estimates are "
              "floored at 60 s and minute-rounded; actual run times floored "
              "at 1 s; interarrival max is distribution-tail dependent.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "table2_trace_properties — basic properties of the synthetic traces vs "
      "the paper's Table 2");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  std::printf("Table 2 — basic properties of the four traces\n\n");
  const auto& refs = exp::paper_table2();
  for (const auto& model : opt->traces) {
    for (const auto& ref : refs) {
      if (model.name == ref.name) print_trace(model, ref, *opt);
    }
  }
  return 0;
}
