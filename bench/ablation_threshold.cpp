/// **Ablation A** (beyond the paper): how does the preferred decider's
/// switch threshold change the result? theta = 0% is the paper's strict
/// mechanism ("switch away only if another policy is clearly better");
/// larger thresholds make the decider stickier, theta -> infinity degrades
/// it to static SJF. Reported: SLDwA, utilisation and mean policy switches
/// per run.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dynp;
  util::CliParser cli(
      "ablation_threshold — SJF-preferred decider with switch thresholds "
      "0 / 2.5 / 5 / 10 / 25 %");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  const std::vector<double> thresholds = {0.0, 2.5, 5.0, 10.0, 25.0};
  std::printf("Ablation A — preferred-decider switch threshold (scale: %zu "
              "sets x %zu jobs)\n\n",
              opt->scale.sets, opt->scale.jobs);

  // Both decider families ride in one orchestrated grid: configs 0..4 are
  // the SJF-preferred thresholds, 5..9 the fair threshold decider. The
  // second config index is the fair offset.
  std::vector<core::SimulationConfig> configs;
  for (const double th : thresholds) {
    configs.push_back(core::dynp_config(exp::sjf_preferred_decider(th)));
  }
  for (const double th : thresholds) {
    configs.push_back(core::dynp_config(core::make_threshold_decider(th)));
  }
  const std::size_t fair_offset = thresholds.size();
  const exp::SweepGrid grid =
      exp::run_bench_grid(*opt, exp::paper_shrinking_factors(), configs);

  for (std::size_t trace = 0; trace < opt->traces.size(); ++trace) {
    const auto& model = opt->traces[trace];
    util::TextTable t;
    std::vector<std::string> header = {"factor"};
    for (const double th : thresholds) {
      header.push_back("SLDwA@" + util::fmt_fixed(th, 1) + "%");
    }
    for (const double th : thresholds) {
      header.push_back("sw@" + util::fmt_fixed(th, 1) + "%");
    }
    t.set_header(header, {util::Align::kLeft});

    for (std::size_t f = 0; f < exp::paper_shrinking_factors().size(); ++f) {
      const double factor = exp::paper_shrinking_factors()[f];
      std::vector<std::string> row = {util::fmt_fixed(factor, 1)};
      std::vector<std::string> switches;
      for (std::size_t c = 0; c < thresholds.size(); ++c) {
        const exp::CombinedPoint& p = grid.at(trace, f, c);
        row.push_back(util::fmt_fixed(p.sldwa, 2));
        switches.push_back(util::fmt_fixed(p.switches, 0));
      }
      row.insert(row.end(), switches.begin(), switches.end());
      t.add_row(std::move(row));
    }
    std::printf("--- %s (SJF-preferred decider) ---\n%s\n", model.name.c_str(),
                t.to_string().c_str());

    // The fair variant: the threshold decider is sticky around whatever
    // policy is active instead of one globally preferred policy.
    util::TextTable tf;
    tf.set_header(header, {util::Align::kLeft});
    for (std::size_t f = 0; f < exp::paper_shrinking_factors().size(); ++f) {
      const double factor = exp::paper_shrinking_factors()[f];
      std::vector<std::string> row = {util::fmt_fixed(factor, 1)};
      std::vector<std::string> switches;
      for (std::size_t c = 0; c < thresholds.size(); ++c) {
        const exp::CombinedPoint& p = grid.at(trace, f, fair_offset + c);
        row.push_back(util::fmt_fixed(p.sldwa, 2));
        switches.push_back(util::fmt_fixed(p.switches, 0));
      }
      row.insert(row.end(), switches.begin(), switches.end());
      tf.add_row(std::move(row));
    }
    std::printf("--- %s (fair threshold decider) ---\n%s\n",
                model.name.c_str(), tf.to_string().c_str());
  }
  std::printf("reading: switches drop as the threshold grows; a moderate "
              "threshold trades a little slowdown for schedule stability.\n");
  return 0;
}
