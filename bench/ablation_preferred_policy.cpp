/// **Ablation D**: the paper chooses SJF as the preferred policy ("we mostly
/// focus on good slowdowns for satisfying the users") and leaves the other
/// choices open. This bench runs the preferred decider with each pool policy
/// as the preference, plus the fair advanced decider as the neutral
/// reference.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dynp;
  util::CliParser cli(
      "ablation_preferred_policy — preferred decider with FCFS/SJF/LJF as "
      "the preferred policy");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  const auto pool = policies::paper_pool();
  std::vector<core::SimulationConfig> configs = {
      core::dynp_config(core::make_advanced_decider())};
  for (const auto policy : pool) {
    configs.push_back(
        core::dynp_config(exp::preferred_decider_for(policy, pool)));
  }
  const char* kLabels[] = {"advanced", "FCFS-pref", "SJF-pref", "LJF-pref"};

  std::printf("Ablation D — choice of the preferred policy (scale: %zu sets "
              "x %zu jobs)\n\n",
              opt->scale.sets, opt->scale.jobs);

  const exp::SweepGrid grid =
      exp::run_bench_grid(*opt, exp::paper_shrinking_factors(), configs);

  for (std::size_t trace = 0; trace < opt->traces.size(); ++trace) {
    const auto& model = opt->traces[trace];
    util::TextTable t;
    std::vector<std::string> header = {"factor"};
    for (const char* l : kLabels) header.push_back(std::string("SLDwA ") + l);
    for (const char* l : kLabels) header.push_back(std::string("util ") + l);
    t.set_header(header, {util::Align::kLeft});
    for (std::size_t f = 0; f < exp::paper_shrinking_factors().size(); ++f) {
      const double factor = exp::paper_shrinking_factors()[f];
      std::vector<std::string> row = {util::fmt_fixed(factor, 1)};
      std::vector<std::string> utils;
      for (std::size_t c = 0; c < configs.size(); ++c) {
        const exp::CombinedPoint& p = grid.at(trace, f, c);
        row.push_back(util::fmt_fixed(p.sldwa, 2));
        utils.push_back(util::fmt_fixed(p.utilization, 1));
      }
      row.insert(row.end(), utils.begin(), utils.end());
      t.add_row(std::move(row));
    }
    std::printf("--- %s ---\n%s\n", model.name.c_str(), t.to_string().c_str());
  }
  std::printf("reading: LJF-preference buys utilisation at a slowdown cost; "
              "SJF-preference matches the paper's choice for user-centric "
              "slowdown.\n");
  return 0;
}
