/// **Ablation F**: what the RMS semantics do to the static policies.
/// Compares the three schedulers the literature contrasts (paper ref. [6]):
///
///  * planning / full replan (kReplan, the paper's system),
///  * planning / start-time guarantees with policy-ordered compression
///    (kGuarantee, CCS's user contract),
///  * queueing / EASY backfilling (kQueueingEasy, Lifka's scheduler).
///
/// Replan maximises the policy spread (SJF/LJF can starve jobs), guarantees
/// compress it, and EASY sits between — the Table 4 spreads identify the
/// paper's semantics as replan.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dynp;
  util::CliParser cli(
      "ablation_semantics — planning(replan) vs planning(guarantee) vs "
      "queueing(EASY) for FCFS/SJF/LJF");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  struct Semantics {
    const char* name;
    core::PlannerSemantics value;
  };
  const Semantics semantics[] = {
      {"replan", core::PlannerSemantics::kReplan},
      {"guarantee", core::PlannerSemantics::kGuarantee},
      {"EASY", core::PlannerSemantics::kQueueingEasy},
  };

  std::printf("Ablation F — RMS semantics (scale: %zu sets x %zu jobs)\n\n",
              opt->scale.sets, opt->scale.jobs);

  // Policy-major config order: config index = policy * |semantics| + s.
  const std::vector<double> factors = {1.0, 0.8, 0.6};
  const std::size_t n_sem = std::size(semantics);
  std::vector<core::SimulationConfig> configs;
  for (const auto policy : policies::paper_pool()) {
    for (const auto& s : semantics) {
      auto config = core::static_config(policy);
      config.semantics = s.value;
      configs.push_back(std::move(config));
    }
  }
  const exp::SweepGrid grid = exp::run_bench_grid(*opt, factors, configs);

  for (std::size_t trace = 0; trace < opt->traces.size(); ++trace) {
    const auto& model = opt->traces[trace];
    util::TextTable t;
    std::vector<std::string> header = {"factor", "policy"};
    for (const auto& s : semantics) {
      header.push_back(std::string("SLDwA ") + s.name);
    }
    for (const auto& s : semantics) {
      header.push_back(std::string("util ") + s.name);
    }
    t.set_header(header, {util::Align::kLeft, util::Align::kLeft});

    for (std::size_t f = 0; f < factors.size(); ++f) {
      const auto pool = policies::paper_pool();
      for (std::size_t p_idx = 0; p_idx < pool.size(); ++p_idx) {
        std::vector<std::string> row = {util::fmt_fixed(factors[f], 1),
                                        policies::name(pool[p_idx])};
        std::vector<std::string> utils;
        for (std::size_t s = 0; s < n_sem; ++s) {
          const exp::CombinedPoint& p = grid.at(trace, f, p_idx * n_sem + s);
          row.push_back(util::fmt_fixed(p.sldwa, 2));
          utils.push_back(util::fmt_fixed(p.utilization, 1));
        }
        row.insert(row.end(), utils.begin(), utils.end());
        t.add_row(std::move(row));
      }
      t.add_rule();
    }
    std::printf("--- %s ---\n%s\n", model.name.c_str(), t.to_string().c_str());
  }
  std::printf("reading: the policy spread (LJF-vs-SJF slowdown ratio) is "
              "widest under replan, compressed under guarantees; EASY tracks "
              "replan-FCFS for FCFS but cannot reorder as aggressively.\n");
  return 0;
}
