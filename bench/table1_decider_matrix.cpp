/// Regenerates **Table 1**: the decision matrix of the simple decider versus
/// the correct (advanced) decision, over every qualitative ordering of the
/// three policy values and every old policy.
///
/// Unlike the unit test (which pins the 20 published rows), this binary
/// *derives* the matrix from the decider implementations: it enumerates all
/// value-order cases, asks both deciders, and flags the rows where the
/// simple decider deviates — reproducing the paper's observation that it is
/// wrong in exactly the cases 1, 6b, 8c and 10c.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/decider.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using dynp::core::AdvancedDecider;
using dynp::core::DecisionInput;
using dynp::core::SimpleDecider;

constexpr const char* kPolicy[3] = {"FCFS", "SJF", "LJF"};

/// Renders a value assignment as an ordering description, e.g.
/// "FCFS = SJF < LJF".
std::string describe(const std::vector<double>& v) {
  // Sort policy indices by value, then join with = / <.
  std::vector<std::size_t> idx = {0, 1, 2};
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::string out = kPolicy[idx[0]];
  for (std::size_t i = 1; i < idx.size(); ++i) {
    out += v[idx[i]] == v[idx[i - 1]] ? " = " : " < ";
    out += kPolicy[idx[i]];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  dynp::util::CliParser cli(
      "table1_decider_matrix — regenerate the paper's Table 1 (simple vs "
      "correct decider decisions)");
  if (!cli.parse(argc, argv)) return 1;

  const SimpleDecider simple;
  const AdvancedDecider advanced;

  dynp::util::TextTable table;
  table.set_header({"case (policy values)", "old policy", "simple decider",
                    "correct decision", ""},
                   {dynp::util::Align::kLeft, dynp::util::Align::kLeft,
                    dynp::util::Align::kLeft, dynp::util::Align::kLeft,
                    dynp::util::Align::kLeft});

  // Enumerate all qualitative orderings: each policy gets a rank from
  // {0,1,2}; deduplicate by the canonical description.
  std::map<std::string, std::vector<double>> cases;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        const std::vector<double> v = {static_cast<double>(a + 1),
                                       static_cast<double>(b + 1),
                                       static_cast<double>(c + 1)};
        cases.emplace(describe(v), v);
      }
    }
  }

  int wrong = 0, rows = 0;
  std::string last_case;
  for (const auto& [label, values] : cases) {
    // Rows differ by old policy only where the decision depends on it; the
    // paper prints one row when all three agree.
    std::size_t first_simple = 0, first_correct = 0;
    bool depends_on_old = false;
    for (std::size_t old_index = 0; old_index < 3; ++old_index) {
      const DecisionInput input{values, old_index};
      const std::size_t s = simple.decide(input);
      const std::size_t c = advanced.decide(input);
      if (old_index == 0) {
        first_simple = s;
        first_correct = c;
      } else if (s != first_simple || c != first_correct) {
        depends_on_old = true;
      }
    }
    for (std::size_t old_index = 0; old_index < 3; ++old_index) {
      if (!depends_on_old && old_index > 0) break;
      const DecisionInput input{values, old_index};
      const std::size_t s = simple.decide(input);
      const std::size_t c = advanced.decide(input);
      const bool differs = s != c;
      wrong += differs ? 1 : 0;
      ++rows;
      table.add_row({label == last_case ? "" : label,
                     depends_on_old ? kPolicy[old_index] : "(any)",
                     kPolicy[s], kPolicy[c], differs ? "<- WRONG" : ""});
      last_case = label;
    }
    table.add_rule();
  }

  std::printf("Table 1 — simple decider vs correct decision (derived from "
              "the implementations)\n\n");
  std::printf("%s\n", table.to_string().c_str());
  std::printf("rows: %d, simple decider wrong in %d row(s)\n", rows, wrong);
  std::printf("paper: wrong in cases 1, 6b, 8c, 10c (case 1 covers two old "
              "policies -> 5 rows here: all-equal x {SJF, LJF} + 6b + 8c + "
              "10c... see Table 1)\n");
  return 0;
}
