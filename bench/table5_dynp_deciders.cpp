/// Regenerates **Table 5 / Figure 3 / Figure 4**: the self-tuning dynP
/// scheduler with the fair advanced decider and the unfair SJF-preferred
/// decider, against the static SJF baseline. Prints SLDwA, the relative
/// SLDwA difference to SJF (positive = dynP better, as in the paper),
/// utilisation and its absolute difference in percentage points — paper
/// values alongside. With --csv-dir the Figure 3/4 series are written.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "exp/paper_reference.hpp"
#include "util/table.hpp"

namespace {

using namespace dynp;

void run_trace(const workload::TraceModel& model,
               const exp::PaperDynpTrace& ref, const exp::SweepGrid& grid,
               std::size_t trace, util::CsvWriter& fig3,
               util::CsvWriter& fig4) {
  util::TextTable t;
  t.set_header({"factor", "SJF", "adv.", "SJF-pref.", "d%adv", "d%pref",
                "(paper d%)", "util SJF", "adv.", "SJF-pref.", "dPPadv",
                "dPPpref", "(paper dPP)"},
               {util::Align::kLeft});

  double sum_rel_adv = 0, sum_rel_pref = 0, sum_du_adv = 0, sum_du_pref = 0;
  for (std::size_t f = 0; f < exp::paper_shrinking_factors().size(); ++f) {
    const double factor = exp::paper_shrinking_factors()[f];
    std::array<exp::CombinedPoint, 3> p;
    for (std::size_t c = 0; c < p.size(); ++c) {
      p[c] = grid.at(trace, f, c);
    }
    // Positive = dynP better (smaller slowdown), as the paper defines it.
    const double rel_adv = 100.0 * (p[0].sldwa - p[1].sldwa) / p[0].sldwa;
    const double rel_pref = 100.0 * (p[0].sldwa - p[2].sldwa) / p[0].sldwa;
    const double du_adv = p[1].utilization - p[0].utilization;
    const double du_pref = p[2].utilization - p[0].utilization;
    sum_rel_adv += rel_adv;
    sum_rel_pref += rel_pref;
    sum_du_adv += du_adv;
    sum_du_pref += du_pref;

    const exp::PaperDynpRow& prow = ref.rows[f];
    t.add_row({util::fmt_fixed(factor, 1), util::fmt_fixed(p[0].sldwa, 2),
               util::fmt_fixed(p[1].sldwa, 2), util::fmt_fixed(p[2].sldwa, 2),
               util::fmt_signed(rel_adv, 1), util::fmt_signed(rel_pref, 1),
               util::fmt_signed(prow.rel_adv, 1) + "/" +
                   util::fmt_signed(prow.rel_pref, 1),
               util::fmt_fixed(p[0].utilization, 2),
               util::fmt_fixed(p[1].utilization, 2),
               util::fmt_fixed(p[2].utilization, 2),
               util::fmt_signed(du_adv, 2), util::fmt_signed(du_pref, 2),
               util::fmt_signed(prow.dutil_adv, 2) + "/" +
                   util::fmt_signed(prow.dutil_pref, 2)});

    fig3.add_row(std::vector<std::string>{
        model.name, util::fmt_fixed(factor, 1), util::fmt_fixed(p[0].sldwa, 4),
        util::fmt_fixed(p[1].sldwa, 4), util::fmt_fixed(p[2].sldwa, 4)});
    fig4.add_row(std::vector<std::string>{
        model.name, util::fmt_fixed(factor, 1),
        util::fmt_fixed(p[0].utilization, 4),
        util::fmt_fixed(p[1].utilization, 4),
        util::fmt_fixed(p[2].utilization, 4)});
  }
  t.add_rule();
  const auto n = static_cast<double>(exp::paper_shrinking_factors().size());
  // Table 3 reference values for this trace, for the averages row.
  const exp::PaperCondensedRow* t3 = nullptr;
  for (const auto& row : exp::paper_table3()) {
    if (model.name == row.name) t3 = &row;
  }
  t.add_row({"average", "", "", "", util::fmt_signed(sum_rel_adv / n, 2),
             util::fmt_signed(sum_rel_pref / n, 2),
             t3 ? util::fmt_signed(t3->rel_adv, 2) + "/" +
                      util::fmt_signed(t3->rel_pref, 2)
                : "",
             "", "", "", util::fmt_signed(sum_du_adv / n, 2),
             util::fmt_signed(sum_du_pref / n, 2),
             t3 ? util::fmt_signed(t3->dutil_adv, 2) + "/" +
                      util::fmt_signed(t3->dutil_pref, 2)
                : ""});
  std::printf("--- %s ---\n%s\n", model.name.c_str(), t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "table5_dynp_deciders — self-tuning dynP (advanced and SJF-preferred "
      "deciders) vs static SJF; the paper's Table 5 (Figures 3 and 4)");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  std::printf("Table 5 / Figures 3+4 — dynP deciders vs SJF (scale: %zu sets "
              "x %zu jobs; paper: 10 x 10000)\n"
              "d%% = SLDwA improvement over SJF (positive good), dPP = "
              "utilisation difference in percentage points\n\n",
              opt->scale.sets, opt->scale.jobs);

  // One orchestrated grid covers every trace, factor and scheduler; the
  // per-trace loop below only formats the finished points.
  const std::vector<core::SimulationConfig> configs = {
      core::static_config(policies::PolicyKind::kSjf),
      core::dynp_config(core::make_advanced_decider()),
      core::dynp_config(exp::sjf_preferred_decider())};
  const exp::SweepGrid grid =
      exp::run_bench_grid(*opt, exp::paper_shrinking_factors(), configs);

  util::CsvWriter fig3({"trace", "factor", "sldwa_sjf", "sldwa_advanced",
                        "sldwa_sjf_preferred"});
  util::CsvWriter fig4({"trace", "factor", "util_sjf", "util_advanced",
                        "util_sjf_preferred"});
  for (std::size_t t = 0; t < opt->traces.size(); ++t) {
    for (const auto& ref : exp::paper_table5()) {
      if (opt->traces[t].name == ref.name) {
        run_trace(opt->traces[t], ref, grid, t, fig3, fig4);
      }
    }
  }
  if (!opt->csv_dir.empty()) {
    const std::string p3 = opt->csv_dir + "/fig3_sldwa_dynp.csv";
    const std::string p4 = opt->csv_dir + "/fig4_util_dynp.csv";
    if (fig3.write_file(p3) && fig4.write_file(p4)) {
      std::printf("figure series written: %s, %s\n", p3.c_str(), p4.c_str());
    } else {
      std::fprintf(stderr, "failed to write CSV files under %s\n",
                   opt->csv_dir.c_str());
      return 1;
    }
  }
  return 0;
}
