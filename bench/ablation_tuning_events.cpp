/// **Ablation B**: the paper (§3) mentions — but does not study — running
/// the self-tuning step only when new jobs are submitted instead of at every
/// submit *and* finish event. This bench quantifies that option: fewer
/// decision points mean less decision work but a staler policy choice.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dynp;
  util::CliParser cli(
      "ablation_tuning_events — self-tuning on submit+finish (paper) vs "
      "submit-only vs finish-only");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  struct Variant {
    const char* name;
    bool on_submit, on_finish;
  };
  const Variant variants[] = {{"submit+finish", true, true},
                              {"submit-only", true, false},
                              {"finish-only", false, true}};

  std::printf("Ablation B — which events trigger the self-tuning step "
              "(advanced decider; scale: %zu sets x %zu jobs)\n\n",
              opt->scale.sets, opt->scale.jobs);

  std::vector<core::SimulationConfig> configs;
  for (const Variant& v : variants) {
    auto config = core::dynp_config(core::make_advanced_decider());
    config.tune_on_submit = v.on_submit;
    config.tune_on_finish = v.on_finish;
    configs.push_back(std::move(config));
  }
  const exp::SweepGrid grid =
      exp::run_bench_grid(*opt, exp::paper_shrinking_factors(), configs);

  for (std::size_t trace = 0; trace < opt->traces.size(); ++trace) {
    const auto& model = opt->traces[trace];
    util::TextTable t;
    t.set_header({"factor", "SLDwA s+f", "submit", "finish", "util% s+f",
                  "submit", "finish", "decisions s+f", "submit", "finish"},
                 {util::Align::kLeft});
    for (std::size_t f = 0; f < exp::paper_shrinking_factors().size(); ++f) {
      const double factor = exp::paper_shrinking_factors()[f];
      std::vector<std::string> row = {util::fmt_fixed(factor, 1)};
      std::array<exp::CombinedPoint, 3> p;
      for (std::size_t v = 0; v < 3; ++v) p[v] = grid.at(trace, f, v);
      for (const auto& point : p) row.push_back(util::fmt_fixed(point.sldwa, 2));
      for (const auto& point : p) {
        row.push_back(util::fmt_fixed(point.utilization, 2));
      }
      for (const auto& point : p) {
        row.push_back(util::fmt_fixed(point.decisions, 0));
      }
      t.add_row(std::move(row));
    }
    std::printf("--- %s ---\n%s\n", model.name.c_str(), t.to_string().c_str());
  }
  return 0;
}
