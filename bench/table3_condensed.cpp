/// Regenerates **Table 3**: per-trace averages (over all shrinking factors)
/// of the dynP-vs-SJF differences — relative SLDwA improvement in percent
/// and absolute utilisation gain in percentage points, for the advanced and
/// the SJF-preferred decider. This is the paper's one-number-per-trace
/// summary of Table 5.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "exp/paper_reference.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dynp;
  util::CliParser cli(
      "table3_condensed — average dynP-vs-SJF differences per trace (the "
      "paper's Table 3)");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  std::printf("Table 3 — condensed results (averages over shrinking factors "
              "%zu..; scale: %zu sets x %zu jobs)\n"
              "positive SLDwA differences are good, negative bad (paper "
              "values in parentheses)\n\n",
              exp::paper_shrinking_factors().size(), opt->scale.sets,
              opt->scale.jobs);

  util::TextTable t;
  t.set_header({"trace", "SLDwA d% adv", "SLDwA d% pref", "util dPP adv",
                "util dPP pref"},
               {util::Align::kLeft});

  const std::vector<core::SimulationConfig> configs = {
      core::static_config(policies::PolicyKind::kSjf),
      core::dynp_config(core::make_advanced_decider()),
      core::dynp_config(exp::sjf_preferred_decider())};

  for (const auto& model : opt->traces) {
    const exp::SweepRunner runner(model, opt->scale);
    double rel_adv = 0, rel_pref = 0, du_adv = 0, du_pref = 0;
    const auto factors = exp::paper_shrinking_factors();
    for (const double factor : factors) {
      std::array<exp::CombinedPoint, 3> p;
      for (std::size_t c = 0; c < configs.size(); ++c) {
        p[c] = runner.run(factor, configs[c], opt->threads);
      }
      rel_adv += 100.0 * (p[0].sldwa - p[1].sldwa) / p[0].sldwa;
      rel_pref += 100.0 * (p[0].sldwa - p[2].sldwa) / p[0].sldwa;
      du_adv += p[1].utilization - p[0].utilization;
      du_pref += p[2].utilization - p[0].utilization;
    }
    const auto n = static_cast<double>(factors.size());
    const exp::PaperCondensedRow* ref = nullptr;
    for (const auto& row : exp::paper_table3()) {
      if (model.name == row.name) ref = &row;
    }
    t.add_row(
        {model.name,
         util::fmt_signed(rel_adv / n, 2) +
             (ref ? " (" + util::fmt_signed(ref->rel_adv, 2) + ")" : ""),
         util::fmt_signed(rel_pref / n, 2) +
             (ref ? " (" + util::fmt_signed(ref->rel_pref, 2) + ")" : ""),
         util::fmt_signed(du_adv / n, 2) +
             (ref ? " (" + util::fmt_signed(ref->dutil_adv, 2) + ")" : ""),
         util::fmt_signed(du_pref / n, 2) +
             (ref ? " (" + util::fmt_signed(ref->dutil_pref, 2) + ")" : "")});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
