/// Macro benchmarks (google-benchmark): end-to-end `core::simulate`
/// throughput — whole discrete-event runs, reported as events per second —
/// across the trace models and planner semantics. These complement the
/// micro benchmarks in micro_planner.cpp: the micro suite isolates the
/// planner's inner loops, this one measures what a user of the library
/// actually waits for. For a one-shot JSON report of the same shape (and
/// the checked-in BENCH_planner.json), see tools/bench_report.

#include <benchmark/benchmark.h>

#include "core/simulation.hpp"
#include "rms/profile.hpp"
#include "workload/models.hpp"

namespace {

using namespace dynp;

void BM_Macro(benchmark::State& state, const workload::TraceModel model,
              std::size_t jobs, double factor, core::SimulationConfig config) {
  const workload::JobSet set =
      workload::generate(model, jobs, 42).with_shrinking_factor(factor);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const core::SimulationResult r = core::simulate(set, config);
    events += r.events;
    benchmark::DoNotOptimize(r.summary.sldwa);
  }
  // items/sec in the report = simulation events (submits + finishes) per
  // wall-clock second, the macro throughput metric of DESIGN.md §7.
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

[[nodiscard]] core::SimulationConfig dynp(core::PlannerSemantics semantics) {
  core::SimulationConfig config =
      core::dynp_config(core::make_advanced_decider());
  config.semantics = semantics;
  return config;
}

[[nodiscard]] core::SimulationConfig fcfs(core::PlannerSemantics semantics) {
  core::SimulationConfig config =
      core::static_config(policies::PolicyKind::kFcfs);
  config.semantics = semantics;
  return config;
}

BENCHMARK_CAPTURE(BM_Macro, kth_replan_dynp, workload::kth_model(), 1000, 0.8,
                  dynp(core::PlannerSemantics::kReplan))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Macro, kth_guarantee_dynp, workload::kth_model(), 1000,
                  0.8, dynp(core::PlannerSemantics::kGuarantee))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Macro, kth_easy_fcfs, workload::kth_model(), 1000, 0.8,
                  fcfs(core::PlannerSemantics::kQueueingEasy))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Macro, ctc_replan_dynp, workload::ctc_model(), 1000, 1.0,
                  dynp(core::PlannerSemantics::kReplan))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Macro, ctc_guarantee_dynp, workload::ctc_model(), 1000,
                  1.0, dynp(core::PlannerSemantics::kGuarantee))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Macro, sdsc_replan_dynp, workload::sdsc_model(), 1000,
                  1.0, dynp(core::PlannerSemantics::kReplan))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Macro, lanl_replan_dynp, workload::lanl_model(), 1000,
                  1.0, dynp(core::PlannerSemantics::kReplan))
    ->Unit(benchmark::kMillisecond);

// ---- million-job scale path ----
//
// Federation-scale shape (see workload::scale_machine): a 10000x KTH machine
// whose persistent guarantee-mode profile carries tens of thousands of
// segments, so every submit-time placement search and every finish-time
// reservation release runs at the depth the hierarchical profile was built
// for. The tree/flat pair is the A/B of BENCH_planner.json's acceptance
// scenario; the 1M-job run is the headline scale target. Generation is
// hoisted out of the timing loop; the profile backend is switched per
// benchmark and restored afterwards.

void BM_MacroScaled(benchmark::State& state, std::size_t jobs, double factor,
                    std::uint32_t machine_scale, rms::ProfileImpl impl) {
  const workload::JobSet set =
      workload::generate(
          workload::scale_machine(workload::kth_model(), machine_scale), jobs,
          42)
          .with_shrinking_factor(factor);
  const core::SimulationConfig config = fcfs(core::PlannerSemantics::kGuarantee);
  const rms::ProfileImpl saved = rms::ResourceProfile::default_impl();
  rms::ResourceProfile::set_default_impl(impl);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const core::SimulationResult r = core::simulate(set, config);
    events += r.events;
    benchmark::DoNotOptimize(r.summary.sldwa);
  }
  rms::ResourceProfile::set_default_impl(saved);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

BENCHMARK_CAPTURE(BM_MacroScaled, kth_x10k_100k_tree, 100000, 0.3, 10000,
                  rms::ProfileImpl::kTree)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MacroScaled, kth_x10k_100k_flat, 100000, 0.3, 10000,
                  rms::ProfileImpl::kFlat)
    ->Unit(benchmark::kMillisecond);
// The 1M-job run needs a 100000x machine: at 10000x its aggregate width
// demand would exceed the whole federation and guarantee-mode compression
// over a million-deep backlog is quadratic for either backend.
BENCHMARK_CAPTURE(BM_MacroScaled, kth_x100k_1m_tree, 1000000, 0.3, 100000,
                  rms::ProfileImpl::kTree)
    ->Unit(benchmark::kMillisecond);

}  // namespace
