/// Macro benchmarks (google-benchmark): the sweep layer. Three ways of
/// executing the same mini experiment grid —
///
///  * BM_SweepSerialBarrier: per-point `SweepRunner::run` calls, i.e. the
///    pre-orchestrator discipline (parallel sets, hard barrier per point),
///  * BM_SweepOrchestrator: one flat cell list on the work-stealing pool,
///  * BM_SweepWarmCache: the orchestrator against a fully warm point cache
///    (every point loads, nothing simulates).
///
/// items/sec = grid cells (one cell = one ensemble-set simulation), the
/// sweep throughput metric of DESIGN.md §11. The thread-count argument is
/// sweepable; on a single-core host the first two coincide and only the
/// cache row shows the orders-of-magnitude step. For the checked-in JSON of
/// the same shape (BENCH_sweep.json), see tools/bench_report --sweep.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <vector>

#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "exp/orchestrator.hpp"
#include "workload/models.hpp"

namespace {

using namespace dynp;

constexpr std::size_t kSets = 3;
constexpr std::size_t kJobs = 300;

[[nodiscard]] exp::ExperimentScale mini_scale() {
  return exp::ExperimentScale{kSets, kJobs, 42};
}

[[nodiscard]] std::vector<double> mini_factors() { return {1.0, 0.8, 0.6}; }

[[nodiscard]] std::vector<core::SimulationConfig> mini_configs() {
  return {core::static_config(policies::PolicyKind::kSjf),
          core::dynp_config(core::make_advanced_decider())};
}

[[nodiscard]] std::int64_t mini_cells() {
  return static_cast<std::int64_t>(mini_factors().size() *
                                   mini_configs().size() * kSets);
}

void BM_SweepSerialBarrier(benchmark::State& state) {
  const exp::SweepRunner runner(workload::kth_model(), mini_scale());
  const auto configs = mini_configs();
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::int64_t cells = 0;
  for (auto _ : state) {
    for (const double factor : mini_factors()) {
      for (const auto& config : configs) {
        const exp::CombinedPoint p = runner.run(factor, config, threads);
        benchmark::DoNotOptimize(p.sldwa);
      }
    }
    cells += mini_cells();
  }
  state.SetItemsProcessed(cells);
}

void BM_SweepOrchestrator(benchmark::State& state) {
  exp::OrchestratorOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  exp::SweepOrchestrator orchestrator({workload::kth_model()}, mini_scale(),
                                      options);
  std::int64_t cells = 0;
  for (auto _ : state) {
    const exp::SweepGrid grid =
        orchestrator.run_grid(mini_factors(), mini_configs());
    benchmark::DoNotOptimize(grid.points.front().sldwa);
    cells += mini_cells();
  }
  state.SetItemsProcessed(cells);
}

void BM_SweepWarmCache(benchmark::State& state) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "dynp_macro_sweep_cache";
  std::filesystem::remove_all(dir);
  exp::OrchestratorOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.cache_dir = dir.string();
  exp::SweepOrchestrator orchestrator({workload::kth_model()}, mini_scale(),
                                      options);
  // Populate outside the timing loop; every timed run is a pure warm load.
  (void)orchestrator.run_grid(mini_factors(), mini_configs());
  for (auto _ : state) {
    const exp::SweepGrid grid =
        orchestrator.run_grid(mini_factors(), mini_configs());
    benchmark::DoNotOptimize(grid.points.front().sldwa);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * mini_cells());
  std::filesystem::remove_all(dir);
}

BENCHMARK(BM_SweepSerialBarrier)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepOrchestrator)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepWarmCache)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
