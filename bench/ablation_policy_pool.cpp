/// **Ablation E**: the dynP mechanism is not limited to the paper's
/// FCFS/SJF/LJF pool. This bench extends the candidate pool with SAF
/// (smallest area first) and WF (widest first) and measures whether a larger
/// pool helps the advanced decider — at the cost of one extra full schedule
/// per extra policy per self-tuning step.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dynp;
  util::CliParser cli(
      "ablation_policy_pool — paper pool (FCFS/SJF/LJF) vs extended pools "
      "(+SAF, +WF)");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  using policies::PolicyKind;
  struct PoolVariant {
    const char* name;
    std::vector<PolicyKind> pool;
  };
  const PoolVariant variants[] = {
      {"paper(3)", policies::paper_pool()},
      {"+SAF(4)",
       {PolicyKind::kFcfs, PolicyKind::kSjf, PolicyKind::kLjf,
        PolicyKind::kSaf}},
      {"+SAF+WF(5)",
       {PolicyKind::kFcfs, PolicyKind::kSjf, PolicyKind::kLjf,
        PolicyKind::kSaf, PolicyKind::kWf}},
  };

  std::printf("Ablation E — size of the dynP policy pool (advanced decider; "
              "scale: %zu sets x %zu jobs)\n\n",
              opt->scale.sets, opt->scale.jobs);

  std::vector<core::SimulationConfig> configs;
  for (const auto& v : variants) {
    auto config = core::dynp_config(core::make_advanced_decider());
    config.pool = v.pool;
    configs.push_back(std::move(config));
  }
  const exp::SweepGrid grid =
      exp::run_bench_grid(*opt, exp::paper_shrinking_factors(), configs);

  for (std::size_t trace = 0; trace < opt->traces.size(); ++trace) {
    const auto& model = opt->traces[trace];
    util::TextTable t;
    std::vector<std::string> header = {"factor"};
    for (const auto& v : variants) {
      header.push_back(std::string("SLDwA ") + v.name);
    }
    for (const auto& v : variants) {
      header.push_back(std::string("util ") + v.name);
    }
    t.set_header(header, {util::Align::kLeft});
    for (std::size_t f = 0; f < exp::paper_shrinking_factors().size(); ++f) {
      const double factor = exp::paper_shrinking_factors()[f];
      std::vector<std::string> row = {util::fmt_fixed(factor, 1)};
      std::vector<std::string> utils;
      for (std::size_t c = 0; c < configs.size(); ++c) {
        const exp::CombinedPoint& p = grid.at(trace, f, c);
        row.push_back(util::fmt_fixed(p.sldwa, 2));
        utils.push_back(util::fmt_fixed(p.utilization, 1));
      }
      row.insert(row.end(), utils.begin(), utils.end());
      t.add_row(std::move(row));
    }
    std::printf("--- %s ---\n%s\n", model.name.c_str(), t.to_string().c_str());
  }
  return 0;
}
