/// **Ablation G**: the paper (§4.2) names three ways of increasing the
/// workload — shrinking interarrival times (their choice), scaling run
/// times, and multi-submitting jobs — and picks the first "as it does not
/// change the outlook (i.e. area) of all processed jobs". This bench runs
/// all three at a matched doubling of offered load and shows how the
/// resulting pressure differs in kind, not just degree.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dynp;
  util::CliParser cli(
      "ablation_load_transforms — shrinking factor 0.5 vs run-time x2 vs "
      "2x multi-submission (each doubles offered load)");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  std::printf("Ablation G — load-increasing transforms (FCFS, replan; "
              "scale: %zu sets x %zu jobs)\n\n",
              opt->scale.sets, opt->scale.jobs);

  const auto config = core::static_config(policies::PolicyKind::kFcfs);

  // This ablation varies the *transform*, not the shrinking factor, so its
  // cells are not addressable by the orchestrator's (trace, factor, config)
  // point cache; it runs directly, reusing one simulation workspace.
  core::SimWorkspace workspace;

  for (const auto& model : opt->traces) {
    const auto sets = workload::generate_ensemble(
        model, opt->scale.sets, opt->scale.jobs, opt->scale.seed);

    util::TextTable t;
    t.set_header({"transform", "SLDwA", "bounded sld", "util %", "avg wait [s]"},
                 {util::Align::kLeft});

    struct Variant {
      const char* name;
      workload::JobSet (*apply)(const workload::JobSet&);
    };
    const Variant variants[] = {
        {"baseline (x1 load)",
         [](const workload::JobSet& s) { return s.with_shrinking_factor(1.0); }},
        {"shrinking factor 0.5",
         [](const workload::JobSet& s) { return s.with_shrinking_factor(0.5); }},
        {"run times x2",
         [](const workload::JobSet& s) { return s.with_runtime_scaling(2.0); }},
        {"multi-submission x2",
         [](const workload::JobSet& s) { return s.with_multisubmission(2); }},
    };

    for (const Variant& v : variants) {
      std::vector<double> sldwa, bsld, util_pct, wait;
      for (const auto& base : sets) {
        const auto r = core::simulate(v.apply(base), config, workspace);
        sldwa.push_back(r.summary.sldwa);
        bsld.push_back(r.summary.avg_bounded_slowdown);
        util_pct.push_back(r.summary.utilization * 100);
        wait.push_back(r.summary.avg_wait);
      }
      t.add_row({v.name,
                 util::fmt_fixed(util::trimmed_mean_drop_extremes(sldwa), 2),
                 util::fmt_fixed(util::trimmed_mean_drop_extremes(bsld), 2),
                 util::fmt_fixed(util::trimmed_mean_drop_extremes(util_pct), 1),
                 util::fmt_fixed(util::trimmed_mean_drop_extremes(wait), 0)});
    }
    std::printf("--- %s ---\n%s\n", model.name.c_str(), t.to_string().c_str());
  }
  std::printf("reading: all three roughly double offered load, but run-time "
              "scaling also doubles every job's area/length (longer blocking "
              "intervals), and multi-submission doubles instantaneous "
              "parallelism demand; shrinking is the only transform that "
              "preserves the per-job outlook, as the paper argues.\n");
  return 0;
}
