/// Regenerates **Table 4 / Figure 1 / Figure 2**: SLDwA and utilisation of
/// the three static policies (FCFS, SJF, LJF — backfilling implicit via
/// planning) over shrinking factors 1.0..0.6 on all four traces, with the
/// paper's published values printed alongside. With --csv-dir the Figure 1
/// (SLDwA) and Figure 2 (utilisation) series are written as CSV.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "exp/paper_reference.hpp"
#include "util/table.hpp"

namespace {

using namespace dynp;

void run_trace(const workload::TraceModel& model,
               const exp::PaperStaticTrace& ref, const exp::SweepGrid& grid,
               std::size_t trace, util::CsvWriter& fig1,
               util::CsvWriter& fig2) {
  util::TextTable t;
  t.set_header({"factor", "SLDwA FCFS", "SJF", "LJF", "(paper F/S/L)",
                "util% FCFS", "SJF", "LJF", "(paper F/S/L)"},
               {util::Align::kLeft});

  for (std::size_t f = 0; f < exp::paper_shrinking_factors().size(); ++f) {
    const double factor = exp::paper_shrinking_factors()[f];
    std::array<exp::CombinedPoint, 3> points;
    for (std::size_t c = 0; c < points.size(); ++c) {
      points[c] = grid.at(trace, f, c);
    }
    const exp::PaperStaticRow& prow = ref.rows[f];
    t.add_row({util::fmt_fixed(factor, 1),
               util::fmt_fixed(points[0].sldwa, 2),
               util::fmt_fixed(points[1].sldwa, 2),
               util::fmt_fixed(points[2].sldwa, 2),
               util::fmt_fixed(prow.sldwa_fcfs, 2) + "/" +
                   util::fmt_fixed(prow.sldwa_sjf, 2) + "/" +
                   util::fmt_fixed(prow.sldwa_ljf, 2),
               util::fmt_fixed(points[0].utilization, 2),
               util::fmt_fixed(points[1].utilization, 2),
               util::fmt_fixed(points[2].utilization, 2),
               util::fmt_fixed(prow.util_fcfs, 2) + "/" +
                   util::fmt_fixed(prow.util_sjf, 2) + "/" +
                   util::fmt_fixed(prow.util_ljf, 2)});
    fig1.add_row(std::vector<std::string>{
        model.name, util::fmt_fixed(factor, 1),
        util::fmt_fixed(points[0].sldwa, 4), util::fmt_fixed(points[1].sldwa, 4),
        util::fmt_fixed(points[2].sldwa, 4)});
    fig2.add_row(std::vector<std::string>{
        model.name, util::fmt_fixed(factor, 1),
        util::fmt_fixed(points[0].utilization, 4),
        util::fmt_fixed(points[1].utilization, 4),
        util::fmt_fixed(points[2].utilization, 4)});
  }
  std::printf("--- %s ---\n%s\n", model.name.c_str(), t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "table4_static_policies — SLDwA and utilisation of FCFS/SJF/LJF vs the "
      "paper's Table 4 (Figures 1 and 2)");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  std::printf("Table 4 / Figures 1+2 — static policies (scale: %zu sets x "
              "%zu jobs; paper: 10 x 10000)\n\n",
              opt->scale.sets, opt->scale.jobs);

  // One orchestrated grid covers every trace, factor and policy; the
  // per-trace loop below only formats the finished points.
  const std::vector<core::SimulationConfig> configs = {
      core::static_config(policies::PolicyKind::kFcfs),
      core::static_config(policies::PolicyKind::kSjf),
      core::static_config(policies::PolicyKind::kLjf)};
  const exp::SweepGrid grid =
      exp::run_bench_grid(*opt, exp::paper_shrinking_factors(), configs);

  util::CsvWriter fig1({"trace", "factor", "sldwa_fcfs", "sldwa_sjf",
                        "sldwa_ljf"});
  util::CsvWriter fig2({"trace", "factor", "util_fcfs", "util_sjf",
                        "util_ljf"});
  for (std::size_t t = 0; t < opt->traces.size(); ++t) {
    for (const auto& ref : exp::paper_table4()) {
      if (opt->traces[t].name == ref.name) {
        run_trace(opt->traces[t], ref, grid, t, fig1, fig2);
      }
    }
  }
  if (!opt->csv_dir.empty()) {
    const std::string p1 = opt->csv_dir + "/fig1_sldwa_static.csv";
    const std::string p2 = opt->csv_dir + "/fig2_util_static.csv";
    if (fig1.write_file(p1) && fig2.write_file(p2)) {
      std::printf("figure series written: %s, %s\n", p1.c_str(), p2.c_str());
    } else {
      std::fprintf(stderr, "failed to write CSV files under %s\n",
                   opt->csv_dir.c_str());
      return 1;
    }
  }
  return 0;
}
