/// **Ablation C**: the self-tuning step scores candidate schedules with a
/// performance metric; the paper uses SLDwA. This bench swaps the preview
/// metric (SLDwA, ART, mean slowdown, bounded slowdown, ARTwW, max
/// completion) and reports the resulting *outcome* SLDwA and utilisation —
/// i.e. how sensitive dynP is to its internal objective.

#include <cstdio>

#include "exp/bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dynp;
  util::CliParser cli(
      "ablation_metric — dynP(advanced) with different candidate-scoring "
      "preview metrics");
  exp::add_bench_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto opt = exp::read_bench_options(cli);
  if (!opt) return 1;

  const metrics::PreviewMetric previews[] = {
      metrics::PreviewMetric::kSldwa,          metrics::PreviewMetric::kAvgResponse,
      metrics::PreviewMetric::kAvgSlowdown,    metrics::PreviewMetric::kBoundedSlowdown,
      metrics::PreviewMetric::kArtww,          metrics::PreviewMetric::kMaxCompletion,
  };

  std::printf("Ablation C — preview metric of the self-tuning step "
              "(advanced decider; scale: %zu sets x %zu jobs)\n\n",
              opt->scale.sets, opt->scale.jobs);

  std::vector<core::SimulationConfig> configs;
  for (const auto m : previews) {
    auto config = core::dynp_config(core::make_advanced_decider());
    config.preview = m;
    configs.push_back(std::move(config));
  }
  const exp::SweepGrid grid =
      exp::run_bench_grid(*opt, exp::paper_shrinking_factors(), configs);

  for (std::size_t trace = 0; trace < opt->traces.size(); ++trace) {
    const auto& model = opt->traces[trace];
    util::TextTable t;
    std::vector<std::string> header = {"factor"};
    for (const auto m : previews) {
      header.push_back(std::string("SLDwA/") + metrics::name(m));
    }
    for (const auto m : previews) {
      header.push_back(std::string("util/") + metrics::name(m));
    }
    t.set_header(header, {util::Align::kLeft});
    for (std::size_t f = 0; f < exp::paper_shrinking_factors().size(); ++f) {
      const double factor = exp::paper_shrinking_factors()[f];
      std::vector<std::string> row = {util::fmt_fixed(factor, 1)};
      std::vector<std::string> utils;
      for (std::size_t c = 0; c < configs.size(); ++c) {
        const exp::CombinedPoint& p = grid.at(trace, f, c);
        row.push_back(util::fmt_fixed(p.sldwa, 2));
        utils.push_back(util::fmt_fixed(p.utilization, 1));
      }
      row.insert(row.end(), utils.begin(), utils.end());
      t.add_row(std::move(row));
    }
    std::printf("--- %s ---\n%s\n", model.name.c_str(), t.to_string().c_str());
  }
  std::printf("reading: MAXC optimises utilisation/makespan and behaves "
              "LJF-like (poor slowdowns); the slowdown-family metrics agree "
              "closely, supporting the paper's SLDwA choice.\n");
  return 0;
}
