
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/policies/policy_queue_test.cpp" "tests/CMakeFiles/test_policies.dir/policies/policy_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_policies.dir/policies/policy_queue_test.cpp.o.d"
  "/root/repo/tests/policies/policy_test.cpp" "tests/CMakeFiles/test_policies.dir/policies/policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_policies.dir/policies/policy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/dynp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dynp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/dynp_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/dynp_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dynp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dynp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dynp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
