file(REMOVE_RECURSE
  "CMakeFiles/test_rms.dir/rms/planner_test.cpp.o"
  "CMakeFiles/test_rms.dir/rms/planner_test.cpp.o.d"
  "CMakeFiles/test_rms.dir/rms/profile_property_test.cpp.o"
  "CMakeFiles/test_rms.dir/rms/profile_property_test.cpp.o.d"
  "CMakeFiles/test_rms.dir/rms/profile_test.cpp.o"
  "CMakeFiles/test_rms.dir/rms/profile_test.cpp.o.d"
  "test_rms"
  "test_rms.pdb"
  "test_rms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
