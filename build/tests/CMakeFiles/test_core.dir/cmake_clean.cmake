file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/decider_table1_test.cpp.o"
  "CMakeFiles/test_core.dir/core/decider_table1_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/decider_test.cpp.o"
  "CMakeFiles/test_core.dir/core/decider_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/determinism_test.cpp.o"
  "CMakeFiles/test_core.dir/core/determinism_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/observer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/observer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/recording_decider_test.cpp.o"
  "CMakeFiles/test_core.dir/core/recording_decider_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/scheduler_property_test.cpp.o"
  "CMakeFiles/test_core.dir/core/scheduler_property_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/semantics_test.cpp.o"
  "CMakeFiles/test_core.dir/core/semantics_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/simulation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/simulation_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
