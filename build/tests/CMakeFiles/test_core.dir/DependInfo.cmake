
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/decider_table1_test.cpp" "tests/CMakeFiles/test_core.dir/core/decider_table1_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/decider_table1_test.cpp.o.d"
  "/root/repo/tests/core/decider_test.cpp" "tests/CMakeFiles/test_core.dir/core/decider_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/decider_test.cpp.o.d"
  "/root/repo/tests/core/determinism_test.cpp" "tests/CMakeFiles/test_core.dir/core/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/determinism_test.cpp.o.d"
  "/root/repo/tests/core/observer_test.cpp" "tests/CMakeFiles/test_core.dir/core/observer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/observer_test.cpp.o.d"
  "/root/repo/tests/core/recording_decider_test.cpp" "tests/CMakeFiles/test_core.dir/core/recording_decider_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/recording_decider_test.cpp.o.d"
  "/root/repo/tests/core/scheduler_property_test.cpp" "tests/CMakeFiles/test_core.dir/core/scheduler_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/scheduler_property_test.cpp.o.d"
  "/root/repo/tests/core/semantics_test.cpp" "tests/CMakeFiles/test_core.dir/core/semantics_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/semantics_test.cpp.o.d"
  "/root/repo/tests/core/simulation_test.cpp" "tests/CMakeFiles/test_core.dir/core/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/simulation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/dynp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dynp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rms/CMakeFiles/dynp_rms.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/dynp_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dynp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dynp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dynp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
