file(REMOVE_RECURSE
  "CMakeFiles/dynp_cli.dir/dynp_sim.cpp.o"
  "CMakeFiles/dynp_cli.dir/dynp_sim.cpp.o.d"
  "dynp_sim"
  "dynp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
