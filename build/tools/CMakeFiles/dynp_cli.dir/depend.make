# Empty dependencies file for dynp_cli.
# This may be replaced when dependencies are built.
