# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_report_smoke "/root/repo/build/tools/bench_report" "--smoke" "--out" "/root/repo/build/tools/BENCH_smoke.json")
set_tests_properties(bench_report_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
