# Empty compiler generated dependencies file for trace_workshop.
# This may be replaced when dependencies are built.
