file(REMOVE_RECURSE
  "CMakeFiles/trace_workshop.dir/trace_workshop.cpp.o"
  "CMakeFiles/trace_workshop.dir/trace_workshop.cpp.o.d"
  "trace_workshop"
  "trace_workshop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_workshop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
