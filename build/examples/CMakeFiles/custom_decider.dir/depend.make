# Empty dependencies file for custom_decider.
# This may be replaced when dependencies are built.
