file(REMOVE_RECURSE
  "CMakeFiles/custom_decider.dir/custom_decider.cpp.o"
  "CMakeFiles/custom_decider.dir/custom_decider.cpp.o.d"
  "custom_decider"
  "custom_decider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_decider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
