# Empty compiler generated dependencies file for schedule_export.
# This may be replaced when dependencies are built.
