file(REMOVE_RECURSE
  "CMakeFiles/schedule_export.dir/schedule_export.cpp.o"
  "CMakeFiles/schedule_export.dir/schedule_export.cpp.o.d"
  "schedule_export"
  "schedule_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
