# Empty compiler generated dependencies file for decider_audit.
# This may be replaced when dependencies are built.
