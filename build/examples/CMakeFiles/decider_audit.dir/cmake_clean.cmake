file(REMOVE_RECURSE
  "CMakeFiles/decider_audit.dir/decider_audit.cpp.o"
  "CMakeFiles/decider_audit.dir/decider_audit.cpp.o.d"
  "decider_audit"
  "decider_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decider_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
