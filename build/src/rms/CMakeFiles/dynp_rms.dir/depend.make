# Empty dependencies file for dynp_rms.
# This may be replaced when dependencies are built.
