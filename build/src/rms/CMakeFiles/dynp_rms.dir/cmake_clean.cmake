file(REMOVE_RECURSE
  "CMakeFiles/dynp_rms.dir/planner.cpp.o"
  "CMakeFiles/dynp_rms.dir/planner.cpp.o.d"
  "CMakeFiles/dynp_rms.dir/profile.cpp.o"
  "CMakeFiles/dynp_rms.dir/profile.cpp.o.d"
  "libdynp_rms.a"
  "libdynp_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynp_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
