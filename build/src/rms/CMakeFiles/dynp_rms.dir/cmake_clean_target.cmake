file(REMOVE_RECURSE
  "libdynp_rms.a"
)
