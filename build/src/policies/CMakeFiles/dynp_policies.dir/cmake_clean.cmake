file(REMOVE_RECURSE
  "CMakeFiles/dynp_policies.dir/policy.cpp.o"
  "CMakeFiles/dynp_policies.dir/policy.cpp.o.d"
  "libdynp_policies.a"
  "libdynp_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynp_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
