# Empty compiler generated dependencies file for dynp_policies.
# This may be replaced when dependencies are built.
