file(REMOVE_RECURSE
  "libdynp_policies.a"
)
