file(REMOVE_RECURSE
  "CMakeFiles/dynp_util.dir/cli.cpp.o"
  "CMakeFiles/dynp_util.dir/cli.cpp.o.d"
  "CMakeFiles/dynp_util.dir/stats.cpp.o"
  "CMakeFiles/dynp_util.dir/stats.cpp.o.d"
  "CMakeFiles/dynp_util.dir/table.cpp.o"
  "CMakeFiles/dynp_util.dir/table.cpp.o.d"
  "CMakeFiles/dynp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dynp_util.dir/thread_pool.cpp.o.d"
  "libdynp_util.a"
  "libdynp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
