file(REMOVE_RECURSE
  "libdynp_util.a"
)
