# Empty dependencies file for dynp_util.
# This may be replaced when dependencies are built.
