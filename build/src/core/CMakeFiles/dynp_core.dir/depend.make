# Empty dependencies file for dynp_core.
# This may be replaced when dependencies are built.
