file(REMOVE_RECURSE
  "CMakeFiles/dynp_core.dir/decider.cpp.o"
  "CMakeFiles/dynp_core.dir/decider.cpp.o.d"
  "CMakeFiles/dynp_core.dir/recording_decider.cpp.o"
  "CMakeFiles/dynp_core.dir/recording_decider.cpp.o.d"
  "CMakeFiles/dynp_core.dir/simulation.cpp.o"
  "CMakeFiles/dynp_core.dir/simulation.cpp.o.d"
  "libdynp_core.a"
  "libdynp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
