file(REMOVE_RECURSE
  "libdynp_core.a"
)
