# Empty dependencies file for dynp_workload.
# This may be replaced when dependencies are built.
