file(REMOVE_RECURSE
  "CMakeFiles/dynp_workload.dir/feitelson.cpp.o"
  "CMakeFiles/dynp_workload.dir/feitelson.cpp.o.d"
  "CMakeFiles/dynp_workload.dir/job.cpp.o"
  "CMakeFiles/dynp_workload.dir/job.cpp.o.d"
  "CMakeFiles/dynp_workload.dir/models.cpp.o"
  "CMakeFiles/dynp_workload.dir/models.cpp.o.d"
  "CMakeFiles/dynp_workload.dir/swf.cpp.o"
  "CMakeFiles/dynp_workload.dir/swf.cpp.o.d"
  "CMakeFiles/dynp_workload.dir/trace_stats.cpp.o"
  "CMakeFiles/dynp_workload.dir/trace_stats.cpp.o.d"
  "libdynp_workload.a"
  "libdynp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
