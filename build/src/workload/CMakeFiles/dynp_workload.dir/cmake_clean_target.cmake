file(REMOVE_RECURSE
  "libdynp_workload.a"
)
