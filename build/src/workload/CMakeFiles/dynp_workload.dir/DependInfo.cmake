
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/feitelson.cpp" "src/workload/CMakeFiles/dynp_workload.dir/feitelson.cpp.o" "gcc" "src/workload/CMakeFiles/dynp_workload.dir/feitelson.cpp.o.d"
  "/root/repo/src/workload/job.cpp" "src/workload/CMakeFiles/dynp_workload.dir/job.cpp.o" "gcc" "src/workload/CMakeFiles/dynp_workload.dir/job.cpp.o.d"
  "/root/repo/src/workload/models.cpp" "src/workload/CMakeFiles/dynp_workload.dir/models.cpp.o" "gcc" "src/workload/CMakeFiles/dynp_workload.dir/models.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "src/workload/CMakeFiles/dynp_workload.dir/swf.cpp.o" "gcc" "src/workload/CMakeFiles/dynp_workload.dir/swf.cpp.o.d"
  "/root/repo/src/workload/trace_stats.cpp" "src/workload/CMakeFiles/dynp_workload.dir/trace_stats.cpp.o" "gcc" "src/workload/CMakeFiles/dynp_workload.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dynp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
