# Empty compiler generated dependencies file for dynp_metrics.
# This may be replaced when dependencies are built.
