file(REMOVE_RECURSE
  "CMakeFiles/dynp_metrics.dir/metrics.cpp.o"
  "CMakeFiles/dynp_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/dynp_metrics.dir/validate.cpp.o"
  "CMakeFiles/dynp_metrics.dir/validate.cpp.o.d"
  "libdynp_metrics.a"
  "libdynp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
