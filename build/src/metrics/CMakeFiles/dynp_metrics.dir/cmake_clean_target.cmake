file(REMOVE_RECURSE
  "libdynp_metrics.a"
)
