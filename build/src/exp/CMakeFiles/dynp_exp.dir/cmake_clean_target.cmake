file(REMOVE_RECURSE
  "libdynp_exp.a"
)
