# Empty compiler generated dependencies file for dynp_exp.
# This may be replaced when dependencies are built.
