file(REMOVE_RECURSE
  "CMakeFiles/dynp_exp.dir/ascii_plot.cpp.o"
  "CMakeFiles/dynp_exp.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/dynp_exp.dir/experiment.cpp.o"
  "CMakeFiles/dynp_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/dynp_exp.dir/export.cpp.o"
  "CMakeFiles/dynp_exp.dir/export.cpp.o.d"
  "CMakeFiles/dynp_exp.dir/paper_reference.cpp.o"
  "CMakeFiles/dynp_exp.dir/paper_reference.cpp.o.d"
  "libdynp_exp.a"
  "libdynp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
