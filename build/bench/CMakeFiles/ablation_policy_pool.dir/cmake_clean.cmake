file(REMOVE_RECURSE
  "CMakeFiles/ablation_policy_pool.dir/ablation_policy_pool.cpp.o"
  "CMakeFiles/ablation_policy_pool.dir/ablation_policy_pool.cpp.o.d"
  "ablation_policy_pool"
  "ablation_policy_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
