# Empty dependencies file for ablation_policy_pool.
# This may be replaced when dependencies are built.
