file(REMOVE_RECURSE
  "CMakeFiles/ablation_tuning_events.dir/ablation_tuning_events.cpp.o"
  "CMakeFiles/ablation_tuning_events.dir/ablation_tuning_events.cpp.o.d"
  "ablation_tuning_events"
  "ablation_tuning_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tuning_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
