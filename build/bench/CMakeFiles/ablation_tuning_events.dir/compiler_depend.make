# Empty compiler generated dependencies file for ablation_tuning_events.
# This may be replaced when dependencies are built.
