# Empty dependencies file for table2_trace_properties.
# This may be replaced when dependencies are built.
