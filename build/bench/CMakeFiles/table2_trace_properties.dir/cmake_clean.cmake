file(REMOVE_RECURSE
  "CMakeFiles/table2_trace_properties.dir/table2_trace_properties.cpp.o"
  "CMakeFiles/table2_trace_properties.dir/table2_trace_properties.cpp.o.d"
  "table2_trace_properties"
  "table2_trace_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_trace_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
