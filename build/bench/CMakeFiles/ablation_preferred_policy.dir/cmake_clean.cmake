file(REMOVE_RECURSE
  "CMakeFiles/ablation_preferred_policy.dir/ablation_preferred_policy.cpp.o"
  "CMakeFiles/ablation_preferred_policy.dir/ablation_preferred_policy.cpp.o.d"
  "ablation_preferred_policy"
  "ablation_preferred_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preferred_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
