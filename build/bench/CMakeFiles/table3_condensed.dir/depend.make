# Empty dependencies file for table3_condensed.
# This may be replaced when dependencies are built.
