file(REMOVE_RECURSE
  "CMakeFiles/table3_condensed.dir/table3_condensed.cpp.o"
  "CMakeFiles/table3_condensed.dir/table3_condensed.cpp.o.d"
  "table3_condensed"
  "table3_condensed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_condensed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
