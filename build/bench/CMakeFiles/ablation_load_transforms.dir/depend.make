# Empty dependencies file for ablation_load_transforms.
# This may be replaced when dependencies are built.
