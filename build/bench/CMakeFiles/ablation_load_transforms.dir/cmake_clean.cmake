file(REMOVE_RECURSE
  "CMakeFiles/ablation_load_transforms.dir/ablation_load_transforms.cpp.o"
  "CMakeFiles/ablation_load_transforms.dir/ablation_load_transforms.cpp.o.d"
  "ablation_load_transforms"
  "ablation_load_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_load_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
