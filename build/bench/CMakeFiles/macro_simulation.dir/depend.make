# Empty dependencies file for macro_simulation.
# This may be replaced when dependencies are built.
