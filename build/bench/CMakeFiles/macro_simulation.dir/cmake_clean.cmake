file(REMOVE_RECURSE
  "CMakeFiles/macro_simulation.dir/macro_simulation.cpp.o"
  "CMakeFiles/macro_simulation.dir/macro_simulation.cpp.o.d"
  "macro_simulation"
  "macro_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macro_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
