# Empty dependencies file for table5_dynp_deciders.
# This may be replaced when dependencies are built.
