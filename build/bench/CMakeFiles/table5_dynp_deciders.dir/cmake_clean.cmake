file(REMOVE_RECURSE
  "CMakeFiles/table5_dynp_deciders.dir/table5_dynp_deciders.cpp.o"
  "CMakeFiles/table5_dynp_deciders.dir/table5_dynp_deciders.cpp.o.d"
  "table5_dynp_deciders"
  "table5_dynp_deciders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_dynp_deciders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
