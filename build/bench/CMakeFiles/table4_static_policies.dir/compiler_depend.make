# Empty compiler generated dependencies file for table4_static_policies.
# This may be replaced when dependencies are built.
