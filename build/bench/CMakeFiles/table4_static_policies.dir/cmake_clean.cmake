file(REMOVE_RECURSE
  "CMakeFiles/table4_static_policies.dir/table4_static_policies.cpp.o"
  "CMakeFiles/table4_static_policies.dir/table4_static_policies.cpp.o.d"
  "table4_static_policies"
  "table4_static_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_static_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
