/// Replay determinism of fault-injected runs: the whole point of routing
/// every fault decision through seed-derived streams and the single event
/// calendar is that a faulty run is exactly reproducible. These tests pin
/// that down at the byte level — the exported outcome CSV and the JSONL
/// event/fault trace of two identically-configured runs must be identical,
/// with parallel self-tuning on or off — and verify that a fault-free
/// configuration leaves the fault-free schedule untouched.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/simulation.hpp"
#include "exp/export.hpp"
#include "obs/obs.hpp"
#include "workload/models.hpp"

namespace dynp::core {
namespace {

[[nodiscard]] workload::JobSet test_jobs() {
  return workload::generate(workload::model_by_name("KTH"), 600, 7)
      .with_shrinking_factor(0.7);
}

[[nodiscard]] fault::FaultConfig fault_mix() {
  fault::FaultConfig config;
  config.seed = 13;
  config.node_mtbf = 30000;
  config.node_mttr = 4000;
  config.job_fail_p = 0.05;
  config.max_retries = 50;
  return config;
}

/// Runs the config and renders the outcome CSV plus (when \p with_trace) the
/// JSONL trace into strings.
struct RunArtifacts {
  std::string csv;
  std::string trace;
};

[[nodiscard]] RunArtifacts run_and_render(const workload::JobSet& set,
                                          SimulationConfig config,
                                          bool with_trace) {
  std::ostringstream trace_out;
  std::unique_ptr<obs::Tracer> tracer;
  if (with_trace) {
    tracer =
        std::make_unique<obs::Tracer>(trace_out, obs::TraceFormat::kJsonl);
    config.instruments.tracer = tracer.get();
  }
  const SimulationResult r = simulate(set, config);
  if (tracer != nullptr) tracer->close();
  std::ostringstream csv_out;
  exp::write_outcomes_csv(csv_out, r.outcomes);
  return RunArtifacts{csv_out.str(), trace_out.str()};
}

TEST(FaultDeterminism, SameSeedGivesByteIdenticalCsvAndTrace) {
  const workload::JobSet set = test_jobs();
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.faults = fault_mix();

  const RunArtifacts a = run_and_render(set, config, /*with_trace=*/true);
  const RunArtifacts b = run_and_render(set, config, /*with_trace=*/true);
  EXPECT_FALSE(a.csv.empty());
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.trace, b.trace);
  // The trace actually contains fault records (not just vacuous equality) —
  // unless the obs hooks are compiled out, where both traces are empty and
  // only the byte equality above is meaningful.
  if (obs::kEnabled) {
    EXPECT_FALSE(a.trace.empty());
    EXPECT_NE(a.trace.find("\"type\": \"fault\""), std::string::npos);
  }
}

TEST(FaultDeterminism, ParallelTuningDoesNotShiftTheFaultHistory) {
  const workload::JobSet set = test_jobs();
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.faults = fault_mix();
  config.parallel_tuning = false;
  const RunArtifacts sequential =
      run_and_render(set, config, /*with_trace=*/true);

  config.parallel_tuning = true;
  config.tuning_threads = 3;
  const RunArtifacts parallel =
      run_and_render(set, config, /*with_trace=*/true);
  EXPECT_EQ(sequential.csv, parallel.csv);
  EXPECT_EQ(sequential.trace, parallel.trace);
}

TEST(FaultDeterminism, FaultStatsReproduceExactly) {
  const workload::JobSet set = test_jobs();
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.faults = fault_mix();
  const SimulationResult a = simulate(set, config);
  const SimulationResult b = simulate(set, config);
  EXPECT_EQ(a.faults.node_failures, b.faults.node_failures);
  EXPECT_EQ(a.faults.node_repairs, b.faults.node_repairs);
  EXPECT_EQ(a.faults.job_failures, b.faults.job_failures);
  EXPECT_EQ(a.faults.node_kills, b.faults.node_kills);
  EXPECT_EQ(a.faults.requeues, b.faults.requeues);
  EXPECT_EQ(a.faults.jobs_dropped, b.faults.jobs_dropped);
  EXPECT_EQ(a.faults.repair_evictions, b.faults.repair_evictions);
  EXPECT_GT(a.faults.node_failures, 0u);
  EXPECT_GT(a.faults.job_failures, 0u);
}

/// Disabled fault injection must leave the simulation byte-identical to a
/// configuration that never mentions faults — the CSV is the pre-fault-layer
/// baseline.
TEST(FaultDeterminism, DisabledFaultsMatchTheFaultFreeBaseline) {
  const workload::JobSet set = test_jobs();
  for (const PlannerSemantics semantics :
       {PlannerSemantics::kReplan, PlannerSemantics::kGuarantee}) {
    SimulationConfig config = dynp_config(make_advanced_decider());
    config.semantics = semantics;
    const RunArtifacts baseline =
        run_and_render(set, config, /*with_trace=*/true);

    config.faults = fault::FaultConfig{};  // present, inactive
    const RunArtifacts gated =
        run_and_render(set, config, /*with_trace=*/true);
    EXPECT_EQ(baseline.csv, gated.csv);
    EXPECT_EQ(baseline.trace, gated.trace);
  }
}

}  // namespace
}  // namespace dynp::core
