/// Resilience semantics of the fault-injected scheduler: failed attempts are
/// requeued with backoff and eventually complete (or are dropped once the
/// retry budget is spent), node outages kill overflowing jobs and shrink the
/// machine until repair, guarantee-mode repair keeps reservations feasible,
/// and an over-budget self-tuning step degrades to the fallback policy
/// instead of stalling the event loop.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/simulation.hpp"
#include "metrics/validate.hpp"
#include "workload/models.hpp"

namespace dynp::core {
namespace {

[[nodiscard]] workload::JobSet test_jobs(std::size_t n = 600,
                                         std::uint64_t seed = 7) {
  return workload::generate(workload::model_by_name("KTH"), n, seed)
      .with_shrinking_factor(0.7);
}

[[nodiscard]] fault::FaultConfig job_faults(double p,
                                            std::uint32_t retries = 5) {
  fault::FaultConfig config;
  config.seed = 11;
  config.job_fail_p = p;
  config.max_retries = retries;
  config.backoff_base = 30;
  config.backoff_cap = 600;
  return config;
}

[[nodiscard]] fault::FaultConfig node_faults(double mtbf, double mttr) {
  fault::FaultConfig config;
  config.seed = 11;
  config.node_mtbf = mtbf;
  config.node_mttr = mttr;
  return config;
}

/// Every non-dropped outcome must be physically consistent; dropped jobs
/// carry the width-0 sentinel and nothing else.
void expect_consistent(const workload::JobSet& set,
                       const SimulationResult& r) {
  const auto report = metrics::validate_outcomes(set, r.outcomes);
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().detail);
  std::uint64_t dropped = 0;
  for (const auto& o : r.outcomes) {
    if (o.width == 0) ++dropped;
  }
  EXPECT_EQ(dropped, r.faults.jobs_dropped);
  EXPECT_EQ(r.faults.jobs_completed + r.faults.jobs_dropped,
            r.outcomes.size());
}

TEST(Resilience, FailedJobsRetryAndComplete) {
  const workload::JobSet set = test_jobs();
  SimulationConfig config = static_config(policies::PolicyKind::kFcfs);
  config.faults = job_faults(0.1, /*retries=*/20);
  config.audit = true;
  const SimulationResult r = simulate(set, config);

  EXPECT_GT(r.faults.job_failures, 0u);
  EXPECT_EQ(r.faults.requeues, r.faults.job_failures);
  EXPECT_EQ(r.faults.jobs_dropped, 0u);
  EXPECT_EQ(r.faults.jobs_completed, set.size());
  EXPECT_EQ(r.faults.node_failures, 0u);
  expect_consistent(set, r);
}

TEST(Resilience, ExhaustedRetriesDropTheJob) {
  const workload::JobSet set = test_jobs(300);
  SimulationConfig config = static_config(policies::PolicyKind::kFcfs);
  // Every attempt of every job (long enough to die mid-run) fails, and no
  // retries are allowed: those jobs must all be dropped, not spin forever.
  config.faults = job_faults(1.0, /*retries=*/0);
  const SimulationResult r = simulate(set, config);

  EXPECT_GT(r.faults.jobs_dropped, 0u);
  EXPECT_EQ(r.faults.requeues, 0u);
  // Only sub-2-second jobs are too short to die mid-run.
  for (std::size_t i = 0; i < set.size(); ++i) {
    const bool droppable = set[i].actual_runtime >= 2;
    EXPECT_EQ(r.outcomes[i].width == 0, droppable) << "job " << i;
  }
  expect_consistent(set, r);
}

TEST(Resilience, NodeOutagesKillAndRequeueButTheRunFinishes) {
  const workload::JobSet set = test_jobs();
  SimulationConfig config = static_config(policies::PolicyKind::kFcfs);
  config.faults = node_faults(/*mtbf=*/20000, /*mttr=*/4000);
  config.faults->max_retries = 50;
  config.audit = true;
  const SimulationResult r = simulate(set, config);

  EXPECT_GT(r.faults.node_failures, 0u);
  EXPECT_EQ(r.faults.node_repairs, r.faults.node_failures);
  EXPECT_GT(r.faults.node_kills, 0u);
  EXPECT_EQ(r.faults.jobs_completed, set.size());
  expect_consistent(set, r);
}

TEST(Resilience, GuaranteeRepairKeepsReservationsAuditClean) {
  const workload::JobSet set = test_jobs();
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.semantics = PlannerSemantics::kGuarantee;
  config.faults = node_faults(/*mtbf=*/20000, /*mttr=*/4000);
  config.faults->job_fail_p = 0.05;
  config.faults->max_retries = 50;
  config.audit = true;  // every post-repair pass re-verified
  const SimulationResult r = simulate(set, config);

  EXPECT_GT(r.faults.node_failures, 0u);
  EXPECT_GT(r.faults.repair_evictions, 0u);
  EXPECT_GT(r.audit_events, 0u);
  EXPECT_EQ(r.faults.jobs_completed, set.size());
  expect_consistent(set, r);
}

TEST(Resilience, EasyQueueingSurvivesFaults) {
  const workload::JobSet set = test_jobs();
  SimulationConfig config = static_config(policies::PolicyKind::kFcfs);
  config.semantics = PlannerSemantics::kQueueingEasy;
  config.faults = node_faults(/*mtbf=*/20000, /*mttr=*/4000);
  config.faults->job_fail_p = 0.05;
  config.faults->max_retries = 50;
  config.audit = true;
  const SimulationResult r = simulate(set, config);

  EXPECT_GT(r.faults.node_failures, 0u);
  EXPECT_EQ(r.faults.jobs_completed, set.size());
  expect_consistent(set, r);
}

TEST(Resilience, InactiveFaultConfigIsIdenticalToNone) {
  const workload::JobSet set = test_jobs(400);
  SimulationConfig config = dynp_config(make_advanced_decider());
  const SimulationResult plain = simulate(set, config);

  config.faults = fault::FaultConfig{};  // present but inactive
  const SimulationResult gated = simulate(set, config);

  ASSERT_EQ(plain.outcomes.size(), gated.outcomes.size());
  for (std::size_t i = 0; i < plain.outcomes.size(); ++i) {
    EXPECT_EQ(plain.outcomes[i].start, gated.outcomes[i].start) << i;
    EXPECT_EQ(plain.outcomes[i].end, gated.outcomes[i].end) << i;
  }
  EXPECT_EQ(plain.decisions, gated.decisions);
  EXPECT_EQ(plain.switches, gated.switches);
  EXPECT_EQ(plain.summary.sldwa, gated.summary.sldwa);
}

/// Observer wiring: failed attempts and dropped jobs surface through the
/// dedicated hooks, with attempt numbers that actually count up.
class FaultObserver final : public SimulationObserver {
 public:
  void on_job_failed(Time /*now*/, const workload::Job& /*job*/,
                     std::uint32_t attempt) override {
    ++failed;
    max_attempt = std::max(max_attempt, attempt);
  }
  void on_job_dropped(Time /*now*/, const workload::Job& /*job*/) override {
    ++dropped;
  }
  int failed = 0;
  int dropped = 0;
  std::uint32_t max_attempt = 0;
};

TEST(Resilience, ObserverSeesFailuresAndDrops) {
  const workload::JobSet set = test_jobs(300);
  FaultObserver observer;
  SimulationConfig config = static_config(policies::PolicyKind::kFcfs);
  config.faults = job_faults(0.3, /*retries=*/1);
  config.observer = &observer;
  const SimulationResult r = simulate(set, config);

  EXPECT_EQ(observer.failed,
            static_cast<int>(r.faults.job_failures + r.faults.node_kills));
  EXPECT_EQ(observer.dropped, static_cast<int>(r.faults.jobs_dropped));
  EXPECT_GT(observer.failed, 0);
  EXPECT_GT(observer.dropped, 0);
  EXPECT_GE(observer.max_attempt, 1u);
}

TEST(Resilience, PlanBudgetDegradesTuningButCompletesTheRun) {
  const workload::JobSet set = test_jobs(400);
  SimulationConfig config = dynp_config(make_advanced_decider());
  // A budget no real fan-out can meet: tuning must degrade (repeatedly),
  // the decider is skipped there, and the run still completes and validates.
  config.plan_budget_us = 0.001;
  const SimulationResult r = simulate(set, config);

  EXPECT_GT(r.faults.degraded_tunings, 0u);
  EXPECT_EQ(r.faults.jobs_completed, set.size());
  const auto report = metrics::validate_outcomes(set, r.outcomes);
  EXPECT_TRUE(report.ok());

  // Degraded events tune less: strictly fewer decisions than the unbudgeted
  // run of the same workload.
  SimulationConfig unlimited = dynp_config(make_advanced_decider());
  const SimulationResult full = simulate(set, unlimited);
  EXPECT_LT(r.decisions, full.decisions);
}

}  // namespace
}  // namespace dynp::core
