/// Capacity-aware audit at scale: a 10k-job KTH run with node outages and
/// job failures, audited on every scheduling event. The auditor's sweep line
/// counts active outages as capacity claims (usage(t) <= capacity - down(t))
/// and re-plans every committed schedule from scratch on an outage-carrying
/// base profile, so a green run here proves the repair/requeue machinery
/// never oversubscribes the shrunken machine and never breaks the
/// incremental-planning determinism anchor. Heavier than the unit suites —
/// labeled `audit` so CI can schedule it separately.

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "metrics/validate.hpp"
#include "workload/models.hpp"

namespace dynp::core {
namespace {

[[nodiscard]] workload::JobSet big_kth() {
  return workload::generate(workload::model_by_name("KTH"), 10000, 42)
      .with_shrinking_factor(0.8);
}

[[nodiscard]] fault::FaultConfig fault_mix() {
  fault::FaultConfig config;
  config.seed = 5;
  config.node_mtbf = 100000;
  config.node_mttr = 5000;
  config.job_fail_p = 0.02;
  config.max_retries = 50;
  return config;
}

class FaultAudit : public ::testing::TestWithParam<PlannerSemantics> {};

TEST_P(FaultAudit, TenThousandJobFaultRunIsAuditClean) {
  const workload::JobSet set = big_kth();
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.semantics = GetParam();
  config.faults = fault_mix();
  config.audit = true;

  // The auditor aborts through the contract machinery on the first
  // violation, so a returned result is the assertion.
  const SimulationResult r = simulate(set, config);
  EXPECT_GT(r.audit_events, 0u);
  EXPECT_GT(r.faults.node_failures, 0u);
  EXPECT_GT(r.faults.job_failures, 0u);
  EXPECT_EQ(r.faults.jobs_completed + r.faults.jobs_dropped, set.size());
  EXPECT_TRUE(metrics::validate_outcomes(set, r.outcomes).ok());
}

INSTANTIATE_TEST_SUITE_P(Semantics, FaultAudit,
                         ::testing::Values(PlannerSemantics::kReplan,
                                           PlannerSemantics::kGuarantee),
                         [](const auto& param_info) {
                           return param_info.param == PlannerSemantics::kReplan
                                      ? "replan"
                                      : "guarantee";
                         });

}  // namespace
}  // namespace dynp::core
