#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "workload/job.hpp"
#include "workload/models.hpp"

namespace dynp::fault {
namespace {

[[nodiscard]] FaultConfig full_config() {
  FaultConfig config;
  config.seed = 7;
  config.node_mtbf = 50000;
  config.node_mttr = 2000;
  config.job_fail_p = 0.1;
  config.max_retries = 2;
  config.backoff_base = 30;
  config.backoff_cap = 600;
  return config;
}

TEST(FaultConfig, DefaultIsInactiveAndValid) {
  const FaultConfig config;
  EXPECT_FALSE(config.active());
  EXPECT_TRUE(config.validate().empty());
}

TEST(FaultConfig, ValidateRejectsBadValues) {
  FaultConfig config = full_config();
  config.node_mtbf = -1;
  EXPECT_FALSE(config.validate().empty());

  config = full_config();
  config.node_mttr = 0;
  EXPECT_FALSE(config.validate().empty());

  config = full_config();
  config.job_fail_p = 1.5;
  EXPECT_FALSE(config.validate().empty());

  config = full_config();
  config.backoff_base = 0;
  EXPECT_FALSE(config.validate().empty());

  config = full_config();
  config.backoff_cap = config.backoff_base / 2;
  EXPECT_FALSE(config.validate().empty());

  config = full_config();
  config.est_error_cv = -0.1;
  EXPECT_FALSE(config.validate().empty());

  EXPECT_TRUE(full_config().validate().empty());
}

TEST(FaultInjector, NodeFaultsNeedTwoNodes) {
  EXPECT_FALSE(FaultInjector(full_config(), 1).node_faults());
  EXPECT_TRUE(FaultInjector(full_config(), 2).node_faults());
  EXPECT_EQ(FaultInjector(full_config(), 100).max_concurrent_down(), 50u);
}

TEST(FaultInjector, NodeChainIsWholeSecondsAndSeedDeterministic) {
  FaultInjector a(full_config(), 64);
  FaultInjector b(full_config(), 64);
  for (int i = 0; i < 200; ++i) {
    const Time gap = a.next_failure_gap();
    EXPECT_EQ(gap, b.next_failure_gap());
    EXPECT_GE(gap, 1.0);
    EXPECT_EQ(gap, std::floor(gap));
    const Time repair = a.repair_duration();
    EXPECT_EQ(repair, b.repair_duration());
    EXPECT_GE(repair, 1.0);
    EXPECT_EQ(repair, std::floor(repair));
  }
}

TEST(FaultInjector, JobFateIsPureInJobAndAttempt) {
  const FaultInjector injector(full_config(), 64);
  // Query in one order...
  std::vector<JobFate> forward;
  for (JobId id = 0; id < 50; ++id) {
    for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
      forward.push_back(injector.job_fate(id, attempt));
    }
  }
  // ...then in reverse: every fate must be identical (order independence is
  // what keeps requeues and parallel tuning from shifting the fault history).
  std::size_t k = forward.size();
  for (JobId id = 50; id-- > 0;) {
    for (std::uint32_t attempt = 3; attempt-- > 0;) {
      const JobFate fate = injector.job_fate(id, attempt);
      --k;
      EXPECT_EQ(fate.fails, forward[k].fails);
      EXPECT_EQ(fate.fraction, forward[k].fraction);
    }
  }
}

TEST(FaultInjector, FailureRateTracksProbability) {
  FaultConfig config = full_config();
  config.job_fail_p = 0.25;
  const FaultInjector injector(config, 64);
  int failures = 0;
  const int samples = 4000;
  for (int i = 0; i < samples; ++i) {
    if (injector.job_fate(static_cast<JobId>(i), 0).fails) ++failures;
  }
  const double rate = static_cast<double>(failures) / samples;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultInjector, FailureOffsetStaysInsideTheRun) {
  const FaultInjector injector(full_config(), 64);
  for (JobId id = 0; id < 300; ++id) {
    const Time offset = injector.failure_offset(id, 0, 1000);
    if (offset < 0) continue;  // attempt completes
    EXPECT_GE(offset, 1.0);
    EXPECT_LE(offset, 999.0);
    EXPECT_EQ(offset, std::floor(offset));
  }
  // Jobs too short to die mid-run always complete.
  for (JobId id = 0; id < 300; ++id) {
    EXPECT_LT(injector.failure_offset(id, 0, 1.0), 0);
  }
}

TEST(FaultInjector, BackoffGrowsAndIsCapped) {
  FaultConfig config = full_config();
  config.backoff_base = 100;
  config.backoff_cap = 400;
  const FaultInjector injector(config, 64);
  for (JobId id = 0; id < 50; ++id) {
    for (std::uint32_t retry = 1; retry <= 6; ++retry) {
      const Time delay = injector.backoff_delay(id, retry);
      EXPECT_GE(delay, 1.0);
      // Capped growth, then +/-50% jitter.
      EXPECT_LE(delay, 400 * 1.5);
      EXPECT_EQ(delay, std::floor(delay));
      EXPECT_EQ(delay, injector.backoff_delay(id, retry));
    }
  }
}

TEST(PerturbEstimates, ZeroCvIsIdentity) {
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 200, 3);
  const workload::JobSet out = perturb_estimates(set, 0.0, 9);
  ASSERT_EQ(out.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(out[i].estimated_runtime, set[i].estimated_runtime);
  }
}

TEST(PerturbEstimates, KeepsPlanningContractAndIsDeterministic) {
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 500, 3);
  const workload::JobSet a = perturb_estimates(set, 0.5, 9);
  const workload::JobSet b = perturb_estimates(set, 0.5, 9);
  ASSERT_EQ(a.size(), set.size());
  bool any_changed = false;
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(a[i].estimated_runtime, b[i].estimated_runtime) << i;
    // The planning-RMS contract survives perturbation; perturbed values are
    // whole seconds unless the actual-runtime floor kicked in.
    EXPECT_GE(a[i].estimated_runtime, a[i].actual_runtime) << i;
    EXPECT_TRUE(a[i].estimated_runtime == std::floor(a[i].estimated_runtime) ||
                a[i].estimated_runtime == a[i].actual_runtime)
        << i;
    any_changed =
        any_changed || a[i].estimated_runtime != set[i].estimated_runtime;
  }
  EXPECT_TRUE(any_changed);
  // Different seeds draw different factors.
  const workload::JobSet c = perturb_estimates(set, 0.5, 10);
  bool seed_matters = false;
  for (std::size_t i = 0; i < set.size(); ++i) {
    seed_matters =
        seed_matters || a[i].estimated_runtime != c[i].estimated_runtime;
  }
  EXPECT_TRUE(seed_matters);
}

}  // namespace
}  // namespace dynp::fault
