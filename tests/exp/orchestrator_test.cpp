/// The sweep orchestrator's headline contracts, pinned at the byte level:
/// the combined grid must be identical to per-point `SweepRunner::run`
/// calls whatever the thread count, workspace reuse, or cache state — the
/// orchestrator may only change *when* cells run, never *what* they
/// compute. Plus the persistent point cache's addressing rules: exact
/// round-trip, collision-degrades-to-miss, uncacheable configs, and the
/// execution-knob-neutral key fingerprint.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "exp/orchestrator.hpp"
#include "exp/point_cache.hpp"
#include "obs/registry.hpp"
#include "workload/models.hpp"

namespace dynp::exp {
namespace {

[[nodiscard]] ExperimentScale mini_scale() {
  return ExperimentScale{3, 250, 11};
}

[[nodiscard]] std::vector<double> mini_factors() { return {1.0, 0.7}; }

[[nodiscard]] std::vector<core::SimulationConfig> mini_configs() {
  return {core::static_config(policies::PolicyKind::kSjf),
          core::dynp_config(core::make_advanced_decider())};
}

/// Canonical `%.17g` render of a grid. Two grids whose renders compare
/// equal are byte-identical in every double — the same guarantee the
/// exported CSV/JSON artefacts inherit.
[[nodiscard]] std::string render(const SweepGrid& grid) {
  std::string out;
  char buf[32];
  const auto put = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g;", v);
    out += buf;
  };
  for (const CombinedPoint& p : grid.points) {
    put(p.sldwa);
    put(p.utilization);
    put(p.avg_bounded_slowdown);
    put(p.avg_response);
    put(p.switches);
    put(p.decisions);
    put(p.sldwa_stddev);
    put(p.util_stddev);
    put(p.node_failures);
    put(p.job_failures);
    put(p.requeues);
    put(p.jobs_dropped);
    for (const double v : p.sldwa_per_set) put(v);
    for (const double v : p.util_per_set) put(v);
    out += '\n';
  }
  return out;
}

/// Fresh scratch directory under the system temp dir, removed on scope exit.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

[[nodiscard]] SweepGrid run_grid(OrchestratorOptions options,
                                 SweepStats* stats = nullptr) {
  SweepOrchestrator orchestrator(
      {workload::model_by_name("KTH"), workload::model_by_name("CTC")},
      mini_scale(), std::move(options));
  SweepGrid grid = orchestrator.run_grid(mini_factors(), mini_configs());
  if (stats != nullptr) *stats = orchestrator.stats();
  return grid;
}

TEST(SweepOrchestrator, MatchesSerialSweepRunnerByteForByte) {
  OrchestratorOptions options;
  options.threads = 4;
  const SweepGrid grid = run_grid(options);

  SweepGrid serial;
  serial.traces = 2;
  serial.factors = mini_factors().size();
  serial.configs = mini_configs().size();
  const std::vector<workload::TraceModel> models = {
      workload::model_by_name("KTH"), workload::model_by_name("CTC")};
  for (const auto& model : models) {
    const SweepRunner runner(model, mini_scale());
    for (const double factor : mini_factors()) {
      for (const auto& config : mini_configs()) {
        serial.points.push_back(runner.run(factor, config, 1));
      }
    }
  }
  EXPECT_EQ(render(serial), render(grid));
}

TEST(SweepOrchestrator, ThreadCountAndWarmCacheAreByteIdentical) {
  TempDir cache("dynp_orchestrator_cache_test");

  OrchestratorOptions one;
  one.threads = 1;
  const std::string t1 = render(run_grid(one));

  OrchestratorOptions eight;
  eight.threads = 8;
  const std::string t8 = render(run_grid(eight));
  EXPECT_EQ(t1, t8);

  OrchestratorOptions cached;
  cached.threads = 8;
  cached.cache_dir = cache.path.string();
  SweepStats cold_stats;
  const std::string cold = render(run_grid(cached, &cold_stats));
  EXPECT_EQ(cold_stats.cache_hits, 0u);
  EXPECT_EQ(cold_stats.cache_misses, cold_stats.points_total);
  EXPECT_EQ(t1, cold);

  SweepStats warm_stats;
  const std::string warm = render(run_grid(cached, &warm_stats));
  EXPECT_EQ(warm_stats.cache_hits, warm_stats.points_total);
  EXPECT_EQ(warm_stats.cache_misses, 0u);
  EXPECT_EQ(warm_stats.cells_simulated, 0u);
  EXPECT_EQ(t1, warm);
}

TEST(SweepOrchestrator, FaultSweepMatchesSerialPerSetSeeds) {
  auto config = core::dynp_config(core::make_advanced_decider());
  fault::FaultConfig faults;
  faults.seed = 5;
  faults.node_mtbf = 40000;
  faults.node_mttr = 3000;
  faults.job_fail_p = 0.03;
  faults.est_error_cv = 0.2;
  config.faults = faults;

  SweepOrchestrator orchestrator({workload::model_by_name("KTH")},
                                 mini_scale());
  const SweepGrid grid = orchestrator.run_grid({0.8}, {config});

  const SweepRunner runner(workload::model_by_name("KTH"), mini_scale());
  const CombinedPoint serial = runner.run(0.8, config, 1);
  ASSERT_EQ(grid.points.size(), 1u);
  EXPECT_EQ(grid.points[0].sldwa, serial.sldwa);
  EXPECT_EQ(grid.points[0].sldwa_per_set, serial.sldwa_per_set);
  EXPECT_EQ(grid.points[0].job_failures, serial.job_failures);
  EXPECT_EQ(grid.points[0].requeues, serial.requeues);
  EXPECT_GT(grid.points[0].job_failures, 0.0);
}

TEST(SweepOrchestrator, BudgetedTuningIsNeverCached) {
  TempDir cache("dynp_orchestrator_budget_cache_test");
  auto config = core::dynp_config(core::make_advanced_decider());
  config.plan_budget_us = 1e6;  // wall-clock dependent => uncacheable

  OrchestratorOptions options;
  options.threads = 1;
  options.cache_dir = cache.path.string();
  for (int pass = 0; pass < 2; ++pass) {
    SweepOrchestrator orchestrator({workload::model_by_name("KTH")},
                                   mini_scale(), options);
    (void)orchestrator.run_grid({1.0}, {config});
    EXPECT_EQ(orchestrator.stats().cache_hits, 0u) << "pass " << pass;
    EXPECT_EQ(orchestrator.stats().cache_misses, 1u) << "pass " << pass;
  }
  EXPECT_TRUE(!std::filesystem::exists(cache.path) ||
              std::filesystem::is_empty(cache.path));
}

TEST(SweepOrchestrator, RegistryReceivesCacheAndStealCounters) {
  TempDir cache("dynp_orchestrator_registry_cache_test");
  obs::Registry registry;
  OrchestratorOptions options;
  options.threads = 2;
  options.cache_dir = cache.path.string();
  options.registry = &registry;
  SweepStats stats;
  (void)run_grid(options, &stats);
  (void)run_grid(options, &stats);
  EXPECT_EQ(registry.counter("cache.miss").value(), stats.points_total);
  EXPECT_EQ(registry.counter("cache.hit").value(), stats.points_total);
}

// --- workspace reuse ---------------------------------------------------

TEST(SweepWorkspace, ReuseAcrossCellsMatchesFreshSimulations) {
  const SweepRunner runner(workload::model_by_name("KTH"), mini_scale());
  const auto configs = mini_configs();
  SweepWorkspace workspace;
  // Cycle the one workspace through different sets, factors and scheduler
  // modes (static <-> dynP, so queue/scratch shapes change between
  // adoptions) and compare against fresh-state runs.
  for (const double factor : mini_factors()) {
    for (const auto& config : configs) {
      for (std::size_t s = 0; s < runner.ensemble().size(); ++s) {
        const core::SimulationResult reused = simulate_sweep_cell(
            runner.ensemble()[s], factor, config, s, &workspace);
        const core::SimulationResult fresh = simulate_sweep_cell(
            runner.ensemble()[s], factor, config, s, nullptr);
        ASSERT_EQ(reused.summary.sldwa, fresh.summary.sldwa);
        ASSERT_EQ(reused.summary.utilization, fresh.summary.utilization);
        ASSERT_EQ(reused.events, fresh.events);
        ASSERT_EQ(reused.decisions, fresh.decisions);
        ASSERT_EQ(reused.switches, fresh.switches);
      }
    }
  }
}

TEST(SweepWorkspace, EqualSizedDifferentJobSetsDoNotLeakScratchState) {
  // Same job count, different content: the planner's per-job class table is
  // only rebuilt on size changes, so workspace adoption must invalidate it
  // explicitly. Two same-size sets back to back catch a stale table.
  const workload::JobSet a =
      workload::generate(workload::model_by_name("KTH"), 300, 1);
  const workload::JobSet b =
      workload::generate(workload::model_by_name("KTH"), 300, 2);
  const auto config = core::dynp_config(core::make_advanced_decider());

  SweepWorkspace workspace;
  (void)simulate_sweep_cell(a, 1.0, config, 0, &workspace);
  const core::SimulationResult reused =
      simulate_sweep_cell(b, 1.0, config, 0, &workspace);
  const core::SimulationResult fresh =
      simulate_sweep_cell(b, 1.0, config, 0, nullptr);
  EXPECT_EQ(reused.summary.sldwa, fresh.summary.sldwa);
  EXPECT_EQ(reused.summary.utilization, fresh.summary.utilization);
  EXPECT_EQ(reused.decisions, fresh.decisions);
}

TEST(ThreadBudget, ForcedSequentialTuningIsBitIdentical) {
  const workload::JobSet set =
      workload::generate(workload::model_by_name("KTH"), 400, 3);
  auto sequential = core::dynp_config(core::make_advanced_decider());
  auto budgeted = core::dynp_config(core::make_advanced_decider());
  budgeted.parallel_tuning = true;
  budgeted.tuning_threads = 4;
  budgeted.thread_budget = 1;  // the orchestrator's saturation clamp

  const core::SimulationResult a = core::simulate(set, sequential);
  const core::SimulationResult b = core::simulate(set, budgeted);
  EXPECT_EQ(a.summary.sldwa, b.summary.sldwa);
  EXPECT_EQ(a.summary.utilization, b.summary.utilization);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.switches, b.switches);
}

// --- point cache -------------------------------------------------------

TEST(PointCache, StoreLoadRoundTripsExactly) {
  TempDir dir("dynp_point_cache_roundtrip_test");
  PointCache cache(dir.path.string());
  ASSERT_TRUE(cache.enabled());

  CombinedPoint point;
  point.sldwa = 3.14159265358979312;
  point.utilization = 87.6543209876543;
  point.avg_bounded_slowdown = 2.5;
  point.avg_response = 12345.678;
  point.switches = 17;
  point.decisions = 431;
  point.sldwa_stddev = 0.123456789012345678;
  point.util_stddev = 1.25;
  point.node_failures = 2;
  point.job_failures = 3.5;
  point.requeues = 7;
  point.jobs_dropped = 0.5;
  point.sldwa_per_set = {3.0, 3.25, 1.0 / 3.0};
  point.util_per_set = {88.0, 87.5, 87.123456789};

  const std::string key = PointCache::key_string(
      workload::model_by_name("KTH"), mini_scale(), 0.8,
      core::static_config(policies::PolicyKind::kSjf));
  cache.store(key, point);
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sldwa, point.sldwa);
  EXPECT_EQ(loaded->utilization, point.utilization);
  EXPECT_EQ(loaded->sldwa_stddev, point.sldwa_stddev);
  EXPECT_EQ(loaded->sldwa_per_set, point.sldwa_per_set);
  EXPECT_EQ(loaded->util_per_set, point.util_per_set);
  EXPECT_EQ(loaded->jobs_dropped, point.jobs_dropped);
}

TEST(PointCache, DisabledCacheLoadsNothingAndStoresNothing) {
  PointCache cache("");
  EXPECT_FALSE(cache.enabled());
  cache.store("some-key", CombinedPoint{});  // must be a no-op
  EXPECT_FALSE(cache.load("some-key").has_value());
}

TEST(PointCache, StoredKeyMismatchReadsAsMiss) {
  TempDir dir("dynp_point_cache_collision_test");
  PointCache cache(dir.path.string());
  const auto config = core::static_config(policies::PolicyKind::kSjf);
  const std::string key_a = PointCache::key_string(
      workload::model_by_name("KTH"), mini_scale(), 0.8, config);
  const std::string key_b = PointCache::key_string(
      workload::model_by_name("KTH"), mini_scale(), 0.7, config);
  cache.store(key_a, CombinedPoint{});
  // Simulate a hash collision: key_b's slot holds an entry recorded under
  // key_a. The verbatim key check must turn that into a miss.
  std::filesystem::rename(dir.path / PointCache::file_name(key_a),
                          dir.path / PointCache::file_name(key_b));
  EXPECT_FALSE(cache.load(key_b).has_value());
}

TEST(PointCache, KeyCoversResultAffectingFieldsOnly) {
  const auto model = workload::model_by_name("KTH");
  const auto scale = mini_scale();
  const auto base = core::dynp_config(core::make_advanced_decider());
  const std::string key = PointCache::key_string(model, scale, 0.8, base);

  // Result-affecting changes must change the key.
  EXPECT_NE(key, PointCache::key_string(model, scale, 0.7, base));
  EXPECT_NE(key, PointCache::key_string(model, ExperimentScale{3, 250, 12},
                                        0.8, base));
  auto other_decider = core::dynp_config(core::make_simple_decider());
  EXPECT_NE(key, PointCache::key_string(model, scale, 0.8, other_decider));
  auto other_preview = base;
  other_preview.preview = metrics::PreviewMetric::kAvgResponse;
  EXPECT_NE(key, PointCache::key_string(model, scale, 0.8, other_preview));
  auto faulty = base;
  fault::FaultConfig faults;
  faults.job_fail_p = 0.1;
  faulty.faults = faults;
  EXPECT_NE(key, PointCache::key_string(model, scale, 0.8, faulty));

  // Execution knobs are bit-identity-neutral and must share the key.
  auto knobs = base;
  knobs.parallel_tuning = true;
  knobs.tuning_threads = 8;
  knobs.thread_budget = 1;
  knobs.audit = true;
  EXPECT_EQ(key, PointCache::key_string(model, scale, 0.8, knobs));

  // A present-but-inactive fault config takes the fault-free code paths.
  auto inert = base;
  inert.faults = fault::FaultConfig{};
  EXPECT_EQ(key, PointCache::key_string(model, scale, 0.8, inert));
}

TEST(PointCache, BudgetedConfigsAreUncacheable) {
  auto config = core::dynp_config(core::make_advanced_decider());
  EXPECT_TRUE(PointCache::cacheable(config));
  config.plan_budget_us = 500;
  EXPECT_FALSE(PointCache::cacheable(config));
}

TEST(PointCache, CorruptEntryIsQuarantinedAndTheSlotRecovers) {
  TempDir dir("dynp_point_cache_corrupt_test");
  PointCache cache(dir.path.string());
  const std::string key = PointCache::key_string(
      workload::model_by_name("KTH"), mini_scale(), 0.8,
      core::static_config(policies::PolicyKind::kSjf));
  CombinedPoint point;
  point.sldwa = 2.5;
  cache.store(key, point);

  // Truncate the entry mid-file (a torn write): the load must miss, report
  // corruption, and move the damage out of the lookup path.
  const std::filesystem::path entry = dir.path / PointCache::file_name(key);
  std::filesystem::resize_file(entry, std::filesystem::file_size(entry) / 2);
  bool corrupt = false;
  EXPECT_FALSE(cache.load(key, &corrupt).has_value());
  EXPECT_TRUE(corrupt);
  EXPECT_FALSE(std::filesystem::exists(entry));
  EXPECT_TRUE(std::filesystem::exists(entry.string() + ".corrupt"));

  // A missing file is a plain miss, not corruption.
  corrupt = false;
  EXPECT_FALSE(cache.load(key, &corrupt).has_value());
  EXPECT_FALSE(corrupt);

  // Re-storing publishes cleanly over the quarantined slot.
  cache.store(key, point);
  corrupt = false;
  const auto reloaded = cache.load(key, &corrupt);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_FALSE(corrupt);
  EXPECT_EQ(reloaded->sldwa, 2.5);
}

TEST(SweepOrchestrator, CorruptCacheEntryResimulatesInsteadOfAborting) {
  TempDir cache("dynp_orchestrator_corrupt_cache_test");
  OrchestratorOptions options;
  options.threads = 4;
  options.cache_dir = cache.path.string();
  SweepStats cold_stats;
  const std::string cold = render(run_grid(options, &cold_stats));
  ASSERT_EQ(cold_stats.cache_misses, cold_stats.points_total);

  // Smash one committed entry with garbage of the right name.
  std::filesystem::path victim;
  for (const auto& e : std::filesystem::directory_iterator(cache.path)) {
    if (e.path().extension() == ".json") {
      victim = e.path();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  std::ofstream(victim, std::ios::trunc) << "{\"key\":\"not the real key\"}";

  SweepStats warm_stats;
  const std::string warm = render(run_grid(options, &warm_stats));
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(warm_stats.cache_corrupt, 1u);
  EXPECT_EQ(warm_stats.cache_misses, 1u);
  EXPECT_EQ(warm_stats.cache_hits, warm_stats.points_total - 1);
  // The damaged bytes were quarantined and the slot re-published.
  EXPECT_TRUE(std::filesystem::exists(victim.string() + ".corrupt"));
  EXPECT_TRUE(std::filesystem::exists(victim));
}

TEST(SweepOrchestrator, CellResumesMidTraceFromALeftoverCheckpoint) {
  TempDir cache("dynp_orchestrator_cell_resume_test");
  const std::uint64_t every = 40;

  // Manufacture what a killed sweep leaves behind: a partially-run cell's
  // checkpoint directory. Run the cell standalone with snapshots on; its
  // retained snapshots are exactly a mid-trace interruption point.
  const workload::TraceModel model = workload::model_by_name("KTH");
  const core::SimulationConfig cell_config = mini_configs()[1];
  const std::string key =
      PointCache::key_string(model, mini_scale(), mini_factors()[0],
                             cell_config);
  const std::string cell_dir = SweepOrchestrator::cell_checkpoint_dir(
      cache.path.string(), key, 0);
  {
    const std::vector<workload::JobSet> ensemble = workload::generate_ensemble(
        model, mini_scale().sets, mini_scale().jobs, mini_scale().seed);
    ckpt::CheckpointOptions seed_ckpt;
    seed_ckpt.every = every;
    seed_ckpt.dir = cell_dir;
    (void)simulate_sweep_cell(ensemble[0], mini_factors()[0], cell_config, 0,
                              nullptr, &seed_ckpt);
  }
  ASSERT_FALSE(std::filesystem::is_empty(cell_dir));

  OrchestratorOptions options;
  options.threads = 4;
  options.cache_dir = cache.path.string();
  options.checkpoint_every = every;
  SweepStats stats;
  const std::string resumed = render(run_grid(options, &stats));
  // The pre-seeded cell restored mid-trace; byte-identity with the
  // checkpoint-free grid is the crash-consistency contract.
  EXPECT_GE(stats.cells_resumed, 1u);
  OrchestratorOptions plain;
  plain.threads = 4;
  EXPECT_EQ(resumed, render(run_grid(plain)));
  // Completed cells clean up their checkpoint directories.
  EXPECT_FALSE(std::filesystem::exists(cell_dir));
}

}  // namespace
}  // namespace dynp::exp
