/// TSan stress for the parallel candidate-evaluation path: repeated full
/// simulations with `parallel_tuning` on, compared bit for bit against the
/// sequential evaluation — including with the schedule invariant auditor
/// enabled, which reads the committed candidate state on the main thread
/// right after the workers join. Run under ThreadSanitizer via
/// `ctest --preset tsan`; the same assertions hold (cheaply) in a plain
/// build.

#include <gtest/gtest.h>

#include <cstddef>

#include "core/simulation.hpp"
#include "workload/models.hpp"

namespace dynp::core {
namespace {

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcomes[i].start, b.outcomes[i].start) << "job " << i;
    EXPECT_DOUBLE_EQ(a.outcomes[i].end, b.outcomes[i].end) << "job " << i;
  }
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.decisions_per_policy, b.decisions_per_policy);
  EXPECT_DOUBLE_EQ(a.summary.sldwa, b.summary.sldwa);
  EXPECT_DOUBLE_EQ(a.summary.makespan, b.summary.makespan);
}

TEST(ParallelTuningStress, RepeatedParallelRunsMatchSequential) {
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 400, 17)
          .with_shrinking_factor(0.8);
  SimulationConfig config = dynp_config(make_advanced_decider());

  config.parallel_tuning = false;
  const SimulationResult sequential = simulate(set, config);
  EXPECT_GT(sequential.switches, 0u);

  config.parallel_tuning = true;
  for (const std::size_t threads : {std::size_t{2}, std::size_t{3},
                                    std::size_t{4}}) {
    config.tuning_threads = threads;
    // Repetition matters under TSan: each run re-creates the worker pool
    // and re-races the per-candidate planning tasks.
    for (int rep = 0; rep < 2; ++rep) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads
                                        << " rep=" << rep);
      expect_identical(sequential, simulate(set, config));
    }
  }
}

TEST(ParallelTuningStress, AuditedParallelRunMatchesSequential) {
  // The auditor walks every candidate schedule after the workers joined;
  // under TSan this verifies the join publishes the workers' writes.
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 300, 29)
          .with_shrinking_factor(0.9);
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.audit = true;

  config.parallel_tuning = false;
  const SimulationResult sequential = simulate(set, config);
  EXPECT_GT(sequential.audit_events, 0u);

  config.parallel_tuning = true;
  config.tuning_threads = 3;
  const SimulationResult parallel = simulate(set, config);
  EXPECT_EQ(parallel.audit_events, sequential.audit_events);
  EXPECT_EQ(parallel.audit_checks, sequential.audit_checks);
  expect_identical(sequential, parallel);
}

TEST(ParallelTuningStress, GuaranteeSemanticsParallelMatchesSequential) {
  const workload::JobSet set =
      workload::generate(workload::ctc_model(), 300, 41);
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.semantics = PlannerSemantics::kGuarantee;

  config.parallel_tuning = false;
  const SimulationResult sequential = simulate(set, config);

  config.parallel_tuning = true;
  config.tuning_threads = 3;
  expect_identical(sequential, simulate(set, config));
}

}  // namespace
}  // namespace dynp::core
