/// Concurrency suites for the thread pool (run under ThreadSanitizer via
/// `ctest --preset tsan`): shutdown ordering, exception propagation through
/// the fork/join helpers, and contract violations escaping worker tasks.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace dynp::util {
namespace {

TEST(ThreadPoolShutdown, DestructorDrainsPendingTasksBeforeJoining) {
  // No wait_idle: the destructor itself must let the workers drain the
  // queue, so every task submitted before destruction runs exactly once.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolShutdown, ImmediateDestructionOfIdlePoolIsClean) {
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(4);  // construct + destruct race on startup/stop signal
  }
  SUCCEED();
}

TEST(ThreadPoolShutdown, TasksSubmittedFromTasksCompleteBeforeWaitIdle) {
  std::atomic<int> ran{0};
  ThreadPool pool(3);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&pool, &ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ParallelForErrors, ExceptionInOneIterationIsRethrownAtJoin) {
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(
          1000,
          [&ran](std::size_t i) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 37) throw std::runtime_error("iteration 37 failed");
          },
          4),
      std::runtime_error);
  // Remaining iterations may be skipped after the failure, but nothing runs
  // after the join returned.
  EXPECT_LE(ran.load(), 1000);
  EXPECT_GE(ran.load(), 1);
}

TEST(ParallelForErrors, SingleThreadFallbackPropagatesToo) {
  EXPECT_THROW(
      parallel_for(
          10, [](std::size_t i) { if (i == 3) throw std::logic_error("x"); },
          1),
      std::logic_error);
}

TEST(ParallelInvokeErrors, FirstExceptionWinsAndPoolStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(
      parallel_invoke(pool, 64,
                      [](std::size_t i) {
                        if (i % 2 == 0) throw std::runtime_error("even task");
                      }),
      std::runtime_error);

  // The join drained every task of the failed invocation; the pool must be
  // reusable for the next fork/join.
  std::atomic<int> ran{0};
  parallel_invoke(pool, 32, [&ran](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 32);
}

TEST(ParallelInvokeErrors, ContractViolationInWorkerPropagatesToCaller) {
  // The schedule auditor and the planner's DYNP_EXPECTS checks also fire
  // inside parallel tuning workers; with the throwing test handler
  // installed, the violation must surface at the join as an exception on
  // the calling thread instead of terminating the process.
  ScopedContractThrower thrower;
  ThreadPool pool(2);
  EXPECT_THROW(parallel_invoke(pool, 16,
                               [](std::size_t i) { DYNP_EXPECTS(i != 3); }),
               ContractViolationError);
  pool.wait_idle();
}

TEST(ParallelInvokeStress, InterleavedInvocationsCoverEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 512;
  std::vector<std::atomic<int>> a(kN);
  std::vector<std::atomic<int>> b(kN);
  // Two fork/joins back to back on the same pool: the per-invocation latch
  // must isolate them.
  parallel_invoke(pool, kN, [&](std::size_t i) {
    a[i].fetch_add(1, std::memory_order_relaxed);
  });
  parallel_invoke(pool, kN, [&](std::size_t i) {
    b[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(a[i].load(), 1) << i;
    EXPECT_EQ(b[i].load(), 1) << i;
  }
}

TEST(WorkStealingStress, SkewedProducerIsDrainedByThieves) {
  // One worker mass-produces tasks onto its own deque while the others sit
  // empty — the stealing path (steal-half from the victim's front) is the
  // only way the pool finishes in bounded time, and under TSan the only way
  // the deque's synchronisation is exercised under real contention.
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  std::atomic<int> ran{0};
  pool.submit([&] {
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kTasks);
  const ThreadPool::StealStats stats = pool.steal_stats();
  EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kTasks) + 1);
  EXPECT_LE(stats.steal_batches, stats.stolen_tasks);
}

TEST(WorkStealingStress, RecursiveSubmissionFromEveryWorker) {
  // All workers produce and consume at once; steals flow in every direction.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      for (int j = 0; j < 16; ++j) {
        pool.submit([&] {
          for (int k = 0; k < 4; ++k) {
            pool.submit(
                [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
          }
        });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 64 * 16 * 4);
}

}  // namespace
}  // namespace dynp::util
