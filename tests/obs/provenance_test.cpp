/// Tests for the decision-provenance tracer: span lifecycle reconstruction
/// over a fault-injected run (parent links resolve, spans nest inside their
/// job root, every lifecycle terminates, requeue chains carry backoff
/// spans), trace-id stability, and the commit -> run causality flows.

#include "obs/provenance.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "obs/trace.hpp"
#include "workload/models.hpp"

namespace dynp {
namespace {

/// Minimal jspan/jflow line reader (the writer emits one flat JSON object
/// per line with a fixed key order, so a tag scan is exact).
[[nodiscard]] std::optional<double> field(const std::string& line,
                                          const char* key) {
  const std::string tag = std::string("\"") + key + "\": ";
  const std::size_t pos = line.find(tag);
  if (pos == std::string::npos) return std::nullopt;
  return std::strtod(line.c_str() + pos + tag.size(), nullptr);
}

/// 64-bit ids (notably the FNV trace ids) do not round-trip through a
/// double, so integer fields get their own exact parser.
[[nodiscard]] std::uint64_t u64_field(const std::string& line,
                                      const char* key) {
  const std::string tag = std::string("\"") + key + "\": ";
  const std::size_t pos = line.find(tag);
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + tag.size(), nullptr, 10);
}

[[nodiscard]] std::optional<std::string> text_field(const std::string& line,
                                                    const char* key) {
  const std::string tag = std::string("\"") + key + "\": \"";
  const std::size_t begin = line.find(tag);
  if (begin == std::string::npos) return std::nullopt;
  const std::size_t start = begin + tag.size();
  return line.substr(start, line.find('"', start) - start);
}

struct Span {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t trace = 0;
  double t0 = 0;
  double t1 = 0;
  long long job = -1;
  std::string outcome;
};

struct ParsedTrace {
  std::vector<Span> spans;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flows;  ///< from, to
};

[[nodiscard]] ParsedTrace parse(const std::string& text) {
  ParsedTrace out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto type = text_field(line, "type");
    if (type == "jspan") {
      Span s;
      s.name = text_field(line, "name").value_or("");
      s.id = u64_field(line, "id");
      s.parent = u64_field(line, "parent");
      s.trace = u64_field(line, "trace");
      s.t0 = field(line, "t0").value_or(0);
      s.t1 = field(line, "t1").value_or(0);
      const auto job = field(line, "job");
      if (job) s.job = static_cast<long long>(*job);
      s.outcome = text_field(line, "outcome").value_or("");
      out.spans.push_back(std::move(s));
    } else if (type == "jflow") {
      out.flows.emplace_back(u64_field(line, "from"), u64_field(line, "to"));
    }
  }
  return out;
}

/// One fault-injected dynP run with the provenance tracer wired; returns
/// the emitted trace text and the simulation result.
[[nodiscard]] std::pair<ParsedTrace, core::SimulationResult> traced_run() {
  const workload::JobSet jobs =
      workload::generate(workload::model_by_name("KTH"), 300, 7)
          .with_shrinking_factor(0.5);
  core::SimulationConfig config =
      core::dynp_config(core::make_advanced_decider());
  fault::FaultConfig faults;
  faults.seed = 11;
  faults.job_fail_p = 0.05;
  faults.max_retries = 2;
  config.faults = faults;

  std::ostringstream out;
  obs::Tracer tracer(out, obs::TraceFormat::kJsonl);
  obs::ProvenanceTracer provenance(tracer);
  config.instruments.tracer = &tracer;
  config.instruments.provenance = &provenance;
  const core::SimulationResult r = core::simulate(jobs, config);
  tracer.close();
  return {parse(out.str()), r};
}

TEST(Provenance, JobTraceIdsAreStableAndDistinct) {
  EXPECT_EQ(obs::ProvenanceTracer::job_trace_id(0),
            obs::ProvenanceTracer::job_trace_id(0));
  EXPECT_NE(obs::ProvenanceTracer::job_trace_id(0),
            obs::ProvenanceTracer::job_trace_id(1));
  // Large ids stay outside the small span-id counter range (domain tag).
  EXPECT_GT(obs::ProvenanceTracer::job_trace_id(0), 1u << 20);
}

TEST(Provenance, FaultInjectedLifecyclesTerminateAndNest) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs hooks compiled out";
  const auto [trace, r] = traced_run();
  ASSERT_FALSE(trace.spans.empty());

  // Every span id is unique; every parent resolves to an emitted span (or 0
  // for the roots and the pass chain anchors).
  std::set<std::uint64_t> ids;
  for (const Span& s : trace.spans) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
  }
  for (const Span& s : trace.spans) {
    if (s.parent != 0) {
      EXPECT_TRUE(ids.count(s.parent) != 0)
          << s.name << " parent " << s.parent << " unresolved";
    }
    EXPECT_LE(s.t0, s.t1) << s.name;
  }

  // Exactly one terminal root per job, and its [t0, t1] covers every child.
  std::map<long long, const Span*> roots;
  for (const Span& s : trace.spans) {
    if (s.name != "job") continue;
    EXPECT_TRUE(roots.emplace(s.job, &s).second)
        << "job " << s.job << " has two terminal spans";
    EXPECT_TRUE(s.outcome == "finished" || s.outcome == "dropped") << s.job;
  }
  EXPECT_EQ(roots.size(), 300u);
  std::size_t dropped = 0;
  for (const auto& [job, root] : roots) {
    if (root->outcome == "dropped") ++dropped;
  }
  EXPECT_EQ(dropped, r.faults.jobs_dropped);

  std::map<std::uint64_t, const Span*> by_id;
  for (const Span& s : trace.spans) by_id[s.id] = &s;
  std::size_t backoffs = 0;
  for (const Span& s : trace.spans) {
    if (s.job < 0 || s.name == "job") continue;
    const auto root = roots.find(s.job);
    ASSERT_NE(root, roots.end()) << "span for job without root: " << s.job;
    EXPECT_EQ(s.parent, root->second->id) << s.name;
    EXPECT_EQ(s.trace, obs::ProvenanceTracer::job_trace_id(
                           static_cast<std::uint32_t>(s.job)));
    EXPECT_GE(s.t0, root->second->t0) << s.name;
    EXPECT_LE(s.t1, root->second->t1) << s.name;
    if (s.name == "backoff") ++backoffs;
  }
  // Requeue-after-failure chains: one backoff span per requeue.
  EXPECT_EQ(backoffs, r.faults.requeues);
  EXPECT_GT(r.faults.requeues, 0u)
      << "fault config did not exercise the requeue path";

  // Commit -> run causality flows point at real spans, and the target is a
  // run span of the started job.
  EXPECT_FALSE(trace.flows.empty());
  for (const auto& [from, to] : trace.flows) {
    ASSERT_TRUE(by_id.count(from) != 0);
    ASSERT_TRUE(by_id.count(to) != 0);
    EXPECT_EQ(by_id.at(from)->name, "commit");
    EXPECT_EQ(by_id.at(to)->name, "run");
  }
}

TEST(Provenance, PassChainsCarryThePolicyPool) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs hooks compiled out";
  const auto [trace, r] = traced_run();
  std::size_t decides = 0;
  std::size_t switched = 0;
  std::set<std::uint64_t> pass_ids;
  for (const Span& s : trace.spans) {
    if (s.name == "pass") pass_ids.insert(s.id);
  }
  for (const Span& s : trace.spans) {
    if (s.name.rfind("decide:", 0) == 0) {
      ++decides;
      if (s.outcome == "switched") ++switched;
      EXPECT_TRUE(pass_ids.count(s.parent) != 0);
    }
    if (s.name.rfind("plan:", 0) == 0 || s.name == "base_profile" ||
        s.name == "preview_score" || s.name == "commit") {
      EXPECT_TRUE(pass_ids.count(s.parent) != 0) << s.name;
    }
  }
  EXPECT_EQ(decides, r.decisions);
  EXPECT_EQ(switched, r.switches);
}

}  // namespace
}  // namespace dynp
