/// Tests for the structured event tracer: JSONL record content, Chrome
/// trace_event well-formedness (checked with a minimal JSON scanner — no
/// parser dependency), format parsing, and the RecordingDecider dedup (its
/// record type is the tracer's; its log can stream into a tracer).

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/decider.hpp"
#include "core/recording_decider.hpp"
#include "util/assert.hpp"

namespace dynp::obs {
namespace {

using std::chrono::steady_clock;

/// Minimal structural JSON checker: verifies quotes are balanced and every
/// brace/bracket nests correctly. Catches the classic streaming-writer bugs
/// (missing comma handling produces unbalanced structure only rarely, but a
/// missing footer or stray quote always trips this).
[[nodiscard]] bool json_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

[[nodiscard]] SchedEventRecord sample_event() {
  SchedEventRecord r;
  r.seq = 7;
  r.sim_time = 123.5;
  r.kind = TraceEventKind::kSubmit;
  r.queue_depth = 4;
  r.started = 2;
  r.tuned = true;
  r.decision.values = {10.0, 8.5, 12.0};
  r.decision.old_index = 0;
  r.decision.chosen = 1;
  r.switched = true;
  r.full_plans = 3;
  r.incremental_plans = 1;
  r.jobs_placed = 40;
  r.jobs_replayed = 12;
  r.profile_segments = 9;
  return r;
}

TEST(TraceFormatByName, ParsesKnownNamesOnly) {
  TraceFormat f = TraceFormat::kChrome;
  EXPECT_TRUE(trace_format_by_name("jsonl", f));
  EXPECT_EQ(f, TraceFormat::kJsonl);
  EXPECT_TRUE(trace_format_by_name("chrome", f));
  EXPECT_EQ(f, TraceFormat::kChrome);
  EXPECT_FALSE(trace_format_by_name("xml", f));
}

TEST(TracerJsonl, EventRecordsCarryTheSchedulerFields) {
  std::ostringstream out;
  Tracer tracer(out, TraceFormat::kJsonl);
  tracer.event(sample_event());
  tracer.close();
  const std::string line = out.str();
  EXPECT_TRUE(json_well_formed(line));
  EXPECT_NE(line.find("\"type\": \"event\""), std::string::npos);
  EXPECT_NE(line.find("\"kind\": \"submit\""), std::string::npos);
  EXPECT_NE(line.find("\"queue_depth\": 4"), std::string::npos);
  EXPECT_NE(line.find("\"chosen\": 1"), std::string::npos);
  EXPECT_NE(line.find("\"switched\": true"), std::string::npos);
  EXPECT_NE(line.find("\"jobs_replayed\": 12"), std::string::npos);
}

TEST(TracerJsonl, FaultRecordsCarryTheirFields) {
  std::ostringstream out;
  Tracer tracer(out, TraceFormat::kJsonl);
  FaultRecord f;
  f.seq = 11;
  f.sim_time = 42.0;
  f.what = "requeue";
  f.job = 3;
  f.attempt = 2;
  f.down_nodes = 1;
  f.delay = 120.0;
  tracer.fault(f);
  FaultRecord down;
  down.seq = 12;
  down.sim_time = 50.0;
  down.what = "node_down";
  down.down_nodes = 2;
  tracer.fault(down);
  tracer.close();
  const std::string text = out.str();
  EXPECT_TRUE(json_well_formed(text));
  EXPECT_NE(text.find("\"type\": \"fault\""), std::string::npos);
  EXPECT_NE(text.find("\"what\": \"requeue\""), std::string::npos);
  EXPECT_NE(text.find("\"job\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"attempt\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"delay\": 120"), std::string::npos);
  EXPECT_NE(text.find("\"what\": \"node_down\""), std::string::npos);
  // Node events carry no job field.
  EXPECT_EQ(text.find("\"job\": 4294967295"), std::string::npos);
}

TEST(TraceEventKindNames, CoverAllKinds) {
  EXPECT_STREQ(name(TraceEventKind::kSubmit), "submit");
  EXPECT_STREQ(name(TraceEventKind::kFinish), "finish");
  EXPECT_STREQ(name(TraceEventKind::kJobFail), "job_fail");
  EXPECT_STREQ(name(TraceEventKind::kNodeDown), "node_down");
  EXPECT_STREQ(name(TraceEventKind::kNodeUp), "node_up");
  EXPECT_STREQ(name(TraceEventKind::kRequeue), "requeue");
}

TEST(TracerJsonl, OneRecordPerLine) {
  std::ostringstream out;
  Tracer tracer(out, TraceFormat::kJsonl);
  tracer.event(sample_event());
  tracer.decision(DecisionRecord{{1.0, 2.0}, 1, 0});
  const steady_clock::time_point t0 = steady_clock::now();
  tracer.span("plan_full", t0, t0 + std::chrono::microseconds(5));
  tracer.close();
  EXPECT_EQ(tracer.records(), 3u);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(json_well_formed(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, 3u);
}

TEST(TracerJsonl, RecordsBufferUntilFlushThenReachTheStream) {
  std::ostringstream out;
  Tracer tracer(out, TraceFormat::kJsonl);
  tracer.event(sample_event());
  // Emission appends to the tracer's bounded buffer; one small record stays
  // below the auto-flush threshold, so the stream is still empty.
  EXPECT_TRUE(out.str().empty());
  tracer.flush();
  const std::string flushed = out.str();
  EXPECT_NE(flushed.find("\"type\": \"event\""), std::string::npos);
  // flush() is durable mid-run: close() adds nothing it already wrote.
  tracer.event(sample_event());
  tracer.close();
  EXPECT_EQ(out.str().compare(0, flushed.size(), flushed), 0);
  EXPECT_GT(out.str().size(), flushed.size());
}

TEST(TracerJsonl, ContractFailureFlushesLiveTracers) {
  std::ostringstream out;
  Tracer tracer(out, TraceFormat::kJsonl);
  tracer.event(sample_event());
  EXPECT_TRUE(out.str().empty());
  // A contract violation anywhere must make buffered traces durable before
  // the failure is reported (the tracer registers a failure observer for
  // its lifetime). The throwing handler keeps the test process alive.
  ScopedContractThrower thrower;
  EXPECT_THROW(DYNP_EXPECTS(false), ContractViolationError);
  EXPECT_NE(out.str().find("\"type\": \"event\""), std::string::npos);
  tracer.close();
}

TEST(TracerChrome, ProducesWellFormedTraceEventJson) {
  std::ostringstream out;
  {
    Tracer tracer(out, TraceFormat::kChrome);
    tracer.event(sample_event());
    tracer.decision(DecisionRecord{{3.0, 2.0, 1.0}, 2, 2});
    const steady_clock::time_point t0 = steady_clock::now();
    tracer.span("decide", t0, t0 + std::chrono::microseconds(3));
    tracer.close();
  }
  const std::string json = out.str();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);  // process names
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);  // sim-time instant
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);  // queue counter
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // wall-time span
}

TEST(TracerChrome, CloseIsIdempotentAndDestructorCloses) {
  std::ostringstream out;
  {
    Tracer tracer(out, TraceFormat::kChrome);
    tracer.event(sample_event());
    tracer.close();
    tracer.close();  // no double footer
  }
  EXPECT_TRUE(json_well_formed(out.str()));
}

TEST(TracerChrome, EmptyTraceIsStillValid) {
  std::ostringstream out;
  {
    Tracer tracer(out, TraceFormat::kChrome);
    tracer.close();
  }
  EXPECT_TRUE(json_well_formed(out.str()));
}

TEST(TracerFile, OpenFileWritesAndFailsGracefully) {
  const std::string path = ::testing::TempDir() + "/trace_test.jsonl";
  {
    std::unique_ptr<Tracer> tracer = Tracer::open_file(path, TraceFormat::kJsonl);
    ASSERT_NE(tracer, nullptr);
    tracer->event(sample_event());
    tracer->close();
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(json_well_formed(line));
  EXPECT_EQ(Tracer::open_file("/nonexistent-dir/x/y.trace", TraceFormat::kJsonl),
            nullptr);
}

// --- RecordingDecider dedup: one DecisionRecord type, shared with core -----

static_assert(std::is_same_v<core::DecisionRecord, obs::DecisionRecord>,
              "core::RecordingDecider must reuse the tracer's record type");

TEST(RecordingDecider, StreamsDecisionsIntoTheTracer) {
  std::ostringstream out;
  Tracer tracer(out, TraceFormat::kJsonl);
  const core::RecordingDecider decider(core::make_simple_decider(), &tracer);
  core::DecisionInput input;
  input.values = {5.0, 3.0, 4.0};
  input.old_index = 0;
  const std::size_t chosen = decider.decide(input);
  tracer.close();
  ASSERT_EQ(decider.records().size(), 1u);
  EXPECT_EQ(decider.records().front().chosen, chosen);
  EXPECT_EQ(tracer.records(), 1u);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"type\": \"decision\""), std::string::npos);
  EXPECT_TRUE(json_well_formed(line));
}

TEST(RecordingDecider, WorksWithoutATracer) {
  const core::RecordingDecider decider(core::make_simple_decider());
  core::DecisionInput input;
  input.values = {1.0, 1.0, 1.0};
  input.old_index = 0;  // all tied: the simple decider picks the first
  (void)decider.decide(input);
  EXPECT_EQ(decider.records().size(), 1u);
  EXPECT_EQ(decider.stay_fraction(), 1.0);
  EXPECT_EQ(decider.tie_fraction(), 1.0);
}

}  // namespace
}  // namespace dynp::obs
