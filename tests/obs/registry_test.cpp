/// Tests for the metrics registry: instrument semantics (counter, gauge,
/// histogram bucket edges and quantiles), JSON snapshot shape, and exact
/// cross-thread aggregation (the concurrency cases carry the `tsan` label
/// through the test_obs binary).

#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/thread_pool.hpp"

namespace dynp::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, KeepsLastValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Histogram, BucketEdgesAreUpperInclusive) {
  // Bucket i counts edges[i-1] < v <= edges[i]; one overflow bucket past the
  // last edge.
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (upper-inclusive)
  h.observe(1.5);  // bucket 1
  h.observe(2.0);  // bucket 1
  h.observe(2.1);  // bucket 2
  h.observe(4.0);  // bucket 2
  h.observe(4.1);  // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 4.1);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 2.1 + 4.0 + 4.1, 1e-12);
  EXPECT_NEAR(h.mean(), h.sum() / 7.0, 1e-12);
}

TEST(Histogram, EmptyReportsZeroesNotInfinities) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 100; ++i) h.observe(15.0);  // all in bucket (10, 20]
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  // The overflow bucket reports the observed maximum.
  h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h({1.0});
  h.observe(0.5);
  h.observe(7.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  h.observe(0.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 0.25);
}

TEST(Histogram, SingleSampleQuantilesStayInItsBucket) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(3.0);  // bucket (2, 4]
  for (const double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_GE(h.quantile(q), 2.0) << "q=" << q;
    EXPECT_LE(h.quantile(q), 4.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(Histogram, AllObservationsInOverflowReportMax) {
  Histogram h({1.0});
  h.observe(50.0);
  h.observe(100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 100.0);
}

TEST(Registry, HandlesAreStableAndShared) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);  // same name -> same instrument
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_FALSE(reg.empty());
}

TEST(Registry, JsonSnapshotHasExpectedShape) {
  Registry reg;
  reg.counter("events").add(5);
  reg.gauge("load").set(0.75);
  reg.histogram("lat", {1.0, 2.0}).observe(1.5);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket_counts\""), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
}

TEST(Registry, SeriesKeyAppearsOnlyWhenRegistered) {
  Registry reg;
  reg.counter("events").add(1);
  std::ostringstream without;
  reg.write_json(without);
  // No series registered -> the snapshot keeps the pre-series byte layout.
  EXPECT_EQ(without.str().find("\"series\""), std::string::npos);

  SeriesOptions options;
  options.edges = {1.0, 2.0};
  WindowedSeries& a = reg.series("lat", options);
  WindowedSeries& b = reg.series("lat", options);
  EXPECT_EQ(&a, &b);  // same name -> same series
  a.observe(3.0, 1.5);
  std::ostringstream with;
  reg.write_json(with);
  EXPECT_NE(with.str().find("\"series\""), std::string::npos);
  EXPECT_NE(with.str().find("\"lat\""), std::string::npos);
  EXPECT_NE(with.str().find("\"windows\""), std::string::npos);
}

TEST(Registry, SummaryTableListsInstruments) {
  Registry reg;
  reg.counter("sim.events.submit").add(2);
  reg.histogram("phase.plan_us", {1.0, 2.0}).observe(1.0);
  const std::string table = reg.summary_table().to_string();
  EXPECT_NE(table.find("sim.events.submit"), std::string::npos);
  EXPECT_NE(table.find("phase.plan_us"), std::string::npos);
}

TEST(ExponentialEdges, GeometricProgression) {
  const std::vector<double> edges = exponential_edges(1.0, 2.0, 4);
  const std::vector<double> expect = {1.0, 2.0, 4.0, 8.0};
  EXPECT_EQ(edges, expect);
  EXPECT_EQ(default_latency_edges_us().size(), 23u);
  EXPECT_TRUE(std::is_sorted(default_latency_edges_us().begin(),
                             default_latency_edges_us().end()));
}

// --- cross-thread aggregation (runs under TSan via the tsan ctest label) ---

TEST(RegistryConcurrency, CounterTotalsAreExactAcrossThreads) {
  Registry reg;
  Counter& c = reg.counter("shared");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  util::parallel_for(
      kThreads,
      [&](std::size_t) {
        for (std::size_t i = 0; i < kPerThread; ++i) c.add();
      },
      kThreads);
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(RegistryConcurrency, HistogramAggregatesExactlyAcrossThreads) {
  Registry reg;
  Histogram& h = reg.histogram("shared", exponential_edges(1.0, 2.0, 10));
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5000;
  util::parallel_for(
      kThreads,
      [&](std::size_t t) {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          h.observe(static_cast<double>(t * kPerThread + i % 700) + 0.5);
        }
      },
      kThreads);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t buckets = 0;
  for (std::size_t i = 0; i <= h.edges().size(); ++i) {
    buckets += h.bucket_count(i);
  }
  EXPECT_EQ(buckets, h.count());  // every observation landed in one bucket
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
}

TEST(RegistryConcurrency, RegistrationFromManyThreadsYieldsOneInstrument) {
  Registry reg;
  std::atomic<std::uint64_t> distinct{0};
  constexpr std::size_t kThreads = 8;
  util::parallel_for(
      kThreads,
      [&](std::size_t) {
        Counter& c = reg.counter("same-name");
        c.add();
        distinct.fetch_add(reinterpret_cast<std::uintptr_t>(&c) != 0 ? 0 : 1);
      },
      kThreads);
  EXPECT_EQ(reg.counter("same-name").value(), kThreads);
}

}  // namespace
}  // namespace dynp::obs
