/// Tests for the windowed time-series engine: window assignment, ring
/// eviction and late-arrival accounting, bucket-quantile edge cases, and
/// the merge determinism the per-worker sweep series rely on (the
/// concurrency cases carry the `tsan` label through the test_obs binary).

#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace dynp::obs {
namespace {

[[nodiscard]] SeriesOptions small_options() {
  SeriesOptions options;
  options.window = 10;
  options.capacity = 4;
  options.edges = {1.0, 10.0, 100.0};
  return options;
}

TEST(WindowedSeries, AssignsKeysToWindows) {
  WindowedSeries s(small_options());
  s.observe(0, 5.0);    // window 0
  s.observe(9.5, 7.0);  // window 0
  s.observe(10, 2.0);   // window 1
  s.observe(25, 50.0);  // window 2

  const std::vector<WindowAggregate> windows = s.windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[0].count, 2u);
  EXPECT_DOUBLE_EQ(windows[0].sum, 12.0);
  EXPECT_DOUBLE_EQ(windows[0].min, 5.0);
  EXPECT_DOUBLE_EQ(windows[0].max, 7.0);
  EXPECT_EQ(windows[1].index, 1);
  EXPECT_EQ(windows[1].count, 1u);
  EXPECT_EQ(windows[2].index, 2);
  EXPECT_DOUBLE_EQ(windows[2].max, 50.0);

  const WindowAggregate total = s.total();
  EXPECT_EQ(total.count, 4u);
  EXPECT_DOUBLE_EQ(total.sum, 64.0);
  EXPECT_DOUBLE_EQ(total.min, 2.0);
  EXPECT_DOUBLE_EQ(total.max, 50.0);
  EXPECT_EQ(s.late_count(), 0u);
}

TEST(WindowedSeries, EvictsOldWindowsIntoTotalsAndCountsLateKeys) {
  SeriesOptions options = small_options();
  options.capacity = 2;
  WindowedSeries s(options);
  for (int w = 0; w < 4; ++w) {
    s.observe(w * 10.0, 1.0 + w);
  }
  // Ring capacity 2: windows 0 and 1 were evicted, 2 and 3 remain.
  const std::vector<WindowAggregate> windows = s.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].index, 2);
  EXPECT_EQ(windows[1].index, 3);
  // Evicted observations stay in the cumulative totals.
  EXPECT_EQ(s.total().count, 4u);
  EXPECT_DOUBLE_EQ(s.total().sum, 1.0 + 2.0 + 3.0 + 4.0);

  // A key older than the oldest retained window folds into the totals only.
  s.observe(5.0, 100.0);
  EXPECT_EQ(s.late_count(), 1u);
  EXPECT_EQ(s.total().count, 5u);
  EXPECT_DOUBLE_EQ(s.total().max, 100.0);
  EXPECT_EQ(s.windows().size(), 2u);
}

TEST(WindowedSeries, OutOfOrderKeysWithinTheRingStillLand) {
  WindowedSeries s(small_options());
  s.observe(35, 1.0);  // window 3
  s.observe(5, 2.0);   // window 0, out of order but within capacity 4
  const std::vector<WindowAggregate> windows = s.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[1].index, 3);
  EXPECT_EQ(s.late_count(), 0u);
}

// --- bucket_quantile edge cases (mirrors Histogram::quantile) ---

TEST(BucketQuantile, EmptyReportsZero) {
  const std::vector<double> edges = {1.0, 2.0};
  const std::vector<std::uint64_t> buckets = {0, 0, 0};
  EXPECT_EQ(bucket_quantile(edges, buckets, 0, 0, 0, 0.5), 0.0);
}

TEST(BucketQuantile, SingleSampleInterpolatesInsideItsBucket) {
  const std::vector<double> edges = {1.0, 2.0, 4.0};
  // One observation of 3.0 lands in bucket (2, 4].
  const std::vector<std::uint64_t> buckets = {0, 0, 1, 0};
  const double p50 = bucket_quantile(edges, buckets, 1, 3.0, 3.0, 0.5);
  EXPECT_DOUBLE_EQ(p50, 3.0);  // lo 2 + (4 - 2) * 0.5
  EXPECT_GE(bucket_quantile(edges, buckets, 1, 3.0, 3.0, 0.999), 2.0);
  EXPECT_LE(bucket_quantile(edges, buckets, 1, 3.0, 3.0, 0.999), 4.0);
}

TEST(BucketQuantile, AllInOneBucketIsLinear) {
  const std::vector<double> edges = {10.0, 20.0, 40.0};
  const std::vector<std::uint64_t> buckets = {0, 100, 0, 0};
  EXPECT_DOUBLE_EQ(bucket_quantile(edges, buckets, 100, 15.0, 15.0, 0.25),
                   12.5);
  EXPECT_DOUBLE_EQ(bucket_quantile(edges, buckets, 100, 15.0, 15.0, 0.75),
                   17.5);
}

TEST(BucketQuantile, OverflowBucketReportsMax) {
  const std::vector<double> edges = {1.0};
  const std::vector<std::uint64_t> buckets = {0, 2};
  EXPECT_DOUBLE_EQ(bucket_quantile(edges, buckets, 2, 50.0, 100.0, 0.5),
                   100.0);
  EXPECT_DOUBLE_EQ(bucket_quantile(edges, buckets, 2, 50.0, 100.0, 0.999),
                   100.0);
}

TEST(WindowedSeries, WindowQuantilesStayInsideBucketBounds) {
  WindowedSeries s(small_options());
  for (int i = 0; i < 100; ++i) {
    s.observe(static_cast<double>(i % 10), 5.0);  // window 0, bucket (1, 10]
  }
  const std::vector<WindowAggregate> windows = s.windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_GE(windows[0].p50, 1.0);
  EXPECT_LE(windows[0].p50, 10.0);
  EXPECT_GE(windows[0].p999, windows[0].p50);
}

// --- merge determinism ---

TEST(WindowedSeries, MergeMatchesSerialObservation) {
  const SeriesOptions options = small_options();
  WindowedSeries serial(options);
  WindowedSeries a(options);
  WindowedSeries b(options);
  for (int i = 0; i < 40; ++i) {
    const double key = i;
    const double value = 1.0 + (i % 7);
    serial.observe(key, value);
    (i % 2 == 0 ? a : b).observe(key, value);
  }
  a.merge(b);

  const std::vector<WindowAggregate> expect = serial.windows();
  const std::vector<WindowAggregate> got = a.windows();
  ASSERT_EQ(expect.size(), got.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i].index, got[i].index);
    EXPECT_EQ(expect[i].count, got[i].count);
    EXPECT_DOUBLE_EQ(expect[i].sum, got[i].sum);
    EXPECT_DOUBLE_EQ(expect[i].min, got[i].min);
    EXPECT_DOUBLE_EQ(expect[i].max, got[i].max);
    // Quantiles derive from integer bucket counts + min/max, so they are
    // exactly equal whatever the observation partition was.
    EXPECT_EQ(expect[i].p50, got[i].p50);
    EXPECT_EQ(expect[i].p99, got[i].p99);
    EXPECT_EQ(expect[i].p999, got[i].p999);
  }
  EXPECT_EQ(serial.total().count, a.total().count);
  EXPECT_EQ(serial.late_count(), a.late_count());
}

TEST(WindowedSeries, MergeIsIndependentOfWorkerCount) {
  // The orchestrator contract: partition the same observations over W
  // per-worker series, merge in worker-index order — every integer aggregate
  // and every quantile must be identical for any W.
  const SeriesOptions options = small_options();
  constexpr int kObservations = 200;
  std::vector<std::vector<WindowAggregate>> results;
  std::vector<WindowAggregate> totals;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    std::vector<std::unique_ptr<WindowedSeries>> per_worker;
    for (std::size_t w = 0; w < workers; ++w) {
      per_worker.push_back(std::make_unique<WindowedSeries>(options));
    }
    for (int i = 0; i < kObservations; ++i) {
      per_worker[static_cast<std::size_t>(i) % workers]->observe(
          static_cast<double>(i % 40), 1.0 + (i % 11));
    }
    WindowedSeries merged(options);
    for (const auto& series : per_worker) merged.merge(*series);
    results.push_back(merged.windows());
    totals.push_back(merged.total());
  }
  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[0].size(), results[r].size());
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      EXPECT_EQ(results[0][i].index, results[r][i].index);
      EXPECT_EQ(results[0][i].count, results[r][i].count);
      EXPECT_DOUBLE_EQ(results[0][i].min, results[r][i].min);
      EXPECT_DOUBLE_EQ(results[0][i].max, results[r][i].max);
      EXPECT_EQ(results[0][i].p50, results[r][i].p50);
      EXPECT_EQ(results[0][i].p99, results[r][i].p99);
    }
    EXPECT_EQ(totals[0].count, totals[r].count);
    EXPECT_DOUBLE_EQ(totals[0].min, totals[r].min);
    EXPECT_DOUBLE_EQ(totals[0].max, totals[r].max);
  }
}

TEST(WindowedSeries, WriteJsonHasExpectedShape) {
  WindowedSeries s(small_options());
  s.observe(3, 2.0);
  s.observe(15, 20.0);
  std::ostringstream out;
  s.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"window\""), std::string::npos);
  EXPECT_NE(json.find("\"capacity\""), std::string::npos);
  EXPECT_NE(json.find("\"late\""), std::string::npos);
  EXPECT_NE(json.find("\"total\""), std::string::npos);
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"k\": 1"), std::string::npos);
}

TEST(WindowedSeries, DefaultEdgesMatchTheLatencyEdges) {
  EXPECT_EQ(default_series_edges_us(), default_latency_edges_us());
}

// --- concurrency (runs under TSan via the tsan ctest label) ---

TEST(WindowedSeriesConcurrency, ConcurrentObservationIsExact) {
  SeriesOptions options = small_options();
  options.capacity = 64;
  WindowedSeries s(options);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5000;
  util::parallel_for(
      kThreads,
      [&](std::size_t t) {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          // Every thread hits every window; integer aggregates must be exact
          // whatever the interleaving.
          s.observe(static_cast<double>(i % 300), 1.0 + (t % 3));
        }
      },
      kThreads);
  EXPECT_EQ(s.total().count, kThreads * kPerThread);
  std::uint64_t windowed = 0;
  for (const WindowAggregate& w : s.windows()) windowed += w.count;
  // Keys span 30 windows against capacity 64: nothing evicted, nothing late.
  EXPECT_EQ(windowed, kThreads * kPerThread);
  EXPECT_EQ(s.late_count(), 0u);
  EXPECT_DOUBLE_EQ(s.total().min, 1.0);
  EXPECT_DOUBLE_EQ(s.total().max, 3.0);
}

TEST(WindowedSeriesConcurrency, RegistrySeriesSharedAcrossThreads) {
  Registry reg;
  SeriesOptions options = small_options();
  constexpr std::size_t kThreads = 8;
  util::parallel_for(
      kThreads,
      [&](std::size_t t) {
        WindowedSeries& s = reg.series("shared", options);
        s.observe(static_cast<double>(t), 1.0);
      },
      kThreads);
  const WindowedSeries* s = reg.find_series("shared");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total().count, kThreads);
  EXPECT_EQ(reg.find_series("missing"), nullptr);
}

}  // namespace
}  // namespace dynp::obs
