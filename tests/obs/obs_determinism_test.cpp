/// The zero-interference guarantee of the instrumentation layer: wiring a
/// registry, tracer and phase profiler into a simulation must not change a
/// single scheduling outcome — instruments only ever *read* scheduler state.
/// These tests compare instrumented and uninstrumented runs field by field
/// (and hold identically in a -DDYNP_OBS=OFF build, where the instrumented
/// run simply ignores its sinks).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/simulation.hpp"
#include "obs/obs.hpp"
#include "workload/models.hpp"

namespace dynp {
namespace {

[[nodiscard]] workload::JobSet test_jobs() {
  return workload::generate(workload::model_by_name("KTH"), 600, 7)
      .with_shrinking_factor(0.7);
}

/// Exact (bitwise, for doubles) equality of everything a run produces.
void expect_identical(const core::SimulationResult& a,
                      const core::SimulationResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].start, b.outcomes[i].start) << "job " << i;
    EXPECT_EQ(a.outcomes[i].end, b.outcomes[i].end) << "job " << i;
  }
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.decisions_per_policy, b.decisions_per_policy);
  ASSERT_EQ(a.policy_timeline.size(), b.policy_timeline.size());
  for (std::size_t i = 0; i < a.policy_timeline.size(); ++i) {
    EXPECT_EQ(a.policy_timeline[i].when, b.policy_timeline[i].when);
    EXPECT_EQ(a.policy_timeline[i].to, b.policy_timeline[i].to);
  }
  EXPECT_EQ(a.summary.sldwa, b.summary.sldwa);
  EXPECT_EQ(a.summary.avg_wait, b.summary.avg_wait);
  EXPECT_EQ(a.summary.makespan, b.summary.makespan);
}

class ObsDeterminism
    : public ::testing::TestWithParam<core::PlannerSemantics> {};

TEST_P(ObsDeterminism, InstrumentedRunIsByteIdentical) {
  const workload::JobSet jobs = test_jobs();

  core::SimulationConfig plain = core::dynp_config(core::make_advanced_decider());
  plain.semantics = GetParam();
  const core::SimulationResult bare = core::simulate(jobs, plain);

  obs::Registry registry;
  std::ostringstream trace_out;
  obs::Tracer tracer(trace_out, obs::TraceFormat::kJsonl);
  obs::PhaseProfiler profiler(registry, &tracer);
  obs::ProvenanceTracer provenance(tracer);
  core::SimulationConfig wired = plain;
  wired.instruments.registry = &registry;
  wired.instruments.tracer = &tracer;
  wired.instruments.profiler = &profiler;
  wired.instruments.provenance = &provenance;
  const core::SimulationResult instrumented = core::simulate(jobs, wired);
  tracer.close();

  expect_identical(bare, instrumented);

  if (obs::kEnabled) {
    // The sinks actually observed the run: one trace event per engine event,
    // and the counters mirror the result's totals exactly.
    EXPECT_EQ(registry.counter("sim.events.submit").value() +
                  registry.counter("sim.events.finish").value(),
              instrumented.events);
    EXPECT_EQ(registry.counter("sim.decider.decisions").value(),
              instrumented.decisions);
    EXPECT_EQ(registry.counter("sim.decider.switches").value(),
              instrumented.switches);
    EXPECT_EQ(registry.counter("sim.jobs.started").value(), jobs.size());
    EXPECT_GE(tracer.records(), instrumented.events);
    // The provenance spans and the windowed series rode along without
    // perturbing anything either.
    EXPECT_GT(provenance.spans(), 0u);
    const obs::WindowedSeries* decision =
        registry.find_series("series.decision_latency_us");
    ASSERT_NE(decision, nullptr);
    EXPECT_EQ(decision->total().count, instrumented.decisions);
    const obs::WindowedSeries* depth =
        registry.find_series("series.queue_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->total().count, instrumented.events);
  } else {
    // -DDYNP_OBS=OFF: the hooks are compiled out; nothing observed anything.
    EXPECT_EQ(registry.counter("sim.events.submit").value(), 0u);
    EXPECT_EQ(tracer.records(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Semantics, ObsDeterminism,
                         ::testing::Values(core::PlannerSemantics::kReplan,
                                           core::PlannerSemantics::kGuarantee),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          core::PlannerSemantics::kReplan
                                      ? "replan"
                                      : "guarantee";
                         });

TEST(ObsDeterminism, ParallelTuningWithProfilerIsIdentical) {
  const workload::JobSet jobs = test_jobs();
  core::SimulationConfig plain = core::dynp_config(core::make_advanced_decider());
  const core::SimulationResult bare = core::simulate(jobs, plain);

  obs::Registry registry;
  obs::PhaseProfiler profiler(registry);
  core::SimulationConfig wired = plain;
  wired.parallel_tuning = true;
  wired.tuning_threads = 3;
  wired.instruments.registry = &registry;
  wired.instruments.profiler = &profiler;
  const core::SimulationResult instrumented = core::simulate(jobs, wired);

  expect_identical(bare, instrumented);
  if (obs::kEnabled) {
    // The pool task timer fed the wait/run histograms.
    EXPECT_GT(
        registry.histogram("phase.pool_task_run_us",
                           obs::default_latency_edges_us())
            .count(),
        0u);
  }
}

TEST(ObsDeterminism, StaticModeCountsEventsOnly) {
  const workload::JobSet jobs = test_jobs();
  core::SimulationConfig config = core::static_config(policies::PolicyKind::kSjf);
  obs::Registry registry;
  config.instruments.registry = &registry;
  const core::SimulationResult r = core::simulate(jobs, config);
  if (obs::kEnabled) {
    EXPECT_EQ(registry.counter("sim.events.submit").value() +
                  registry.counter("sim.events.finish").value(),
              r.events);
    EXPECT_EQ(registry.counter("sim.decider.decisions").value(), 0u);
  }
}

}  // namespace
}  // namespace dynp
