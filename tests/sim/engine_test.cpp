#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dynp::sim {
namespace {

/// Records every event it sees; optionally schedules follow-ups.
class Recorder : public Process {
 public:
  explicit Recorder(Engine& engine) : engine_(&engine) {}

  void handle(const Event& event) override {
    seen.push_back(event);
    times.push_back(engine_->now());
    if (chain_depth > 0) {
      --chain_depth;
      engine_->schedule(engine_->now() + 5, EventKind::kFinish, event.job);
    }
  }

  std::vector<Event> seen;
  std::vector<Time> times;
  int chain_depth = 0;

 private:
  Engine* engine_;
};

TEST(Engine, StartsAtTimeZero) {
  const Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.processed(), 0u);
}

TEST(Engine, DispatchesInOrderAndAdvancesClock) {
  Engine engine;
  Recorder rec(engine);
  engine.schedule(10, EventKind::kSubmit, 1);
  engine.schedule(5, EventKind::kSubmit, 0);
  engine.run(rec);
  ASSERT_EQ(rec.seen.size(), 2u);
  EXPECT_EQ(rec.seen[0].job, 0u);
  EXPECT_EQ(rec.seen[1].job, 1u);
  EXPECT_DOUBLE_EQ(rec.times[0], 5.0);
  EXPECT_DOUBLE_EQ(rec.times[1], 10.0);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
  EXPECT_EQ(engine.processed(), 2u);
}

TEST(Engine, HandlerMaySchedule) {
  Engine engine;
  Recorder rec(engine);
  rec.chain_depth = 3;
  engine.schedule(0, EventKind::kSubmit, 42);
  engine.run(rec);
  // 1 seed + 3 chained events at t = 5, 10, 15.
  ASSERT_EQ(rec.seen.size(), 4u);
  EXPECT_DOUBLE_EQ(engine.now(), 15.0);
}

TEST(Engine, RunBoundedStopsAtLimit) {
  Engine engine;
  Recorder rec(engine);
  for (std::uint32_t i = 0; i < 10; ++i) {
    engine.schedule(static_cast<Time>(i), EventKind::kSubmit, i);
  }
  EXPECT_FALSE(engine.run_bounded(rec, 4));
  EXPECT_EQ(rec.seen.size(), 4u);
  EXPECT_TRUE(engine.run_bounded(rec, 100));
  EXPECT_EQ(rec.seen.size(), 10u);
}

TEST(Engine, RunOnEmptyCalendarReturnsImmediately) {
  Engine engine;
  Recorder rec(engine);
  engine.run(rec);
  EXPECT_TRUE(rec.seen.empty());
}

}  // namespace
}  // namespace dynp::sim
