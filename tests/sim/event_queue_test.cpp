#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace dynp::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  const EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(30, EventKind::kSubmit, 3);
  q.push(10, EventKind::kSubmit, 1);
  q.push(20, EventKind::kSubmit, 2);
  EXPECT_EQ(q.pop().job, 1u);
  EXPECT_EQ(q.pop().job, 2u);
  EXPECT_EQ(q.pop().job, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FinishBeforeSubmitAtEqualTime) {
  EventQueue q;
  q.push(10, EventKind::kSubmit, 1);
  q.push(10, EventKind::kFinish, 2);
  const Event first = q.pop();
  EXPECT_EQ(first.kind, EventKind::kFinish);
  EXPECT_EQ(first.job, 2u);
  EXPECT_EQ(q.pop().kind, EventKind::kSubmit);
}

TEST(EventQueue, FaultKindsOrderBetweenFinishAndSubmitAtEqualTime) {
  // At one instant: finishes free capacity first, then failures and node
  // transitions mutate the machine, and only then do arrivals (submit,
  // requeue) trigger the scheduling pass on the settled state.
  EventQueue q;
  q.push(10, EventKind::kRequeue, 5);
  q.push(10, EventKind::kSubmit, 4);
  q.push(10, EventKind::kNodeUp, 3);
  q.push(10, EventKind::kNodeDown, 2);
  q.push(10, EventKind::kJobFail, 1);
  q.push(10, EventKind::kFinish, 0);
  EXPECT_EQ(q.pop().kind, EventKind::kFinish);
  EXPECT_EQ(q.pop().kind, EventKind::kJobFail);
  EXPECT_EQ(q.pop().kind, EventKind::kNodeDown);
  EXPECT_EQ(q.pop().kind, EventKind::kNodeUp);
  EXPECT_EQ(q.pop().kind, EventKind::kSubmit);
  EXPECT_EQ(q.pop().kind, EventKind::kRequeue);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongFullTies) {
  EventQueue q;
  q.push(5, EventKind::kSubmit, 10);
  q.push(5, EventKind::kSubmit, 11);
  q.push(5, EventKind::kSubmit, 12);
  EXPECT_EQ(q.pop().job, 10u);
  EXPECT_EQ(q.pop().job, 11u);
  EXPECT_EQ(q.pop().job, 12u);
}

TEST(EventQueue, TopDoesNotRemove) {
  EventQueue q;
  q.push(1, EventKind::kSubmit, 7);
  EXPECT_EQ(q.top().job, 7u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push(10, EventKind::kSubmit, 1);
  q.push(40, EventKind::kSubmit, 4);
  EXPECT_EQ(q.pop().job, 1u);
  // Pushing at the current (last-popped) time is allowed.
  q.push(10, EventKind::kFinish, 2);
  q.push(20, EventKind::kSubmit, 3);
  EXPECT_EQ(q.pop().job, 2u);
  EXPECT_EQ(q.pop().job, 3u);
  EXPECT_EQ(q.pop().job, 4u);
}

TEST(EventQueue, ManyEventsComeOutSorted) {
  EventQueue q;
  // Deterministic pseudo-shuffle of times.
  for (std::uint32_t i = 0; i < 1000; ++i) {
    q.push(static_cast<Time>((i * 7919) % 1009), EventKind::kSubmit, i);
  }
  Time last = -1;
  while (!q.empty()) {
    const Event e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
  }
}

}  // namespace
}  // namespace dynp::sim
