/// End-to-end property tests: run every scheduler configuration on generated
/// workloads and check global invariants of the produced schedules.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/simulation.hpp"
#include "exp/experiment.hpp"
#include "workload/models.hpp"

namespace dynp {
namespace {

using core::SimulationConfig;
using core::SimulationResult;
using policies::PolicyKind;

[[nodiscard]] std::vector<SimulationConfig> all_configs() {
  std::vector<SimulationConfig> configs = {
      core::static_config(PolicyKind::kFcfs),
      core::static_config(PolicyKind::kSjf),
      core::static_config(PolicyKind::kLjf),
      core::dynp_config(core::make_simple_decider()),
      core::dynp_config(core::make_advanced_decider()),
      core::dynp_config(exp::sjf_preferred_decider()),
  };
  // The same matrix under guarantee semantics...
  const std::size_t base = configs.size();
  for (std::size_t i = 0; i < base; ++i) {
    SimulationConfig c = configs[i];
    c.semantics = core::PlannerSemantics::kGuarantee;
    configs.push_back(std::move(c));
  }
  // ...and the static policies under queueing/EASY.
  for (const PolicyKind policy :
       {PolicyKind::kFcfs, PolicyKind::kSjf, PolicyKind::kLjf}) {
    SimulationConfig c = core::static_config(policy);
    c.semantics = core::PlannerSemantics::kQueueingEasy;
    configs.push_back(std::move(c));
  }
  return configs;
}

/// Verifies that at no instant more nodes are used than the machine has, by
/// sweeping the start/end events of all outcomes.
void expect_no_oversubscription(const SimulationResult& r,
                                std::uint32_t nodes) {
  std::map<Time, std::int64_t> delta;
  for (const auto& o : r.outcomes) {
    delta[o.start] += o.width;
    delta[o.end] -= o.width;
  }
  std::int64_t used = 0;
  for (const auto& [t, d] : delta) {
    used += d;
    ASSERT_LE(used, static_cast<std::int64_t>(nodes)) << "at t=" << t;
    ASSERT_GE(used, 0) << "at t=" << t;
  }
  ASSERT_EQ(used, 0);
}

class EndToEnd : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EndToEnd, ScheduleInvariantsHoldOnGeneratedWorkload) {
  const auto models = workload::paper_models();
  const workload::TraceModel model = models[1];  // KTH: small machine = dense
  const workload::JobSet set =
      workload::generate(model, 300, 1234).with_shrinking_factor(0.8);
  const SimulationConfig config = all_configs()[GetParam()];
  const SimulationResult r = core::simulate(set, config);

  ASSERT_EQ(r.outcomes.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto& o = r.outcomes[i];
    const auto& j = set[i];
    // Every job ran: started no earlier than submitted, for its actual time.
    EXPECT_GE(o.start, j.submit) << config.label() << " job " << i;
    EXPECT_DOUBLE_EQ(o.end, o.start + j.actual_runtime);
    EXPECT_EQ(o.width, j.width);
  }
  expect_no_oversubscription(r, set.machine().nodes);
  EXPECT_GT(r.summary.utilization, 0.0);
  EXPECT_LE(r.summary.utilization, 1.0);
  EXPECT_GE(r.summary.sldwa, 1.0);
}

[[nodiscard]] std::string scheduler_name(
    const ::testing::TestParamInfo<std::size_t>& info) {
  static const char* kNames[] = {
      "FCFS",          "SJF",          "LJF",
      "dynPsimple",    "dynPadvanced", "dynPSJFpreferred",
      "FCFSguarantee", "SJFguarantee", "LJFguarantee",
      "dynPsimpleG",   "dynPadvancedG", "dynPSJFpreferredG",
      "FCFSeasy",      "SJFeasy",      "LJFeasy"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, EndToEnd,
                         ::testing::Range<std::size_t>(0, 15),
                         scheduler_name);

TEST(EndToEnd, HigherLoadNeverLowersUtilizationMuch) {
  // Shrinking the interarrival times (more load) should raise utilisation
  // monotonically up to saturation; allow slack for noise.
  // LANL has the tightest runtime cap of the four traces (7 h), so 800 jobs
  // give a long submission window relative to any single job and the
  // utilisation signal is not dominated by a few giant jobs.
  const workload::JobSet base = workload::generate(workload::lanl_model(), 800, 7);
  double prev_util = 0;
  for (const double factor : {1.0, 0.8, 0.6}) {
    const auto r = core::simulate(base.with_shrinking_factor(factor),
                                  core::static_config(PolicyKind::kFcfs));
    EXPECT_GT(r.summary.utilization, prev_util - 0.03) << factor;
    prev_util = r.summary.utilization;
  }
  // At factor 0.6 LANL offers ~1.05 load: the machine should be near-saturated.
  EXPECT_GT(prev_util, 0.7);
}

TEST(EndToEnd, DynPWithSinglePolicyPoolMatchesStatic) {
  const workload::JobSet set = workload::generate(workload::sdsc_model(), 200, 3);
  core::SimulationConfig dynp = core::dynp_config(core::make_advanced_decider());
  dynp.pool = {PolicyKind::kSjf};
  dynp.initial_index = 0;
  const auto a = core::simulate(set, dynp);
  const auto b = core::simulate(set, core::static_config(PolicyKind::kSjf));
  EXPECT_DOUBLE_EQ(a.summary.sldwa, b.summary.sldwa);
  EXPECT_DOUBLE_EQ(a.summary.utilization, b.summary.utilization);
  EXPECT_EQ(a.switches, 0u);
}

TEST(EndToEnd, PreferredDeciderWithHugeThresholdNeverLeavesPreferred) {
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 250, 9).with_shrinking_factor(0.7);
  core::SimulationConfig config =
      core::dynp_config(exp::sjf_preferred_decider(1e9));
  const auto r = core::simulate(set, config);
  // All decisions fall on SJF (pool index 1).
  EXPECT_EQ(r.decisions_per_policy[0], 0u);
  EXPECT_EQ(r.decisions_per_policy[2], 0u);
  // And the outcome equals static SJF.
  const auto sjf = core::simulate(set, core::static_config(PolicyKind::kSjf));
  EXPECT_DOUBLE_EQ(r.summary.sldwa, sjf.summary.sldwa);
}

}  // namespace
}  // namespace dynp
