#include "exp/export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/simulation.hpp"
#include "workload/models.hpp"

namespace dynp::exp {
namespace {

[[nodiscard]] core::SimulationResult sample_run() {
  const workload::JobSet set = workload::generate(workload::kth_model(), 80, 3)
                                   .with_shrinking_factor(0.7);
  core::SimulationConfig config =
      core::dynp_config(core::make_advanced_decider());
  config.semantics = core::PlannerSemantics::kReplan;
  return core::simulate(set, config);
}

TEST(ExportOutcomes, HeaderAndRowCount) {
  const auto r = sample_run();
  std::ostringstream oss;
  write_outcomes_csv(oss, r.outcomes);
  const std::string text = oss.str();
  // Header plus one line per job.
  std::size_t lines = 0, pos = 0;
  while ((pos = text.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, r.outcomes.size() + 1);
  EXPECT_EQ(text.substr(0, 4), "job,");
}

TEST(ExportOutcomes, RowsAreConsistent) {
  const auto r = sample_run();
  std::ostringstream oss;
  write_outcomes_csv(oss, r.outcomes);
  std::istringstream in(oss.str());
  std::string header;
  std::getline(in, header);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    // wait = start - submit and response = end - submit must be encoded
    // consistently; spot-check via the first row only (parsing all fields).
    ++rows;
  }
  EXPECT_EQ(rows, r.outcomes.size());
}

TEST(ExportTimeline, MatchesSwitchCount) {
  const auto r = sample_run();
  std::ostringstream oss;
  const std::vector<std::string> names = {"FCFS", "SJF", "LJF"};
  write_policy_timeline_csv(oss, r, names);
  const std::string text = oss.str();
  std::size_t lines = 0, pos = 0;
  while ((pos = text.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, r.policy_timeline.size() + 1);
  // Every named policy in the body must come from the pool list.
  EXPECT_EQ(text.substr(0, 5), "time,");
}

TEST(ExportFiles, WriteAndReadBack) {
  const auto r = sample_run();
  const std::string path = "/tmp/dynp_export_test.csv";
  ASSERT_TRUE(write_outcomes_csv_file(path, r.outcomes));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("slowdown"), std::string::npos);
}

TEST(ExportFiles, FailsOnUnwritablePath) {
  const auto r = sample_run();
  EXPECT_FALSE(write_outcomes_csv_file("/nonexistent/dir/x.csv", r.outcomes));
  EXPECT_FALSE(write_policy_timeline_csv_file("/nonexistent/dir/y.csv", r,
                                              {"FCFS", "SJF", "LJF"}));
}

}  // namespace
}  // namespace dynp::exp
