/// Deterministic "shape" regression tests: the qualitative structure of the
/// paper's evaluation must hold on the fixed-seed reduced-scale ensembles
/// the test suite can afford. All inputs are seeded, so these cannot flake —
/// they fail only if a code change actually shifts the physics.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace dynp::exp {
namespace {

using policies::PolicyKind;

/// Shared small-scale sweep state (built once; simulations are the expensive
/// part of this suite).
class ShapeTest : public ::testing::Test {
 protected:
  static constexpr double kFactors[3] = {1.0, 0.8, 0.6};

  [[nodiscard]] static CombinedPoint run(const workload::TraceModel& model,
                                         double factor,
                                         const core::SimulationConfig& config) {
    const SweepRunner runner(model, ExperimentScale{3, 1200, 42});
    return runner.run(factor, config, 1);
  }
};

TEST_F(ShapeTest, LjfHasTheWorstSlowdownEverywhere) {
  for (const auto& model : workload::paper_models()) {
    const SweepRunner runner(model, ExperimentScale{3, 1200, 42});
    for (const double factor : kFactors) {
      const auto fcfs =
          runner.run(factor, core::static_config(PolicyKind::kFcfs), 1);
      const auto sjf =
          runner.run(factor, core::static_config(PolicyKind::kSjf), 1);
      const auto ljf =
          runner.run(factor, core::static_config(PolicyKind::kLjf), 1);
      // Figure 1's ordering, with a small tolerance for near-ties.
      EXPECT_GE(ljf.sldwa * 1.10, fcfs.sldwa)
          << model.name << " factor " << factor;
      EXPECT_GE(ljf.sldwa * 1.10, sjf.sldwa)
          << model.name << " factor " << factor;
    }
  }
}

TEST_F(ShapeTest, SjfIsTheBestSlowdownUnderHeavyLoad) {
  // At factor 0.6 every trace's SJF beats FCFS on SLDwA in the paper.
  for (const auto& model : workload::paper_models()) {
    const SweepRunner runner(model, ExperimentScale{3, 1200, 42});
    const auto fcfs =
        runner.run(0.6, core::static_config(PolicyKind::kFcfs), 1);
    const auto sjf = runner.run(0.6, core::static_config(PolicyKind::kSjf), 1);
    // 10% headroom: at this reduced scale the SJF advantage is not yet fully
    // developed for every trace (it grows with job count; see EXPERIMENTS.md).
    EXPECT_LE(sjf.sldwa, fcfs.sldwa * 1.10) << model.name;
  }
}

TEST_F(ShapeTest, SlowdownGrowsWithLoad) {
  for (const auto& model : workload::paper_models()) {
    const SweepRunner runner(model, ExperimentScale{3, 1200, 42});
    const auto light =
        runner.run(1.0, core::static_config(PolicyKind::kFcfs), 1);
    const auto heavy =
        runner.run(0.6, core::static_config(PolicyKind::kFcfs), 1);
    EXPECT_GT(heavy.sldwa, light.sldwa) << model.name;
    EXPECT_GT(heavy.utilization, light.utilization - 1.0) << model.name;
  }
}

TEST_F(ShapeTest, SjfPaysUtilisationForItsSlowdowns) {
  // Table 4: SJF's utilisation never beats LJF's under heavy load.
  for (const auto& model : workload::paper_models()) {
    const SweepRunner runner(model, ExperimentScale{3, 1200, 42});
    const auto sjf = runner.run(0.6, core::static_config(PolicyKind::kSjf), 1);
    const auto ljf = runner.run(0.6, core::static_config(PolicyKind::kLjf), 1);
    EXPECT_LE(sjf.utilization, ljf.utilization + 1.0) << model.name;
  }
}

TEST_F(ShapeTest, DynPBeatsSjfOnAverageAcrossFactors) {
  // The paper's headline (Table 3): averaged over the sweep, both dynP
  // deciders improve SLDwA relative to static SJF — with a tolerance that
  // still fails if dynP systematically loses.
  for (const auto& model : workload::paper_models()) {
    const SweepRunner runner(model, ExperimentScale{3, 1200, 42});
    double rel_adv = 0, rel_pref = 0;
    for (const double factor : kFactors) {
      const auto sjf =
          runner.run(factor, core::static_config(PolicyKind::kSjf), 1);
      const auto adv = runner.run(
          factor, core::dynp_config(core::make_advanced_decider()), 1);
      const auto pref =
          runner.run(factor, core::dynp_config(sjf_preferred_decider()), 1);
      rel_adv += 100.0 * (sjf.sldwa - adv.sldwa) / sjf.sldwa;
      rel_pref += 100.0 * (sjf.sldwa - pref.sldwa) / sjf.sldwa;
    }
    EXPECT_GT(rel_adv / 3, -3.0) << model.name;   // never clearly worse
    EXPECT_GT(rel_pref / 3, -3.0) << model.name;
  }
}

TEST_F(ShapeTest, PreferredAndAdvancedDecidersTrackEachOther) {
  // "no significant differences between the advanced and the SJF-preferred
  // decider are seen" (paper §4.3).
  const auto model = workload::ctc_model();
  const SweepRunner runner(model, ExperimentScale{3, 1200, 42});
  for (const double factor : kFactors) {
    const auto adv = runner.run(
        factor, core::dynp_config(core::make_advanced_decider()), 1);
    const auto pref =
        runner.run(factor, core::dynp_config(sjf_preferred_decider()), 1);
    EXPECT_NEAR(adv.sldwa, pref.sldwa, 0.25 * adv.sldwa) << factor;
    EXPECT_NEAR(adv.utilization, pref.utilization, 3.0) << factor;
  }
}

TEST_F(ShapeTest, SjfPreferredSpendsMostTimeInSjf) {
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 1500, 42)
          .with_shrinking_factor(0.8);
  const auto r =
      core::simulate(set, core::dynp_config(sjf_preferred_decider()));
  const double total =
      r.time_in_policy[0] + r.time_in_policy[1] + r.time_in_policy[2];
  EXPECT_GT(r.time_in_policy[1] / total, 0.5);
}

}  // namespace
}  // namespace dynp::exp
