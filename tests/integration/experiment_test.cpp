#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include "exp/paper_reference.hpp"
#include "util/stats.hpp"

namespace dynp::exp {
namespace {

TEST(PaperShrinkingFactors, MatchesPaperSweep) {
  EXPECT_EQ(paper_shrinking_factors(),
            (std::vector<double>{1.0, 0.9, 0.8, 0.7, 0.6}));
}

TEST(SweepRunner, BuildsEnsembleOfRequestedShape) {
  const ExperimentScale scale{4, 50, 7};
  const SweepRunner runner(workload::kth_model(), scale);
  ASSERT_EQ(runner.ensemble().size(), 4u);
  for (const auto& set : runner.ensemble()) {
    EXPECT_EQ(set.size(), 50u);
    EXPECT_EQ(set.machine().nodes, 100u);
  }
}

TEST(SweepRunner, RunCombinesWithTrimming) {
  const SweepRunner runner(workload::kth_model(), ExperimentScale{5, 120, 11});
  const CombinedPoint p =
      runner.run(1.0, core::static_config(policies::PolicyKind::kFcfs), 1);
  ASSERT_EQ(p.sldwa_per_set.size(), 5u);
  EXPECT_DOUBLE_EQ(
      p.sldwa, util::trimmed_mean_drop_extremes(p.sldwa_per_set));
  EXPECT_DOUBLE_EQ(p.utilization,
                   util::trimmed_mean_drop_extremes(p.util_per_set));
  EXPECT_GT(p.sldwa, 0.99);
  EXPECT_GT(p.utilization, 0.0);
  EXPECT_LE(p.utilization, 100.0);
}

TEST(SweepRunner, DeterministicAcrossInstances) {
  const ExperimentScale scale{3, 80, 5};
  const SweepRunner a(workload::sdsc_model(), scale);
  const SweepRunner b(workload::sdsc_model(), scale);
  const auto config = core::static_config(policies::PolicyKind::kSjf);
  const CombinedPoint pa = a.run(0.8, config, 1);
  const CombinedPoint pb = b.run(0.8, config, 1);
  EXPECT_DOUBLE_EQ(pa.sldwa, pb.sldwa);
  EXPECT_DOUBLE_EQ(pa.utilization, pb.utilization);
}

TEST(SweepRunner, ThreadCountDoesNotChangeResults) {
  const SweepRunner runner(workload::kth_model(), ExperimentScale{4, 80, 3});
  const auto config = core::dynp_config(core::make_advanced_decider());
  const CombinedPoint serial = runner.run(0.9, config, 1);
  const CombinedPoint parallel = runner.run(0.9, config, 4);
  EXPECT_DOUBLE_EQ(serial.sldwa, parallel.sldwa);
  EXPECT_DOUBLE_EQ(serial.utilization, parallel.utilization);
}

TEST(Deciders, SjfPreferredTargetsPoolIndexOne) {
  const auto d = sjf_preferred_decider();
  EXPECT_EQ(d->name(), "SJF-preferred");
  // SJF ties the minimum -> chosen.
  EXPECT_EQ(d->decide({{5, 5, 5}, 0}), 1u);
}

TEST(Deciders, PreferredForArbitraryPolicy) {
  const auto pool = policies::paper_pool();
  const auto d =
      preferred_decider_for(policies::PolicyKind::kLjf, pool, 2.0);
  EXPECT_EQ(d->name(), "LJF-preferred(2.0%)");
  EXPECT_EQ(d->decide({{5, 5, 5}, 0}), 2u);
  EXPECT_THROW(
      (void)preferred_decider_for(policies::PolicyKind::kSaf, pool, 0.0),
      std::invalid_argument);
}

TEST(PaperReference, TablesAreInternallyConsistent) {
  // Table 3 is the per-trace average of Table 5's difference columns.
  const auto& t5 = paper_table5();
  const auto& t3 = paper_table3();
  for (std::size_t t = 0; t < 4; ++t) {
    double rel_adv = 0, rel_pref = 0, du_adv = 0, du_pref = 0;
    for (const auto& row : t5[t].rows) {
      rel_adv += row.rel_adv;
      rel_pref += row.rel_pref;
      du_adv += row.dutil_adv;
      du_pref += row.dutil_pref;
    }
    EXPECT_NEAR(rel_adv / 5, t3[t].rel_adv, 0.02) << t5[t].name;
    EXPECT_NEAR(rel_pref / 5, t3[t].rel_pref, 0.02) << t5[t].name;
    EXPECT_NEAR(du_adv / 5, t3[t].dutil_adv, 0.02) << t5[t].name;
    EXPECT_NEAR(du_pref / 5, t3[t].dutil_pref, 0.02) << t5[t].name;
  }
}

TEST(PaperReference, Table5SjfColumnMatchesTable4) {
  const auto& t4 = paper_table4();
  const auto& t5 = paper_table5();
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t f = 0; f < 5; ++f) {
      EXPECT_DOUBLE_EQ(t4[t].rows[f].sldwa_sjf, t5[t].rows[f].sldwa_sjf);
      EXPECT_DOUBLE_EQ(t4[t].rows[f].util_sjf, t5[t].rows[f].util_sjf);
    }
  }
}

TEST(PaperReference, QualitativeShapeFacts) {
  // Facts the paper's prose highlights; our benches are judged against the
  // same shape, so pin them here.
  const auto& t4 = paper_table4();
  for (const auto& trace : t4) {
    for (const auto& row : trace.rows) {
      // LJF always achieves the highest utilisation of the three...
      EXPECT_GE(row.util_ljf, row.util_fcfs) << trace.name;
      EXPECT_GE(row.util_ljf, row.util_sjf) << trace.name;
      // ...at the cost of the worst slowdown.
      EXPECT_GE(row.sldwa_ljf, row.sldwa_fcfs) << trace.name;
      EXPECT_GE(row.sldwa_ljf, row.sldwa_sjf) << trace.name;
      // SJF has the lowest utilisation.
      EXPECT_LE(row.util_sjf, row.util_fcfs) << trace.name;
    }
  }
  // KTH: SJF is the best slowdown at every workload.
  for (const auto& row : t4[1].rows) {
    EXPECT_LE(row.sldwa_sjf, row.sldwa_fcfs);
  }
}

}  // namespace
}  // namespace dynp::exp
