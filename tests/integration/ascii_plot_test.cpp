#include "exp/ascii_plot.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "workload/models.hpp"

namespace dynp::exp {
namespace {

using metrics::JobOutcome;

[[nodiscard]] JobOutcome outcome(Time submit, Time start, Time run,
                                 std::uint32_t width) {
  JobOutcome o;
  o.submit = submit;
  o.start = start;
  o.end = start + run;
  o.width = width;
  o.actual_runtime = run;
  return o;
}

TEST(AsciiUtilization, EmptyOutcomes) {
  EXPECT_EQ(render_utilization_ascii({}, 4), "(no jobs)\n");
}

TEST(AsciiUtilization, FullyBusyMachineFillsEveryColumn) {
  // One job occupying the whole machine for the whole span.
  const std::vector<JobOutcome> outs = {outcome(0, 0, 1000, 8)};
  AsciiPlotOptions opt;
  opt.columns = 20;
  opt.rows = 4;
  const std::string plot = render_utilization_ascii(outs, 8, opt);
  // The top row (100% threshold) must be solid '#'.
  const std::string first_line = plot.substr(0, plot.find('\n'));
  EXPECT_EQ(first_line.substr(5), std::string(20, '#'));
}

TEST(AsciiUtilization, IdleMachineIsBlank) {
  // 1 of 8 nodes busy: only rows at or below 12.5% fill.
  const std::vector<JobOutcome> outs = {outcome(0, 0, 1000, 1)};
  AsciiPlotOptions opt;
  opt.columns = 10;
  opt.rows = 4;  // thresholds 100/75/50/25%
  const std::string plot = render_utilization_ascii(outs, 8, opt);
  // No '#' anywhere (1/8 = 12.5% < lowest 25% threshold).
  EXPECT_EQ(plot.find('#'), std::string::npos);
}

TEST(AsciiUtilization, HasTimeAxis) {
  const std::vector<JobOutcome> outs = {outcome(0, 0, 500, 2),
                                        outcome(100, 200, 500, 2)};
  const std::string plot = render_utilization_ascii(outs, 4);
  EXPECT_NE(plot.find("t=0"), std::string::npos);
  EXPECT_NE(plot.find("t=700"), std::string::npos);
}

TEST(AsciiPolicyStrip, EmptyForStaticRuns) {
  const workload::JobSet set = workload::generate(workload::kth_model(), 60, 3);
  const auto r =
      core::simulate(set, core::static_config(policies::PolicyKind::kFcfs));
  EXPECT_TRUE(render_policy_strip_ascii(r, policies::paper_pool()).empty());
}

TEST(AsciiPolicyStrip, OneCharPerColumnForDynP) {
  const workload::JobSet set = workload::generate(workload::kth_model(), 300, 3)
                                   .with_shrinking_factor(0.7);
  const auto r =
      core::simulate(set, core::dynp_config(core::make_advanced_decider()));
  AsciiPlotOptions opt;
  opt.columns = 40;
  const std::string strip =
      render_policy_strip_ascii(r, policies::paper_pool(), opt);
  ASSERT_FALSE(strip.empty());
  // "pol |" + 40 chars + newline.
  EXPECT_EQ(strip.size(), 5 + 40 + 1);
  for (const char c : strip.substr(5, 40)) {
    EXPECT_TRUE(c == 'F' || c == 'S' || c == 'L') << c;
  }
}

}  // namespace
}  // namespace dynp::exp
