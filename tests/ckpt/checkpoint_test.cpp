/// Crash-consistent checkpoint/restore. The layer's contract has two
/// halves, and these tests pin both:
///
///  * the file formats — snapshots (versioned header, content hash, atomic
///    publish, rotation) and the write-ahead journal (hash-chained records,
///    torn tails dropped, header damage rejected) — must detect every
///    torn/corrupt/foreign file instead of misdecoding it;
///  * restore must be *byte-identical* to never having stopped: a run that
///    snapshots as it goes, restored from any of its snapshots, produces
///    exactly the outcome table of the uninterrupted run — across planner
///    semantics, fault injection on/off and parallel tuning on/off (hence
///    the tsan label), and even when the newest snapshot was torn and the
///    restore rolled back to an older one.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "ckpt/journal.hpp"
#include "ckpt/snapshot.hpp"
#include "ckpt/state.hpp"
#include "core/simulation.hpp"
#include "exp/export.hpp"
#include "workload/models.hpp"

namespace dynp::ckpt {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the gtest temp root.
[[nodiscard]] std::string scratch_dir(const char* name) {
  const fs::path dir = fs::path(testing::TempDir()) / "dynp_ckpt" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void truncate_to(const std::string& path, std::uintmax_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  ASSERT_FALSE(ec) << path;
}

// ---------------------------------------------------------------------------
// codec
// ---------------------------------------------------------------------------

TEST(Codec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-1234.5678);
  w.f64(0.0);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.f64(), -1234.5678);
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_TRUE(r.done());
}

TEST(Codec, ReadPastEndIsSticky) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  (void)r.u64();  // longer than the buffer
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // further reads return zero, never UB
  EXPECT_FALSE(r.done());
}

TEST(Codec, SimStateEncodeIsStableAndRoundTrips) {
  SimState s;
  s.now = 123.5;
  s.processed = 42;
  s.next_seq = 99;
  s.events.push_back(EventRec{130.0, 1, 7, 43});
  s.waiting = {3, 9};
  s.running.push_back(RunningRec{5, 16, 140.0});
  s.outcomes.push_back(OutcomeRec{0, 1.0, 2.0, 3.0, 8, 1.5});
  CandidateRec cand;
  cand.reusable = 1;
  cand.plan.push_back(PlannedRec{3, 131.0});
  cand.profile_capacity = 100;
  cand.profile_starts = {123.5, 140.0};
  cand.profile_frees = {84, 100};
  s.candidates.push_back(cand);
  s.decisions_per_policy = {4, 2};
  s.time_in_policy = {100.0, 23.5};
  s.fault_stats[0] = 11;

  const std::string bytes = s.encode();
  SimState back;
  ASSERT_TRUE(SimState::decode(bytes, back));
  EXPECT_EQ(back.encode(), bytes);
  ASSERT_EQ(back.candidates.size(), 1u);
  EXPECT_EQ(back.candidates[0].profile_capacity, 100u);
  EXPECT_EQ(back.candidates[0].profile_starts, cand.profile_starts);
  EXPECT_EQ(back.candidates[0].profile_frees, cand.profile_frees);
}

TEST(Codec, DecodeRejectsTruncationAtEveryPrefix) {
  SimState s;
  s.events.push_back(EventRec{1.0, 0, 0, 1});
  s.waiting = {1, 2, 3};
  const std::string bytes = s.encode();
  SimState back;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(SimState::decode(bytes.substr(0, cut), back))
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_TRUE(SimState::decode(bytes, back));
}

// ---------------------------------------------------------------------------
// snapshot files
// ---------------------------------------------------------------------------

TEST(Snapshot, WriteReadRoundTrip) {
  const std::string dir = scratch_dir("roundtrip");
  SnapshotMeta meta;
  meta.config_fingerprint = 0xFEEDu;
  meta.seq = 250;
  meta.sim_time = 4096.5;
  meta.build = "test-build";
  const std::string payload = "payload bytes \x00\x01\x02 with nul";
  std::uint64_t bytes = 0;
  ASSERT_TRUE(write_snapshot(dir, meta, payload, 3, &bytes));
  EXPECT_GT(bytes, payload.size());

  const std::string path = dir + "/" + snapshot_file_name(250);
  const std::optional<LoadedSnapshot> loaded = read_snapshot(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.config_fingerprint, 0xFEEDu);
  EXPECT_EQ(loaded->meta.seq, 250u);
  EXPECT_EQ(loaded->meta.sim_time, 4096.5);
  EXPECT_EQ(loaded->payload, payload);
}

TEST(Snapshot, CorruptionAndTruncationAreDetected) {
  const std::string dir = scratch_dir("corrupt");
  SnapshotMeta meta;
  meta.seq = 10;
  ASSERT_TRUE(write_snapshot(dir, meta, std::string(500, 'x')));
  const std::string path = dir + "/" + snapshot_file_name(10);
  const std::string original = slurp(path);

  // Flip one payload byte: the content hash must catch it.
  {
    std::string damaged = original;
    damaged[damaged.size() - 7] ^= 0x01;
    std::ofstream(path, std::ios::binary | std::ios::trunc) << damaged;
    EXPECT_FALSE(read_snapshot(path).has_value());
  }
  // Truncate mid-payload: the length check must catch it.
  {
    std::ofstream(path, std::ios::binary | std::ios::trunc) << original;
    truncate_to(path, original.size() / 2);
    EXPECT_FALSE(read_snapshot(path).has_value());
  }
  // A foreign file is rejected on the magic, not misdecoded.
  {
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << "not a snapshot at all";
    EXPECT_FALSE(read_snapshot(path).has_value());
  }
}

TEST(Snapshot, RotationKeepsTheNewest) {
  const std::string dir = scratch_dir("rotate");
  for (const std::uint64_t seq : {100ULL, 200ULL, 300ULL, 400ULL, 500ULL}) {
    SnapshotMeta meta;
    meta.seq = seq;
    ASSERT_TRUE(write_snapshot(dir, meta, "p", /*keep=*/3));
  }
  std::vector<std::string> names;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{snapshot_file_name(300),
                                             snapshot_file_name(400),
                                             snapshot_file_name(500)}));
}

TEST(Snapshot, RestoreScanRollsBackPastTornAndForeignFingerprints) {
  const std::string dir = scratch_dir("scan");
  for (const std::uint64_t seq : {100ULL, 200ULL, 300ULL}) {
    SnapshotMeta meta;
    meta.seq = seq;
    meta.config_fingerprint = 0xAA;
    ASSERT_TRUE(write_snapshot(dir, meta, "payload-" + std::to_string(seq)));
  }
  // Tear the newest; the scan must fall back to seq 200.
  const std::string newest = dir + "/" + snapshot_file_name(300);
  truncate_to(newest, fs::file_size(newest) / 2);

  RestoreScan scan = find_restore_source(dir, 0xAA);
  ASSERT_TRUE(scan.snapshot.has_value());
  EXPECT_EQ(scan.snapshot->meta.seq, 200u);
  ASSERT_EQ(scan.rejected.size(), 1u);
  EXPECT_EQ(scan.rejected[0], newest);

  // A fingerprint mismatch rejects everything (restoring another run's
  // state would silently change results).
  scan = find_restore_source(dir, 0xBB);
  EXPECT_FALSE(scan.snapshot.has_value());
  EXPECT_EQ(scan.rejected.size(), 3u);

  // Fingerprint 0 accepts any run identity (tooling escape hatch).
  scan = find_restore_source(dir, 0);
  ASSERT_TRUE(scan.snapshot.has_value());
  EXPECT_EQ(scan.snapshot->meta.seq, 200u);
}

// ---------------------------------------------------------------------------
// write-ahead journal
// ---------------------------------------------------------------------------

TEST(Journal, RoundTripAndTornTail) {
  const std::string dir = scratch_dir("journal");
  const std::string path = dir + "/journal.wal";
  std::vector<JournalRecord> records;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    records.push_back(
        JournalRecord{100 + i, 10.0 * static_cast<double>(i),
                      static_cast<std::uint8_t>(i % 3),
                      static_cast<std::uint32_t>(i)});
  }
  {
    Journal journal;
    ASSERT_TRUE(journal.open_fresh(path, 0xC0FFEE, 100));
    for (const JournalRecord& r : records) journal.append(r);
  }
  std::optional<Journal::Contents> contents = Journal::read_file(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->config_fingerprint, 0xC0FFEEu);
  EXPECT_EQ(contents->base_seq, 100u);
  EXPECT_EQ(contents->records, records);

  // A torn tail (crash mid-append) drops the damaged record, keeps the rest.
  truncate_to(path, fs::file_size(path) - 3);
  contents = Journal::read_file(path);
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->records.size(), 4u);
  EXPECT_EQ(contents->records[3], records[3]);

  // Garbage appended after valid records must also stop the chain.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "garbage bytes that are no record";
  }
  contents = Journal::read_file(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->records.size(), 4u);

  // Header damage rejects the whole file.
  truncate_to(path, 4);
  EXPECT_FALSE(Journal::read_file(path).has_value());
  EXPECT_FALSE(Journal::read_file(dir + "/absent.wal").has_value());
}

// ---------------------------------------------------------------------------
// restore == straight-through (the actual crash-consistency contract)
// ---------------------------------------------------------------------------

[[nodiscard]] workload::JobSet ckpt_jobs() {
  return workload::generate(workload::model_by_name("KTH"), 400, 7)
      .with_shrinking_factor(0.7);
}

[[nodiscard]] fault::FaultConfig ckpt_faults() {
  fault::FaultConfig f;
  f.seed = 13;
  f.node_mtbf = 30000;
  f.node_mttr = 4000;
  f.job_fail_p = 0.05;
  f.max_retries = 50;
  return f;
}

[[nodiscard]] std::string outcomes_csv(const core::SimulationResult& r) {
  std::ostringstream out;
  exp::write_outcomes_csv(out, r.outcomes);
  return out.str();
}

/// One grid cell of the determinism matrix: run straight through with
/// periodic snapshots, then restore (newest snapshot + journal replay) and
/// compare the final outcome table byte for byte.
void expect_restore_matches(core::SimulationConfig config,
                            const std::string& dir) {
  const workload::JobSet set = ckpt_jobs();
  config.checkpoint.every = 40;
  config.checkpoint.dir = dir;
  const core::SimulationResult straight = core::simulate(set, config);
  ASSERT_GT(straight.recovery.snapshots_written, 2u);

  core::SimulationConfig resumed = config;
  resumed.checkpoint.restore_from = dir;
  const core::SimulationResult restored = core::simulate(set, resumed);
  EXPECT_FALSE(restored.recovery.restored_from.empty());
  EXPECT_GT(restored.recovery.restored_seq, 0u);
  EXPECT_EQ(outcomes_csv(restored), outcomes_csv(straight));
  EXPECT_EQ(restored.decisions, straight.decisions);
  EXPECT_EQ(restored.switches, straight.switches);
  EXPECT_EQ(restored.faults.job_failures, straight.faults.job_failures);
}

TEST(CheckpointDeterminism, RestoreMatchesStraightThroughAcrossConfigs) {
  struct Cell {
    const char* name;
    bool faults;
    bool parallel;
    std::size_t threads;
  };
  const Cell grid[] = {{"seq", false, false, 0},
                       {"seq_faults", true, false, 0},
                       {"par2", false, true, 2},
                       {"par3_faults", true, true, 3}};
  for (const Cell& cell : grid) {
    SCOPED_TRACE(cell.name);
    core::SimulationConfig config =
        core::dynp_config(core::make_advanced_decider());
    if (cell.faults) config.faults = ckpt_faults();
    config.parallel_tuning = cell.parallel;
    config.tuning_threads = cell.threads;
    expect_restore_matches(config, scratch_dir(cell.name));
  }
}

TEST(CheckpointDeterminism, MidTraceSnapshotRestoresExactly) {
  // Restore from the *oldest retained* snapshot (not the newest) so the
  // replayed stretch is long and crosses many scheduling decisions.
  const workload::JobSet set = ckpt_jobs();
  const std::string dir = scratch_dir("midtrace");
  core::SimulationConfig config =
      core::dynp_config(core::make_advanced_decider());
  config.faults = ckpt_faults();
  config.checkpoint.every = 30;
  config.checkpoint.dir = dir;
  const core::SimulationResult straight = core::simulate(set, config);

  std::vector<std::string> snaps;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".snap") snaps.push_back(e.path().string());
  }
  ASSERT_GE(snaps.size(), 2u);
  std::sort(snaps.begin(), snaps.end());

  core::SimulationConfig resumed = config;
  resumed.checkpoint.every = 0;
  resumed.checkpoint.dir.clear();
  resumed.checkpoint.restore_from = snaps.front();
  const core::SimulationResult restored = core::simulate(set, resumed);
  EXPECT_EQ(restored.recovery.restored_from, snaps.front());
  EXPECT_EQ(outcomes_csv(restored), outcomes_csv(straight));
}

TEST(CheckpointDeterminism, TornNewestSnapshotRollsBackAndStillMatches) {
  const workload::JobSet set = ckpt_jobs();
  const std::string dir = scratch_dir("torn");
  core::SimulationConfig config =
      core::dynp_config(core::make_advanced_decider());
  config.checkpoint.every = 40;
  config.checkpoint.dir = dir;
  const core::SimulationResult straight = core::simulate(set, config);

  std::vector<std::string> snaps;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".snap") snaps.push_back(e.path().string());
  }
  ASSERT_GE(snaps.size(), 2u);
  std::sort(snaps.begin(), snaps.end());
  truncate_to(snaps.back(), fs::file_size(snaps.back()) / 2);

  core::SimulationConfig resumed = config;
  resumed.checkpoint.restore_from = dir;
  const core::SimulationResult restored = core::simulate(set, resumed);
  EXPECT_EQ(restored.recovery.restored_from,
            snaps[snaps.size() - 2]);  // rolled back one checkpoint
  ASSERT_EQ(restored.recovery.rejected_snapshots.size(), 1u);
  EXPECT_EQ(restored.recovery.rejected_snapshots[0], snaps.back());
  EXPECT_EQ(outcomes_csv(restored), outcomes_csv(straight));
}

TEST(CheckpointDeterminism, RestoredRunPassesTheFullAudit) {
  const workload::JobSet set = ckpt_jobs();
  const std::string dir = scratch_dir("audit");
  core::SimulationConfig config =
      core::dynp_config(core::make_advanced_decider());
  config.audit = true;
  config.checkpoint.every = 50;
  config.checkpoint.dir = dir;
  const core::SimulationResult straight = core::simulate(set, config);
  ASSERT_GT(straight.audit_events, 0u);

  core::SimulationConfig resumed = config;
  resumed.checkpoint.restore_from = dir;
  // The auditor aborts through the contract machinery on any violation, so
  // completing the run *is* the assertion; the outcome check is icing.
  const core::SimulationResult restored = core::simulate(set, resumed);
  EXPECT_GT(restored.audit_events, 0u);
  EXPECT_EQ(outcomes_csv(restored), outcomes_csv(straight));
}

TEST(CheckpointDeterminism, EmptyDirectoryFallsBackToAFreshRun) {
  const workload::JobSet set = ckpt_jobs();
  core::SimulationConfig config =
      core::dynp_config(core::make_advanced_decider());
  const core::SimulationResult baseline = core::simulate(set, config);

  core::SimulationConfig resumed = config;
  resumed.checkpoint.restore_from = scratch_dir("fresh");
  const core::SimulationResult restored = core::simulate(set, resumed);
  EXPECT_TRUE(restored.recovery.restored_from.empty());
  EXPECT_EQ(outcomes_csv(restored), outcomes_csv(baseline));
}

}  // namespace
}  // namespace dynp::ckpt
