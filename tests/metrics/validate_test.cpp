#include "metrics/validate.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "workload/models.hpp"

namespace dynp::metrics {
namespace {

using workload::Job;
using workload::JobSet;
using workload::Machine;

[[nodiscard]] Job make_job(Time submit, std::uint32_t width, Time est,
                           Time act) {
  Job j;
  j.submit = submit;
  j.width = width;
  j.estimated_runtime = est;
  j.actual_runtime = act;
  return j;
}

[[nodiscard]] JobOutcome outcome_for(const Job& j, Time start) {
  JobOutcome o;
  o.id = j.id;
  o.submit = j.submit;
  o.start = start;
  o.end = start + j.actual_runtime;
  o.width = j.width;
  o.actual_runtime = j.actual_runtime;
  return o;
}

TEST(Validate, AcceptsAConsistentSchedule) {
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 2, 100, 100), make_job(0, 2, 100, 100)});
  const std::vector<JobOutcome> outs = {outcome_for(set[0], 0),
                                        outcome_for(set[1], 0)};
  EXPECT_TRUE(validate_outcomes(set, outs).ok());
}

TEST(Validate, FlagsStartBeforeSubmit) {
  const JobSet set(Machine{"m", 4}, {make_job(50, 2, 100, 100)});
  const std::vector<JobOutcome> outs = {outcome_for(set[0], 40)};
  const auto report = validate_outcomes(set, outs);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind,
            ValidationIssue::Kind::kStartBeforeSubmit);
}

TEST(Validate, FlagsWrongDuration) {
  const JobSet set(Machine{"m", 4}, {make_job(0, 2, 100, 100)});
  auto o = outcome_for(set[0], 0);
  o.end = 50;  // should be 100
  const auto report = validate_outcomes(set, {o});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].kind, ValidationIssue::Kind::kWrongDuration);
}

TEST(Validate, FlagsOversubscription) {
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 3, 100, 100), make_job(0, 3, 100, 100)});
  // Both run simultaneously: 6 > 4 nodes.
  const std::vector<JobOutcome> outs = {outcome_for(set[0], 0),
                                        outcome_for(set[1], 0)};
  const auto report = validate_outcomes(set, outs);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& issue : report.issues) {
    if (issue.kind == ValidationIssue::Kind::kOversubscribed) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, FlagsWidthMismatch) {
  const JobSet set(Machine{"m", 4}, {make_job(0, 2, 100, 100)});
  auto o = outcome_for(set[0], 0);
  o.width = 1;
  const auto report = validate_outcomes(set, {o});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].kind, ValidationIssue::Kind::kWidthMismatch);
}

TEST(Validate, FlagsMissingJobs) {
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 1, 10, 10), make_job(1, 1, 10, 10)});
  const std::vector<JobOutcome> outs = {outcome_for(set[0], 0)};
  const auto report = validate_outcomes(set, outs);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].kind, ValidationIssue::Kind::kMissingJob);
  EXPECT_EQ(report.issues[0].job, 1u);
}

TEST(Validate, EverySimulatorOutputValidates) {
  const JobSet set = workload::generate(workload::sdsc_model(), 400, 17)
                         .with_shrinking_factor(0.7);
  for (const core::PlannerSemantics semantics :
       {core::PlannerSemantics::kReplan, core::PlannerSemantics::kGuarantee,
        core::PlannerSemantics::kQueueingEasy}) {
    for (const auto policy :
         {policies::PolicyKind::kFcfs, policies::PolicyKind::kSjf,
          policies::PolicyKind::kLjf}) {
      auto config = core::static_config(policy);
      config.semantics = semantics;
      const auto r = core::simulate(set, config);
      const auto report = validate_outcomes(set, r.outcomes);
      EXPECT_TRUE(report.ok())
          << config.label() << ": "
          << (report.issues.empty() ? "" : report.issues[0].detail);
    }
  }
}

}  // namespace
}  // namespace dynp::metrics
