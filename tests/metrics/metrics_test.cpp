#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

namespace dynp::metrics {
namespace {

[[nodiscard]] JobOutcome outcome(Time submit, Time start, Time run,
                                 std::uint32_t width) {
  JobOutcome o;
  o.submit = submit;
  o.start = start;
  o.end = start + run;
  o.width = width;
  o.actual_runtime = run;
  return o;
}

TEST(Slowdown, NoWaitIsOne) {
  EXPECT_DOUBLE_EQ(slowdown(outcome(0, 0, 100, 1)), 1.0);
}

TEST(Slowdown, PaperExampleHalfSecondJob) {
  // Paper §4.1: a 0.5 s job waiting 10 minutes has slowdown 1201.
  // (Our default floor of 1 s would change this, so use floor 0.5.)
  const JobOutcome o = outcome(0, 600, 0.5, 1);
  EXPECT_DOUBLE_EQ(slowdown(o, 0.5), 600.5 / 0.5);
}

TEST(Slowdown, PaperExampleTwentySecondJob) {
  // A 20 s job with the same 10-minute wait has slowdown 31.
  const JobOutcome o = outcome(0, 600, 20, 1);
  EXPECT_DOUBLE_EQ(slowdown(o), 620.0 / 20.0);
}

TEST(Slowdown, FloorGuardsZeroRuntime) {
  const JobOutcome o = outcome(0, 100, 0, 1);
  EXPECT_DOUBLE_EQ(slowdown(o), 100.0);  // response 100 / floor 1
}

TEST(BoundedSlowdown, ShortJobsCapped) {
  // Feitelson s^60: runtime below 60 s is replaced by 60 s.
  const JobOutcome o = outcome(0, 600, 0.5, 1);
  EXPECT_DOUBLE_EQ(bounded_slowdown(o), 600.5 / 60.0);
}

TEST(BoundedSlowdown, NeverBelowOne) {
  EXPECT_DOUBLE_EQ(bounded_slowdown(outcome(0, 0, 1, 1)), 1.0);
}

TEST(BoundedSlowdown, LongJobsUnaffected) {
  const JobOutcome o = outcome(0, 100, 200, 1);
  EXPECT_DOUBLE_EQ(bounded_slowdown(o), 300.0 / 200.0);
}

/// Deterministic pseudo-random outcomes with runtimes >= 1 s for the
/// SLDwA/ARTwW identity test.
void util_identity_jobs(std::vector<JobOutcome>& outs) {
  std::uint64_t x = 12345;
  const auto next = [&x] {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return (x >> 33) % 1000;
  };
  for (int i = 0; i < 200; ++i) {
    const Time submit = static_cast<Time>(next());
    const Time wait = static_cast<Time>(next());
    const Time run = static_cast<Time>(1 + next());
    JobOutcome o;
    o.id = static_cast<JobId>(i);
    o.submit = submit;
    o.start = submit + wait;
    o.end = o.start + run;
    o.actual_runtime = run;
    o.width = static_cast<std::uint32_t>(1 + next() % 32);
    outs.push_back(o);
  }
}

TEST(Summarize, EmptyOutcomes) {
  const ScheduleSummary s = summarize({}, 10);
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.sldwa, 0.0);
  EXPECT_DOUBLE_EQ(s.utilization, 0.0);
}

TEST(Summarize, SldwaWeightsByArea) {
  // Paper §4.1 worked example: 0.5 s and 20 s single-node jobs, both waiting
  // 600 s. Weighted contributions 600.5 and 620.
  const std::vector<JobOutcome> outs = {outcome(0, 600, 0.5, 1),
                                        outcome(0, 600, 20, 1)};
  const ScheduleSummary s = summarize(outs, 10);
  const double s1 = 600.5 / 1.0;  // floored runtime 1 s
  const double s2 = 620.0 / 20.0;
  const double expected = (0.5 * s1 + 20.0 * s2) / 20.5;
  EXPECT_DOUBLE_EQ(s.sldwa, expected);
}

TEST(Summarize, UtilizationAndMakespan) {
  // Two 4-node jobs of 100 s back to back on an 8-node machine, submitted at
  // t=0 and t=50.
  const std::vector<JobOutcome> outs = {outcome(0, 0, 100, 4),
                                        outcome(50, 100, 100, 4)};
  const ScheduleSummary s = summarize(outs, 8);
  EXPECT_DOUBLE_EQ(s.makespan, 200.0);
  EXPECT_DOUBLE_EQ(s.utilization_makespan, 800.0 / (8.0 * 200.0));
  // Submission window [0, 50): only job 0 runs there, using 4 x 50.
  EXPECT_DOUBLE_EQ(s.utilization, 200.0 / (8.0 * 50.0));
}

TEST(Summarize, UtilizationClipsJobsToSubmissionWindow) {
  // Job started before the window closes but running far past it only
  // counts its in-window share.
  const std::vector<JobOutcome> outs = {outcome(0, 0, 1000, 2),
                                        outcome(100, 100, 10, 2)};
  const ScheduleSummary s = summarize(outs, 4);
  // Window [0, 100): job 0 contributes 2*100, job 1 starts at the boundary.
  EXPECT_DOUBLE_EQ(s.utilization, 200.0 / (4.0 * 100.0));
}

TEST(Summarize, SingleSubmitInstantGivesZeroUtilization) {
  const std::vector<JobOutcome> outs = {outcome(0, 0, 100, 4),
                                        outcome(0, 100, 100, 4)};
  const ScheduleSummary s = summarize(outs, 8);
  EXPECT_DOUBLE_EQ(s.utilization, 0.0);
  EXPECT_GT(s.utilization_makespan, 0.0);
}

TEST(Summarize, ResponseAndWaitAverages) {
  const std::vector<JobOutcome> outs = {outcome(0, 10, 100, 1),
                                        outcome(0, 30, 100, 1)};
  const ScheduleSummary s = summarize(outs, 4);
  EXPECT_DOUBLE_EQ(s.avg_wait, 20.0);
  EXPECT_DOUBLE_EQ(s.avg_response, 120.0);
  EXPECT_DOUBLE_EQ(s.max_wait, 30.0);
}

TEST(Summarize, PaperIdentitySldwaVsArtww) {
  // §4.1: "The average slowdown weighted by job area is equal to the average
  // response time weighted by job width" — per job, a_i * s_i = w_i * resp_i
  // exactly, so SLDwA * sum(a) == ARTwW * sum(w). (Holds when no run time is
  // floored, i.e. all actual run times >= 1 s.)
  std::vector<JobOutcome> outs;
  util_identity_jobs(outs);
  const ScheduleSummary s = summarize(outs, 64);
  double area = 0, width = 0;
  for (const auto& o : outs) {
    area += o.area();
    width += o.width;
  }
  EXPECT_NEAR(s.sldwa * area, s.artww * width, 1e-6 * s.sldwa * area);
}

TEST(Summarize, ArtwwWeightsByWidth) {
  const std::vector<JobOutcome> outs = {outcome(0, 0, 100, 1),
                                        outcome(0, 0, 200, 3)};
  const ScheduleSummary s = summarize(outs, 4);
  EXPECT_DOUBLE_EQ(s.artww, (1.0 * 100 + 3.0 * 200) / 4.0);
}

// --- preview metrics ---

[[nodiscard]] workload::JobTable preview_jobs() {
  using workload::Job;
  // job 0: submit 0, width 2, est 100; job 1: submit 50, width 1, est 200.
  Job a;
  a.id = 0;
  a.submit = 0;
  a.width = 2;
  a.estimated_runtime = 100;
  a.actual_runtime = 100;
  Job b;
  b.id = 1;
  b.submit = 50;
  b.width = 1;
  b.estimated_runtime = 200;
  b.actual_runtime = 200;
  return workload::JobTable(std::vector<workload::Job>{a, b});
}

TEST(PreviewMetric, EmptyScheduleScoresZero) {
  for (const PreviewMetric m :
       {PreviewMetric::kSldwa, PreviewMetric::kAvgResponse,
        PreviewMetric::kAvgSlowdown, PreviewMetric::kBoundedSlowdown,
        PreviewMetric::kArtww, PreviewMetric::kMaxCompletion}) {
    EXPECT_DOUBLE_EQ(evaluate_preview(m, rms::Schedule{}, preview_jobs(), 10),
                     0.0)
        << name(m);
  }
}

TEST(PreviewMetric, SldwaUsesEstimates) {
  const auto jobs = preview_jobs();
  // Planned: job 0 at t=100, job 1 at t=100 (now = 100).
  const rms::Schedule sched(std::vector<rms::PlannedJob>{{0, 100}, {1, 100}});
  // job 0: response = 100+100-0 = 200, sld = 2, area = 200.
  // job 1: response = 100+200-50 = 250, sld = 1.25, area = 200.
  const double expected = (200 * 2.0 + 200 * 1.25) / 400.0;
  EXPECT_DOUBLE_EQ(
      evaluate_preview(PreviewMetric::kSldwa, sched, jobs, 100), expected);
}

TEST(PreviewMetric, AvgResponse) {
  const auto jobs = preview_jobs();
  const rms::Schedule sched(std::vector<rms::PlannedJob>{{0, 100}, {1, 100}});
  EXPECT_DOUBLE_EQ(
      evaluate_preview(PreviewMetric::kAvgResponse, sched, jobs, 100),
      (200.0 + 250.0) / 2.0);
}

TEST(PreviewMetric, MaxCompletionIsRelativeToNow) {
  const auto jobs = preview_jobs();
  const rms::Schedule sched(std::vector<rms::PlannedJob>{{0, 100}, {1, 150}});
  // completions: 200 and 350; now = 100 -> 250.
  EXPECT_DOUBLE_EQ(
      evaluate_preview(PreviewMetric::kMaxCompletion, sched, jobs, 100),
      250.0);
}

TEST(PreviewMetric, LowerIsBetterOrientation) {
  // A schedule that delays both jobs scores strictly worse (higher) on every
  // metric.
  const auto jobs = preview_jobs();
  const rms::Schedule good(std::vector<rms::PlannedJob>{{0, 100}, {1, 100}});
  const rms::Schedule bad(std::vector<rms::PlannedJob>{{0, 500}, {1, 600}});
  for (const PreviewMetric m :
       {PreviewMetric::kSldwa, PreviewMetric::kAvgResponse,
        PreviewMetric::kAvgSlowdown, PreviewMetric::kBoundedSlowdown,
        PreviewMetric::kArtww, PreviewMetric::kMaxCompletion}) {
    EXPECT_LT(evaluate_preview(m, good, jobs, 100),
              evaluate_preview(m, bad, jobs, 100))
        << name(m);
  }
}

TEST(PreviewMetricNames, AllDistinct) {
  EXPECT_STREQ(name(PreviewMetric::kSldwa), "SLDwA");
  EXPECT_STREQ(name(PreviewMetric::kAvgResponse), "ART");
  EXPECT_STREQ(name(PreviewMetric::kArtww), "ARTwW");
}

}  // namespace
}  // namespace dynp::metrics
