#!/usr/bin/env python3
"""Golden tests for dynp_analyze.

Each directory under fixtures/ is a miniature repo root: a src/ tree with
one deliberate violation per check (or none, for the clean cases) and an
expected.txt holding the analyzer's byte-exact stdout. A fixture whose
expected output ends in the "N finding(s)" summary must make the analyzer
exit 1; a clean fixture must exit 0. Fixtures use the shared config/
directory next to this script unless they carry their own config/; a
fixture-local compile_commands.json is passed through when present.

Usage: run_golden_tests.py --analyzer <path-to-dynp_analyze>
                           [--fixtures <dir-containing-fixtures/>]
"""

import argparse
import pathlib
import subprocess
import sys

# Refuse to "pass" on an empty or half-deleted fixture tree.
MIN_FIXTURES = 10


def run_fixture(analyzer, fixture, shared_config):
    """Returns a list of failure messages (empty = pass)."""
    config = fixture / "config"
    if not config.is_dir():
        config = shared_config
    cmd = [str(analyzer), "--root", str(fixture), "--config-dir", str(config)]
    compile_commands = fixture / "compile_commands.json"
    if compile_commands.is_file():
        cmd += ["--compile-commands", str(compile_commands)]

    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    expected = (fixture / "expected.txt").read_text()

    failures = []
    if proc.stdout != expected:
        failures.append(
            "output mismatch\n--- expected ---\n%s--- actual ---\n%s"
            % (expected, proc.stdout)
        )
    last_line = expected.splitlines()[-1] if expected.splitlines() else ""
    want_exit = 1 if "finding(s)" in last_line else 0
    if proc.returncode != want_exit:
        failures.append(
            "exit code %d, expected %d" % (proc.returncode, want_exit)
        )
    if proc.stderr:
        failures.append("unexpected stderr: %s" % proc.stderr.strip())
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--analyzer", required=True, type=pathlib.Path)
    parser.add_argument(
        "--fixtures",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent,
        help="directory containing fixtures/ and config/",
    )
    args = parser.parse_args()

    shared_config = args.fixtures / "config"
    fixture_root = args.fixtures / "fixtures"
    fixtures = sorted(
        d for d in fixture_root.iterdir()
        if d.is_dir() and (d / "expected.txt").is_file()
    )
    if len(fixtures) < MIN_FIXTURES:
        print(
            "FAIL: only %d fixture(s) under %s (expected >= %d)"
            % (len(fixtures), fixture_root, MIN_FIXTURES)
        )
        return 1

    failed = 0
    for fixture in fixtures:
        failures = run_fixture(args.analyzer, fixture, shared_config)
        if failures:
            failed += 1
            print("FAIL %s" % fixture.name)
            for failure in failures:
                print("  %s" % failure.replace("\n", "\n  "))
        else:
            print("PASS %s" % fixture.name)

    print("%d/%d fixtures passed" % (len(fixtures) - failed, len(fixtures)))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
