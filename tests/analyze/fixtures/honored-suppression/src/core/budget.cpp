#include <ctime>

// dynp-analyze: allow(det-clock, "self-measurement of the tuning budget, not scheduling input")
long wall_seconds() { return ::time(nullptr); }
