#pragma once

inline int engine_id() { return 7; }
