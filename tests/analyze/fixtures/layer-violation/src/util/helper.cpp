#include "core/engine.hpp"

int helper() { return engine_id(); }
