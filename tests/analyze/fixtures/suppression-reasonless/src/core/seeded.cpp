#include <cstdlib>

// dynp-analyze: allow(det-rand)
int roll() { return std::rand() % 6; }
