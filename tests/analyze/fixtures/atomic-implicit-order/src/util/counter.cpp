#include <atomic>

std::atomic<long> hits{0};

void bump() { hits.store(1); }

void bump_again() { ++hits; }
