#include <atomic>

std::atomic<bool> done{false};

void mark() { done.store(true, std::memory_order_relaxed); }
