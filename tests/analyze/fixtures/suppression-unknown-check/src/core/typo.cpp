// dynp-analyze: allow(det-random, "typo in the check name")
int six() { return 6; }
