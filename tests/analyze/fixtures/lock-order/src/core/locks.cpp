#include <mutex>

std::mutex m_low;
std::mutex m_high;

void transfer() {
  const std::lock_guard outer(m_high);
  {
    const std::lock_guard inner(m_low);
  }
}
