#include <sstream>
#include <thread>

unsigned worker_tag() {
  std::ostringstream os;
  os << std::this_thread::get_id();
  return static_cast<unsigned>(os.str().size());
}
