#include <mutex>

std::mutex a;
std::mutex b;

void both() {
  const std::lock_guard first(a);
  const std::lock_guard second(b);
}
