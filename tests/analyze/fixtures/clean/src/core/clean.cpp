#include <atomic>
#include <map>

std::atomic<long> hits_{0};

void record() { hits_.fetch_add(1, std::memory_order_relaxed); }

double weight_total(const std::map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& entry : weights) sum += entry.second;
  return sum;
}
