#pragma once

inline int registry_size() { return 0; }
