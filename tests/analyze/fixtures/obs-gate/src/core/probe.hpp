#pragma once

#include "obs/registry.hpp"

inline int probe() { return registry_size(); }
