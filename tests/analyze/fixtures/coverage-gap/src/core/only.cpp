int only() { return 1; }
