#include <map>

struct Job;

int count_for(const std::map<const Job*, int>& by_job, const Job* job) {
  const auto it = by_job.find(job);
  return it == by_job.end() ? 0 : it->second;
}
