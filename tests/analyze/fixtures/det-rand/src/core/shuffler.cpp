#include <cstdlib>

int pick(int n) { return std::rand() % n; }
