#include <unordered_map>

double total(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& entry : weights) sum += entry.second;
  return sum;
}
