// dynp-analyze: allow(det-rand, "historic: the dice roll moved to util/rng")
int fixed_roll() { return 4; }
