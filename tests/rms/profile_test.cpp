#include "rms/profile.hpp"

#include <gtest/gtest.h>

namespace dynp::rms {
namespace {

TEST(ResourceProfile, FreshProfileIsFullyFree) {
  const ResourceProfile p(64);
  EXPECT_EQ(p.capacity(), 64u);
  EXPECT_EQ(p.free_at(0), 64u);
  EXPECT_EQ(p.free_at(1e9), 64u);
  EXPECT_EQ(p.segment_count(), 1u);
  EXPECT_TRUE(p.invariants_ok());
}

TEST(ResourceProfile, AllocateCarvesAnInterval) {
  ResourceProfile p(10);
  p.allocate(100, 50, 4);
  EXPECT_EQ(p.free_at(99), 10u);
  EXPECT_EQ(p.free_at(100), 6u);
  EXPECT_EQ(p.free_at(149), 6u);
  EXPECT_EQ(p.free_at(150), 10u);
  EXPECT_TRUE(p.invariants_ok());
}

TEST(ResourceProfile, OverlappingAllocationsStack) {
  ResourceProfile p(10);
  p.allocate(0, 100, 3);
  p.allocate(50, 100, 3);
  EXPECT_EQ(p.free_at(25), 7u);
  EXPECT_EQ(p.free_at(75), 4u);
  EXPECT_EQ(p.free_at(125), 7u);
  EXPECT_EQ(p.free_at(151), 10u);
  EXPECT_TRUE(p.invariants_ok());
}

TEST(ResourceProfile, DeallocateRestores) {
  ResourceProfile p(10);
  p.allocate(10, 20, 5);
  p.deallocate(10, 20, 5);
  EXPECT_EQ(p.free_at(15), 10u);
  EXPECT_EQ(p.segment_count(), 1u);
  EXPECT_TRUE(p.invariants_ok());
}

TEST(ResourceProfile, ZeroDurationAllocateIsNoop) {
  ResourceProfile p(10);
  p.allocate(10, 0, 5);
  EXPECT_EQ(p.free_at(10), 10u);
  EXPECT_EQ(p.segment_count(), 1u);
}

TEST(ResourceProfile, AdjacentEqualSegmentsMerge) {
  ResourceProfile p(10);
  p.allocate(0, 10, 4);
  p.allocate(10, 10, 4);  // same free level, adjacent
  EXPECT_EQ(p.free_at(5), 6u);
  EXPECT_EQ(p.free_at(15), 6u);
  // One merged busy segment plus the free tail.
  EXPECT_EQ(p.segment_count(), 2u);
  EXPECT_TRUE(p.invariants_ok());
}

TEST(ResourceProfile, EarliestStartOnEmptyProfileIsRequestTime) {
  const ResourceProfile p(8);
  EXPECT_DOUBLE_EQ(p.earliest_start(123, 8, 1000), 123.0);
}

TEST(ResourceProfile, EarliestStartSkipsBusyInterval) {
  ResourceProfile p(8);
  p.allocate(0, 100, 8);  // machine fully busy until t=100
  EXPECT_DOUBLE_EQ(p.earliest_start(0, 1, 10), 100.0);
}

TEST(ResourceProfile, EarliestStartFindsHole) {
  ResourceProfile p(8);
  p.allocate(0, 100, 6);    // 2 free until 100
  p.allocate(100, 100, 8);  // full from 100 to 200
  // A 2-wide 50s job fits in the first hole.
  EXPECT_DOUBLE_EQ(p.earliest_start(0, 2, 50), 0.0);
  // A 2-wide 150s job does not fit before 200 (hole too short).
  EXPECT_DOUBLE_EQ(p.earliest_start(0, 2, 150), 200.0);
  // A 4-wide job cannot use the first hole at all.
  EXPECT_DOUBLE_EQ(p.earliest_start(0, 4, 10), 200.0);
}

TEST(ResourceProfile, EarliestStartWindowSpansSegments) {
  ResourceProfile p(8);
  p.allocate(0, 50, 6);   // 2 free in [0,50)
  p.allocate(50, 50, 4);  // 4 free in [50,100)
  // A width-2 job of 80s can start at 0: free >= 2 throughout [0,80).
  EXPECT_DOUBLE_EQ(p.earliest_start(0, 2, 80), 0.0);
  // A width-3 job must wait for t=50.
  EXPECT_DOUBLE_EQ(p.earliest_start(0, 3, 10), 50.0);
}

TEST(ResourceProfile, EarliestStartRespectsEarliestBound) {
  ResourceProfile p(8);
  EXPECT_DOUBLE_EQ(p.earliest_start(500, 4, 10), 500.0);
}

TEST(ResourceProfile, AllocateAtQueryResultAlwaysFits) {
  ResourceProfile p(16);
  p.allocate(0, 100, 10);
  p.allocate(30, 200, 4);
  const Time s = p.earliest_start(0, 8, 60);
  p.allocate(s, 60, 8);  // asserts internally if it does not fit
  EXPECT_TRUE(p.invariants_ok());
}

TEST(ResourceProfile, FullWidthJobSerializesMachine) {
  ResourceProfile p(4);
  p.allocate(0, 10, 4);
  EXPECT_DOUBLE_EQ(p.earliest_start(0, 1, 1), 10.0);
  EXPECT_EQ(p.free_at(5), 0u);
}

TEST(ResourceProfile, TrimBeforeDropsPastStructure) {
  ResourceProfile p(8);
  p.allocate(0, 10, 2);    // wholly in the past after trim
  p.allocate(20, 30, 4);   // spans the trim point
  p.trim_before(25);
  // Past segments gone; the state at and after 25 is intact.
  EXPECT_EQ(p.free_at(25), 4u);
  EXPECT_EQ(p.free_at(49), 4u);
  EXPECT_EQ(p.free_at(50), 8u);
  EXPECT_LE(p.segment_count(), 2u);
  EXPECT_TRUE(p.invariants_ok());
}

TEST(ResourceProfile, TrimBeforeOriginIsNoop) {
  ResourceProfile p(8);
  p.allocate(10, 10, 3);
  const std::size_t segments = p.segment_count();
  p.trim_before(0);
  EXPECT_EQ(p.segment_count(), segments);
  EXPECT_EQ(p.free_at(15), 5u);
}

TEST(ResourceProfile, TrimThenAllocateStillWorks) {
  ResourceProfile p(4);
  p.allocate(0, 100, 4);
  p.trim_before(50);
  EXPECT_DOUBLE_EQ(p.earliest_start(50, 2, 10), 100.0);
  p.deallocate(50, 50, 4);  // early finish frees the remaining tail
  EXPECT_DOUBLE_EQ(p.earliest_start(50, 2, 10), 50.0);
  EXPECT_TRUE(p.invariants_ok());
}

TEST(ResourceProfile, NonZeroOrigin) {
  ResourceProfile p(4, 1000);
  EXPECT_EQ(p.free_at(1000), 4u);
  EXPECT_DOUBLE_EQ(p.earliest_start(500, 2, 10), 1000.0);
  p.allocate(1000, 10, 4);
  EXPECT_DOUBLE_EQ(p.earliest_start(1000, 1, 1), 1010.0);
}

}  // namespace
}  // namespace dynp::rms
