/// Differential fuzz: the tree-backed ResourceProfile against the flat
/// representation kept as a reference oracle. Both instances replay one
/// random operation sequence — allocate, deallocate, earliest_start, the
/// fused place, trim_before, restore round-trips and copies — and must stay
/// identical segment-for-segment after every step. This is the contract that
/// lets checkpoints, the audit sweep-line and `Planner::adopt_retained`
/// ignore which representation is active.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rms/profile.hpp"
#include "util/rng.hpp"

namespace dynp::rms {
namespace {

/// Fractional times exercise the ulp-sensitive window arithmetic that
/// integer-second tests never reach.
Time random_time(util::Xoshiro256& rng) {
  return static_cast<Time>(rng.next_below(2000)) +
         static_cast<Time>(rng.next_below(16)) / 16.0;
}

struct LiveAlloc {
  Time start;
  Time duration;
  std::uint32_t width;
};

struct DiffCase {
  std::uint64_t seed;
  std::uint32_t capacity;
  int operations;
};

class ProfileDifferential : public ::testing::TestWithParam<DiffCase> {};

void expect_identical(const ResourceProfile& tree, const ResourceProfile& flat,
                      int op) {
  ASSERT_EQ(tree.segment_count(), flat.segment_count()) << "op #" << op;
  ASSERT_EQ(tree.segment_starts(), flat.segment_starts()) << "op #" << op;
  ASSERT_EQ(tree.segment_frees(), flat.segment_frees()) << "op #" << op;
  ASSERT_TRUE(tree.invariants_ok()) << "op #" << op;
  ASSERT_TRUE(flat.invariants_ok()) << "op #" << op;
}

TEST_P(ProfileDifferential, TreeMatchesFlatOracle) {
  const DiffCase param = GetParam();
  util::Xoshiro256 rng(param.seed);

  ResourceProfile tree(param.capacity, 0, ProfileImpl::kTree);
  ResourceProfile flat(param.capacity, 0, ProfileImpl::kFlat);
  ASSERT_EQ(tree.impl(), ProfileImpl::kTree);
  ASSERT_EQ(flat.impl(), ProfileImpl::kFlat);

  std::vector<LiveAlloc> live;
  Time origin = 0;

  for (int op = 0; op < param.operations; ++op) {
    switch (rng.next_below(10)) {
      case 0:
      case 1:
      case 2: {  // query + allocate (the planner's two-step form)
        const auto width =
            static_cast<std::uint32_t>(1 + rng.next_below(param.capacity));
        const Time duration = static_cast<Time>(1 + rng.next_below(80));
        const Time earliest = origin + random_time(rng);
        Time tree_fit = -1;
        Time flat_fit = -1;
        const Time tree_start =
            tree.earliest_start(earliest, width, duration, tree_fit);
        const Time flat_start =
            flat.earliest_start(earliest, width, duration, flat_fit);
        ASSERT_DOUBLE_EQ(tree_start, flat_start) << "op #" << op;
        ASSERT_DOUBLE_EQ(tree_fit, flat_fit) << "op #" << op;
        tree.allocate(tree_start, duration, width);
        flat.allocate(flat_start, duration, width);
        live.push_back({tree_start, duration, width});
        break;
      }
      case 3:
      case 4:
      case 5: {  // fused place
        const auto width =
            static_cast<std::uint32_t>(1 + rng.next_below(param.capacity));
        const Time duration = static_cast<Time>(rng.next_below(80));
        const Time earliest = origin + random_time(rng);
        Time tree_fit = -1;
        Time flat_fit = -1;
        const Time tree_start = tree.place(earliest, width, duration, tree_fit);
        const Time flat_start = flat.place(earliest, width, duration, flat_fit);
        ASSERT_DOUBLE_EQ(tree_start, flat_start) << "op #" << op;
        ASSERT_DOUBLE_EQ(tree_fit, flat_fit) << "op #" << op;
        if (duration > 0) live.push_back({tree_start, duration, width});
        break;
      }
      case 6:
      case 7: {  // release a random live reservation
        if (live.empty()) break;
        const std::size_t pick = rng.next_below(live.size());
        const LiveAlloc a = live[pick];
        live[pick] = live.back();
        live.pop_back();
        tree.deallocate(a.start, a.duration, a.width);
        flat.deallocate(a.start, a.duration, a.width);
        break;
      }
      case 8: {  // pure query at a random instant
        const Time t = origin + random_time(rng);
        ASSERT_EQ(tree.free_at(t), flat.free_at(t)) << "op #" << op;
        break;
      }
      case 9: {  // advance the origin past finished reservations
        // Deallocations replay at their original start times, so only trim
        // to a point no live reservation precedes.
        const Time t = origin + static_cast<Time>(rng.next_below(8));
        bool safe = true;
        for (const LiveAlloc& a : live) safe = safe && a.start >= t;
        if (!safe) break;
        tree.trim_before(t);
        flat.trim_before(t);
        origin = t;
        break;
      }
      default:
        break;
    }
    expect_identical(tree, flat, op);
  }

  // Snapshot round-trip: a tree profile restored from the flat snapshot (and
  // vice versa) must reproduce the segments exactly — the checkpoint path.
  ResourceProfile restored_tree(1, 0, ProfileImpl::kTree);
  restored_tree.restore_segments(param.capacity,
                                 std::vector<Time>(flat.segment_starts()),
                                 std::vector<std::uint32_t>(
                                     flat.segment_frees()));
  expect_identical(restored_tree, flat, param.operations);

  ResourceProfile restored_flat(1, 0, ProfileImpl::kFlat);
  restored_flat.restore_segments(param.capacity,
                                 std::vector<Time>(tree.segment_starts()),
                                 std::vector<std::uint32_t>(
                                     tree.segment_frees()));
  expect_identical(tree, restored_flat, param.operations);

  // Copies adopt the source representation and keep answering identically.
  const ResourceProfile tree_copy(tree);
  ASSERT_EQ(tree_copy.impl(), ProfileImpl::kTree);
  expect_identical(tree_copy, flat, param.operations);
  ResourceProfile assigned(1, 0, ProfileImpl::kFlat);
  assigned = tree;
  ASSERT_EQ(assigned.impl(), ProfileImpl::kTree);
  expect_identical(assigned, flat, param.operations);

  // Drain every remaining reservation: both must compact to one segment.
  for (const LiveAlloc& a : live) {
    tree.deallocate(a.start, a.duration, a.width);
    flat.deallocate(a.start, a.duration, a.width);
  }
  expect_identical(tree, flat, param.operations + 1);
  EXPECT_EQ(tree.segment_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSequences, ProfileDifferential,
    ::testing::Values(DiffCase{11, 1, 400}, DiffCase{12, 2, 600},
                      DiffCase{13, 5, 800}, DiffCase{14, 16, 1000},
                      DiffCase{15, 64, 1200}, DiffCase{16, 333, 1200},
                      DiffCase{17, 1024, 1500}, DiffCase{18, 4096, 1500},
                      // Enough churn to force block splits, block frees and
                      // order-index rebuilds many times over.
                      DiffCase{19, 128, 4000}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_cap" +
             std::to_string(info.param.capacity);
    });

TEST(ProfileDifferentialExtra, DefaultImplIsProcessWideAndSwitchable) {
  const ProfileImpl saved = ResourceProfile::default_impl();
  ResourceProfile::set_default_impl(ProfileImpl::kFlat);
  EXPECT_EQ(ResourceProfile(8).impl(), ProfileImpl::kFlat);
  ResourceProfile::set_default_impl(ProfileImpl::kTree);
  EXPECT_EQ(ResourceProfile(8).impl(), ProfileImpl::kTree);
  ResourceProfile::set_default_impl(saved);
}

TEST(ProfileDifferentialExtra, ResetKeepsRepresentation) {
  ResourceProfile p(16, 0, ProfileImpl::kTree);
  Time fit = -1;
  (void)p.place(0, 4, 10, fit);
  p.reset(32, 5);
  EXPECT_EQ(p.impl(), ProfileImpl::kTree);
  EXPECT_EQ(p.capacity(), 32u);
  EXPECT_EQ(p.segment_count(), 1u);
  EXPECT_EQ(p.free_at(5), 32u);
  EXPECT_TRUE(p.invariants_ok());
}

}  // namespace
}  // namespace dynp::rms
