/// Property tests: the segment-based ResourceProfile must agree with a naive
/// dense-array reference model under random workloads.

#include <gtest/gtest.h>

#include <vector>

#include "rms/profile.hpp"
#include "util/rng.hpp"

namespace dynp::rms {
namespace {

/// Brute-force reference: free capacity stored per integer second.
class DenseProfile {
 public:
  DenseProfile(std::uint32_t capacity, std::size_t horizon)
      : capacity_(capacity), free_(horizon, capacity) {}

  void allocate(std::size_t start, std::size_t duration, std::uint32_t width) {
    for (std::size_t t = start; t < start + duration && t < free_.size(); ++t) {
      free_[t] -= width;
    }
  }

  [[nodiscard]] std::uint32_t free_at(std::size_t t) const {
    return t < free_.size() ? free_[t] : capacity_;
  }

  [[nodiscard]] std::size_t earliest_start(std::size_t earliest,
                                           std::uint32_t width,
                                           std::size_t duration) const {
    for (std::size_t s = earliest;; ++s) {
      bool fits = true;
      for (std::size_t t = s; t < s + duration; ++t) {
        if (free_at(t) < width) {
          fits = false;
          break;
        }
      }
      if (fits) return s;
    }
  }

 private:
  std::uint32_t capacity_;
  std::vector<std::uint32_t> free_;
};

struct PropertyCase {
  std::uint64_t seed;
  std::uint32_t capacity;
  int allocations;
};

class ProfileProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ProfileProperty, MatchesDenseReference) {
  const PropertyCase param = GetParam();
  util::Xoshiro256 rng(param.seed);
  constexpr std::size_t kHorizon = 4000;

  ResourceProfile profile(param.capacity);
  DenseProfile dense(param.capacity, kHorizon);

  for (int i = 0; i < param.allocations; ++i) {
    const auto width = static_cast<std::uint32_t>(
        1 + rng.next_below(param.capacity));
    const auto duration = 1 + rng.next_below(60);
    const auto earliest = rng.next_below(1000);

    const Time got = profile.earliest_start(
        static_cast<Time>(earliest), width, static_cast<Time>(duration));
    const std::size_t want = dense.earliest_start(
        static_cast<std::size_t>(earliest), width,
        static_cast<std::size_t>(duration));
    ASSERT_DOUBLE_EQ(got, static_cast<Time>(want))
        << "alloc #" << i << " width=" << width << " dur=" << duration
        << " earliest=" << earliest;

    profile.allocate(got, static_cast<Time>(duration), width);
    dense.allocate(want, static_cast<std::size_t>(duration), width);
    ASSERT_TRUE(profile.invariants_ok());

    // Spot-check free levels at random instants.
    for (int probe = 0; probe < 8; ++probe) {
      const std::size_t t = rng.next_below(kHorizon);
      ASSERT_EQ(profile.free_at(static_cast<Time>(t)), dense.free_at(t))
          << "probe at t=" << t << " after alloc #" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, ProfileProperty,
    ::testing::Values(PropertyCase{1, 1, 60}, PropertyCase{2, 2, 80},
                      PropertyCase{3, 7, 120}, PropertyCase{4, 16, 150},
                      PropertyCase{5, 64, 150}, PropertyCase{6, 128, 200},
                      PropertyCase{7, 3, 200}, PropertyCase{8, 1024, 150}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_cap" +
             std::to_string(info.param.capacity);
    });

TEST(ProfilePropertyExtra, PlaceMatchesQueryThenAllocate) {
  // The fused query+allocate must be indistinguishable — same start, same
  // first-fit report, byte-identical segments — from the two separate calls
  // it replaces, including zero-duration queries (which allocate nothing).
  util::Xoshiro256 rng(99);
  ResourceProfile two_step(64);
  ResourceProfile fused(64);
  for (int i = 0; i < 300; ++i) {
    const auto width = static_cast<std::uint32_t>(1 + rng.next_below(16));
    const Time duration = static_cast<Time>(rng.next_below(40));
    const Time earliest = static_cast<Time>(rng.next_below(800));

    Time want_fit = -1;
    Time got_fit = -1;
    const Time want = two_step.earliest_start(earliest, width, duration,
                                              want_fit);
    two_step.allocate(want, duration, width);
    const Time got = fused.place(earliest, width, duration, got_fit);

    ASSERT_DOUBLE_EQ(got, want) << "op #" << i;
    ASSERT_DOUBLE_EQ(got_fit, want_fit) << "op #" << i;
    ASSERT_EQ(fused.segment_starts(), two_step.segment_starts()) << "op #" << i;
    ASSERT_EQ(fused.segment_frees(), two_step.segment_frees()) << "op #" << i;
    ASSERT_TRUE(fused.invariants_ok());
  }
}

TEST(ProfilePropertyExtra, AllocateDeallocateRoundTripsToFlat) {
  util::Xoshiro256 rng(77);
  ResourceProfile profile(32);
  struct Alloc {
    Time start, dur;
    std::uint32_t width;
  };
  std::vector<Alloc> allocs;
  for (int i = 0; i < 100; ++i) {
    const auto width = static_cast<std::uint32_t>(1 + rng.next_below(8));
    const Time dur = static_cast<Time>(1 + rng.next_below(50));
    const Time start =
        profile.earliest_start(static_cast<Time>(rng.next_below(500)), width, dur);
    profile.allocate(start, dur, width);
    allocs.push_back({start, dur, width});
  }
  for (const Alloc& a : allocs) profile.deallocate(a.start, a.dur, a.width);
  EXPECT_EQ(profile.segment_count(), 1u);
  EXPECT_EQ(profile.free_at(0), 32u);
  EXPECT_TRUE(profile.invariants_ok());
}

}  // namespace
}  // namespace dynp::rms
