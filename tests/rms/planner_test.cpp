#include "rms/planner.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "util/rng.hpp"

namespace dynp::rms {
namespace {

using workload::Job;
using workload::JobTable;

[[nodiscard]] Job make_job(JobId id, Time submit, std::uint32_t width,
                           Time est, Time act) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.width = width;
  j.estimated_runtime = est;
  j.actual_runtime = act;
  return j;
}

TEST(Planner, EmptyQueueGivesEmptySchedule) {
  const Schedule s = Planner::plan(8, 0, {}, {}, {});
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.starting_at(0).empty());
}

TEST(Planner, SingleJobStartsImmediately) {
  const std::vector<Job> jobs = {make_job(0, 0, 4, 100, 50)};
  const Schedule s = Planner::plan(8, 0, {}, {0}, JobTable(jobs));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 0.0);
  EXPECT_EQ(s.starting_at(0), std::vector<JobId>{0});
}

TEST(Planner, RunningJobsBlockResources) {
  const std::vector<Job> jobs = {make_job(0, 0, 8, 100, 100)};
  const std::vector<RunningJob> running = {{99, 8, 500}};
  const Schedule s = Planner::plan(8, 0, running, {0}, JobTable(jobs));
  // The machine is fully occupied until the running job's estimated end.
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 500.0);
  EXPECT_TRUE(s.starting_at(0).empty());
}

TEST(Planner, RunningJobPastItsEstimateReservesNothing) {
  const std::vector<Job> jobs = {make_job(0, 0, 8, 100, 100)};
  // estimated_end == now: the reservation is empty, the waiting job plans now.
  const std::vector<RunningJob> running = {{99, 8, 1000}};
  const Schedule s = Planner::plan(8, 1000, running, {0}, JobTable(jobs));
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 1000.0);
}

TEST(Planner, SequentialPackingWhenTooWideTogether) {
  const std::vector<Job> jobs = {make_job(0, 0, 6, 100, 100),
                                 make_job(1, 0, 6, 100, 100)};
  const Schedule s = Planner::plan(8, 0, {}, {0, 1}, JobTable(jobs));
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.entries()[1].start, 100.0);
}

TEST(Planner, ImplicitBackfilling) {
  // Priority order: wide job first (cannot start until t=100), narrow short
  // job second — it backfills into the idle nodes without delaying the wide
  // job, exactly the "planning implies backfilling" property from the paper.
  const std::vector<Job> jobs = {make_job(0, 0, 8, 100, 100),
                                 make_job(1, 0, 2, 50, 50)};
  const std::vector<RunningJob> running = {{99, 4, 100}};  // 4 busy until 100
  const Schedule s = Planner::plan(8, 0, running, {0, 1}, JobTable(jobs));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 100.0);  // wide job waits
  EXPECT_DOUBLE_EQ(s.entries()[1].start, 0.0);    // short job backfills now
  EXPECT_EQ(s.starting_at(0), std::vector<JobId>{1});
}

TEST(Planner, BackfillNeverDelaysHigherPriorityJob) {
  // The backfill candidate is too long for the hole, so it must go behind
  // the wide job, not delay it.
  const std::vector<Job> jobs = {make_job(0, 0, 8, 100, 100),
                                 make_job(1, 0, 2, 500, 500)};
  const std::vector<RunningJob> running = {{99, 4, 100}};
  const Schedule s = Planner::plan(8, 0, running, {0, 1}, JobTable(jobs));
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 100.0);
  // Hole [0,100) is only 100 long; the 500-long job starts after the wide
  // job completes (there are 0 free nodes left during [100, 200)).
  EXPECT_DOUBLE_EQ(s.entries()[1].start, 200.0);
}

TEST(Planner, PlanNeverStartsBeforeNow) {
  const std::vector<Job> jobs = {make_job(0, 0, 1, 10, 10)};
  const Schedule s = Planner::plan(8, 12345, {}, {0}, JobTable(jobs));
  EXPECT_GE(s.entries()[0].start, 12345.0);
}

TEST(Planner, OrderDeterminesPlacement) {
  const std::vector<Job> jobs = {make_job(0, 0, 8, 100, 100),
                                 make_job(1, 0, 8, 50, 50)};
  const Schedule forward = Planner::plan(8, 0, {}, {0, 1}, JobTable(jobs));
  const Schedule backward = Planner::plan(8, 0, {}, {1, 0}, JobTable(jobs));
  EXPECT_DOUBLE_EQ(forward.entries()[0].start, 0.0);    // job 0 first
  EXPECT_DOUBLE_EQ(forward.entries()[1].start, 100.0);  // job 1 after
  EXPECT_DOUBLE_EQ(backward.entries()[0].start, 0.0);   // job 1 first
  EXPECT_DOUBLE_EQ(backward.entries()[1].start, 50.0);  // job 0 after
}

TEST(Planner, BaseProfileReflectsRunningJobs) {
  const std::vector<RunningJob> running = {{1, 3, 100}, {2, 2, 200}};
  const ResourceProfile p = Planner::base_profile(8, 0, running);
  EXPECT_EQ(p.free_at(0), 3u);
  EXPECT_EQ(p.free_at(150), 6u);
  EXPECT_EQ(p.free_at(250), 8u);
}

TEST(Planner, PlanIntoReusedScratchMatchesPlan) {
  // One scratch across many unrelated planning rounds (different instants,
  // running sets, orders): the reused buffers and epoch-stamped floor tables
  // must never let one round's state leak into the next. The reference is
  // the allocating `Planner::plan`.
  util::Xoshiro256 rng(321);
  constexpr std::uint32_t kCapacity = 32;
  std::vector<Job> jobs;
  for (std::uint32_t i = 0; i < 60; ++i) {
    jobs.push_back(make_job(
        i, 0, 1 + static_cast<std::uint32_t>(rng.next_below(kCapacity)),
        static_cast<Time>(60 * (1 + rng.next_below(8))), 0));
  }

  const JobTable table(jobs);
  PlanScratch scratch;
  Schedule got;
  for (int round = 0; round < 30; ++round) {
    const Time now = static_cast<Time>(rng.next_below(5000));
    // Running jobs occupy disjoint nodes, so their widths sum to at most the
    // machine capacity (as in any real simulation state).
    std::vector<RunningJob> running;
    std::uint32_t free = kCapacity;
    for (std::uint64_t r = rng.next_below(5); r > 0 && free > 0; --r) {
      const auto width =
          1 + static_cast<std::uint32_t>(rng.next_below(free));
      free -= width;
      running.push_back({1000 + static_cast<JobId>(r), width,
                         now + static_cast<Time>(rng.next_below(2000))});
    }
    std::vector<JobId> wait;
    for (std::uint32_t id = 0; id < jobs.size(); ++id) {
      if (rng.next_below(2) != 0) wait.push_back(id);
    }
    for (std::size_t i = wait.size(); i > 1; --i) {  // random order
      std::swap(wait[i - 1],
                wait[static_cast<std::size_t>(rng.next_below(i))]);
    }

    const ResourceProfile base =
        Planner::base_profile(kCapacity, now, running);
    Planner::plan_into(base, now, wait, table, scratch, got);
    const Schedule want = Planner::plan(kCapacity, now, running, wait, table);
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.entries()[i].id, want.entries()[i].id) << "round " << round;
      EXPECT_DOUBLE_EQ(got.entries()[i].start, want.entries()[i].start)
          << "round " << round << " entry " << i;
    }
  }
}

TEST(Planner, ReplanInsertedMatchesFreshPlan) {
  // Grow an order one random insertion at a time, replanning incrementally
  // (tail fast path and mid-order replay both occur), and compare each step
  // against a from-scratch plan of the same order. This is exactly the
  // submit-event contract `replan_inserted_into` documents.
  util::Xoshiro256 rng(654);
  constexpr std::uint32_t kCapacity = 32;
  std::vector<Job> jobs;
  for (std::uint32_t i = 0; i < 40; ++i) {
    jobs.push_back(make_job(
        i, 0, 1 + static_cast<std::uint32_t>(rng.next_below(kCapacity)),
        static_cast<Time>(60 * (1 + rng.next_below(8))), 0));
  }
  const JobTable table(jobs);
  const std::vector<RunningJob> running = {{100, 5, 300}, {101, 9, 120}};
  const Time now = 0;
  const ResourceProfile base = Planner::base_profile(kCapacity, now, running);

  PlanScratch inc_scratch;
  Schedule inc;
  std::vector<JobId> wait;
  Planner::plan_into(base, now, wait, table, inc_scratch, inc);

  PlanScratch fresh_scratch;
  Schedule fresh;
  for (std::uint32_t id = 0; id < jobs.size(); ++id) {
    const auto pos = static_cast<std::size_t>(rng.next_below(wait.size() + 1));
    wait.insert(wait.begin() + static_cast<std::ptrdiff_t>(pos), id);
    Planner::replan_inserted_into(base, now, wait, pos, table, inc_scratch,
                                  inc);
    Planner::plan_into(base, now, wait, table, fresh_scratch, fresh);
    ASSERT_EQ(inc.size(), fresh.size()) << "insert #" << id;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(inc.entries()[i].id, fresh.entries()[i].id)
          << "insert #" << id << " entry " << i;
      EXPECT_DOUBLE_EQ(inc.entries()[i].start, fresh.entries()[i].start)
          << "insert #" << id << " entry " << i;
    }
  }
}

TEST(Schedule, StartingAtFiltersByTime) {
  const Schedule s(std::vector<PlannedJob>{{0, 10.0}, {1, 20.0}, {2, 10.0}});
  EXPECT_EQ(s.starting_at(10), (std::vector<JobId>{0, 2}));
  EXPECT_TRUE(s.starting_at(5).empty());
}

}  // namespace
}  // namespace dynp::rms
