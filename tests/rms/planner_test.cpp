#include "rms/planner.hpp"

#include <gtest/gtest.h>

namespace dynp::rms {
namespace {

using workload::Job;

[[nodiscard]] Job make_job(JobId id, Time submit, std::uint32_t width,
                           Time est, Time act) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.width = width;
  j.estimated_runtime = est;
  j.actual_runtime = act;
  return j;
}

TEST(Planner, EmptyQueueGivesEmptySchedule) {
  const Schedule s = Planner::plan(8, 0, {}, {}, {});
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.starting_at(0).empty());
}

TEST(Planner, SingleJobStartsImmediately) {
  const std::vector<Job> jobs = {make_job(0, 0, 4, 100, 50)};
  const Schedule s = Planner::plan(8, 0, {}, {0}, jobs);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 0.0);
  EXPECT_EQ(s.starting_at(0), std::vector<JobId>{0});
}

TEST(Planner, RunningJobsBlockResources) {
  const std::vector<Job> jobs = {make_job(0, 0, 8, 100, 100)};
  const std::vector<RunningJob> running = {{99, 8, 500}};
  const Schedule s = Planner::plan(8, 0, running, {0}, jobs);
  // The machine is fully occupied until the running job's estimated end.
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 500.0);
  EXPECT_TRUE(s.starting_at(0).empty());
}

TEST(Planner, RunningJobPastItsEstimateReservesNothing) {
  const std::vector<Job> jobs = {make_job(0, 0, 8, 100, 100)};
  // estimated_end == now: the reservation is empty, the waiting job plans now.
  const std::vector<RunningJob> running = {{99, 8, 1000}};
  const Schedule s = Planner::plan(8, 1000, running, {0}, jobs);
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 1000.0);
}

TEST(Planner, SequentialPackingWhenTooWideTogether) {
  const std::vector<Job> jobs = {make_job(0, 0, 6, 100, 100),
                                 make_job(1, 0, 6, 100, 100)};
  const Schedule s = Planner::plan(8, 0, {}, {0, 1}, jobs);
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.entries()[1].start, 100.0);
}

TEST(Planner, ImplicitBackfilling) {
  // Priority order: wide job first (cannot start until t=100), narrow short
  // job second — it backfills into the idle nodes without delaying the wide
  // job, exactly the "planning implies backfilling" property from the paper.
  const std::vector<Job> jobs = {make_job(0, 0, 8, 100, 100),
                                 make_job(1, 0, 2, 50, 50)};
  const std::vector<RunningJob> running = {{99, 4, 100}};  // 4 busy until 100
  const Schedule s = Planner::plan(8, 0, running, {0, 1}, jobs);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 100.0);  // wide job waits
  EXPECT_DOUBLE_EQ(s.entries()[1].start, 0.0);    // short job backfills now
  EXPECT_EQ(s.starting_at(0), std::vector<JobId>{1});
}

TEST(Planner, BackfillNeverDelaysHigherPriorityJob) {
  // The backfill candidate is too long for the hole, so it must go behind
  // the wide job, not delay it.
  const std::vector<Job> jobs = {make_job(0, 0, 8, 100, 100),
                                 make_job(1, 0, 2, 500, 500)};
  const std::vector<RunningJob> running = {{99, 4, 100}};
  const Schedule s = Planner::plan(8, 0, running, {0, 1}, jobs);
  EXPECT_DOUBLE_EQ(s.entries()[0].start, 100.0);
  // Hole [0,100) is only 100 long; the 500-long job starts after the wide
  // job completes (there are 0 free nodes left during [100, 200)).
  EXPECT_DOUBLE_EQ(s.entries()[1].start, 200.0);
}

TEST(Planner, PlanNeverStartsBeforeNow) {
  const std::vector<Job> jobs = {make_job(0, 0, 1, 10, 10)};
  const Schedule s = Planner::plan(8, 12345, {}, {0}, jobs);
  EXPECT_GE(s.entries()[0].start, 12345.0);
}

TEST(Planner, OrderDeterminesPlacement) {
  const std::vector<Job> jobs = {make_job(0, 0, 8, 100, 100),
                                 make_job(1, 0, 8, 50, 50)};
  const Schedule forward = Planner::plan(8, 0, {}, {0, 1}, jobs);
  const Schedule backward = Planner::plan(8, 0, {}, {1, 0}, jobs);
  EXPECT_DOUBLE_EQ(forward.entries()[0].start, 0.0);    // job 0 first
  EXPECT_DOUBLE_EQ(forward.entries()[1].start, 100.0);  // job 1 after
  EXPECT_DOUBLE_EQ(backward.entries()[0].start, 0.0);   // job 1 first
  EXPECT_DOUBLE_EQ(backward.entries()[1].start, 50.0);  // job 0 after
}

TEST(Planner, BaseProfileReflectsRunningJobs) {
  const std::vector<RunningJob> running = {{1, 3, 100}, {2, 2, 200}};
  const ResourceProfile p = Planner::base_profile(8, 0, running);
  EXPECT_EQ(p.free_at(0), 3u);
  EXPECT_EQ(p.free_at(150), 6u);
  EXPECT_EQ(p.free_at(250), 8u);
}

TEST(Schedule, StartingAtFiltersByTime) {
  const Schedule s(std::vector<PlannedJob>{{0, 10.0}, {1, 20.0}, {2, 10.0}});
  EXPECT_EQ(s.starting_at(10), (std::vector<JobId>{0, 2}));
  EXPECT_TRUE(s.starting_at(5).empty());
}

}  // namespace
}  // namespace dynp::rms
