#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dynp::workload {
namespace {

constexpr const char* kSample =
    "; SWF header comment\n"
    "; MaxProcs: 64\n"
    "1 0 5 100 4 -1 -1 4 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
    "2 50 0 300 8 -1 -1 8 300 -1 1 -1 -1 -1 -1 -1 -1 -1\n";

TEST(SwfReader, ParsesFieldsWeUse) {
  std::istringstream in(kSample);
  const SwfParseResult r = read_swf(in, Machine{"test", 64});
  EXPECT_EQ(r.header_lines, 2u);
  EXPECT_EQ(r.skipped_records, 0u);
  ASSERT_EQ(r.set.size(), 2u);
  EXPECT_DOUBLE_EQ(r.set[0].submit, 0.0);
  EXPECT_EQ(r.set[0].width, 4u);
  EXPECT_DOUBLE_EQ(r.set[0].actual_runtime, 100.0);
  EXPECT_DOUBLE_EQ(r.set[0].estimated_runtime, 200.0);
  EXPECT_DOUBLE_EQ(r.set[1].submit, 50.0);
}

TEST(SwfReader, SkipsBrokenRecords) {
  std::istringstream in(
      "1 0 0 100 -1 -1 -1 -1 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n"  // no width
      "garbage line\n"
      "2 10 0 100 2 -1 -1 2 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const SwfParseResult r = read_swf(in, Machine{"test", 64});
  EXPECT_EQ(r.set.size(), 1u);
  EXPECT_EQ(r.skipped_records, 2u);
}

TEST(SwfReader, FallsBackToAllocatedProcessors) {
  std::istringstream in(
      "1 0 0 100 16 -1 -1 -1 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const SwfParseResult r = read_swf(in, Machine{"test", 64});
  ASSERT_EQ(r.set.size(), 1u);
  EXPECT_EQ(r.set[0].width, 16u);
}

TEST(SwfReader, FallsBackToRunTimeAsEstimate) {
  std::istringstream in(
      "1 0 0 123 4 -1 -1 4 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const SwfParseResult r = read_swf(in, Machine{"test", 64});
  ASSERT_EQ(r.set.size(), 1u);
  EXPECT_DOUBLE_EQ(r.set[0].estimated_runtime, 123.0);
  EXPECT_DOUBLE_EQ(r.set[0].actual_runtime, 123.0);
}

TEST(SwfReader, EstimateIsRaisedToCoverRunTime) {
  // run time 500 > requested time 200: planning contract requires
  // estimate >= actual.
  std::istringstream in(
      "1 0 0 500 4 -1 -1 4 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const SwfParseResult r = read_swf(in, Machine{"test", 64});
  ASSERT_EQ(r.set.size(), 1u);
  EXPECT_GE(r.set[0].estimated_runtime, r.set[0].actual_runtime);
}

TEST(SwfReader, CapsWidthAtMachineSize) {
  std::istringstream in(
      "1 0 0 100 128 -1 -1 128 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const SwfParseResult r = read_swf(in, Machine{"small", 32});
  ASSERT_EQ(r.set.size(), 1u);
  EXPECT_EQ(r.set[0].width, 32u);
}

TEST(SwfRoundTrip, WriteThenReadPreservesJobs) {
  const JobSet original(
      Machine{"rt", 16},
      {Job{0, 0, 4, 100, 60}, Job{0, 25, 8, 500, 500}, Job{0, 90, 1, 60, 1}});
  std::stringstream buffer;
  write_swf(buffer, original);
  const SwfParseResult r = read_swf(buffer, Machine{"rt", 16});
  ASSERT_EQ(r.set.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.set[i].submit, original[i].submit);
    EXPECT_EQ(r.set[i].width, original[i].width);
    EXPECT_DOUBLE_EQ(r.set[i].estimated_runtime, original[i].estimated_runtime);
    EXPECT_DOUBLE_EQ(r.set[i].actual_runtime, original[i].actual_runtime);
  }
}

TEST(SwfReader, MissingFileThrows) {
  EXPECT_THROW((void)read_swf_file("/nonexistent/path.swf", Machine{"x", 4}),
               std::runtime_error);
}

}  // namespace
}  // namespace dynp::workload
