#include "workload/trace_stats.hpp"

#include <gtest/gtest.h>

namespace dynp::workload {
namespace {

[[nodiscard]] Job make_job(Time submit, std::uint32_t width, Time est,
                           Time act) {
  Job j;
  j.submit = submit;
  j.width = width;
  j.estimated_runtime = est;
  j.actual_runtime = act;
  return j;
}

TEST(TraceStats, EmptySet) {
  const TraceStats s = compute_stats(JobSet{});
  EXPECT_EQ(s.job_count, 0u);
  EXPECT_DOUBLE_EQ(s.overestimation_factor, 0.0);
  EXPECT_DOUBLE_EQ(s.offered_load, 0.0);
}

TEST(TraceStats, SingleJobHasNoInterarrival) {
  const JobSet set(Machine{"m", 4}, {make_job(10, 2, 100, 50)});
  const TraceStats s = compute_stats(set);
  EXPECT_EQ(s.job_count, 1u);
  EXPECT_EQ(s.interarrival.count(), 0u);
  EXPECT_DOUBLE_EQ(s.width.mean(), 2.0);
}

TEST(TraceStats, ColumnsMatchHandComputation) {
  const JobSet set(Machine{"m", 16},
                   {make_job(0, 2, 100, 50), make_job(10, 4, 200, 100),
                    make_job(40, 6, 300, 150)});
  const TraceStats s = compute_stats(set);
  EXPECT_EQ(s.job_count, 3u);
  EXPECT_DOUBLE_EQ(s.width.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.width.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.width.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.estimated_runtime.mean(), 200.0);
  EXPECT_DOUBLE_EQ(s.actual_runtime.mean(), 100.0);
  // Interarrivals: 10, 30.
  EXPECT_DOUBLE_EQ(s.interarrival.mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.interarrival.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.interarrival.max(), 30.0);
}

TEST(TraceStats, OverestimationIsRatioOfMeans) {
  // The paper's overestimation column is avg(est)/avg(act): CTC
  // 24324/10958 = 2.220, not the mean of per-job ratios.
  const JobSet set(Machine{"m", 8},
                   {make_job(0, 1, 100, 100), make_job(1, 1, 300, 100)});
  const TraceStats s = compute_stats(set);
  EXPECT_DOUBLE_EQ(s.overestimation_factor, 400.0 / 200.0);
}

TEST(TraceStats, OfferedLoadUsesActualAreaOverSpan) {
  // Two jobs: areas 2*50=100 and 4*100=400; span 100 s; 10 nodes.
  const JobSet set(Machine{"m", 10},
                   {make_job(0, 2, 100, 50), make_job(100, 4, 200, 100)});
  const TraceStats s = compute_stats(set);
  EXPECT_DOUBLE_EQ(s.offered_load, 500.0 / (10.0 * 100.0));
}

}  // namespace
}  // namespace dynp::workload
