/// Streaming-parser parity for the chunked SWF reader: the parse result —
/// jobs, per-category skip counters, header count AND the capped per-line
/// diagnostics — must be byte-for-byte independent of the chunk size, for
/// pathological chunk sizes that split every line (1 byte, 7 bytes) up to a
/// single chunk holding the whole stream. A large-trace test synthesizes a
/// multi-hundred-megabyte log in memory and checks the default chunking
/// against a whole-file parse.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/swf.hpp"

namespace dynp::workload {
namespace {

void expect_same_parse(const SwfParseResult& a, const SwfParseResult& b,
                       const char* what) {
  EXPECT_EQ(a.skipped_records, b.skipped_records) << what;
  EXPECT_EQ(a.skipped_truncated, b.skipped_truncated) << what;
  EXPECT_EQ(a.skipped_malformed, b.skipped_malformed) << what;
  EXPECT_EQ(a.skipped_unusable, b.skipped_unusable) << what;
  EXPECT_EQ(a.header_lines, b.header_lines) << what;
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size()) << what;
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].line, b.diagnostics[i].line) << what;
    EXPECT_EQ(a.diagnostics[i].reason, b.diagnostics[i].reason) << what;
  }
  ASSERT_EQ(a.set.size(), b.set.size()) << what;
  for (std::size_t i = 0; i < a.set.size(); ++i) {
    const Job& x = a.set[i];
    const Job& y = b.set[i];
    EXPECT_EQ(x.id, y.id) << what << " job " << i;
    EXPECT_EQ(x.submit, y.submit) << what << " job " << i;
    EXPECT_EQ(x.width, y.width) << what << " job " << i;
    EXPECT_EQ(x.estimated_runtime, y.estimated_runtime) << what << " job "
                                                        << i;
    EXPECT_EQ(x.actual_runtime, y.actual_runtime) << what << " job " << i;
  }
}

[[nodiscard]] SwfParseResult parse_with_chunk(const std::string& text,
                                              std::size_t chunk_bytes) {
  std::istringstream in(text);
  SwfReadOptions options;
  options.chunk_bytes = chunk_bytes;
  return read_swf(in, Machine{"m", 128}, options);
}

/// A small stream exercising every parser outcome: headers, blank lines,
/// valid records (with '+' signs, CR line endings, 8-field short-but-valid
/// records, trailing garbage past field 18), and all three skip categories.
[[nodiscard]] std::string tricky_stream() {
  return "; header one\n"
         "; header two\n"
         "\n"
         "1 100 -1 300 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
         "2 +150 -1 200 2 -1 -1 2 250 -1 1 -1 -1 -1 -1 -1 -1 -1\r\n"
         "3 200 -1 400 4 -1 -1\n"
         "4 220 -1 100 2 -1 -1 2\n"
         "5 oops -1 300 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
         "6 1e 2 3 4 5 6 7 8\n"
         "7 -240 -1 100 2 -1 -1 2 150 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
         "8 260 -1 100 2 -1 -1 4e99 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
         "9 280 -1 50 1 -1 -1 1 80 -1 1 -1 -1 -1 -1 -1 -1 -1 trailing junk\n"
         "10 300 -1 50 1 -1 -1 1 80";  // final line, no newline
}

TEST(SwfStreaming, ParseIsIndependentOfChunkSize) {
  const std::string text = tricky_stream();
  const SwfParseResult whole = parse_with_chunk(text, text.size() + 64);
  // Sanity-pin the reference: records 1, 2, 4, 9 and 10 survive, and every
  // skip category is hit at least once.
  EXPECT_EQ(whole.set.size(), 5u);
  EXPECT_EQ(whole.header_lines, 2u);
  EXPECT_EQ(whole.skipped_truncated, 1u);
  EXPECT_EQ(whole.skipped_malformed, 2u);
  EXPECT_EQ(whole.skipped_unusable, 2u);
  EXPECT_EQ(whole.set[1].submit, 150.0);  // '+' sign accepted

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{4096}}) {
    const SwfParseResult chunked = parse_with_chunk(text, chunk);
    expect_same_parse(whole, chunked,
                      ("chunk=" + std::to_string(chunk)).c_str());
  }
}

TEST(SwfStreaming, RoundTripSurvivesOneByteChunks) {
  std::vector<Job> jobs(3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
    jobs[i].submit = static_cast<Time>(10 * i);
    jobs[i].width = static_cast<std::uint32_t>(i + 1);
    jobs[i].estimated_runtime = 600;
    jobs[i].actual_runtime = 300;
  }
  const JobSet set(Machine{"m", 8}, std::move(jobs));
  std::ostringstream out;
  write_swf(out, set);
  const SwfParseResult r = parse_with_chunk(out.str(), 1);
  ASSERT_EQ(r.set.size(), set.size());
  EXPECT_EQ(r.skipped_records, 0u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(r.set[i].submit, set[i].submit);
    EXPECT_EQ(r.set[i].width, set[i].width);
  }
}

/// The scale test from the issue: a synthetic multi-hundred-megabyte trace
/// (two million records, ~3% corrupted in every category) parsed with the
/// default 1 MiB chunking must agree with a single-chunk whole-stream parse,
/// counters and diagnostics included.
TEST(SwfStreamingLarge, MultiHundredMegabyteTraceParsesIdentically) {
  constexpr std::size_t kRecords = 2'000'000;
  util::Xoshiro256 rng(20260809);
  std::string text;
  text.reserve(kRecords * 64);
  text += "; synthetic large trace\n";
  char buf[128];
  for (std::size_t i = 0; i < kRecords; ++i) {
    const std::uint64_t kind = rng.next_below(100);
    if (kind == 0) {
      text += "garbage record here\n";
    } else if (kind == 1) {
      text += "77 12\n";  // truncated
    } else if (kind == 2) {
      text += "78 -5 -1 300 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
    } else {
      const auto submit = static_cast<unsigned long>(i / 4);
      const auto width = static_cast<unsigned>(1 + rng.next_below(64));
      const auto run = static_cast<unsigned>(60 + rng.next_below(3600));
      const auto est = run + static_cast<unsigned>(rng.next_below(600));
      std::snprintf(buf, sizeof buf,
                    "%zu %lu -1 %u %u -1 -1 %u %u -1 1 -1 -1 -1 -1 -1 -1 -1\n",
                    i + 1, submit, run, width, width, est);
      text += buf;
    }
  }
  ASSERT_GT(text.size(), 100u << 20) << "trace not multi-100MB sized";

  const SwfParseResult whole = parse_with_chunk(text, text.size());
  const SwfParseResult chunked = parse_with_chunk(text, SwfReadOptions{}.chunk_bytes);
  EXPECT_GT(whole.set.size(), kRecords * 9 / 10);
  EXPECT_GT(whole.skipped_records, 0u);
  expect_same_parse(whole, chunked, "1MiB chunks vs whole");
}

}  // namespace
}  // namespace dynp::workload
