/// Hardened SWF parsing against the malformed-input corpus in
/// `tests/workload/corpus/`: truncated records, non-numeric garbage and
/// semantically unusable fields must be skipped (never crash, never produce
/// a bogus job), counted per category, and reported with per-line
/// diagnostics. `DYNP_CORPUS_DIR` points at the corpus in the source tree.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "workload/swf.hpp"

namespace dynp::workload {
namespace {

[[nodiscard]] std::string corpus(const char* name) {
  return std::string(DYNP_CORPUS_DIR) + "/" + name;
}

TEST(SwfMalformedCorpus, TruncatedRecordsAreSkippedAndCounted) {
  const SwfParseResult r =
      read_swf_file(corpus("truncated.swf"), Machine{"m", 64});
  EXPECT_EQ(r.set.size(), 0u);
  EXPECT_EQ(r.skipped_records, 4u);
  EXPECT_EQ(r.skipped_truncated, 4u);
  EXPECT_EQ(r.skipped_malformed, 0u);
  EXPECT_EQ(r.skipped_unusable, 0u);
  EXPECT_EQ(r.header_lines, 2u);
}

TEST(SwfMalformedCorpus, NonNumericTokensAreSkippedAndCounted) {
  const SwfParseResult r =
      read_swf_file(corpus("malformed.swf"), Machine{"m", 64});
  EXPECT_EQ(r.set.size(), 0u);
  EXPECT_EQ(r.skipped_records, 4u);
  EXPECT_EQ(r.skipped_malformed, 4u);
  EXPECT_EQ(r.skipped_truncated, 0u);
  EXPECT_EQ(r.skipped_unusable, 0u);
}

TEST(SwfMalformedCorpus, UnusableFieldsAreSkippedAndCounted) {
  const SwfParseResult r =
      read_swf_file(corpus("unusable.swf"), Machine{"m", 64});
  EXPECT_EQ(r.set.size(), 0u);
  EXPECT_EQ(r.skipped_records, 6u);
  EXPECT_EQ(r.skipped_unusable, 6u);
  EXPECT_EQ(r.skipped_truncated, 0u);
  EXPECT_EQ(r.skipped_malformed, 0u);
}

TEST(SwfMalformedCorpus, MixedFileKeepsOnlyTheValidJobs) {
  const SwfParseResult r =
      read_swf_file(corpus("mixed.swf"), Machine{"m", 64});
  ASSERT_EQ(r.set.size(), 3u);
  EXPECT_EQ(r.skipped_records, 4u);
  EXPECT_EQ(r.skipped_truncated, 1u);
  EXPECT_EQ(r.skipped_malformed, 2u);
  EXPECT_EQ(r.skipped_unusable, 1u);
  // The surviving jobs are lines 1, 4 and 7, in submit order.
  EXPECT_EQ(r.set[0].submit, 100.0);
  EXPECT_EQ(r.set[0].width, 4u);
  EXPECT_EQ(r.set[1].submit, 250.0);
  EXPECT_EQ(r.set[2].submit, 400.0);
}

TEST(SwfMalformedCorpus, DiagnosticsCarryLineNumbersAndReasons) {
  const SwfParseResult r =
      read_swf_file(corpus("mixed.swf"), Machine{"m", 64});
  ASSERT_EQ(r.diagnostics.size(), 4u);
  EXPECT_EQ(r.diagnostics[0].line, 4u);  // after the two header lines + job 1
  EXPECT_NE(r.diagnostics[0].reason.find("truncated"), std::string::npos);
  EXPECT_EQ(r.diagnostics[1].line, 5u);
  EXPECT_NE(r.diagnostics[1].reason.find("malformed"), std::string::npos);
  EXPECT_EQ(r.diagnostics[2].line, 7u);
  EXPECT_NE(r.diagnostics[2].reason.find("unusable"), std::string::npos);
  EXPECT_EQ(r.diagnostics[3].line, 8u);
  EXPECT_NE(r.diagnostics[3].reason.find("malformed"), std::string::npos);
}

TEST(SwfMalformed, DiagnosticListIsCappedButCountersAreNot) {
  std::ostringstream big;
  for (int i = 0; i < 100; ++i) big << "garbage line " << i << "\n";
  std::istringstream in(big.str());
  const SwfParseResult r = read_swf(in, Machine{"m", 64});
  EXPECT_EQ(r.skipped_records, 100u);
  EXPECT_EQ(r.skipped_malformed, 100u);
  EXPECT_EQ(r.diagnostics.size(), SwfParseResult::kMaxDiagnostics);
}

TEST(SwfMalformed, CategoriesAlwaysSumToTheTotal) {
  std::istringstream in(
      "1 100 -1 300 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
      "2 10\n"
      "x y z\n"
      "4 -5 -1 300 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const SwfParseResult r = read_swf(in, Machine{"m", 64});
  EXPECT_EQ(r.set.size(), 1u);
  EXPECT_EQ(r.skipped_records, 3u);
  EXPECT_EQ(r.skipped_truncated + r.skipped_malformed + r.skipped_unusable,
            r.skipped_records);
}

}  // namespace
}  // namespace dynp::workload
