#include "workload/models.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <utility>

#include "exp/paper_reference.hpp"
#include "workload/trace_stats.hpp"

namespace dynp::workload {
namespace {

constexpr std::size_t kJobs = 20000;

class ModelCalibration : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] static TraceModel model_for(int index) {
    return paper_models()[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] static const exp::PaperTraceProperties& reference(int index) {
    return exp::paper_table2()[static_cast<std::size_t>(index)];
  }
};

TEST_P(ModelCalibration, WidthColumnsMatchTable2) {
  const TraceModel model = model_for(GetParam());
  const TraceStats s = compute_stats(generate(model, kJobs, 1));
  const auto& ref = reference(GetParam());
  EXPECT_NEAR(s.width.mean(), ref.width_avg, ref.width_avg * 0.05)
      << model.name;
  EXPECT_GE(s.width.min(), ref.width_min);
  EXPECT_LE(s.width.max(), ref.width_max);
}

TEST_P(ModelCalibration, RuntimeColumnsMatchTable2) {
  const TraceModel model = model_for(GetParam());
  const TraceStats s = compute_stats(generate(model, kJobs, 2));
  const auto& ref = reference(GetParam());
  EXPECT_NEAR(s.estimated_runtime.mean(), ref.est_avg, ref.est_avg * 0.08)
      << model.name;
  EXPECT_NEAR(s.actual_runtime.mean(), ref.act_avg, ref.act_avg * 0.10)
      << model.name;
  EXPECT_LE(s.estimated_runtime.max(), ref.est_max);
  EXPECT_LE(s.actual_runtime.max(), ref.act_max);
  EXPECT_NEAR(s.overestimation_factor, ref.overestimation,
              ref.overestimation * 0.10)
      << model.name;
}

TEST_P(ModelCalibration, InterarrivalMeanMatchesCalibratedTarget) {
  const TraceModel model = model_for(GetParam());
  const TraceStats s = compute_stats(generate(model, kJobs, 3));
  const auto& ref = reference(GetParam());
  // The generator targets the published mean divided by the trace's
  // effective-load calibration (see TraceModel::load_calibration): the
  // paper's utilisation at factor 1.0 implies more offered area per second
  // than the product of Table 2 means for LANL and SDSC.
  const double target = ref.ia_avg / model.load_calibration;
  EXPECT_NEAR(s.interarrival.mean(), target, target * 0.05) << model.name;
}

TEST_P(ModelCalibration, PlanningContractHolds) {
  const TraceModel model = model_for(GetParam());
  const JobSet set = generate(model, 5000, 4);
  for (const Job& job : set.jobs()) {
    ASSERT_TRUE(job.valid());
    ASSERT_GE(job.actual_runtime, 1.0);
    ASSERT_LE(job.width, model.nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTraces, ModelCalibration,
                         ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return exp::kTraceNames[static_cast<std::size_t>(
                               info.param)];
                         });

TEST(Models, GenerateIsDeterministic) {
  const TraceModel model = kth_model();
  const JobSet a = generate(model, 500, 99);
  const JobSet b = generate(model, 500, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].width, b[i].width);
    EXPECT_DOUBLE_EQ(a[i].estimated_runtime, b[i].estimated_runtime);
    EXPECT_DOUBLE_EQ(a[i].actual_runtime, b[i].actual_runtime);
  }
}

TEST(Models, DifferentSeedsGiveDifferentSets) {
  const TraceModel model = kth_model();
  const JobSet a = generate(model, 100, 1);
  const JobSet b = generate(model, 100, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].width != b[i].width ||
        a[i].estimated_runtime != b[i].estimated_runtime) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Models, EnsembleDerivesDistinctSeeds) {
  const auto sets = generate_ensemble(sdsc_model(), 3, 200, 7);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_NE(sets[0][10].estimated_runtime, sets[1][10].estimated_runtime);
}

TEST(Models, ModelByNameIsCaseInsensitive) {
  EXPECT_EQ(model_by_name("ctc").name, "CTC");
  EXPECT_EQ(model_by_name("LaNl").name, "LANL");
  EXPECT_THROW((void)model_by_name("unknown"), std::invalid_argument);
}

TEST(Models, EstimatesAreMinuteRounded) {
  const JobSet set = generate(ctc_model(), 2000, 5);
  for (const Job& job : set.jobs()) {
    // Estimates are rounded up to whole minutes (unless raised to cover the
    // actual run time, which the generator never needs to do).
    const double remainder = std::fmod(job.estimated_runtime, 60.0);
    EXPECT_NEAR(std::min(remainder, 60.0 - remainder), 0.0, 1e-6);
  }
}

TEST(Models, LanlWidthsArePowersOfTwoTimes32) {
  const JobSet set = generate(lanl_model(), 2000, 6);
  for (const Job& job : set.jobs()) {
    EXPECT_GE(job.width, 32u);
    // All LANL widths are in {32, 64, 128, 256, 512, 1024}.
    EXPECT_EQ((job.width & (job.width - 1)), 0u) << job.width;
  }
}

TEST(Models, DiurnalModulationChangesArrivalsOnly) {
  TraceModel model = kth_model();
  model.diurnal_amplitude = 0.8;
  const JobSet plain = generate(kth_model(), 300, 11);
  const JobSet modulated = generate(model, 300, 11);
  // Same job bodies (width/runtimes draw from the same stream positions)...
  EXPECT_EQ(plain[5].width, modulated[5].width);
  // ...but different submission times after the first gap.
  bool any_diff = false;
  for (std::size_t i = 1; i < plain.size(); ++i) {
    if (plain[i].submit != modulated[i].submit) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Models, WeekendFactorThinsWeekendArrivals) {
  TraceModel model = kth_model();
  model.weekend_factor = 0.1;
  const JobSet set = generate(model, 20000, 31);
  // Count arrivals by day-of-week; weekdays (0-4) must dominate days 5-6.
  std::array<double, 7> per_day{};
  for (const Job& job : set.jobs()) {
    per_day[static_cast<std::size_t>(std::fmod(job.submit / 86400.0, 7.0))] += 1;
  }
  const double weekday_rate = (per_day[0] + per_day[1] + per_day[2] +
                               per_day[3] + per_day[4]) / 5.0;
  const double weekend_rate = (per_day[5] + per_day[6]) / 2.0;
  EXPECT_LT(weekend_rate, weekday_rate * 0.3);
}

TEST(Models, WeekendFactorPreservesMeanInterarrival) {
  TraceModel model = sdsc_model();  // has weekend_factor + diurnal enabled
  const TraceStats s = compute_stats(generate(model, 20000, 33));
  const double target = model.ia_mean / model.load_calibration;
  EXPECT_NEAR(s.interarrival.mean(), target, target * 0.05);
}

TEST(Models, SubmitTimesAreWholeSeconds) {
  const JobSet set = generate(ctc_model(), 2000, 8);
  for (const Job& job : set.jobs()) {
    EXPECT_DOUBLE_EQ(job.submit, std::round(job.submit));
    EXPECT_DOUBLE_EQ(job.actual_runtime, std::round(job.actual_runtime));
  }
}

TEST(Models, CalibratedSamplerMatchesFreeFunction) {
  const TraceModel model = ctc_model();
  const CalibratedSampler sampler(model);
  const JobSet a = sampler.generate(300, 99);
  const JobSet b = generate(model, 300, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].width, b[i].width);
    EXPECT_DOUBLE_EQ(a[i].estimated_runtime, b[i].estimated_runtime);
    EXPECT_DOUBLE_EQ(a[i].actual_runtime, b[i].actual_runtime);
  }
  EXPECT_EQ(sampler.model().name, "CTC");
}

TEST(Models, CalibratedSamplerIsReusableAndMovable) {
  CalibratedSampler sampler(kth_model());
  const JobSet first = sampler.generate(50, 1);
  const JobSet second = sampler.generate(50, 2);
  EXPECT_NE(first[0].estimated_runtime, second[0].estimated_runtime);
  CalibratedSampler moved = std::move(sampler);
  const JobSet third = moved.generate(50, 1);
  EXPECT_DOUBLE_EQ(third[0].estimated_runtime, first[0].estimated_runtime);
}

TEST(Models, ScaleMachineMultipliesNodesAndArrivalRate) {
  const TraceModel base = kth_model();
  const TraceModel scaled = scale_machine(kth_model(), 50);
  EXPECT_EQ(scaled.nodes, base.nodes * 50);
  EXPECT_EQ(scaled.name, base.name + "-x50");
  // Arrivals target ia_mean / load_calibration, so the realised mean gap
  // must shrink by the scale while per-job width/runtime shapes persist.
  const TraceStats s = compute_stats(generate(scaled, 20000, 7));
  const double target = scaled.ia_mean / scaled.load_calibration;
  EXPECT_NEAR(s.interarrival.mean(), target, target * 0.05);
  const TraceStats b = compute_stats(generate(base, 20000, 7));
  EXPECT_NEAR(s.width.mean(), b.width.mean(), b.width.mean() * 0.05);
}

TEST(Models, ScaleMachineByOneIsIdentity) {
  const TraceModel base = kth_model();
  const TraceModel same = scale_machine(kth_model(), 1);
  EXPECT_EQ(same.nodes, base.nodes);
  EXPECT_EQ(same.name, base.name);
  const JobSet a = generate(base, 500, 3);
  const JobSet b = generate(same, 500, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].width, b[i].width);
  }
}

TEST(Models, OfferedLoadIsInPlausibleBand) {
  // The area correlation targets were chosen so that offered load at factor
  // 1.0 lands near the paper's utilisation (Table 4, shrink 1.0).
  const std::array<double, 4> target = {76.2, 69.3, 63.6, 79.4};
  const auto models = paper_models();
  for (std::size_t i = 0; i < models.size(); ++i) {
    const TraceStats s = compute_stats(generate(models[i], kJobs, 21));
    EXPECT_NEAR(s.offered_load * 100.0, target[i], 14.0) << models[i].name;
  }
}

}  // namespace
}  // namespace dynp::workload
