#include "workload/feitelson.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "workload/trace_stats.hpp"

namespace dynp::workload {
namespace {

TEST(Feitelson, Deterministic) {
  const FeitelsonParams params;
  const JobSet a = generate_feitelson(params, 500, 7);
  const JobSet b = generate_feitelson(params, 500, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].width, b[i].width);
    EXPECT_DOUBLE_EQ(a[i].actual_runtime, b[i].actual_runtime);
  }
}

TEST(Feitelson, RequestedJobCount) {
  EXPECT_EQ(generate_feitelson({}, 777, 3).size(), 777u);
  EXPECT_EQ(generate_feitelson({}, 1, 3).size(), 1u);
}

TEST(Feitelson, PlanningContractHolds) {
  const JobSet set = generate_feitelson({}, 3000, 11);
  for (const Job& job : set.jobs()) {
    ASSERT_TRUE(job.valid());
    ASSERT_GE(job.actual_runtime, 1.0);
    ASSERT_LE(job.width, set.machine().nodes);
    // Estimates are minute-granular and cover the actual.
    EXPECT_GE(job.estimated_runtime, job.actual_runtime);
  }
}

TEST(Feitelson, PowersOfTwoDominateWidths) {
  const JobSet set = generate_feitelson({}, 20000, 5);
  std::size_t pow2 = 0;
  for (const Job& job : set.jobs()) {
    if ((job.width & (job.width - 1)) == 0) ++pow2;
  }
  // p_power_of_two = 0.75 plus the uniform branch occasionally hitting one.
  EXPECT_GT(static_cast<double>(pow2) / static_cast<double>(set.size()), 0.7);
}

TEST(Feitelson, MeanRuntimeOnTarget) {
  FeitelsonParams params;
  params.mean_runtime = 4000;
  const TraceStats s = compute_stats(generate_feitelson(params, 30000, 9));
  EXPECT_NEAR(s.actual_runtime.mean(), 4000, 4000 * 0.08);
}

TEST(Feitelson, RepetitionProducesIdenticalBodies) {
  FeitelsonParams params;
  params.repeat_prob = 0.9;  // long rerun chains
  const JobSet set = generate_feitelson(params, 2000, 13);
  // Count (width, actual) bodies appearing more than once.
  std::map<std::pair<std::uint32_t, double>, int> bodies;
  for (const Job& job : set.jobs()) {
    ++bodies[{job.width, job.actual_runtime}];
  }
  std::size_t repeated = 0;
  for (const auto& [body, count] : bodies) {
    if (count > 1) repeated += static_cast<std::size_t>(count);
  }
  EXPECT_GT(static_cast<double>(repeated) / static_cast<double>(set.size()),
            0.5);
}

TEST(Feitelson, NoRepetitionWhenProbZero) {
  FeitelsonParams params;
  params.repeat_prob = 0.0;
  params.mean_interarrival = 100;
  const JobSet set = generate_feitelson(params, 300, 17);
  // Interarrival count == n-1 and strictly increasing blocks are plausible;
  // mainly: distinct submits dominate (Poisson arrivals, second-rounded).
  const TraceStats s = compute_stats(set);
  EXPECT_NEAR(s.interarrival.mean(), 100, 25);
}

TEST(Feitelson, WiderJobsRunLongerOnAverage) {
  FeitelsonParams params;
  params.runtime_width_exponent = 0.5;
  const JobSet set = generate_feitelson(params, 30000, 19);
  double narrow_sum = 0, wide_sum = 0;
  std::size_t narrow_n = 0, wide_n = 0;
  for (const Job& job : set.jobs()) {
    if (job.width <= 4) {
      narrow_sum += job.actual_runtime;
      ++narrow_n;
    } else if (job.width >= 32) {
      wide_sum += job.actual_runtime;
      ++wide_n;
    }
  }
  ASSERT_GT(narrow_n, 100u);
  ASSERT_GT(wide_n, 100u);
  EXPECT_GT(wide_sum / static_cast<double>(wide_n),
            narrow_sum / static_cast<double>(narrow_n));
}

TEST(Feitelson, WholeSecondTimestamps) {
  const JobSet set = generate_feitelson({}, 1000, 23);
  for (const Job& job : set.jobs()) {
    EXPECT_DOUBLE_EQ(job.submit, std::round(job.submit));
    EXPECT_DOUBLE_EQ(job.actual_runtime, std::round(job.actual_runtime));
  }
}

}  // namespace
}  // namespace dynp::workload
