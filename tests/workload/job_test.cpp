#include "workload/job.hpp"

#include <gtest/gtest.h>

namespace dynp::workload {
namespace {

[[nodiscard]] Job make_job(Time submit, std::uint32_t width, Time est,
                           Time act) {
  Job j;
  j.submit = submit;
  j.width = width;
  j.estimated_runtime = est;
  j.actual_runtime = act;
  return j;
}

TEST(Job, AreaDefinitions) {
  const Job j = make_job(0, 4, 100, 60);
  EXPECT_DOUBLE_EQ(j.area(), 240.0);
  EXPECT_DOUBLE_EQ(j.estimated_area(), 400.0);
}

TEST(Job, ValidityContract) {
  EXPECT_TRUE(make_job(0, 1, 10, 10).valid());
  EXPECT_TRUE(make_job(5, 2, 10, 3).valid());
  // Actual exceeding the estimate violates the planning contract.
  EXPECT_FALSE(make_job(0, 1, 10, 11).valid());
  EXPECT_FALSE(make_job(-1, 1, 10, 5).valid());
  EXPECT_FALSE(make_job(0, 0, 10, 5).valid());
}

TEST(JobSet, SortsBySubmitAndReassignsIds) {
  std::vector<Job> jobs = {make_job(50, 1, 10, 5), make_job(10, 2, 20, 20),
                           make_job(30, 1, 5, 5)};
  const JobSet set(Machine{"m", 4}, std::move(jobs));
  ASSERT_EQ(set.size(), 3u);
  EXPECT_DOUBLE_EQ(set[0].submit, 10);
  EXPECT_DOUBLE_EQ(set[1].submit, 30);
  EXPECT_DOUBLE_EQ(set[2].submit, 50);
  for (JobId i = 0; i < 3; ++i) EXPECT_EQ(set[i].id, i);
}

TEST(JobSet, StableOrderForEqualSubmitTimes) {
  std::vector<Job> jobs = {make_job(10, 1, 100, 50), make_job(10, 2, 200, 60)};
  const JobSet set(Machine{"m", 4}, std::move(jobs));
  EXPECT_EQ(set[0].width, 1u);
  EXPECT_EQ(set[1].width, 2u);
}

TEST(JobSet, ShrinkingFactorScalesSubmitOnly) {
  std::vector<Job> jobs = {make_job(0, 1, 10, 5), make_job(100, 2, 20, 10)};
  const JobSet base(Machine{"m", 4}, std::move(jobs));
  const JobSet shrunk = base.with_shrinking_factor(0.6);
  ASSERT_EQ(shrunk.size(), 2u);
  EXPECT_DOUBLE_EQ(shrunk[1].submit, 60.0);
  EXPECT_DOUBLE_EQ(shrunk[1].estimated_runtime, 20.0);
  EXPECT_DOUBLE_EQ(shrunk[1].actual_runtime, 10.0);
  EXPECT_EQ(shrunk[1].width, 2u);
  // Factor 1.0 is the identity.
  const JobSet same = base.with_shrinking_factor(1.0);
  EXPECT_DOUBLE_EQ(same[1].submit, 100.0);
}

TEST(JobSet, ShrinkingPreservesTotalArea) {
  std::vector<Job> jobs = {make_job(0, 3, 10, 7), make_job(40, 2, 30, 30)};
  const JobSet base(Machine{"m", 8}, std::move(jobs));
  EXPECT_DOUBLE_EQ(base.with_shrinking_factor(0.7).total_area(),
                   base.total_area());
}

TEST(JobSet, RuntimeScalingScalesBothRuntimes) {
  std::vector<Job> jobs = {make_job(0, 2, 100, 40), make_job(10, 1, 60, 60)};
  const JobSet base(Machine{"m", 4}, std::move(jobs));
  const JobSet scaled = base.with_runtime_scaling(2.0);
  EXPECT_DOUBLE_EQ(scaled[0].estimated_runtime, 200.0);
  EXPECT_DOUBLE_EQ(scaled[0].actual_runtime, 80.0);
  EXPECT_DOUBLE_EQ(scaled[1].actual_runtime, 120.0);
  // Submission times untouched.
  EXPECT_DOUBLE_EQ(scaled[1].submit, 10.0);
  // Area doubles (unlike shrinking).
  EXPECT_DOUBLE_EQ(scaled.total_area(), 2.0 * base.total_area());
}

TEST(JobSet, RuntimeScalingKeepsContractOnShrink) {
  // Scaling down rounds both; the estimate must still cover the actual.
  std::vector<Job> jobs = {make_job(0, 1, 61, 61)};
  const JobSet base(Machine{"m", 4}, std::move(jobs));
  const JobSet scaled = base.with_runtime_scaling(0.013);
  EXPECT_GE(scaled[0].estimated_runtime, scaled[0].actual_runtime);
  EXPECT_GE(scaled[0].actual_runtime, 1.0);
  EXPECT_TRUE(scaled[0].valid());
}

TEST(JobSet, MultisubmissionDuplicatesJobs) {
  std::vector<Job> jobs = {make_job(0, 2, 100, 40), make_job(10, 1, 60, 60)};
  const JobSet base(Machine{"m", 4}, std::move(jobs));
  const JobSet multi = base.with_multisubmission(3);
  ASSERT_EQ(multi.size(), 6u);
  // Copies share submit/width/runtimes; ids are reassigned densely.
  EXPECT_DOUBLE_EQ(multi[0].submit, 0.0);
  EXPECT_DOUBLE_EQ(multi[2].submit, 0.0);
  EXPECT_DOUBLE_EQ(multi[3].submit, 10.0);
  for (JobId i = 0; i < 6; ++i) EXPECT_EQ(multi[i].id, i);
  EXPECT_DOUBLE_EQ(multi.total_area(), 3.0 * base.total_area());
}

TEST(JobSet, MultisubmissionByOneIsIdentity) {
  std::vector<Job> jobs = {make_job(0, 2, 100, 40)};
  const JobSet base(Machine{"m", 4}, std::move(jobs));
  EXPECT_EQ(base.with_multisubmission(1).size(), base.size());
}

TEST(JobSet, TotalArea) {
  std::vector<Job> jobs = {make_job(0, 2, 10, 10), make_job(5, 3, 10, 4)};
  const JobSet set(Machine{"m", 8}, std::move(jobs));
  EXPECT_DOUBLE_EQ(set.total_area(), 2 * 10 + 3 * 4);
}

TEST(SanitizeJobs, ClampsContractViolations) {
  const Machine machine{"m", 8};
  std::vector<Job> raw = {make_job(0, 2, 10, 10)};
  raw[0].width = 100;          // wider than the machine
  raw[0].actual_runtime = 50;  // exceeds the estimate
  raw[0].submit = -3;          // negative time
  const std::vector<Job> fixed = sanitize_jobs(std::move(raw), machine);
  EXPECT_EQ(fixed[0].width, 8u);
  EXPECT_LE(fixed[0].actual_runtime, fixed[0].estimated_runtime);
  EXPECT_GE(fixed[0].submit, 0.0);
  EXPECT_TRUE(fixed[0].valid());
  // The sanitized vector satisfies the JobSet constructor contract.
  const JobSet set(machine, fixed);
  EXPECT_EQ(set.size(), 1u);
}

TEST(JobSet, EmptySetBehaves) {
  const JobSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.total_area(), 0.0);
}

}  // namespace
}  // namespace dynp::workload
