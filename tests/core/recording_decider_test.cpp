#include "core/recording_decider.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "workload/models.hpp"

namespace dynp::core {
namespace {

TEST(RecordingDecider, ForwardsAndRecords) {
  const auto rec =
      std::make_shared<RecordingDecider>(make_advanced_decider());
  EXPECT_EQ(rec->decide({{5, 3, 9}, 0}), 1u);
  EXPECT_EQ(rec->decide({{4, 4, 4}, 2}), 2u);
  ASSERT_EQ(rec->records().size(), 2u);
  EXPECT_EQ(rec->records()[0].chosen, 1u);
  EXPECT_EQ(rec->records()[0].old_index, 0u);
  EXPECT_EQ(rec->records()[1].values, (std::vector<double>{4, 4, 4}));
  EXPECT_EQ(rec->name(), "advanced+rec");
}

TEST(RecordingDecider, TieAndStayFractions) {
  const auto rec =
      std::make_shared<RecordingDecider>(make_advanced_decider());
  EXPECT_DOUBLE_EQ(rec->tie_fraction(), 0.0);  // nothing recorded yet
  (void)rec->decide({{4, 4, 4}, 1});  // tie, stays
  (void)rec->decide({{5, 3, 9}, 0});  // no tie, switches
  (void)rec->decide({{3, 5, 9}, 0});  // no tie, stays
  (void)rec->decide({{7, 7, 7}, 2});  // tie, stays
  EXPECT_DOUBLE_EQ(rec->tie_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(rec->stay_fraction(), 0.75);
  rec->clear();
  EXPECT_TRUE(rec->records().empty());
}

TEST(RecordingDecider, AuditsAWholeSimulation) {
  const workload::JobSet set =
      workload::generate(workload::ctc_model(), 800, 7)
          .with_shrinking_factor(0.8);
  const auto rec =
      std::make_shared<RecordingDecider>(make_advanced_decider());
  const auto r = core::simulate(set, core::dynp_config(rec));
  // Every self-tuning decision was recorded.
  EXPECT_EQ(rec->records().size(), r.decisions);
  // The advanced decider keeps the active policy at every tie, so the stay
  // fraction can never be below the tie fraction.
  EXPECT_GE(rec->stay_fraction(), rec->tie_fraction());
  // At light-to-moderate load, ties (single waiting job, equal orders) are
  // common — the structural fact Table 1's design revolves around.
  EXPECT_GT(rec->tie_fraction(), 0.2);
}

}  // namespace
}  // namespace dynp::core
