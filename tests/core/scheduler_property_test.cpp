/// Randomised (but fixed-seed, hence deterministic) property tests for the
/// scheduler semantics, checked against first principles rather than
/// hand-computed scenarios.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "core/simulation.hpp"
#include "metrics/validate.hpp"
#include "util/rng.hpp"

namespace dynp::core {
namespace {

using policies::PolicyKind;
using workload::Job;
using workload::JobSet;
using workload::Machine;

/// Random job set with controllable size/load shape.
[[nodiscard]] JobSet random_set(std::uint64_t seed, std::uint32_t nodes,
                                std::size_t n) {
  util::Xoshiro256 rng(seed);
  std::vector<Job> jobs;
  Time now = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Job j;
    j.submit = now;
    j.width = static_cast<std::uint32_t>(1 + rng.next_below(nodes));
    const double est = 60.0 * static_cast<double>(1 + rng.next_below(40));
    j.estimated_runtime = est;
    j.actual_runtime = std::max(
        1.0, std::floor(est * (0.2 + 0.8 * rng.next_double())));
    jobs.push_back(j);
    now += static_cast<Time>(rng.next_below(400));
  }
  return JobSet{Machine{"rand", nodes}, std::move(jobs)};
}

struct PropertyCase {
  std::uint64_t seed;
  std::uint32_t nodes;
  std::size_t jobs;
};

class SchedulerProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SchedulerProperty, AllSemanticsProduceValidSchedules) {
  const auto p = GetParam();
  const JobSet set = random_set(p.seed, p.nodes, p.jobs);
  for (const PlannerSemantics semantics :
       {PlannerSemantics::kReplan, PlannerSemantics::kGuarantee,
        PlannerSemantics::kQueueingEasy}) {
    for (const PolicyKind policy :
         {PolicyKind::kFcfs, PolicyKind::kSjf, PolicyKind::kLjf}) {
      auto config = static_config(policy);
      config.semantics = semantics;
      const auto r = simulate(set, config);
      const auto report = metrics::validate_outcomes(set, r.outcomes);
      ASSERT_TRUE(report.ok())
          << config.label() << " seed " << p.seed << ": "
          << (report.issues.empty() ? "" : report.issues[0].detail);
    }
  }
}

TEST_P(SchedulerProperty, DynPValidUnderBothPlanningSemantics) {
  const auto p = GetParam();
  const JobSet set = random_set(p.seed ^ 0xABCD, p.nodes, p.jobs);
  for (const PlannerSemantics semantics :
       {PlannerSemantics::kReplan, PlannerSemantics::kGuarantee}) {
    auto config = dynp_config(make_advanced_decider());
    config.semantics = semantics;
    const auto r = simulate(set, config);
    const auto report = metrics::validate_outcomes(set, r.outcomes);
    ASSERT_TRUE(report.ok()) << config.label() << " seed " << p.seed;
  }
}

TEST_P(SchedulerProperty, FcfsReplanNeverReordersEqualWidthFullMachineJobs) {
  // Full-width jobs under FCFS must run in arrival order: any inversion
  // would mean the planner reordered equal-priority jobs.
  const auto p = GetParam();
  util::Xoshiro256 rng(p.seed ^ 0x77);
  std::vector<Job> jobs;
  Time now = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    Job j;
    j.submit = now;
    j.width = p.nodes;  // full machine
    j.estimated_runtime = 60.0 * static_cast<double>(1 + rng.next_below(20));
    j.actual_runtime = j.estimated_runtime;
    jobs.push_back(j);
    now += static_cast<Time>(rng.next_below(300));
  }
  const JobSet set(Machine{"serial", p.nodes}, std::move(jobs));
  const auto r = simulate(set, static_config(PolicyKind::kFcfs));
  for (std::size_t i = 1; i < r.outcomes.size(); ++i) {
    EXPECT_GE(r.outcomes[i].start, r.outcomes[i - 1].end);
  }
}

TEST_P(SchedulerProperty, GuaranteeNeverStartsLaterThanInsertionPromise) {
  // Re-simulate under guarantees and verify every job starts no later than
  // the worst-case promise computable at its submission: the end of all
  // estimated work ahead of it (a crude upper bound that replanning cannot
  // exceed under monotone compression).
  const auto p = GetParam();
  const JobSet set = random_set(p.seed ^ 0x5151, p.nodes, p.jobs);
  auto config = static_config(PolicyKind::kSjf);
  config.semantics = PlannerSemantics::kGuarantee;
  const auto r = simulate(set, config);
  // Upper bound: serialised estimated work of all earlier-or-equal arrivals.
  double serial_work = 0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    serial_work += set[i].estimated_runtime *
                   static_cast<double>(set[i].width) /
                   static_cast<double>(p.nodes);
    EXPECT_LE(r.outcomes[i].start,
              set[i].submit + serial_work + set[i].estimated_runtime)
        << "job " << i;
  }
}

TEST_P(SchedulerProperty, EasyNeverDelaysTheQueueHeadPastItsShadow) {
  // Under EASY-FCFS the queue head's wait is bounded by the estimated ends
  // of the jobs running when it reached the head. Global corollary we can
  // check cheaply: no job waits longer than the total estimated work ahead
  // of it (serialised), same crude bound as above.
  const auto p = GetParam();
  const JobSet set = random_set(p.seed ^ 0x9999, p.nodes, p.jobs);
  auto config = static_config(PolicyKind::kFcfs);
  config.semantics = PlannerSemantics::kQueueingEasy;
  const auto r = simulate(set, config);
  double serial_work = 0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    serial_work += set[i].estimated_runtime *
                   static_cast<double>(set[i].width) /
                   static_cast<double>(p.nodes);
    EXPECT_LE(r.outcomes[i].start,
              set[i].submit + serial_work + set[i].estimated_runtime)
        << "job " << i;
  }
}

TEST_P(SchedulerProperty, ReplanFcfsMatchesEasyFcfsOnWaitOrderRoughly) {
  // Both are FCFS-with-backfilling variants; their mean waits should be in
  // the same ballpark (within 3x) on any workload — a coarse coupling check
  // that catches gross semantic regressions in either implementation.
  const auto p = GetParam();
  const JobSet set = random_set(p.seed ^ 0x1234, p.nodes, p.jobs);
  auto replan = static_config(PolicyKind::kFcfs);
  auto easy = static_config(PolicyKind::kFcfs);
  easy.semantics = PlannerSemantics::kQueueingEasy;
  const double w1 = simulate(set, replan).summary.avg_wait;
  const double w2 = simulate(set, easy).summary.avg_wait;
  const double lo = std::min(w1, w2), hi = std::max(w1, w2);
  if (hi > 60.0) {  // ignore near-idle workloads
    EXPECT_LT(hi, lo * 3 + 600) << "replan " << w1 << " vs easy " << w2;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, SchedulerProperty,
    ::testing::Values(PropertyCase{1, 4, 120}, PropertyCase{2, 16, 150},
                      PropertyCase{3, 64, 150}, PropertyCase{4, 7, 200},
                      PropertyCase{5, 128, 100}, PropertyCase{6, 1, 80}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_nodes" +
             std::to_string(info.param.nodes);
    });

}  // namespace
}  // namespace dynp::core
