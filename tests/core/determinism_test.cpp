/// Determinism of parallel self-tuning: with `parallel_tuning` on, each pool
/// candidate is planned by a worker task on its own planning state, and the
/// decider still consumes the scores in pool order — so the entire
/// simulation outcome must be bit-identical to the sequential evaluation,
/// whatever the thread count.

#include <gtest/gtest.h>

#include <cstddef>

#include "core/simulation.hpp"
#include "workload/models.hpp"

namespace dynp::core {
namespace {

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id) << "job " << i;
    EXPECT_DOUBLE_EQ(a.outcomes[i].start, b.outcomes[i].start) << "job " << i;
    EXPECT_DOUBLE_EQ(a.outcomes[i].end, b.outcomes[i].end) << "job " << i;
  }
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.decisions_per_policy, b.decisions_per_policy);
  ASSERT_EQ(a.time_in_policy.size(), b.time_in_policy.size());
  for (std::size_t i = 0; i < a.time_in_policy.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.time_in_policy[i], b.time_in_policy[i]) << "policy " << i;
  }
  ASSERT_EQ(a.policy_timeline.size(), b.policy_timeline.size());
  for (std::size_t i = 0; i < a.policy_timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.policy_timeline[i].when, b.policy_timeline[i].when);
    EXPECT_EQ(a.policy_timeline[i].from, b.policy_timeline[i].from);
    EXPECT_EQ(a.policy_timeline[i].to, b.policy_timeline[i].to);
  }
  EXPECT_DOUBLE_EQ(a.summary.sldwa, b.summary.sldwa);
  EXPECT_DOUBLE_EQ(a.summary.makespan, b.summary.makespan);
}

void check_parallel_matches_sequential(const workload::JobSet& set,
                                       SimulationConfig config) {
  config.parallel_tuning = false;
  const SimulationResult sequential = simulate(set, config);
  // A run without any policy switch would not prove much.
  EXPECT_GT(sequential.switches, 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{3}}) {
    config.parallel_tuning = true;
    config.tuning_threads = threads;
    const SimulationResult parallel = simulate(set, config);
    SCOPED_TRACE(threads);
    expect_identical(sequential, parallel);
  }
}

TEST(ParallelTuningDeterminism, ReplanSemantics) {
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 800, 11)
          .with_shrinking_factor(0.8);
  check_parallel_matches_sequential(
      set, dynp_config(make_advanced_decider()));
}

TEST(ParallelTuningDeterminism, GuaranteeSemantics) {
  const workload::JobSet set =
      workload::generate(workload::ctc_model(), 600, 23)
          .with_shrinking_factor(0.9);
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.semantics = PlannerSemantics::kGuarantee;
  check_parallel_matches_sequential(set, config);
}

TEST(ParallelTuningDeterminism, SimpleDeciderReplan) {
  const workload::JobSet set =
      workload::generate(workload::sdsc_model(), 600, 31);
  check_parallel_matches_sequential(set, dynp_config(make_simple_decider()));
}

}  // namespace
}  // namespace dynp::core
