#include "core/simulation.hpp"

#include <gtest/gtest.h>

namespace dynp::core {
namespace {

using policies::PolicyKind;
using workload::Job;
using workload::JobSet;
using workload::Machine;

[[nodiscard]] Job make_job(Time submit, std::uint32_t width, Time est,
                           Time act) {
  Job j;
  j.submit = submit;
  j.width = width;
  j.estimated_runtime = est;
  j.actual_runtime = act;
  return j;
}

TEST(StaticSimulation, SingleJobRunsImmediately) {
  const JobSet set(Machine{"m", 8}, {make_job(0, 4, 100, 60)});
  const SimulationResult r = simulate(set, static_config(PolicyKind::kFcfs));
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(r.outcomes[0].start, 0.0);
  EXPECT_DOUBLE_EQ(r.outcomes[0].end, 60.0);
  EXPECT_EQ(r.events, 2u);  // one submit + one finish
  EXPECT_DOUBLE_EQ(r.summary.sldwa, 1.0);
}

TEST(StaticSimulation, SerializesWhenMachineTooSmall) {
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 4, 100, 100), make_job(0, 4, 100, 100)});
  const SimulationResult r = simulate(set, static_config(PolicyKind::kFcfs));
  EXPECT_DOUBLE_EQ(r.outcomes[0].start, 0.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start, 100.0);
  EXPECT_DOUBLE_EQ(r.summary.makespan, 200.0);
}

TEST(StaticSimulation, EarlyFinishPullsNextJobForward) {
  // Job 0 is estimated at 100 but finishes at 50; job 1 (full width) must
  // start at the *actual* finish, which is what replanning on finish events
  // achieves.
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 4, 100, 50), make_job(0, 4, 100, 100)});
  const SimulationResult r = simulate(set, static_config(PolicyKind::kFcfs));
  EXPECT_DOUBLE_EQ(r.outcomes[1].start, 50.0);
}

TEST(StaticSimulation, BackfillingThroughPlanning) {
  // t=0: wide job 0 occupies the machine until est 100.
  // t=1: wider-than-free job 1 (width 4, est 200) must wait.
  //      narrow short job 2 (width 1, est 50) backfills at its submit.
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 3, 100, 100), make_job(1, 4, 200, 200),
                    make_job(1, 1, 50, 50)});
  const SimulationResult r = simulate(set, static_config(PolicyKind::kFcfs));
  EXPECT_DOUBLE_EQ(r.outcomes[0].start, 0.0);
  EXPECT_DOUBLE_EQ(r.outcomes[2].start, 1.0);    // backfilled
  EXPECT_DOUBLE_EQ(r.outcomes[1].start, 100.0);  // not delayed by backfill
}

[[nodiscard]] core::SimulationConfig replan_static(PolicyKind policy) {
  SimulationConfig config = static_config(policy);
  config.semantics = PlannerSemantics::kReplan;
  return config;
}

TEST(StaticSimulation, PolicyChangesCompletionOrderUnderReplan) {
  // A blocker occupies the 1-wide machine until t=50 while jobs A (est 300),
  // B (est 100) and C (est 200) queue behind it; under kReplan semantics the
  // policy then determines the order in which the queue drains. (Jobs
  // arriving on an idle machine start immediately regardless of policy, so
  // the queue must form first.)
  const JobSet set(Machine{"m", 1},
                   {make_job(0, 1, 50, 50),      // 0: blocker
                    make_job(1, 1, 300, 300),    // 1: A
                    make_job(2, 1, 100, 100),    // 2: B
                    make_job(3, 1, 200, 200)});  // 3: C
  const SimulationResult sjf = simulate(set, replan_static(PolicyKind::kSjf));
  EXPECT_DOUBLE_EQ(sjf.outcomes[2].start, 50.0);   // B
  EXPECT_DOUBLE_EQ(sjf.outcomes[3].start, 150.0);  // C
  EXPECT_DOUBLE_EQ(sjf.outcomes[1].start, 350.0);  // A
  const SimulationResult ljf = simulate(set, replan_static(PolicyKind::kLjf));
  EXPECT_DOUBLE_EQ(ljf.outcomes[1].start, 50.0);   // A
  EXPECT_DOUBLE_EQ(ljf.outcomes[3].start, 350.0);  // C
  EXPECT_DOUBLE_EQ(ljf.outcomes[2].start, 550.0);  // B
  const SimulationResult fcfs = simulate(set, replan_static(PolicyKind::kFcfs));
  EXPECT_DOUBLE_EQ(fcfs.outcomes[1].start, 50.0);   // A (arrived first)
  EXPECT_DOUBLE_EQ(fcfs.outcomes[2].start, 350.0);  // B
  EXPECT_DOUBLE_EQ(fcfs.outcomes[3].start, 450.0);  // C
}

TEST(StaticSimulation, NoTuningCountersInStaticMode) {
  const JobSet set(Machine{"m", 2}, {make_job(0, 1, 10, 10)});
  const SimulationResult r = simulate(set, static_config(PolicyKind::kSjf));
  EXPECT_EQ(r.decisions, 0u);
  EXPECT_EQ(r.switches, 0u);
  EXPECT_TRUE(r.decisions_per_policy.empty());
}

TEST(DynPSimulation, CountsDecisionsPerEvent) {
  const JobSet set(Machine{"m", 1},
                   {make_job(0, 1, 100, 100), make_job(10, 1, 50, 50)});
  SimulationConfig config = dynp_config(make_advanced_decider());
  const SimulationResult r = simulate(set, config);
  // Decisions happen at every event with a non-empty waiting queue.
  EXPECT_GT(r.decisions, 0u);
  EXPECT_EQ(r.decisions_per_policy.size(), 3u);
  std::uint64_t total = 0;
  for (const auto c : r.decisions_per_policy) total += c;
  EXPECT_EQ(total, r.decisions);
}

TEST(DynPSimulation, AdoptsBetterPolicy) {
  // Jobs arrive in decreasing length behind a long blocker, so the FCFS
  // order (= arrival) is exactly the SJF-worst order: the SJF candidate
  // schedule previews strictly better and the advanced decider must adopt
  // it at some point.
  std::vector<Job> jobs = {make_job(0, 1, 1000, 1000)};
  for (int i = 0; i < 10; ++i) {
    const Time len = 100.0 - 9.0 * i;
    jobs.push_back(make_job(1 + i, 1, len, len));
  }
  const JobSet set(Machine{"m", 1}, std::move(jobs));
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.semantics = PlannerSemantics::kReplan;
  const SimulationResult dynp = simulate(set, config);
  const SimulationResult fcfs = simulate(set, replan_static(PolicyKind::kFcfs));
  EXPECT_GT(dynp.decisions_per_policy[1], 0u);  // SJF was chosen sometimes
  EXPECT_LE(dynp.summary.sldwa, fcfs.summary.sldwa);
}

TEST(DynPSimulation, SubmitOnlyTuningStillStartsJobs) {
  const JobSet set(Machine{"m", 2},
                   {make_job(0, 2, 100, 60), make_job(5, 1, 50, 50),
                    make_job(6, 1, 80, 40)});
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.tune_on_finish = false;
  const SimulationResult r = simulate(set, config);
  ASSERT_EQ(r.outcomes.size(), 3u);
  for (const auto& o : r.outcomes) {
    EXPECT_GE(o.start, o.submit);
    EXPECT_DOUBLE_EQ(o.end, o.start + o.actual_runtime);
  }
}

TEST(DynPSimulation, IdenticalPoolNeverSwitches) {
  const JobSet set(Machine{"m", 1},
                   {make_job(0, 1, 100, 100), make_job(1, 1, 100, 100),
                    make_job(2, 1, 100, 100)});
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.pool = {PolicyKind::kFcfs, PolicyKind::kFcfs, PolicyKind::kFcfs};
  const SimulationResult r = simulate(set, config);
  EXPECT_EQ(r.switches, 0u);
}

TEST(DynPSimulation, TimeInPolicyAccountsForWholeRun) {
  const JobSet set(Machine{"m", 1},
                   {make_job(0, 1, 100, 100), make_job(50, 1, 10, 10)});
  SimulationConfig config = dynp_config(make_advanced_decider());
  const SimulationResult r = simulate(set, config);
  double total = 0;
  for (const double t : r.time_in_policy) total += t;
  EXPECT_DOUBLE_EQ(total, r.summary.makespan);
}

TEST(Simulation, DeterministicAcrossRuns) {
  std::vector<Job> jobs;
  for (int i = 0; i < 50; ++i) {
    const Time est = 60.0 * (1 + i % 7);
    const Time act = std::min(est, 30.0 * (1 + i % 5));
    jobs.push_back(
        make_job(i * 3, 1 + static_cast<std::uint32_t>(i % 4), est, act));
  }
  const JobSet set(Machine{"m", 8}, std::move(jobs));
  SimulationConfig config = dynp_config(make_advanced_decider());
  const SimulationResult a = simulate(set, config);
  const SimulationResult b = simulate(set, config);
  EXPECT_DOUBLE_EQ(a.summary.sldwa, b.summary.sldwa);
  EXPECT_DOUBLE_EQ(a.summary.utilization, b.summary.utilization);
  EXPECT_EQ(a.switches, b.switches);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcomes[i].start, b.outcomes[i].start);
  }
}

TEST(SimulationConfig, Labels) {
  EXPECT_EQ(static_config(PolicyKind::kLjf).label(), "LJF");
  EXPECT_EQ(dynp_config(make_advanced_decider()).label(), "dynP/advanced");
}

TEST(Simulation, EmptyJobSet) {
  const JobSet set(Machine{"m", 4}, {});
  const SimulationResult r = simulate(set, static_config(PolicyKind::kFcfs));
  EXPECT_EQ(r.outcomes.size(), 0u);
  EXPECT_EQ(r.events, 0u);
}

}  // namespace
}  // namespace dynp::core
