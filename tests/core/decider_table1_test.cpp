/// Reproduces the paper's Table 1 exhaustively: for each of the 10 value
/// cases (x 3 old policies where the table distinguishes them) the simple
/// decider must produce the "simple decider" column and the advanced decider
/// the "correct decision" column — including the four rows (1, 6b, 8c, 10c)
/// where the two differ.

#include <gtest/gtest.h>

#include "core/decider.hpp"

namespace dynp::core {
namespace {

constexpr std::size_t kFcfs = 0, kSjf = 1, kLjf = 2;

/// One row of Table 1.
struct Table1Row {
  const char* label;
  double fcfs, sjf, ljf;       // policy values (lower = better)
  std::size_t old_policy;
  std::size_t simple_expected;
  std::size_t correct_expected;
};

// Value levels: L(ow)=1, M(id)=2, H(igh)=3.
constexpr double L = 1, M = 2, H = 3;

const Table1Row kTable1[] = {
    // case 1: FCFS = SJF = LJF -> simple: FCFS; correct: old policy.
    {"case1_oldFCFS", M, M, M, kFcfs, kFcfs, kFcfs},
    {"case1_oldSJF", M, M, M, kSjf, kFcfs, kSjf},
    {"case1_oldLJF", M, M, M, kLjf, kFcfs, kLjf},
    // case 2: SJF < FCFS, SJF < LJF -> SJF.
    {"case2", M, L, H, kFcfs, kSjf, kSjf},
    // case 3: FCFS < SJF, FCFS < LJF -> FCFS.
    {"case3", L, M, H, kLjf, kFcfs, kFcfs},
    // case 4: LJF strict minimum, all FCFS/SJF relations.
    {"case4a_FCFSltSJF", M, H, L, kFcfs, kLjf, kLjf},
    {"case4b_FCFSeqSJF", M, M, L, kSjf, kLjf, kLjf},
    {"case4c_FCFSgtSJF", H, M, L, kFcfs, kLjf, kLjf},
    // case 5: FCFS = SJF, LJF < both -> LJF (same pattern as 4b, listed
    // separately in the paper).
    {"case5", M, M, L, kFcfs, kLjf, kLjf},
    // case 6: FCFS = SJF < LJF.
    {"case6a_oldFCFS", L, L, H, kFcfs, kFcfs, kFcfs},
    {"case6b_oldSJF", L, L, H, kSjf, kFcfs, kSjf},   // simple is WRONG here
    {"case6c_oldLJF", L, L, H, kLjf, kFcfs, kFcfs},
    // case 7: FCFS = LJF, SJF < both -> SJF.
    {"case7", M, L, M, kLjf, kSjf, kSjf},
    // case 8: FCFS = LJF < SJF.
    {"case8a_oldFCFS", L, H, L, kFcfs, kFcfs, kFcfs},
    {"case8b_oldSJF", L, H, L, kSjf, kFcfs, kFcfs},
    {"case8c_oldLJF", L, H, L, kLjf, kFcfs, kLjf},   // simple is WRONG here
    // case 9: SJF = LJF, FCFS < both -> FCFS.
    {"case9", L, M, M, kSjf, kFcfs, kFcfs},
    // case 10: SJF = LJF < FCFS.
    {"case10a_oldFCFS", H, L, L, kFcfs, kSjf, kSjf},
    {"case10b_oldSJF", H, L, L, kSjf, kSjf, kSjf},
    {"case10c_oldLJF", H, L, L, kLjf, kSjf, kLjf},   // simple is WRONG here
};

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, SimpleDeciderColumn) {
  const Table1Row& row = GetParam();
  const SimpleDecider d;
  EXPECT_EQ(d.decide({{row.fcfs, row.sjf, row.ljf}, row.old_policy}),
            row.simple_expected);
}

TEST_P(Table1, CorrectDecisionColumn) {
  const Table1Row& row = GetParam();
  const AdvancedDecider d;
  EXPECT_EQ(d.decide({{row.fcfs, row.sjf, row.ljf}, row.old_policy}),
            row.correct_expected);
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1, ::testing::ValuesIn(kTable1),
                         [](const ::testing::TestParamInfo<Table1Row>& info) {
                           return info.param.label;
                         });

TEST(Table1Summary, ExactlyFourWrongSimpleDecisions) {
  // The paper: "In four cases (1, 6b, 8c, and 10c) a wrong decision is made
  // by the simple decider." Case 1 contributes two wrong rows (old = SJF and
  // old = LJF), so 4 wrong *cases* but 4+1 wrong rows in our expansion?
  // No: case 1 is one table case; counting rows where the columns differ:
  int wrong_rows = 0;
  for (const Table1Row& row : kTable1) {
    if (row.simple_expected != row.correct_expected) ++wrong_rows;
  }
  // case1_oldSJF, case1_oldLJF (both case 1), 6b, 8c, 10c.
  EXPECT_EQ(wrong_rows, 5);
}

}  // namespace
}  // namespace dynp::core
