#include "core/observer.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace dynp::core {
namespace {

using policies::PolicyKind;
using workload::Job;
using workload::JobSet;
using workload::Machine;

[[nodiscard]] Job make_job(Time submit, std::uint32_t width, Time est,
                           Time act) {
  Job j;
  j.submit = submit;
  j.width = width;
  j.estimated_runtime = est;
  j.actual_runtime = act;
  return j;
}

/// Counts and cross-checks every callback.
class CountingObserver final : public SimulationObserver {
 public:
  void on_job_submitted(Time now, const workload::Job& job) override {
    ++submitted;
    EXPECT_DOUBLE_EQ(now, job.submit);
    last_time = now;
  }
  void on_job_started(Time now, const workload::Job& job) override {
    ++started;
    EXPECT_GE(now, job.submit);
    last_time = now;
  }
  void on_job_finished(Time now, const workload::Job& job,
                       const metrics::JobOutcome& outcome) override {
    ++finished;
    EXPECT_DOUBLE_EQ(now, outcome.end);
    EXPECT_EQ(outcome.id, job.id);
    last_time = now;
  }
  void on_decision(Time /*now*/, const DecisionInput& input,
                   std::size_t chosen) override {
    ++decisions;
    EXPECT_LT(chosen, input.values.size());
  }

  int submitted = 0, started = 0, finished = 0, decisions = 0;
  Time last_time = 0;
};

[[nodiscard]] JobSet small_set() {
  return JobSet(Machine{"m", 2},
                {make_job(0, 1, 100, 60), make_job(5, 2, 80, 80),
                 make_job(9, 1, 30, 10)});
}

TEST(Observer, StaticRunFiresJobCallbacks) {
  CountingObserver obs;
  SimulationConfig config = static_config(PolicyKind::kFcfs);
  config.observer = &obs;
  const auto r = simulate(small_set(), config);
  EXPECT_EQ(obs.submitted, 3);
  EXPECT_EQ(obs.started, 3);
  EXPECT_EQ(obs.finished, 3);
  EXPECT_EQ(obs.decisions, 0);  // no dynP decisions in static mode
  EXPECT_DOUBLE_EQ(obs.last_time, r.summary.makespan);
}

TEST(Observer, DynPRunFiresDecisionCallbacks) {
  CountingObserver obs;
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.observer = &obs;
  const auto r = simulate(small_set(), config);
  EXPECT_EQ(static_cast<std::uint64_t>(obs.decisions), r.decisions);
  EXPECT_GT(obs.decisions, 0);
}

TEST(Observer, FiresForAllSemantics) {
  for (const PlannerSemantics semantics :
       {PlannerSemantics::kReplan, PlannerSemantics::kGuarantee,
        PlannerSemantics::kQueueingEasy}) {
    CountingObserver obs;
    SimulationConfig config = static_config(PolicyKind::kSjf);
    config.semantics = semantics;
    config.observer = &obs;
    (void)simulate(small_set(), config);
    EXPECT_EQ(obs.submitted, 3) << static_cast<int>(semantics);
    EXPECT_EQ(obs.started, 3) << static_cast<int>(semantics);
    EXPECT_EQ(obs.finished, 3) << static_cast<int>(semantics);
  }
}

TEST(Observer, NullObserverIsFine) {
  SimulationConfig config = static_config(PolicyKind::kFcfs);
  config.observer = nullptr;
  EXPECT_NO_THROW((void)simulate(small_set(), config));
}

TEST(Observer, DefaultImplementationsDoNothing) {
  SimulationObserver base;
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.observer = &base;
  EXPECT_NO_THROW((void)simulate(small_set(), config));
}

}  // namespace
}  // namespace dynp::core
