/// Behavioural tests for the three RMS semantics (replan, guarantee,
/// queueing/EASY) and for the dynP bookkeeping that depends on them.

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace dynp::core {
namespace {

using policies::PolicyKind;
using workload::Job;
using workload::JobSet;
using workload::Machine;

[[nodiscard]] Job make_job(Time submit, std::uint32_t width, Time est,
                           Time act) {
  Job j;
  j.submit = submit;
  j.width = width;
  j.estimated_runtime = est;
  j.actual_runtime = act;
  return j;
}

[[nodiscard]] SimulationConfig with_semantics(SimulationConfig config,
                                              PlannerSemantics semantics) {
  config.semantics = semantics;
  return config;
}

// --------------------------- guarantee semantics ---------------------------

TEST(GuaranteeSemantics, NoJobIsDelayedPastItsGuarantee) {
  // Under SJF-replan the long job 1 is starved by the stream of short jobs;
  // under guarantees it keeps the start it was promised at submission.
  std::vector<Job> jobs = {make_job(0, 1, 100, 100),   // 0: blocker
                           make_job(1, 1, 1000, 1000)};  // 1: long job
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(make_job(2 + i * 50, 1, 60, 60));  // stream of shorts
  }
  const JobSet set(Machine{"m", 1}, std::move(jobs));

  const auto guarantee = simulate(
      set, with_semantics(static_config(PolicyKind::kSjf),
                          PlannerSemantics::kGuarantee));
  const auto replan = simulate(
      set, with_semantics(static_config(PolicyKind::kSjf),
                          PlannerSemantics::kReplan));
  // Job 1's guarantee was set when only the blocker was ahead: start <= 100
  // plus whatever was already promised to earlier-arriving shorts.
  EXPECT_LE(guarantee.outcomes[1].start, 200.0);
  // Replan-SJF pushes it behind every short job.
  EXPECT_GT(replan.outcomes[1].start, guarantee.outcomes[1].start);
}

TEST(GuaranteeSemantics, CompressionHarvestsEarlyFinishes) {
  // Blocker estimated 1000 but actually 100: the queued job must be pulled
  // forward to t=100 by compression.
  const JobSet set(Machine{"m", 2},
                   {make_job(0, 2, 1000, 100), make_job(1, 2, 50, 50)});
  const auto r = simulate(
      set, with_semantics(static_config(PolicyKind::kFcfs),
                          PlannerSemantics::kGuarantee));
  EXPECT_DOUBLE_EQ(r.outcomes[1].start, 100.0);
}

TEST(GuaranteeSemantics, CompressionOrderFollowsPolicy) {
  // Blocker (width 2, est 1000, act 100) hides two 1-wide queued jobs that
  // both fit after the early finish, but only one at a time two cannot...
  // Both are 2-wide so only one can run at once; compression order (= the
  // policy) decides which one gets the freed capacity first.
  const JobSet set(Machine{"m", 2},
                   {make_job(0, 2, 1000, 100),
                    make_job(1, 2, 300, 300),    // longer
                    make_job(2, 2, 100, 100)});  // shorter
  const auto sjf = simulate(
      set, with_semantics(static_config(PolicyKind::kSjf),
                          PlannerSemantics::kGuarantee));
  EXPECT_DOUBLE_EQ(sjf.outcomes[2].start, 100.0);  // shorter first
  EXPECT_DOUBLE_EQ(sjf.outcomes[1].start, 200.0);
  const auto ljf = simulate(
      set, with_semantics(static_config(PolicyKind::kLjf),
                          PlannerSemantics::kGuarantee));
  EXPECT_DOUBLE_EQ(ljf.outcomes[1].start, 100.0);  // longer first
  EXPECT_DOUBLE_EQ(ljf.outcomes[2].start, 400.0);
}

TEST(GuaranteeSemantics, InsertionBackfillsWithoutDelayingReservations) {
  // 3 of 4 nodes busy until 100; a wide job reserves [100, 300); a narrow
  // short job submitted later fits in the hole before 100.
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 3, 100, 100), make_job(1, 4, 200, 200),
                    make_job(2, 1, 50, 50)});
  const auto r = simulate(
      set, with_semantics(static_config(PolicyKind::kFcfs),
                          PlannerSemantics::kGuarantee));
  EXPECT_DOUBLE_EQ(r.outcomes[2].start, 2.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start, 100.0);
}

// --------------------------- queueing / EASY -------------------------------

TEST(EasySemantics, HeadStartsWhenItFits) {
  const JobSet set(Machine{"m", 4}, {make_job(0, 4, 100, 100)});
  const auto r = simulate(
      set, with_semantics(static_config(PolicyKind::kFcfs),
                          PlannerSemantics::kQueueingEasy));
  EXPECT_DOUBLE_EQ(r.outcomes[0].start, 0.0);
}

TEST(EasySemantics, BackfillsShortJobBeforeShadow) {
  // Head (job 1, width 4) blocked until t=100; job 2 (1 wide, est 50) ends
  // before the shadow time and may start immediately.
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 3, 100, 100), make_job(1, 4, 200, 200),
                    make_job(2, 1, 50, 50)});
  const auto r = simulate(
      set, with_semantics(static_config(PolicyKind::kFcfs),
                          PlannerSemantics::kQueueingEasy));
  EXPECT_DOUBLE_EQ(r.outcomes[2].start, 2.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start, 100.0);  // head not delayed
}

TEST(EasySemantics, RefusesBackfillThatWouldDelayHead) {
  // Job 2 is narrow but too long to end before the shadow and too wide for
  // the extra nodes at the shadow (head takes the whole machine).
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 3, 100, 100), make_job(1, 4, 200, 200),
                    make_job(2, 1, 500, 500)});
  const auto r = simulate(
      set, with_semantics(static_config(PolicyKind::kFcfs),
                          PlannerSemantics::kQueueingEasy));
  EXPECT_DOUBLE_EQ(r.outcomes[1].start, 100.0);   // head exactly on time
  EXPECT_GE(r.outcomes[2].start, 300.0);          // backfill rejected
}

TEST(EasySemantics, ExtraNodesAllowLongNarrowBackfill) {
  // Job 0 uses 3 of 4 nodes until t=100; the head (2-wide) is blocked with
  // shadow time 100 and 2 extra nodes there, so the long 1-wide job may
  // start in the hole immediately even though it runs far past the shadow.
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 3, 100, 100), make_job(1, 2, 200, 200),
                    make_job(2, 1, 500, 500)});
  const auto r = simulate(
      set, with_semantics(static_config(PolicyKind::kFcfs),
                          PlannerSemantics::kQueueingEasy));
  EXPECT_DOUBLE_EQ(r.outcomes[2].start, 2.0);    // took an extra node
  EXPECT_DOUBLE_EQ(r.outcomes[1].start, 100.0);  // head exactly on time
}

TEST(EasySemantics, ExtraNodeBudgetIsConsumed) {
  // The head (3-wide) leaves one extra node at its shadow: the first long
  // 1-wide candidate takes it; the second must wait for the head to finish.
  const JobSet set(Machine{"m", 4},
                   {make_job(0, 3, 100, 100),
                    make_job(1, 3, 200, 200),    // head: extra = 1 at shadow
                    make_job(2, 1, 500, 500),    // candidate A
                    make_job(3, 1, 500, 500)});  // candidate B
  const auto r = simulate(
      set, with_semantics(static_config(PolicyKind::kFcfs),
                          PlannerSemantics::kQueueingEasy));
  EXPECT_DOUBLE_EQ(r.outcomes[2].start, 2.0);    // A takes the extra node
  EXPECT_DOUBLE_EQ(r.outcomes[1].start, 100.0);  // head on time
  EXPECT_GE(r.outcomes[3].start, 300.0);         // B waits for the head
}

TEST(EasySemantics, DynPModeIsRejected) {
  const JobSet set(Machine{"m", 2}, {make_job(0, 1, 10, 10)});
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.semantics = PlannerSemantics::kQueueingEasy;
  EXPECT_DEATH((void)simulate(set, config), "precondition");
}

// --------------------------- cross-semantics -------------------------------

TEST(Semantics, AllThreeCompleteEveryJob) {
  std::vector<Job> jobs;
  for (int i = 0; i < 60; ++i) {
    const Time est = 60.0 * (1 + i % 9);
    jobs.push_back(make_job(i * 17, 1 + static_cast<std::uint32_t>(i % 5),
                            est, std::max(1.0, est * 0.5)));
  }
  const JobSet set(Machine{"m", 6}, std::move(jobs));
  for (const PlannerSemantics semantics :
       {PlannerSemantics::kReplan, PlannerSemantics::kGuarantee,
        PlannerSemantics::kQueueingEasy}) {
    const auto r = simulate(
        set, with_semantics(static_config(PolicyKind::kFcfs), semantics));
    ASSERT_EQ(r.outcomes.size(), set.size());
    for (const auto& o : r.outcomes) {
      EXPECT_GE(o.start, o.submit);
      EXPECT_DOUBLE_EQ(o.end, o.start + o.actual_runtime);
    }
  }
}

TEST(Semantics, LabelsIdentifyTheVariant) {
  auto fcfs = static_config(PolicyKind::kFcfs);
  EXPECT_EQ(fcfs.label(), "FCFS");
  fcfs.semantics = PlannerSemantics::kGuarantee;
  EXPECT_EQ(fcfs.label(), "FCFS[guarantee]");
  fcfs.semantics = PlannerSemantics::kQueueingEasy;
  EXPECT_EQ(fcfs.label(), "FCFS[EASY]");
}

// --------------------------- policy timeline -------------------------------

TEST(PolicyTimeline, RecordsSwitches) {
  std::vector<Job> jobs = {make_job(0, 1, 1000, 1000)};
  for (int i = 0; i < 10; ++i) {
    const Time len = 100.0 - 9.0 * i;
    jobs.push_back(make_job(1 + i, 1, len, len));
  }
  const JobSet set(Machine{"m", 1}, std::move(jobs));
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.semantics = PlannerSemantics::kReplan;
  const auto r = simulate(set, config);
  ASSERT_EQ(r.policy_timeline.size(), r.switches);
  Time prev = 0;
  for (const auto& sw : r.policy_timeline) {
    EXPECT_GE(sw.when, prev);
    EXPECT_NE(sw.from, sw.to);
    EXPECT_LT(sw.to, config.pool.size());
    prev = sw.when;
  }
}

TEST(PolicyTimeline, EmptyWithoutSwitches) {
  const JobSet set(Machine{"m", 4}, {make_job(0, 1, 10, 10)});
  SimulationConfig config = dynp_config(make_advanced_decider());
  const auto r = simulate(set, config);
  EXPECT_TRUE(r.policy_timeline.empty());
  EXPECT_EQ(r.switches, 0u);
}

}  // namespace
}  // namespace dynp::core
