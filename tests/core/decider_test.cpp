#include "core/decider.hpp"

#include <gtest/gtest.h>

namespace dynp::core {
namespace {

constexpr std::size_t kFcfs = 0, kSjf = 1, kLjf = 2;

[[nodiscard]] DecisionInput input(std::vector<double> values,
                                  std::size_t old_index) {
  return DecisionInput{std::move(values), old_index};
}

TEST(ValueCompare, ExactAndEpsilonEquality) {
  EXPECT_TRUE(value_equal(1.0, 1.0));
  EXPECT_TRUE(value_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(value_equal(1.0, 1.001));
  EXPECT_TRUE(value_equal(1e6, 1e6 * (1 + 1e-12)));
  EXPECT_FALSE(value_less(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(value_less(1.0, 2.0));
  EXPECT_FALSE(value_less(2.0, 1.0));
}

TEST(SimpleDecider, PicksStrictMinimum) {
  const SimpleDecider d;
  EXPECT_EQ(d.decide(input({5, 3, 8}, kFcfs)), kSjf);
  EXPECT_EQ(d.decide(input({2, 3, 8}, kLjf)), kFcfs);
  EXPECT_EQ(d.decide(input({5, 3, 1}, kFcfs)), kLjf);
}

TEST(SimpleDecider, AllEqualFavorsFcfs) {
  const SimpleDecider d;
  // Table 1 case 1: wrong decision — FCFS regardless of the old policy.
  EXPECT_EQ(d.decide(input({4, 4, 4}, kLjf)), kFcfs);
  EXPECT_EQ(d.decide(input({4, 4, 4}, kSjf)), kFcfs);
}

TEST(SimpleDecider, IgnoresOldPolicy) {
  const SimpleDecider d;
  for (std::size_t old_index : {kFcfs, kSjf, kLjf}) {
    EXPECT_EQ(d.decide(input({3, 3, 9}, old_index)), kFcfs);
  }
}

TEST(SimpleDecider, SingleCandidate) {
  const SimpleDecider d;
  EXPECT_EQ(d.decide(input({7}, 0)), 0u);
}

TEST(AdvancedDecider, KeepsOldPolicyOnTies) {
  const AdvancedDecider d;
  EXPECT_EQ(d.decide(input({4, 4, 4}, kSjf)), kSjf);
  EXPECT_EQ(d.decide(input({4, 4, 4}, kLjf)), kLjf);
  EXPECT_EQ(d.decide(input({3, 3, 9}, kSjf)), kSjf);  // case 6b fixed
}

TEST(AdvancedDecider, SwitchesToStrictWinner) {
  const AdvancedDecider d;
  EXPECT_EQ(d.decide(input({5, 2, 8}, kFcfs)), kSjf);
  EXPECT_EQ(d.decide(input({5, 8, 2}, kSjf)), kLjf);
}

TEST(AdvancedDecider, TieWithoutOldPolicyResolvesInPoolOrder) {
  const AdvancedDecider d;
  // FCFS = SJF < LJF, old = LJF: pick FCFS (case 6c).
  EXPECT_EQ(d.decide(input({3, 3, 9}, kLjf)), kFcfs);
  // SJF = LJF < FCFS, old = FCFS: pick SJF (case 10a).
  EXPECT_EQ(d.decide(input({9, 3, 3}, kFcfs)), kSjf);
}

TEST(PreferredDecider, StaysWithPreferredOnTie) {
  const PreferredDecider d(kSjf, "SJF-preferred");
  // Equal performance: the preferred policy wins even from elsewhere.
  EXPECT_EQ(d.decide(input({4, 4, 4}, kLjf)), kSjf);
  EXPECT_EQ(d.decide(input({4, 4, 9}, kFcfs)), kSjf);
}

TEST(PreferredDecider, SwitchesOnlyWhenStrictlyBeaten) {
  const PreferredDecider d(kSjf, "SJF-preferred");
  EXPECT_EQ(d.decide(input({3, 4, 9}, kSjf)), kFcfs);   // FCFS clearly better
  EXPECT_EQ(d.decide(input({4, 4, 3}, kSjf)), kLjf);    // LJF clearly better
  EXPECT_EQ(d.decide(input({4, 4, 4.0000000001}, kSjf)), kSjf);
}

TEST(PreferredDecider, SwitchesBackOnEqualPerformance) {
  const PreferredDecider d(kSjf, "SJF-preferred");
  // Currently on FCFS; SJF only matches it — switch back (paper §3).
  EXPECT_EQ(d.decide(input({5, 5, 9}, kFcfs)), kSjf);
}

TEST(PreferredDecider, FairAmongOthersWhenPreferredLoses) {
  const PreferredDecider d(kSjf, "SJF-preferred");
  // SJF worst; FCFS = LJF tie: keep the old non-preferred policy.
  EXPECT_EQ(d.decide(input({3, 9, 3}, kLjf)), kLjf);
  EXPECT_EQ(d.decide(input({3, 9, 3}, kFcfs)), kFcfs);
  // Old policy is the (losing) preferred one: pool order picks FCFS.
  EXPECT_EQ(d.decide(input({3, 9, 3}, kSjf)), kFcfs);
}

TEST(PreferredDecider, ThresholdToleratesSmallLosses) {
  const PreferredDecider d(kSjf, "SJF-preferred(5%)", 5.0);
  // SJF is 4% worse than the best: within threshold, stay.
  EXPECT_EQ(d.decide(input({100, 104, 120}, kSjf)), kSjf);
  // 6% worse: beyond threshold, switch.
  EXPECT_EQ(d.decide(input({100, 106, 120}, kSjf)), kFcfs);
}

TEST(PreferredDecider, ZeroThresholdIsStrictMechanism) {
  const PreferredDecider d(kSjf, "SJF-preferred", 0.0);
  EXPECT_EQ(d.decide(input({100, 100.0001, 120}, kSjf)), kFcfs);
  EXPECT_EQ(d.decide(input({100, 100, 120}, kSjf)), kSjf);
}

TEST(PreferredDecider, AccessorsExposeConfiguration) {
  const PreferredDecider d(kLjf, "LJF-preferred", 2.5);
  EXPECT_EQ(d.preferred_index(), kLjf);
  EXPECT_DOUBLE_EQ(d.threshold_pct(), 2.5);
  EXPECT_EQ(d.name(), "LJF-preferred");
}

TEST(Factories, ProduceWorkingDeciders) {
  const auto simple = make_simple_decider();
  const auto advanced = make_advanced_decider();
  const auto preferred = make_preferred_decider(kSjf, "SJF-preferred");
  EXPECT_EQ(simple->decide(input({4, 4, 4}, kLjf)), kFcfs);
  EXPECT_EQ(advanced->decide(input({4, 4, 4}, kLjf)), kLjf);
  EXPECT_EQ(preferred->decide(input({4, 4, 4}, kLjf)), kSjf);
  EXPECT_EQ(simple->name(), "simple");
  EXPECT_EQ(advanced->name(), "advanced");
  EXPECT_EQ(preferred->name(), "SJF-preferred");
}

TEST(ThresholdDecider, ZeroThresholdMatchesAdvanced) {
  const ThresholdDecider t(0.0);
  const AdvancedDecider a;
  const std::vector<std::vector<double>> cases = {
      {4, 4, 4}, {3, 4, 5}, {5, 3, 3}, {3, 3, 5}, {5, 5, 3}};
  for (const auto& values : cases) {
    for (std::size_t old_index : {kFcfs, kSjf, kLjf}) {
      EXPECT_EQ(t.decide(input(values, old_index)),
                a.decide(input(values, old_index)))
          << values[0] << "," << values[1] << "," << values[2]
          << " old=" << old_index;
    }
  }
}

TEST(ThresholdDecider, SticksWithActivePolicyWithinThreshold) {
  const ThresholdDecider d(5.0);
  // Old policy is 4% worse than the best: stay.
  EXPECT_EQ(d.decide(input({100, 104, 120}, kSjf)), kSjf);
  // 6% worse: switch to the best.
  EXPECT_EQ(d.decide(input({100, 106, 120}, kSjf)), kFcfs);
}

TEST(ThresholdDecider, UnlikePreferredItFollowsTheActivePolicy) {
  const ThresholdDecider d(10.0);
  // Whatever is active gets the stickiness, not one fixed policy.
  EXPECT_EQ(d.decide(input({105, 100, 120}, kFcfs)), kFcfs);
  EXPECT_EQ(d.decide(input({100, 105, 120}, kSjf)), kSjf);
  EXPECT_EQ(d.decide(input({100, 120, 105}, kLjf)), kLjf);
}

TEST(ThresholdDecider, NameEncodesThreshold) {
  EXPECT_EQ(ThresholdDecider(2.5).name(), "threshold(2.5%)");
  EXPECT_EQ(make_threshold_decider(10)->name(), "threshold(10.0%)");
}

TEST(Deciders, TwoPolicyPool) {
  // dynP pools are not limited to three policies.
  const AdvancedDecider adv;
  EXPECT_EQ(adv.decide(input({5, 5}, 1)), 1u);
  EXPECT_EQ(adv.decide(input({5, 4}, 0)), 1u);
  const SimpleDecider simple;
  EXPECT_EQ(simple.decide(input({5, 5}, 1)), 0u);
  const PreferredDecider pref(1, "p");
  EXPECT_EQ(pref.decide(input({5, 5}, 0)), 1u);
}

TEST(Deciders, FivePolicyPool) {
  const AdvancedDecider adv;
  EXPECT_EQ(adv.decide(input({9, 8, 7, 7, 9}, 4)), 2u);
  EXPECT_EQ(adv.decide(input({9, 8, 7, 7, 9}, 3)), 3u);
  const PreferredDecider pref(4, "p4");
  EXPECT_EQ(pref.decide(input({9, 8, 7, 7, 7}, 0)), 4u);
  EXPECT_EQ(pref.decide(input({9, 8, 7, 7, 8}, 0)), 2u);
}

}  // namespace
}  // namespace dynp::core
