/// Tests for the schedule invariant auditor (core/audit.hpp). Two layers:
///
///  * unit: fabricated scheduler states — consistent ones must pass, and
///    each class of corruption (stale queue, infeasible packing, start
///    before submit, tampered planned start, wrong decider choice, bad
///    reservation, oversubscribed EASY start) must trip the matching check.
///    `ScopedContractThrower` turns the audit abort into a catchable
///    `ContractViolationError` carrying the structured breadcrumb;
///  * integration: a full audited simulation must report zero violations
///    and reproduce the unaudited run bit for bit.

#include "core/audit.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "rms/planner.hpp"
#include "rms/profile.hpp"
#include "util/assert.hpp"
#include "workload/models.hpp"

namespace dynp::core {
namespace {

using policies::PolicyKind;
using policies::SortedQueue;
using rms::PlannedJob;
using rms::RunningJob;
using rms::Schedule;

constexpr std::uint32_t kCapacity = 8;

/// Three width-2 jobs submitted at t=0 (ids 0..2), FCFS order = id order.
workload::JobTable make_jobs(std::uint32_t width = 2, Time submit2 = 0) {
  return workload::JobTable(std::vector<workload::Job>{
      {0, 0, width, 100, 100},
      {1, 0, width, 100, 100},
      {2, submit2, width, 100, 100},
  });
}

SortedQueue make_queue(PolicyKind kind, const workload::JobTable& jobs,
                       const std::vector<JobId>& members) {
  SortedQueue queue(kind, jobs);
  for (const JobId id : members) queue.insert(id);
  return queue;
}

AuditEvent plain_event(Time now = 0) { return AuditEvent{1, now, false, 0}; }

TEST(ScheduleAuditor, ConsistentReplanStatePasses) {
  const workload::JobTable jobs = make_jobs();
  ScheduleAuditor auditor(kCapacity, jobs, {PolicyKind::kFcfs}, nullptr);
  const std::vector<JobId> waiting = {0, 1, 2};
  const SortedQueue queue = make_queue(PolicyKind::kFcfs, jobs, waiting);
  const Schedule planned =
      rms::Planner::plan(kCapacity, 0, {}, queue.ids(), jobs);
  const rms::ResourceProfile base(kCapacity);

  ScopedContractThrower thrower;
  EXPECT_NO_THROW(auditor.audit_replan_pass(plain_event(), {}, waiting,
                                            {queue}, base, {&planned}));
  EXPECT_EQ(auditor.events(), 1u);
  EXPECT_GT(auditor.checks(), 0u);
}

TEST(ScheduleAuditor, DetectsStaleIncrementalQueue) {
  const workload::JobTable jobs = make_jobs();
  ScheduleAuditor auditor(kCapacity, jobs, {PolicyKind::kFcfs}, nullptr);
  // The queue lost job 1: a fresh sort of the waiting set disagrees.
  const std::vector<JobId> waiting = {0, 1, 2};
  const SortedQueue stale = make_queue(PolicyKind::kFcfs, jobs, {0, 2});
  const Schedule planned;
  const rms::ResourceProfile base(kCapacity);

  ScopedContractThrower thrower;
  try {
    auditor.audit_replan_pass(plain_event(), {}, waiting, {stale}, base,
                              {&planned});
    FAIL() << "stale queue not detected";
  } catch (const ContractViolationError& e) {
    EXPECT_NE(std::string(e.violation().expr).find("fresh policy sort"),
              std::string::npos);
    EXPECT_NE(std::string(e.violation().detail).find("policy=FCFS"),
              std::string::npos);
  }
}

TEST(ScheduleAuditor, DetectsInfeasiblePacking) {
  // Three width-4 jobs all planned at t=0 on an 8-node machine: 12 > 8.
  const workload::JobTable jobs = make_jobs(/*width=*/4);
  ScheduleAuditor auditor(kCapacity, jobs, {PolicyKind::kFcfs}, nullptr);
  const std::vector<JobId> waiting = {0, 1, 2};
  const SortedQueue queue = make_queue(PolicyKind::kFcfs, jobs, waiting);
  const Schedule overpacked(
      std::vector<PlannedJob>{{0, 0}, {1, 0}, {2, 0}});
  const rms::ResourceProfile base(kCapacity);

  ScopedContractThrower thrower;
  try {
    auditor.audit_replan_pass(plain_event(), {}, waiting, {queue}, base,
                              {&overpacked});
    FAIL() << "oversubscription not detected";
  } catch (const ContractViolationError& e) {
    EXPECT_NE(std::string(e.violation().expr).find("exceed machine capacity"),
              std::string::npos);
    EXPECT_NE(std::string(e.violation().detail).find("event=1"),
              std::string::npos);
  }
}

TEST(ScheduleAuditor, DetectsStartBeforeSubmission) {
  // Job 2 is submitted at t=50 but the schedule starts it at t=0.
  const workload::JobTable jobs = make_jobs(/*width=*/2,
                                                    /*submit2=*/50);
  ScheduleAuditor auditor(kCapacity, jobs, {PolicyKind::kFcfs}, nullptr);
  const std::vector<JobId> waiting = {0, 1, 2};
  const SortedQueue queue = make_queue(PolicyKind::kFcfs, jobs, waiting);
  const Schedule premature(
      std::vector<PlannedJob>{{0, 0}, {1, 0}, {2, 0}});
  const rms::ResourceProfile base(kCapacity);

  ScopedContractThrower thrower;
  try {
    auditor.audit_replan_pass(plain_event(), {}, waiting, {queue}, base,
                              {&premature});
    FAIL() << "start before submit not detected";
  } catch (const ContractViolationError& e) {
    EXPECT_NE(std::string(e.violation().expr).find("after submission"),
              std::string::npos);
    EXPECT_NE(std::string(e.violation().detail).find("job=2"),
              std::string::npos);
  }
}

TEST(ScheduleAuditor, DetectsDivergenceFromFreshPlan) {
  // A delayed-but-feasible start: every local check holds, only the
  // bit-identical comparison against a from-scratch plan catches it. This
  // is the check that guards the incremental replanner.
  const workload::JobTable jobs(
      std::vector<workload::Job>{{0, 0, 2, 100, 100}});
  ScheduleAuditor auditor(kCapacity, jobs, {PolicyKind::kFcfs}, nullptr);
  const std::vector<JobId> waiting = {0};
  const SortedQueue queue = make_queue(PolicyKind::kFcfs, jobs, waiting);
  const Schedule delayed(std::vector<PlannedJob>{{0, 64}});
  const rms::ResourceProfile base(kCapacity);

  ScopedContractThrower thrower;
  try {
    auditor.audit_replan_pass(plain_event(), {}, waiting, {queue}, base,
                              {&delayed});
    FAIL() << "divergence from fresh plan not detected";
  } catch (const ContractViolationError& e) {
    EXPECT_NE(std::string(e.violation().expr).find("bit-identical"),
              std::string::npos);
  }
}

class DeciderAuditFixture : public ::testing::Test {
 protected:
  DeciderAuditFixture()
      : jobs_(make_jobs()),
        decider_(make_advanced_decider()),
        auditor_(kCapacity, jobs_, policies::paper_pool(), decider_.get()),
        queues_{SortedQueue(PolicyKind::kFcfs, jobs_),
                SortedQueue(PolicyKind::kSjf, jobs_),
                SortedQueue(PolicyKind::kLjf, jobs_)},
        base_(kCapacity) {}

  /// A tuned pass with empty queues: only the decision is under test.
  void audit_choice(std::size_t chosen, const DecisionInput& input) {
    const AuditEvent ev{1, 0, /*tuned=*/true, chosen, &input};
    auditor_.audit_replan_pass(ev, {}, {}, queues_, base_,
                               {&empty_, &empty_, &empty_});
  }

  workload::JobTable jobs_;
  std::shared_ptr<const Decider> decider_;
  ScheduleAuditor auditor_;
  std::vector<SortedQueue> queues_;
  rms::ResourceProfile base_;
  Schedule empty_;
};

TEST_F(DeciderAuditFixture, AcceptsArgminConsistentChoice) {
  ScopedContractThrower thrower;
  // Advanced decider, old policy beaten: must pick the minimum (index 1).
  EXPECT_NO_THROW(audit_choice(1, DecisionInput{{2.0, 1.0, 1.5}, 0}));
  // Old policy ties the minimum: staying is the mandated choice.
  EXPECT_NO_THROW(audit_choice(2, DecisionInput{{5.0, 1.0, 1.0}, 2}));
}

TEST_F(DeciderAuditFixture, DetectsArgminInconsistentChoice) {
  ScopedContractThrower thrower;
  // Claiming slot 2 when the advanced rules mandate slot 1.
  try {
    audit_choice(2, DecisionInput{{2.0, 1.0, 1.5}, 0});
    FAIL() << "wrong decider choice not detected";
  } catch (const ContractViolationError& e) {
    EXPECT_NE(std::string(e.violation().expr).find("argmin rules"),
              std::string::npos);
  }
}

TEST(ScheduleAuditor, GuaranteePassAcceptsValidReservations) {
  const workload::JobTable jobs = make_jobs();
  ScheduleAuditor auditor(kCapacity, jobs, {PolicyKind::kFcfs}, nullptr);
  const std::vector<JobId> waiting = {1, 2};
  const SortedQueue queue = make_queue(PolicyKind::kFcfs, jobs, waiting);
  const std::vector<RunningJob> running = {{0, 2, 100}};
  const std::vector<Time> reserved = {0, 10, 20};

  ScopedContractThrower thrower;
  EXPECT_NO_THROW(auditor.audit_guarantee_pass(plain_event(/*now=*/5),
                                               running, waiting, {queue},
                                               rms::ResourceProfile(kCapacity),
                                               reserved));
  EXPECT_EQ(auditor.events(), 1u);
}

TEST(ScheduleAuditor, GuaranteePassDetectsReservationInThePast) {
  const workload::JobTable jobs = make_jobs();
  ScheduleAuditor auditor(kCapacity, jobs, {PolicyKind::kFcfs}, nullptr);
  const std::vector<JobId> waiting = {1, 2};
  const SortedQueue queue = make_queue(PolicyKind::kFcfs, jobs, waiting);
  const std::vector<Time> reserved = {0, 2, 20};  // job 1 reserved before now

  ScopedContractThrower thrower;
  try {
    auditor.audit_guarantee_pass(plain_event(/*now=*/5), {}, waiting, {queue},
                                 rms::ResourceProfile(kCapacity), reserved);
    FAIL() << "past reservation not detected";
  } catch (const ContractViolationError& e) {
    EXPECT_NE(std::string(e.violation().expr).find("not in the past"),
              std::string::npos);
    EXPECT_NE(std::string(e.violation().detail).find("job=1"),
              std::string::npos);
  }
}

TEST(ScheduleAuditor, QueueingPassDetectsStartOfNonWaitingJob) {
  const workload::JobTable jobs = make_jobs();
  ScheduleAuditor auditor(kCapacity, jobs, {PolicyKind::kFcfs}, nullptr);
  const std::vector<JobId> waiting = {0};
  const SortedQueue queue = make_queue(PolicyKind::kFcfs, jobs, waiting);

  ScopedContractThrower thrower;
  try {
    auditor.audit_queueing_pass(plain_event(), {}, waiting, {queue},
                                /*due=*/{1});
    FAIL() << "non-waiting start not detected";
  } catch (const ContractViolationError& e) {
    EXPECT_NE(std::string(e.violation().expr).find("was waiting"),
              std::string::npos);
  }
}

TEST(ScheduleAuditor, QueueingPassDetectsOversubscribedStart) {
  const workload::JobTable jobs = make_jobs(/*width=*/4);
  ScheduleAuditor auditor(kCapacity, jobs, {PolicyKind::kFcfs}, nullptr);
  const std::vector<JobId> waiting = {1};
  const SortedQueue queue = make_queue(PolicyKind::kFcfs, jobs, waiting);
  // 6 nodes running + a width-4 start = 10 > 8.
  const std::vector<RunningJob> running = {{0, 6, 100}};

  ScopedContractThrower thrower;
  try {
    auditor.audit_queueing_pass(plain_event(), running, waiting, {queue},
                                /*due=*/{1});
    FAIL() << "oversubscribed start not detected";
  } catch (const ContractViolationError& e) {
    EXPECT_NE(std::string(e.violation().expr).find("fit the free machine"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Integration: full audited runs.

void expect_same_run(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_DOUBLE_EQ(a.summary.sldwa, b.summary.sldwa);
  EXPECT_DOUBLE_EQ(a.summary.makespan, b.summary.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.switches, b.switches);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcomes[i].start, b.outcomes[i].start) << "job " << i;
    EXPECT_DOUBLE_EQ(a.outcomes[i].end, b.outcomes[i].end) << "job " << i;
  }
}

TEST(AuditedSimulation, ReplanRunIsCleanAndBitIdentical) {
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 400, 11)
          .with_shrinking_factor(0.8);
  SimulationConfig config = dynp_config(make_advanced_decider());

  const SimulationResult plain = simulate(set, config);
  EXPECT_EQ(plain.audit_events, 0u);
  EXPECT_EQ(plain.audit_checks, 0u);

  config.audit = true;
  const SimulationResult audited = simulate(set, config);
  EXPECT_GT(audited.audit_events, 0u);
  EXPECT_GT(audited.audit_checks, audited.audit_events);
  expect_same_run(plain, audited);
}

TEST(AuditedSimulation, GuaranteeRunIsCleanAndBitIdentical) {
  const workload::JobSet set =
      workload::generate(workload::ctc_model(), 300, 23);
  SimulationConfig config = dynp_config(make_advanced_decider());
  config.semantics = PlannerSemantics::kGuarantee;

  const SimulationResult plain = simulate(set, config);
  config.audit = true;
  const SimulationResult audited = simulate(set, config);
  EXPECT_GT(audited.audit_events, 0u);
  expect_same_run(plain, audited);
}

TEST(AuditedSimulation, EasyQueueingRunIsCleanAndBitIdentical) {
  const workload::JobSet set =
      workload::generate(workload::sdsc_model(), 300, 31);
  SimulationConfig config = static_config(policies::PolicyKind::kFcfs);
  config.semantics = PlannerSemantics::kQueueingEasy;

  const SimulationResult plain = simulate(set, config);
  config.audit = true;
  const SimulationResult audited = simulate(set, config);
  EXPECT_GT(audited.audit_events, 0u);
  expect_same_run(plain, audited);
}

TEST(AuditedSimulation, StaticReplanRunIsClean) {
  const workload::JobSet set =
      workload::generate(workload::kth_model(), 300, 7);
  SimulationConfig config = static_config(policies::PolicyKind::kSjf);
  config.audit = true;
  const SimulationResult audited = simulate(set, config);
  EXPECT_GT(audited.audit_events, 0u);
  EXPECT_GT(audited.audit_checks, 0u);
}

}  // namespace
}  // namespace dynp::core
