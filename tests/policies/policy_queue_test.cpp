/// Property test for the incrementally maintained SortedQueue: after any
/// sequence of insert / remove / remove_marked operations, `ids()` must
/// equal a fresh `policies::order` over the current members — the invariant
/// the self-tuning scheduler relies on when it swaps per-event re-sorts for
/// incremental maintenance.

#include "policies/policy.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/job.hpp"

namespace dynp::policies {
namespace {

/// Random jobs with deliberately small value ranges: ties in every sort key
/// are common, so the (submit, id) tie-breaking path is exercised as hard as
/// the primary comparisons.
[[nodiscard]] std::vector<workload::Job> random_jobs(std::size_t n,
                                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<workload::Job> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    workload::Job& j = jobs[i];
    j.id = static_cast<JobId>(i);
    j.submit = static_cast<Time>(rng.next_below(40));
    j.width = static_cast<std::uint32_t>(1 + rng.next_below(8));
    j.estimated_runtime = static_cast<Time>(60 * (1 + rng.next_below(6)));
    j.actual_runtime = j.estimated_runtime;
  }
  return jobs;
}

class SortedQueueProperty : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(SortedQueueProperty, MatchesFreshOrderUnderRandomOps) {
  const PolicyKind kind = GetParam();
  const std::vector<workload::Job> jobs =
      random_jobs(120, 9001 + static_cast<std::uint64_t>(kind));
  const workload::JobTable table(jobs);
  util::Xoshiro256 rng(17);

  SortedQueue queue(kind, table);
  std::vector<JobId> members;  // reference membership, insertion order
  std::vector<JobId> pool;     // ids not currently in the queue
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pool.push_back(static_cast<JobId>(i));
  }

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t dice = rng.next_below(10);
    if (!pool.empty() && (members.empty() || dice < 5)) {
      // Insert a random non-member; its reported position must be where it
      // actually landed.
      const auto k = static_cast<std::size_t>(rng.next_below(pool.size()));
      const JobId id = pool[k];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(k));
      const std::size_t pos = queue.insert(id);
      ASSERT_LT(pos, queue.size());
      EXPECT_EQ(queue.ids()[pos], id);
      members.push_back(id);
    } else if (!members.empty() && dice < 8) {
      const auto k = static_cast<std::size_t>(rng.next_below(members.size()));
      const JobId id = members[k];
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(k));
      queue.remove(id);
      pool.push_back(id);
    } else if (!members.empty()) {
      // Batch removal of a random subset — the started-jobs path.
      std::vector<char> mark(jobs.size(), 0);
      std::vector<JobId> kept;
      for (const JobId id : members) {
        if (rng.next_below(3) == 0) {
          mark[id] = 1;
          pool.push_back(id);
        } else {
          kept.push_back(id);
        }
      }
      queue.remove_marked(mark);
      members = kept;
    }
    ASSERT_EQ(queue.ids(), order(kind, members, table)) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SortedQueueProperty,
    ::testing::Values(PolicyKind::kFcfs, PolicyKind::kSjf, PolicyKind::kLjf,
                      PolicyKind::kSaf, PolicyKind::kWf),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      return std::string(name(info.param));
    });

}  // namespace
}  // namespace dynp::policies
