#include "policies/policy.hpp"

#include <gtest/gtest.h>

namespace dynp::policies {
namespace {

using workload::Job;
using workload::JobTable;

[[nodiscard]] Job make_job(JobId id, Time submit, std::uint32_t width,
                           Time est) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.width = width;
  j.estimated_runtime = est;
  j.actual_runtime = est;
  return j;
}

class PolicyOrdering : public ::testing::Test {
 protected:
  // id:      0    1    2    3
  // submit:  0   10   20   30
  // est:    50  200   50   10
  // width:   4    1    8    2
  std::vector<Job> jobs_ = {make_job(0, 0, 4, 50), make_job(1, 10, 1, 200),
                            make_job(2, 20, 8, 50), make_job(3, 30, 2, 10)};
  JobTable table_{jobs_};
  std::vector<JobId> all_ = {0, 1, 2, 3};
};

TEST_F(PolicyOrdering, FcfsBySubmitTime) {
  EXPECT_EQ(order(PolicyKind::kFcfs, {3, 1, 0, 2}, table_),
            (std::vector<JobId>{0, 1, 2, 3}));
}

TEST_F(PolicyOrdering, SjfByEstimateThenSubmit) {
  // est: 3(10) < 0(50) = 2(50) < 1(200); tie 0 vs 2 resolved by submit.
  EXPECT_EQ(order(PolicyKind::kSjf, all_, table_),
            (std::vector<JobId>{3, 0, 2, 1}));
}

TEST_F(PolicyOrdering, LjfByEstimateDescThenSubmit) {
  EXPECT_EQ(order(PolicyKind::kLjf, all_, table_),
            (std::vector<JobId>{1, 0, 2, 3}));
}

TEST_F(PolicyOrdering, SafBySmallestEstimatedArea) {
  // areas: 0:200, 1:200, 2:400, 3:20 -> 3, then 0 vs 1 tie by submit.
  EXPECT_EQ(order(PolicyKind::kSaf, all_, table_),
            (std::vector<JobId>{3, 0, 1, 2}));
}

TEST_F(PolicyOrdering, WfByWidthDesc) {
  EXPECT_EQ(order(PolicyKind::kWf, all_, table_),
            (std::vector<JobId>{2, 0, 3, 1}));
}

TEST_F(PolicyOrdering, EmptyQueue) {
  EXPECT_TRUE(order(PolicyKind::kSjf, {}, table_).empty());
}

TEST_F(PolicyOrdering, PrecedesIsStrictWeakOrdering) {
  for (const PolicyKind kind :
       {PolicyKind::kFcfs, PolicyKind::kSjf, PolicyKind::kLjf,
        PolicyKind::kSaf, PolicyKind::kWf}) {
    for (const Job& a : jobs_) {
      EXPECT_FALSE(precedes(kind, a, a)) << name(kind);  // irreflexive
      for (const Job& b : jobs_) {
        if (a.id == b.id) continue;
        // Totality via antisymmetry: exactly one direction holds (all keys
        // are distinct after (submit, id) tie-breaking).
        EXPECT_NE(precedes(kind, a, b), precedes(kind, b, a)) << name(kind);
      }
    }
  }
}

TEST(PolicyNames, RoundTrip) {
  for (const PolicyKind kind :
       {PolicyKind::kFcfs, PolicyKind::kSjf, PolicyKind::kLjf,
        PolicyKind::kSaf, PolicyKind::kWf}) {
    EXPECT_EQ(policy_by_name(name(kind)), kind);
  }
  EXPECT_EQ(policy_by_name("fcfs"), PolicyKind::kFcfs);
  EXPECT_THROW((void)policy_by_name("bogus"), std::invalid_argument);
}

TEST(PolicyPool, PaperPoolOrder) {
  const auto pool = paper_pool();
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool[0], PolicyKind::kFcfs);
  EXPECT_EQ(pool[1], PolicyKind::kSjf);
  EXPECT_EQ(pool[2], PolicyKind::kLjf);
}

}  // namespace
}  // namespace dynp::policies
