#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace dynp::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleObservation) {
  OnlineStats s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Xoshiro256 rng(123);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100 - 50;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(TrimmedMean, DropsOneMinAndOneMax) {
  // The paper's rule: 10 sets, drop min and max, average remaining 8.
  const std::vector<double> values = {5, 1, 9, 5, 5, 5, 5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes(values), 5.0);
}

TEST(TrimmedMean, SmallInputsFallBackToMean) {
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({}), 0.0);
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({2.0, 4.0}), 3.0);
}

TEST(TrimmedMean, ThreeValuesKeepsMiddle) {
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({10.0, 2.0, 30.0}), 10.0);
}

TEST(TrimmedMean, NansAreRejectedBeforeTrimming) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // After dropping the NaNs, {1, 5, 9} remains; the trim keeps the 5.
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({nan, 1.0, 5.0, nan, 9.0}), 5.0);
  // NaN rejection may push the sample below the trim threshold.
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({nan, 2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({nan, 7.0}), 7.0);
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({nan, nan}), 0.0);
}

TEST(TrimmedMean, InfinitiesAreOrderedAndTrimmable) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({-inf, 3.0, 5.0, inf}), 4.0);
}

TEST(TrimmedMean, DuplicatedExtremesDropOnlyOneEach) {
  // min=1 appears twice: only one copy is dropped.
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({1, 1, 4, 9}), (1.0 + 4.0) / 2);
}

TEST(Quantile, EdgeCases) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 1.0), 7.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 3.0);
}

}  // namespace
}  // namespace dynp::util
