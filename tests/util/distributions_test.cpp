#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/stats.hpp"

namespace dynp::util {
namespace {

constexpr int kSamples = 200000;

TEST(UniformReal, RangeAndMean) {
  Xoshiro256 rng(1);
  const UniformReal dist(2.0, 6.0);
  OnlineStats s;
  for (int i = 0; i < kSamples; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 6.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 4.0, 0.02);
}

TEST(Exponential, MeanMatches) {
  Xoshiro256 rng(2);
  const Exponential dist(250.0);
  OnlineStats s;
  for (int i = 0; i < kSamples; ++i) s.add(dist.sample(rng));
  EXPECT_NEAR(s.mean(), 250.0, 250.0 * 0.02);
  // Exponential: stddev == mean.
  EXPECT_NEAR(s.stddev(), 250.0, 250.0 * 0.05);
}

TEST(Exponential, AlwaysNonNegative) {
  Xoshiro256 rng(3);
  const Exponential dist(1.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(dist.sample(rng), 0.0);
}

TEST(Lognormal, FromMeanCvMatchesTargets) {
  Xoshiro256 rng(4);
  const double mean = 10000, cv = 1.5;
  const Lognormal dist = Lognormal::from_mean_cv(mean, cv);
  EXPECT_NEAR(dist.mean(), mean, 1e-6);
  OnlineStats s;
  for (int i = 0; i < kSamples; ++i) s.add(dist.sample(rng));
  EXPECT_NEAR(s.mean(), mean, mean * 0.05);
  EXPECT_NEAR(s.stddev() / s.mean(), cv, cv * 0.1);
}

TEST(Lognormal, StrictlyPositive) {
  Xoshiro256 rng(5);
  const Lognormal dist = Lognormal::from_mean_cv(1.0, 3.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(dist.sample(rng), 0.0);
}

TEST(Lognormal, StandardNormalMoments) {
  Xoshiro256 rng(6);
  OnlineStats s;
  for (int i = 0; i < kSamples; ++i) s.add(Lognormal::standard_normal(rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(HyperExponential, MixtureMean) {
  Xoshiro256 rng(7);
  const HyperExponential dist(0.3, 5.0, 1000.0);
  EXPECT_NEAR(dist.mean(), 0.3 * 5 + 0.7 * 1000, 1e-9);
  OnlineStats s;
  for (int i = 0; i < kSamples; ++i) s.add(dist.sample(rng));
  EXPECT_NEAR(s.mean(), dist.mean(), dist.mean() * 0.03);
}

TEST(HyperExponential, DegenerateBranchProbabilities) {
  Xoshiro256 rng(8);
  const HyperExponential all_first(1.0, 10.0, 1000.0);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(all_first.sample(rng));
  EXPECT_NEAR(s.mean(), 10.0, 0.5);
}

TEST(DiscreteValues, SinglePoint) {
  Xoshiro256 rng(9);
  const DiscreteValues dist({{42.0, 1.0}});
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 42.0);
}

TEST(DiscreteValues, WeightsRespected) {
  Xoshiro256 rng(10);
  const DiscreteValues dist({{1.0, 0.7}, {2.0, 0.2}, {3.0, 0.1}});
  std::array<int, 4> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(dist.sample(rng))];
  }
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.7, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.2, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.1, 0.01);
}

TEST(DiscreteValues, ZeroWeightValueNeverSampled) {
  Xoshiro256 rng(11);
  const DiscreteValues dist({{1.0, 1.0}, {99.0, 0.0}});
  for (int i = 0; i < 10000; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 1.0);
}

TEST(Bounded, SamplesStayInBounds) {
  Xoshiro256 rng(12);
  const Bounded<Lognormal> dist(Lognormal::from_mean_cv(100.0, 2.0), 20.0,
                                500.0);
  for (int i = 0; i < 50000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 20.0);
    ASSERT_LE(x, 500.0);
  }
}

TEST(Bounded, DegenerateIntervalClampsEverything) {
  Xoshiro256 rng(13);
  const Bounded<Exponential> dist(Exponential(100.0), 50.0, 50.0);
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 50.0);
}

}  // namespace
}  // namespace dynp::util
