#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dynp::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, Determinism) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanIsHalf) {
  Xoshiro256 rng(5);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowStaysInRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(13);
  std::array<int, 8> counts{};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[rng.next_below(8)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 8.0, kN * 0.01);
  }
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~0ULL);
}

TEST(DeriveSeed, DistinctStreamsForDistinctLabels) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      seeds.insert(derive_seed(42, a, b));
    }
  }
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(DeriveSeed, DeterministicInAllArguments) {
  EXPECT_EQ(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 3, 4));
  EXPECT_NE(derive_seed(1, 2, 3, 4), derive_seed(2, 2, 3, 4));
  EXPECT_NE(derive_seed(1, 2, 3, 4), derive_seed(1, 3, 3, 4));
  EXPECT_NE(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 4, 4));
  EXPECT_NE(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 3, 5));
}

}  // namespace
}  // namespace dynp::util
