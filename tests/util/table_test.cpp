#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dynp::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t;
  t.set_header({"name", "value"}, {Align::kLeft, Align::kRight});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, PadsColumnsToWidestCell) {
  TextTable t;
  t.set_header({"c1", "c2"});
  t.add_row({"x", "longvalue"});
  std::istringstream lines(t.to_string());
  std::string first, second;
  std::getline(lines, first);
  std::getline(lines, second);
  EXPECT_EQ(first.size(), second.size());
}

TEST(TextTable, RaggedRowsArePadded) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW({ (void)t.to_string(); });
}

TEST(TextTable, RuleRows) {
  TextTable t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.to_string();
  // 1 header rule + 1 explicit rule.
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("-\n", pos)) != std::string::npos) {
    ++rules;
    ++pos;
  }
  EXPECT_GE(rules, 2u);
}

TEST(TextTable, EmptyRendersNothing) {
  const TextTable t;
  EXPECT_TRUE(t.to_string().empty());
}

TEST(FmtFixed, Decimals) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
  EXPECT_EQ(fmt_fixed(-1.005, 1), "-1.0");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(79302), "79,302");
  EXPECT_EQ(fmt_count(201387), "201,387");
  EXPECT_EQ(fmt_count(-12345), "-12,345");
}

TEST(FmtSigned, ExplicitPlus) {
  EXPECT_EQ(fmt_signed(1.5, 2), "+1.50");
  EXPECT_EQ(fmt_signed(-0.72, 2), "-0.72");
  EXPECT_EQ(fmt_signed(0.0, 2), "+0.00");
}

TEST(CsvWriter, RendersHeaderAndNumericRows) {
  CsvWriter csv({"x", "y"});
  csv.add_row(std::vector<double>{1.0, 2.5});
  csv.add_row(std::vector<std::string>{"a", "b"});
  std::ostringstream oss;
  csv.render(oss);
  EXPECT_EQ(oss.str(), "x,y\n1,2.5\na,b\n");
}

}  // namespace
}  // namespace dynp::util
