#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dynp::util {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WorkerIndexIsNposOutsideAndStableInside) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_index(), ThreadPool::npos);
  std::vector<std::atomic<int>> seen(pool.thread_count());
  std::atomic<bool> out_of_range{false};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&] {
      const std::size_t w = pool.worker_index();
      if (w < seen.size()) {
        seen[w].fetch_add(1);
      } else {
        out_of_range.store(true);
      }
    });
  }
  pool.wait_idle();
  EXPECT_FALSE(out_of_range.load());
  int total = 0;
  for (auto& s : seen) total += s.load();
  EXPECT_EQ(total, 200);
}

TEST(ThreadPool, StealStatsAccountForEveryExecutedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  // Tasks submitted from inside a worker land on that worker's own deque;
  // the other three can only make progress by stealing.
  pool.submit([&] {
    for (int i = 0; i < 400; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 400);
  const ThreadPool::StealStats stats = pool.steal_stats();
  EXPECT_EQ(stats.executed, 401u);
  EXPECT_LE(stats.stolen_tasks, stats.executed);
  EXPECT_LE(stats.steal_batches, stats.stolen_tasks);
}

TEST(ThreadPool, SingleWorkerPoolNeverSteals) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
  EXPECT_EQ(pool.steal_stats().stolen_tasks, 0u);
  EXPECT_EQ(pool.steal_stats().executed, 64u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultMatchesSerialReduction) {
  constexpr std::size_t kN = 512;
  std::vector<double> out(kN);
  parallel_for(kN, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(kN) * (kN - 1));
}

}  // namespace
}  // namespace dynp::util
