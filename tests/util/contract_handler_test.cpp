/// Tests for the installable contract-violation handler (util/assert.hpp):
/// `ScopedContractThrower` turns the otherwise-aborting DYNP_EXPECTS family
/// into observable `ContractViolationError` throws, which is what makes
/// every other contract test in the suite possible.

#include "util/assert.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "workload/job.hpp"

namespace dynp {
namespace {

int checked_positive(int x) {
  DYNP_EXPECTS(x > 0);
  return x;
}

void checked_postcondition(bool ok) { DYNP_ENSURES(ok); }

void checked_invariant(bool ok) { DYNP_ASSERT(ok); }

TEST(ContractHandler, ScopedThrowerTurnsViolationsIntoExceptions) {
  ScopedContractThrower thrower;
  EXPECT_THROW(checked_positive(-1), ContractViolationError);
  EXPECT_THROW(checked_positive(0), ContractViolationError);
  EXPECT_EQ(checked_positive(7), 7);
}

TEST(ContractHandler, ViolationRecordCarriesKindExprAndLocation) {
  ScopedContractThrower thrower;
  try {
    checked_positive(-1);
    FAIL() << "expected ContractViolationError";
  } catch (const ContractViolationError& e) {
    const ContractViolation& v = e.violation();
    EXPECT_STREQ(v.kind, "precondition");
    EXPECT_NE(std::string(v.expr).find("x > 0"), std::string::npos);
    EXPECT_NE(std::string(v.file).find("contract_handler_test"),
              std::string::npos);
    EXPECT_GT(v.line, 0);
    EXPECT_STREQ(v.detail, "");
    EXPECT_NE(std::string(e.what()).find("precondition violated"),
              std::string::npos);
  }
}

TEST(ContractHandler, EachMacroReportsItsKind) {
  ScopedContractThrower thrower;
  try {
    checked_postcondition(false);
    FAIL();
  } catch (const ContractViolationError& e) {
    EXPECT_STREQ(e.violation().kind, "postcondition");
  }
  try {
    checked_invariant(false);
    FAIL();
  } catch (const ContractViolationError& e) {
    EXPECT_STREQ(e.violation().kind, "invariant");
  }
}

TEST(ContractHandler, CheckCtxCarriesStructuredDetail) {
  ScopedContractThrower thrower;
  const char* breadcrumb = "event=7 now=3.5 policy=SJF job=12";
  try {
    DYNP_CHECK_CTX(false, breadcrumb);
    FAIL();
  } catch (const ContractViolationError& e) {
    EXPECT_STREQ(e.violation().kind, "audit invariant");
    EXPECT_STREQ(e.violation().detail, breadcrumb);
    // The rendered message embeds the breadcrumb in brackets.
    EXPECT_NE(std::string(e.what()).find("[event=7 now=3.5 policy=SJF job=12]"),
              std::string::npos);
  }
}

TEST(ContractHandler, SetHandlerReturnsPrevious) {
  const ContractHandler custom = [](const ContractViolation& v) {
    throw std::runtime_error(v.to_string());
  };
  const ContractHandler before = set_contract_handler(custom);
  EXPECT_EQ(set_contract_handler(before), custom);
}

TEST(ContractHandler, ScopeExitRestoresPreviousHandler) {
  // Install a distinguishable outer handler, wrap a throwing scope inside
  // it, and verify the outer handler is back afterwards.
  const ContractHandler outer = [](const ContractViolation& v) {
    throw std::runtime_error(v.to_string());
  };
  const ContractHandler original = set_contract_handler(outer);
  {
    ScopedContractThrower thrower;
    EXPECT_THROW(checked_positive(-1), ContractViolationError);
  }
  EXPECT_THROW(checked_positive(-1), std::runtime_error);
  set_contract_handler(original);
}

TEST(ContractHandler, NestedScopesUnwindInOrder) {
  ScopedContractThrower outer;
  {
    ScopedContractThrower inner;
    EXPECT_THROW(checked_positive(-1), ContractViolationError);
  }
  EXPECT_THROW(checked_positive(-1), ContractViolationError);
}

TEST(ContractHandler, LibraryPreconditionsBecomeTestable) {
  // A real contract from the library, not a test fixture: JobSet::operator[]
  // requires the index to be in range.
  ScopedContractThrower thrower;
  const workload::JobSet empty;
  EXPECT_THROW(static_cast<void>(empty[0]), ContractViolationError);
}

}  // namespace
}  // namespace dynp
