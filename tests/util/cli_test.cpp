#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace dynp::util {
namespace {

[[nodiscard]] bool parse(CliParser& cli, std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliParser, DefaultsApplyWithoutArguments) {
  CliParser cli("test");
  cli.add_option("jobs", "100", "n jobs");
  cli.add_flag("full", "full scale");
  EXPECT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get("jobs"), "100");
  EXPECT_EQ(cli.get_int("jobs"), 100);
  EXPECT_FALSE(cli.get_flag("full"));
}

TEST(CliParser, SpaceSeparatedValue) {
  CliParser cli("test");
  cli.add_option("jobs", "100", "n jobs");
  EXPECT_TRUE(parse(cli, {"--jobs", "250"}));
  EXPECT_EQ(cli.get_int("jobs"), 250);
}

TEST(CliParser, EqualsSeparatedValue) {
  CliParser cli("test");
  cli.add_option("factor", "1.0", "shrinking factor");
  EXPECT_TRUE(parse(cli, {"--factor=0.7"}));
  EXPECT_DOUBLE_EQ(cli.get_double("factor"), 0.7);
}

TEST(CliParser, FlagPresenceSetsTrue) {
  CliParser cli("test");
  cli.add_flag("quick", "quick mode");
  EXPECT_TRUE(parse(cli, {"--quick"}));
  EXPECT_TRUE(cli.get_flag("quick"));
}

TEST(CliParser, UnknownOptionFails) {
  CliParser cli("test");
  EXPECT_FALSE(parse(cli, {"--nope"}));
}

TEST(CliParser, MissingValueFails) {
  CliParser cli("test");
  cli.add_option("jobs", "100", "n jobs");
  EXPECT_FALSE(parse(cli, {"--jobs"}));
}

TEST(CliParser, PositionalArgumentFails) {
  CliParser cli("test");
  EXPECT_FALSE(parse(cli, {"stray"}));
}

TEST(CliParser, HelpReturnsFalseAndListsOptions) {
  CliParser cli("my tool");
  cli.add_option("jobs", "100", "number of jobs");
  EXPECT_FALSE(parse(cli, {"--help"}));
  const std::string h = cli.help();
  EXPECT_NE(h.find("my tool"), std::string::npos);
  EXPECT_NE(h.find("--jobs"), std::string::npos);
  EXPECT_NE(h.find("number of jobs"), std::string::npos);
  EXPECT_NE(h.find("default: 100"), std::string::npos);
}

}  // namespace
}  // namespace dynp::util
