#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace dynp::util {
namespace {

[[nodiscard]] bool parse(CliParser& cli, std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliParser, DefaultsApplyWithoutArguments) {
  CliParser cli("test");
  cli.add_option("jobs", "100", "n jobs");
  cli.add_flag("full", "full scale");
  EXPECT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get("jobs"), "100");
  EXPECT_EQ(cli.get_int("jobs"), 100);
  EXPECT_FALSE(cli.get_flag("full"));
}

TEST(CliParser, SpaceSeparatedValue) {
  CliParser cli("test");
  cli.add_option("jobs", "100", "n jobs");
  EXPECT_TRUE(parse(cli, {"--jobs", "250"}));
  EXPECT_EQ(cli.get_int("jobs"), 250);
}

TEST(CliParser, EqualsSeparatedValue) {
  CliParser cli("test");
  cli.add_option("factor", "1.0", "shrinking factor");
  EXPECT_TRUE(parse(cli, {"--factor=0.7"}));
  EXPECT_DOUBLE_EQ(cli.get_double("factor"), 0.7);
}

TEST(CliParser, FlagPresenceSetsTrue) {
  CliParser cli("test");
  cli.add_flag("quick", "quick mode");
  EXPECT_TRUE(parse(cli, {"--quick"}));
  EXPECT_TRUE(cli.get_flag("quick"));
}

TEST(CliParser, UnknownOptionFails) {
  CliParser cli("test");
  EXPECT_FALSE(parse(cli, {"--nope"}));
}

TEST(CliParser, MissingValueFails) {
  CliParser cli("test");
  cli.add_option("jobs", "100", "n jobs");
  EXPECT_FALSE(parse(cli, {"--jobs"}));
}

TEST(CliParser, PositionalArgumentFails) {
  CliParser cli("test");
  EXPECT_FALSE(parse(cli, {"stray"}));
}

TEST(CliParser, CheckedIntAcceptsExactTokensInRange) {
  CliParser cli("test");
  cli.add_option("jobs", "100", "n jobs");
  EXPECT_TRUE(parse(cli, {"--jobs", "250"}));
  const auto v = cli.get_int_checked("jobs", 1, 1000);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 250);
}

TEST(CliParser, CheckedIntRejectsGarbageAndPartialTokens) {
  for (const char* bad : {"5k", "2.5", "", "ten", "0x10", "1 2"}) {
    CliParser cli("test");
    cli.add_option("jobs", "100", "n jobs");
    ASSERT_TRUE(parse(cli, {"--jobs", bad})) << bad;
    EXPECT_FALSE(cli.get_int_checked("jobs", 1, 1000).has_value()) << bad;
  }
}

TEST(CliParser, CheckedIntRejectsOutOfRange) {
  CliParser cli("test");
  cli.add_option("jobs", "100", "n jobs");
  EXPECT_TRUE(parse(cli, {"--jobs", "5000"}));
  EXPECT_FALSE(cli.get_int_checked("jobs", 1, 1000).has_value());
  EXPECT_TRUE(cli.get_int_checked("jobs", 1, 5000).has_value());
}

TEST(CliParser, CheckedDoubleAcceptsNumbersInRange) {
  CliParser cli("test");
  cli.add_option("p", "0", "probability");
  EXPECT_TRUE(parse(cli, {"--p", "0.25"}));
  const auto v = cli.get_double_checked("p", 0.0, 1.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 0.25);
}

TEST(CliParser, CheckedDoubleRejectsGarbageRangeAndNonFinite) {
  for (const char* bad : {"0.5x", "", "half", "nan", "inf", "1.5"}) {
    CliParser cli("test");
    cli.add_option("p", "0", "probability");
    ASSERT_TRUE(parse(cli, {"--p", bad})) << bad;
    EXPECT_FALSE(cli.get_double_checked("p", 0.0, 1.0).has_value()) << bad;
  }
}

TEST(CliParser, HelpReturnsFalseAndListsOptions) {
  CliParser cli("my tool");
  cli.add_option("jobs", "100", "number of jobs");
  EXPECT_FALSE(parse(cli, {"--help"}));
  const std::string h = cli.help();
  EXPECT_NE(h.find("my tool"), std::string::npos);
  EXPECT_NE(h.find("--jobs"), std::string::npos);
  EXPECT_NE(h.find("number of jobs"), std::string::npos);
  EXPECT_NE(h.find("default: 100"), std::string::npos);
}

}  // namespace
}  // namespace dynp::util
